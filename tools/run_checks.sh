#!/usr/bin/env sh
# One-shot verification gate: everything a PR must pass, in dependency order.
#
#   tools/run_checks.sh [extra ctest args...]
#
#   1. configure + build the default preset
#   2. ctest (396 unit/integration tests + the storsim_lint fixture suite
#      + the StorsimLint.TreeIsClean gate)
#   3. storsim_lint --check over src/ bench/ tests/ (redundant with the ctest
#      gate, but run standalone so its report is printed even when ctest is
#      filtered down with extra args)
#   4. pipeline_throughput smoke at --scale=0.05: asserts the fast log path
#      and the legacy baseline stay byte-identical (speedups are measured at
#      full scale separately; see docs/performance.md)
#   5. store round-trip at full scale: store_bench simulates the paper-scale
#      fleet, serializes it, and asserts the mmap+query rerun reproduces the
#      AFR breakdown bit for bit (docs/STORE.md); plus a corruption smoke —
#      a truncated and a bit-flipped store must be rejected by the CLI
#   6. clang-tidy over src/ when available (the container may not ship it;
#      the curated profile lives in .clang-tidy)
#
# Sanitizer passes are heavier and live in tools/run_sanitizer.sh.
set -eu

cd "$(dirname "$0")/.."

echo "== [1/6] configure + build =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"

echo "== [2/6] ctest =="
ctest --test-dir build --output-on-failure -j "$(nproc)" "$@"

echo "== [3/6] storsim_lint =="
./build/tools/storsim_lint --check --root . src bench tests

echo "== [4/6] pipeline_throughput smoke =="
./build/bench/pipeline_throughput --scale=0.05 --repeat=1 \
  --out=build/BENCH_pipeline_smoke.json

echo "== [5/6] store round-trip (full scale) + corruption smoke =="
./build/bench/store_bench --scale=1.0 --repeat=1 \
  --store=build/BENCH_checks.store --out=build/BENCH_store_checks.json
# Corrupt stores must be rejected, never crash: truncate one copy, flip a
# byte in another.
head -c 1000 build/BENCH_checks.store > build/BENCH_checks_truncated.store
cp build/BENCH_checks.store build/BENCH_checks_flipped.store
printf '\377' | dd of=build/BENCH_checks_flipped.store bs=1 seek=200 \
  conv=notrunc status=none
for broken in build/BENCH_checks_truncated.store build/BENCH_checks_flipped.store; do
  if ./build/tools/storsubsim store stats --store "$broken" > /dev/null 2>&1; then
    echo "FAIL: corrupted store $broken was accepted"
    exit 1
  fi
done
echo "corrupted stores rejected with typed errors"

echo "== [6/6] clang-tidy =="
if command -v clang-tidy > /dev/null 2>&1; then
  cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  # Lint the library sources; headers are pulled in via HeaderFilterRegex.
  find src -name '*.cc' -print0 | xargs -0 -n 8 -P "$(nproc)" \
    clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo "All checks passed."
