#!/usr/bin/env sh
# One-shot verification gate: everything a PR must pass, in dependency order.
#
#   tools/run_checks.sh [extra ctest args...]
#
#   1. configure + build the default preset
#   2. ctest (601 unit/integration tests + the storsim_lint fixture suite
#      + the StorsimLint.TreeIsClean gate)
#   3. storsim_lint --check over src/ bench/ tests/ (redundant with the ctest
#      gate, but run standalone so its report is printed even when ctest is
#      filtered down with extra args); also emits build/lint-report.json,
#      the --format=json report CI consumes
#   4. pipeline_throughput smoke at --scale=0.05: asserts the fast log path
#      and the legacy baseline stay byte-identical (speedups are measured at
#      full scale separately; see docs/performance.md)
#   5. store round-trip at full scale: store_bench simulates the paper-scale
#      fleet, serializes it, and asserts the mmap+query rerun reproduces the
#      AFR breakdown bit for bit (docs/STORE.md); plus a corruption smoke —
#      a truncated and a bit-flipped store must be rejected by the CLI
#   6. observability gate (docs/OBSERVABILITY.md): a full-scale analyze with
#      --metrics --trace --manifest must print byte-identical stdout to the
#      plain run, the manifest and trace must be valid JSON, and turning the
#      obs stack on must cost <2% wall time on the scale-1.0 log pipeline
#      (paired min-of-N runs on this machine; the committed BENCH_pipeline.json
#      numbers are the cross-machine reference)
#   7. sharded store gate (docs/STORE.md): a full-scale `store build
#      --max-rss-mb 256` must fit the budget the monolithic writer exceeds
#      (~630 MiB on this fleet), and `analyze --input <shard-dir>` must print
#      byte-identical reports to the single-file store from step 5
#   8. decode-kernel identity gate (docs/STORE.md): a second build configured
#      with -DSTORSUBSIM_SIMD=OFF (scalar-only decode kernels) must produce
#      byte-identical full-scale analyze reports to the default SIMD build —
#      the wide kernels are an optimisation, never a semantic change
#   9. storsimd gate (docs/SERVE.md): a real `storsubsim serve` daemon over
#      the step-5 store answers parallel `storsubsim client` calls byte-
#      identically to the offline path, the serve_bench QPS ladder clears a
#      conservative floor with zero mismatches, and SIGTERM drains cleanly
#      (exit 0, socket unlinked)
#  10. clang-tidy over src/ when available (the container may not ship it;
#      the curated profile lives in .clang-tidy)
#  11. replication gate (docs/REPLICATION.md): `storsubsim replicate` at
#      --threads 1 and 4 must write byte-identical STORREP1 tables and
#      reports, `analyze --replicates` must re-render the table byte for
#      byte without re-simulating, and a ci_rel run must stop before the
#      fixed budget with its provenance manifest recording why
#
# Sanitizer passes are heavier and live in tools/run_sanitizer.sh.
set -eu

cd "$(dirname "$0")/.."

echo "== [1/11] configure + build =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"

echo "== [2/11] ctest =="
ctest --test-dir build --output-on-failure -j "$(nproc)" "$@"

echo "== [3/11] storsim_lint =="
# Emit the machine-readable report first (it must exist even when the gate
# below fails, so CI can surface the findings), then run the human gate.
./build/tools/storsim_lint --format=json --root . src bench tests \
  > build/lint-report.json || true
./build/tools/storsim_lint --check --root . src bench tests
echo "machine-readable report: build/lint-report.json"

echo "== [4/11] pipeline_throughput smoke =="
./build/bench/pipeline_throughput --scale=0.05 --repeat=1 \
  --out=build/BENCH_pipeline_smoke.json

echo "== [5/11] store round-trip (full scale) + corruption smoke =="
./build/bench/store_bench --scale=1.0 --repeat=1 \
  --store=build/BENCH_checks.store --out=build/BENCH_store_checks.json
# Corrupt stores must be rejected, never crash: truncate one copy, flip a
# byte in another.
head -c 1000 build/BENCH_checks.store > build/BENCH_checks_truncated.store
cp build/BENCH_checks.store build/BENCH_checks_flipped.store
printf '\377' | dd of=build/BENCH_checks_flipped.store bs=1 seek=200 \
  conv=notrunc status=none
for broken in build/BENCH_checks_truncated.store build/BENCH_checks_flipped.store; do
  if ./build/tools/storsubsim store stats --store "$broken" > /dev/null 2>&1; then
    echo "FAIL: corrupted store $broken was accepted"
    exit 1
  fi
done
echo "corrupted stores rejected with typed errors"

echo "== [6/11] observability: byte identity + manifest + overhead =="
# Byte identity at full scale: the store built in step 5 feeds the same
# analyze invocation with the obs stack off and fully on. --input also
# exercises the STORCOL1 magic sniffing path.
./build/tools/storsubsim analyze --store build/BENCH_checks.store \
  --report afr > build/CHECK_obs_plain.txt
./build/tools/storsubsim analyze --input build/BENCH_checks.store \
  --report afr --metrics --trace build/CHECK_obs.trace.json \
  --manifest build/CHECK_obs.manifest.json \
  > build/CHECK_obs_instrumented.txt 2> build/CHECK_obs_metrics.txt
cmp build/CHECK_obs_plain.txt build/CHECK_obs_instrumented.txt
echo "analysis output byte-identical with --metrics --trace --manifest"

# The emitted artifacts must be valid JSON with the expected markers.
if command -v python3 > /dev/null 2>&1; then
  python3 - <<'PYEOF'
import json
manifest = json.load(open("build/CHECK_obs.manifest.json"))
assert manifest["storsubsim_manifest"] == 1, manifest
assert manifest["tool"].startswith("storsubsim"), manifest["tool"]
assert "metrics" in manifest and isinstance(manifest["metrics"], list)
trace = json.load(open("build/CHECK_obs.trace.json"))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"]
assert all(e["ph"] == "X" for e in trace["traceEvents"])
print("manifest + trace JSON valid (%d trace events)" % len(trace["traceEvents"]))
PYEOF
else
  grep -q '"storsubsim_manifest"' build/CHECK_obs.manifest.json
  grep -q '"traceEvents"' build/CHECK_obs.trace.json
  echo "python3 unavailable; JSON markers grep-checked only"
fi

# Overhead gate: the scale-1.0 log pipeline with tracing + metrics on must
# stay within 2% of the plain run (paired min-of-3 on this machine — the
# committed BENCH_pipeline.json is a different box, so it is reference only).
./build/bench/pipeline_throughput --scale=1.0 --repeat=3 \
  --out=build/BENCH_pipeline_check.json > /dev/null
./build/bench/pipeline_throughput --scale=1.0 --repeat=3 \
  --metrics --trace=build/BENCH_pipeline_check.trace.json \
  --out=build/BENCH_pipeline_check_obs.json > /dev/null 2>&1
if command -v python3 > /dev/null 2>&1; then
  python3 - <<'PYEOF'
import json
def wall(path):
    doc = json.load(open(path))
    fast = doc["fast"]
    return fast["emit_seconds"] + fast["parse_seconds"] + fast["classify_seconds"]
plain, obs = wall("build/BENCH_pipeline_check.json"), wall("build/BENCH_pipeline_check_obs.json")
overhead = obs / plain - 1.0
print("obs overhead on the fast path: %+.2f%% (plain %.3fs, obs %.3fs)"
      % (overhead * 100.0, plain, obs))
assert overhead < 0.02, "obs stack costs more than 2%% wall time (%.2f%%)" % (overhead * 100.0)
PYEOF
else
  echo "python3 unavailable; skipping the <2% overhead comparison"
fi

echo "== [7/11] sharded store: bounded-memory build + merged-answer identity =="
# Full-scale sharded build under a budget the monolithic writer exceeds
# (step 5's single-file build peaks around 630 MiB on this fleet). The build
# records its own peak RSS in the directory's build.manifest.json.
./build/tools/storsubsim store build --out build/BENCH_checks.shards \
  --scale 1.0 --max-rss-mb 256
# The merged answers must be byte-identical to the single-file store from
# step 5 (same seed/scale), across both the aggregate and dataset paths.
for report in afr burstiness correlation; do
  ./build/tools/storsubsim analyze --input build/BENCH_checks.store \
    --report "$report" > "build/CHECK_shards_mono_$report.txt"
  ./build/tools/storsubsim analyze --input build/BENCH_checks.shards \
    --report "$report" > "build/CHECK_shards_dir_$report.txt"
  cmp "build/CHECK_shards_mono_$report.txt" "build/CHECK_shards_dir_$report.txt"
done
echo "sharded analyze byte-identical to the single-file store (afr, burstiness, correlation)"
# RSS-budget gate: the sharded build must honour --max-rss-mb, and must use
# far less memory than the monolithic path (recorded by step 5's bench).
if command -v python3 > /dev/null 2>&1; then
  python3 - <<'PYEOF'
import json
build = json.load(open("build/BENCH_checks.shards/build.manifest.json"))
sharded_peak = build["numbers"]["peak_rss_bytes"]
shards = int(build["numbers"]["shards"])
mono = json.load(open("build/BENCH_store_checks.json"))
mono_peak = mono["peak_rss_bytes"]
budget = 256 * 1024 * 1024
print("sharded build: %d shards, peak RSS %.0f MiB (budget 256 MiB); "
      "monolithic pipeline peaked at %.0f MiB"
      % (shards, sharded_peak / 2**20, mono_peak / 2**20))
assert shards > 1, "budget did not force a multi-shard build"
assert sharded_peak <= budget, "sharded build exceeded --max-rss-mb"
assert sharded_peak < mono_peak / 2, "sharded build saved too little memory"
PYEOF
else
  echo "python3 unavailable; skipping the RSS-budget assertion"
fi

echo "== [8/11] decode-kernel identity: scalar build vs SIMD build =="
# A scalar-only build (-DSTORSUBSIM_SIMD=OFF) must answer the full-scale
# analyze byte for byte like the default build: the wide kernels may only
# change speed, never output. Reuses the step-5 store so both binaries read
# the exact same bytes.
cmake -S . -B build-scalar -DSTORSUBSIM_SIMD=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build-scalar --target storsubsim_cli -j "$(nproc)" > /dev/null
for report in afr burstiness correlation; do
  ./build/tools/storsubsim analyze --input build/BENCH_checks.store \
    --report "$report" > "build/CHECK_simd_$report.txt"
  ./build-scalar/tools/storsubsim analyze --input build/BENCH_checks.store \
    --report "$report" > "build/CHECK_scalar_$report.txt"
  cmp "build/CHECK_simd_$report.txt" "build/CHECK_scalar_$report.txt"
done
echo "scalar-kernel build byte-identical to the SIMD build (afr, burstiness, correlation)"

echo "== [9/11] storsimd: daemon byte-identity + QPS floor + drain =="
# A real `storsubsim serve` daemon over the full-scale store from step 5,
# driven by parallel `storsubsim client` invocations: every endpoint must be
# byte-identical to the offline path, and SIGTERM must drain cleanly
# (exit 0, socket unlinked). See docs/SERVE.md.
SERVE_SOCK=build/CHECK_serve.sock
rm -f "$SERVE_SOCK"
./build/tools/storsubsim serve --input build/BENCH_checks.store \
  --socket "$SERVE_SOCK" > /dev/null 2>&1 &
SERVE_PID=$!
tries=0
while [ ! -S "$SERVE_SOCK" ] && [ "$tries" -lt 500 ]; do
  sleep 0.01
  tries=$((tries + 1))
done
[ -S "$SERVE_SOCK" ] || { echo "FAIL: daemon never bound $SERVE_SOCK"; exit 1; }
client_pids=""
for pair in afr:afr-total afr_by_class:afr tbf:burstiness \
            correlation:correlation lifetime:lifetime; do
  endpoint=${pair%%:*}
  report=${pair##*:}
  ./build/tools/storsubsim analyze --store build/BENCH_checks.store \
    --report "$report" > "build/CHECK_serve_offline_$endpoint.txt"
  ./build/tools/storsubsim client --socket "$SERVE_SOCK" \
    --endpoint "$endpoint" > "build/CHECK_serve_daemon_$endpoint.txt" &
  client_pids="$client_pids $!"
done
./build/tools/storsubsim store query --store build/BENCH_checks.store \
  --group-by class --csv > build/CHECK_serve_offline_query.txt
./build/tools/storsubsim client --socket "$SERVE_SOCK" --endpoint query \
  --group-by class --csv > build/CHECK_serve_daemon_query.txt &
client_pids="$client_pids $!"
for pid in $client_pids; do
  wait "$pid"
done
for endpoint in afr afr_by_class tbf correlation lifetime query; do
  cmp "build/CHECK_serve_offline_$endpoint.txt" \
    "build/CHECK_serve_daemon_$endpoint.txt"
done
echo "daemon answers byte-identical to offline (5 endpoints + grouped query)"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
[ ! -e "$SERVE_SOCK" ] || { echo "FAIL: $SERVE_SOCK leaked after drain"; exit 1; }
echo "SIGTERM drain clean (exit 0, socket unlinked)"
# QPS floor: the in-process ladder over the same store. The committed
# BENCH_serve.json holds this machine-independent reference; the floor here
# is deliberately conservative so slow CI boxes pass while a daemon that
# serializes everything (or deadlocks) fails.
./build/bench/serve_bench --store=build/BENCH_checks.store --requests=100 \
  --out=build/BENCH_serve_check.json > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - <<'PYEOF'
import json
doc = json.load(open("build/BENCH_serve_check.json"))
assert doc["mismatches"] == 0, "daemon served wrong bytes under load"
ladder = {r["clients"]: r for r in doc["ladder"]}
qps16 = ladder[16]["qps"]
print("serve QPS ladder: " + ", ".join(
    "%d clients -> %.0f qps (p99 %.0f us)" % (c, r["qps"], r["p99_us"])
    for c, r in sorted(ladder.items())))
assert qps16 >= 100.0, "16-client QPS %.0f below the 100 qps floor" % qps16
PYEOF
else
  grep -q '"mismatches": 0' build/BENCH_serve_check.json
  echo "python3 unavailable; QPS floor grep-checked for identity only"
fi

echo "== [10/11] clang-tidy =="
if command -v clang-tidy > /dev/null 2>&1; then
  cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  # Lint the library sources; headers are pulled in via HeaderFilterRegex.
  find src -name '*.cc' -print0 | xargs -0 -n 8 -P "$(nproc)" \
    clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo "== [11/11] replication: thread-invariance + analyze --replicates + early stop =="
# The determinism contract on the Monte Carlo replicator: replicate seeds are
# keyed substreams of the root seed, so the table and the report must not
# depend on the thread count (docs/REPLICATION.md).
./build/tools/storsubsim replicate --out build/CHECK_t1.reps \
  --scale 0.02 --seed 11 --max-replicates 8 --min-replicates 4 --batch 4 \
  --threads 1 > build/CHECK_replicate_t1.txt 2> /dev/null
./build/tools/storsubsim replicate --out build/CHECK_t4.reps \
  --scale 0.02 --seed 11 --max-replicates 8 --min-replicates 4 --batch 4 \
  --threads 4 > build/CHECK_replicate_t4.txt 2> /dev/null
cmp build/CHECK_t1.reps build/CHECK_t4.reps
cmp build/CHECK_replicate_t1.txt build/CHECK_replicate_t4.txt
echo "replicate tables + reports byte-identical at --threads 1 and 4"
# `analyze --replicates` answers from the stored table, no re-simulation.
./build/tools/storsubsim analyze --replicates build/CHECK_t1.reps \
  > build/CHECK_replicate_analyze.txt 2> /dev/null
cmp build/CHECK_replicate_t1.txt build/CHECK_replicate_analyze.txt
echo "analyze --replicates re-renders the stored table byte for byte"
# Sequential stopping must beat the fixed budget at a loose target, and the
# provenance manifest must say so.
./build/tools/storsubsim replicate --out build/CHECK_earlystop.reps \
  --scale 0.02 --seed 11 --max-replicates 24 --min-replicates 4 --batch 4 \
  --ci-rel 0.5 --threads 1 > /dev/null 2>&1
if command -v python3 > /dev/null 2>&1; then
  python3 - <<'PYEOF'
import json
manifest = json.load(open("build/CHECK_earlystop.reps.manifest.json"))
info = manifest["info"]
numbers = manifest["numbers"]
replicates = int(numbers["replicates"])
assert info["stop_reason"] == "converged", info
assert info["seed_stream"] == "replicate", info
assert numbers["converged_statistics"] >= 1, numbers
assert 0 < numbers["min_stopped_at"] < 24, numbers
assert replicates < 24, "sequential stopping did not beat the fixed budget"
print("sequential stopping: %d/24 replicates (converged, %d statistics at target)"
      % (replicates, int(numbers["converged_statistics"])))
PYEOF
else
  grep -q '"stop_reason": "converged"' build/CHECK_earlystop.reps.manifest.json
  echo "python3 unavailable; early-stop manifest grep-checked only"
fi

echo "All checks passed."
