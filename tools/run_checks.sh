#!/usr/bin/env sh
# One-shot verification gate: everything a PR must pass, in dependency order.
#
#   tools/run_checks.sh [extra ctest args...]
#
#   1. configure + build the default preset
#   2. ctest (396 unit/integration tests + the storsim_lint fixture suite
#      + the StorsimLint.TreeIsClean gate)
#   3. storsim_lint --check over src/ bench/ tests/ (redundant with the ctest
#      gate, but run standalone so its report is printed even when ctest is
#      filtered down with extra args)
#   4. pipeline_throughput smoke at --scale=0.05: asserts the fast log path
#      and the legacy baseline stay byte-identical (speedups are measured at
#      full scale separately; see docs/performance.md)
#   5. clang-tidy over src/ when available (the container may not ship it;
#      the curated profile lives in .clang-tidy)
#
# Sanitizer passes are heavier and live in tools/run_sanitizer.sh.
set -eu

cd "$(dirname "$0")/.."

echo "== [1/5] configure + build =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"

echo "== [2/5] ctest =="
ctest --test-dir build --output-on-failure -j "$(nproc)" "$@"

echo "== [3/5] storsim_lint =="
./build/tools/storsim_lint --check --root . src bench tests

echo "== [4/5] pipeline_throughput smoke =="
./build/bench/pipeline_throughput --scale=0.05 --repeat=1 \
  --out=build/BENCH_pipeline_smoke.json

echo "== [5/5] clang-tidy =="
if command -v clang-tidy > /dev/null 2>&1; then
  cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  # Lint the library sources; headers are pulled in via HeaderFilterRegex.
  find src -name '*.cc' -print0 | xargs -0 -n 8 -P "$(nproc)" \
    clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo "All checks passed."
