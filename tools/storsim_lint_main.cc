// storsim_lint CLI — see tools/lint/linter.h and docs/static-analysis.md.
//
//   storsim_lint --check src bench tests            # gate (default mode)
//   storsim_lint --write-baseline lint.baseline src # accept current findings
//   storsim_lint --baseline lint.baseline src       # fail only on NEW findings
//   storsim_lint --list-suppressions src            # audit inline allow()s
//   storsim_lint --format=json src                  # machine-readable report
//   storsim_lint --changed-only src                 # scope to git diff vs HEAD
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.h"

namespace {

using namespace storsubsim;  // tool code, not a header

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <file-or-dir>...\n"
               "\n"
               "Static determinism & hygiene checks for the storsubsim tree.\n"
               "Per-file rules: nondeterminism, unordered-iter, rng-discipline,\n"
               "                header-hygiene, alloc-hotpath, timer-discipline.\n"
               "Cross-TU rules: view-lifetime, error-discipline, layering,\n"
               "                lock-discipline.\n"
               "\n"
               "  --check                 report findings, exit 1 if any (default)\n"
               "  --baseline FILE         ignore findings recorded in FILE\n"
               "  --write-baseline FILE   record current findings into FILE and exit 0\n"
               "  --root DIR              report paths relative to DIR (default: cwd)\n"
               "  --format=json           emit one JSON report object on stdout\n"
               "  --changed-only[=REF]    lint only files changed vs REF (default HEAD)\n"
               "  --list-suppressions     also print every honoured inline allow()\n"
               "  --quiet                 suppress the summary line\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// `git diff --name-only REF` + untracked files, as repo-relative paths.
bool git_changed_files(const std::string& ref, std::vector<std::string>* out) {
  const std::string cmd = "git diff --name-only " + ref +
                          " -- . && git ls-files --others --exclude-standard";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  std::string line;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) line.pop_back();
    if (!line.empty()) out->push_back(line);
  }
  return pclose(pipe) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, write_baseline_path, root = ".";
  std::string changed_ref;
  bool changed_only = false, json = false, list_suppressions = false, quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--check") {
      // default mode; accepted for self-documenting invocations
    } else if (arg == "--baseline") {
      if (!value(&baseline_path)) return usage(argv[0]);
    } else if (arg == "--write-baseline") {
      if (!value(&write_baseline_path)) return usage(argv[0]);
    } else if (arg == "--root") {
      if (!value(&root)) return usage(argv[0]);
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg.starts_with("--format=")) {
      std::fprintf(stderr, "storsim_lint: unknown format '%s'\n", arg.c_str() + 9);
      return usage(argv[0]);
    } else if (arg == "--changed-only") {
      changed_only = true;
      changed_ref = "HEAD";
    } else if (arg.starts_with("--changed-only=")) {
      changed_only = true;
      changed_ref = arg.substr(15);
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.starts_with("--")) {
      std::fprintf(stderr, "storsim_lint: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);

  const lint::LintOptions options;
  std::vector<std::string> errors;
  auto sources = lint::collect_sources(paths, root, options, &errors);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "storsim_lint: %s\n", e.c_str());
  }
  if (!errors.empty()) return 2;

  if (changed_only) {
    std::vector<std::string> changed;
    if (!git_changed_files(changed_ref, &changed)) {
      std::fprintf(stderr, "storsim_lint: git diff --name-only %s failed\n",
                   changed_ref.c_str());
      return 2;
    }
    sources = lint::filter_changed(std::move(sources), changed);
  }

  lint::TreeReport report = lint::lint_tree(sources, options, &errors);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "storsim_lint: %s\n", e.c_str());
  }
  if (!errors.empty()) return 2;

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "storsim_lint: cannot write %s\n", write_baseline_path.c_str());
      return 2;
    }
    out << lint::serialize_baseline(report.findings);
    if (!quiet) {
      std::printf("storsim_lint: wrote %zu finding(s) to baseline %s\n",
                  report.findings.size(), write_baseline_path.c_str());
    }
    return 0;
  }

  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::fprintf(stderr, "storsim_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::vector<std::string> baseline_errors;
    auto baseline = lint::parse_baseline(text, &baseline_errors);
    for (const std::string& e : baseline_errors) {
      std::fprintf(stderr, "storsim_lint: %s: %s\n", baseline_path.c_str(), e.c_str());
    }
    report.findings = lint::apply_baseline(std::move(report.findings), std::move(baseline));
  }

  if (json) {
    std::fputs(lint::render_json_report(report).c_str(), stdout);
    return report.findings.empty() ? 0 : 1;
  }

  for (const auto& f : report.findings) {
    std::fputs(lint::format_finding(f).c_str(), stdout);
  }
  if (list_suppressions) {
    for (const auto& s : report.suppressions) {
      std::printf("%s:%zu: suppressed [%s] reason: %s\n", s.path.c_str(), s.line,
                  std::string(lint::rule_name(s.rule)).c_str(), s.reason.c_str());
    }
  }
  if (!quiet) {
    std::printf("storsim_lint: %zu file(s), %zu finding(s), %zu suppression(s) honoured\n",
                report.file_count, report.findings.size(), report.suppressions.size());
  }
  return report.findings.empty() ? 0 : 1;
}
