// storsim_lint CLI — see tools/lint/linter.h and docs/static-analysis.md.
//
//   storsim_lint --check src bench tests            # gate (default mode)
//   storsim_lint --write-baseline lint.baseline src # accept current findings
//   storsim_lint --baseline lint.baseline src       # fail only on NEW findings
//   storsim_lint --list-suppressions src            # audit inline allow()s
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.h"

namespace {

using namespace storsubsim;  // tool code, not a header

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <file-or-dir>...\n"
               "\n"
               "Static determinism & hygiene checks for the storsubsim tree.\n"
               "Rules: nondeterminism, unordered-iter, rng-discipline, header-hygiene,\n"
               "       alloc-hotpath.\n"
               "\n"
               "  --check                 report findings, exit 1 if any (default)\n"
               "  --baseline FILE         ignore findings recorded in FILE\n"
               "  --write-baseline FILE   record current findings into FILE and exit 0\n"
               "  --root DIR              report paths relative to DIR (default: cwd)\n"
               "  --list-suppressions     also print every honoured inline allow()\n"
               "  --quiet                 suppress the summary line\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, write_baseline_path, root = ".";
  bool list_suppressions = false, quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    if (arg == "--check") {
      // default mode; accepted for self-documenting invocations
    } else if (arg == "--baseline") {
      if (!value(&baseline_path)) return usage(argv[0]);
    } else if (arg == "--write-baseline") {
      if (!value(&write_baseline_path)) return usage(argv[0]);
    } else if (arg == "--root") {
      if (!value(&root)) return usage(argv[0]);
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.starts_with("--")) {
      std::fprintf(stderr, "storsim_lint: unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);

  const lint::LintOptions options;
  std::vector<std::string> errors;
  const auto sources = lint::collect_sources(paths, root, options, &errors);
  for (const std::string& e : errors) {
    std::fprintf(stderr, "storsim_lint: %s\n", e.c_str());
  }
  if (!errors.empty()) return 2;

  std::vector<lint::Finding> findings;
  std::vector<lint::Suppression> suppressions;
  for (const auto& source : sources) {
    std::string contents;
    if (!read_file(source.fs_path, &contents)) {
      std::fprintf(stderr, "storsim_lint: cannot read %s\n", source.fs_path.c_str());
      return 2;
    }
    auto report = lint::lint_source(source.display_path, contents, options);
    findings.insert(findings.end(), std::make_move_iterator(report.findings.begin()),
                    std::make_move_iterator(report.findings.end()));
    suppressions.insert(suppressions.end(),
                        std::make_move_iterator(report.suppressions.begin()),
                        std::make_move_iterator(report.suppressions.end()));
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "storsim_lint: cannot write %s\n", write_baseline_path.c_str());
      return 2;
    }
    out << lint::serialize_baseline(findings);
    if (!quiet) {
      std::printf("storsim_lint: wrote %zu finding(s) to baseline %s\n", findings.size(),
                  write_baseline_path.c_str());
    }
    return 0;
  }

  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::fprintf(stderr, "storsim_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::vector<std::string> baseline_errors;
    auto baseline = lint::parse_baseline(text, &baseline_errors);
    for (const std::string& e : baseline_errors) {
      std::fprintf(stderr, "storsim_lint: %s: %s\n", baseline_path.c_str(), e.c_str());
    }
    findings = lint::apply_baseline(std::move(findings), std::move(baseline));
  }

  for (const auto& f : findings) {
    std::fputs(lint::format_finding(f).c_str(), stdout);
  }
  if (list_suppressions) {
    for (const auto& s : suppressions) {
      std::printf("%s:%zu: suppressed [%s] reason: %s\n", s.path.c_str(), s.line,
                  std::string(lint::rule_name(s.rule)).c_str(), s.reason.c_str());
    }
  }
  if (!quiet) {
    std::printf("storsim_lint: %zu file(s), %zu finding(s), %zu suppression(s) honoured\n",
                sources.size(), findings.size(), suppressions.size());
  }
  return findings.empty() ? 0 : 1;
}
