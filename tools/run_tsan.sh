#!/usr/bin/env sh
# DEPRECATED: the sanitizer runners were unified into run_sanitizer.sh; call
#   tools/run_sanitizer.sh tsan [extra ctest args...]
# directly. This shim survives for old muscle memory / scripts only.
echo "run_tsan.sh is deprecated; use: tools/run_sanitizer.sh tsan" >&2
exec "$(dirname "$0")/run_sanitizer.sh" tsan "$@"
