#!/usr/bin/env sh
# Back-compat shim: the sanitizer runners were unified into run_sanitizer.sh.
exec "$(dirname "$0")/run_sanitizer.sh" tsan "$@"
