#!/usr/bin/env sh
# Build the tsan preset and race the fleet-parallel execution layer.
#
# Runs the thread-pool, simulator, and stats unit tests under
# ThreadSanitizer, then the cross-thread-count determinism tests at 1 and 8
# workers. Any data race in the parallel shelf/system fan-out, the sharded
# log pipeline, or the bootstrap replicate split fails the script.
#
# Usage: tools/run_tsan.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"

run_ctest() {
  ctest --test-dir build-tsan --output-on-failure "$@"
}

# Unit tests for the parallel substrate and everything that fans out on it.
run_ctest -R 'ThreadPool|ParallelFor|ThreadConfig'
run_ctest -R 'Simulator\.|Bootstrap'

# Determinism contract under contention and with an oversubscribed pool:
# the invariance tests internally compare 1-thread vs 4-thread runs; running
# them with the pool default pinned to 1 and then 8 exercises both the
# inline path and heavy oversubscription on small machines.
for threads in 1 8; do
  echo "== determinism tests with STORSIM_THREADS=${threads} =="
  STORSIM_THREADS="${threads}" run_ctest \
    -R 'BitIdenticalAcrossThreadCounts' "$@"
done

echo "TSan suite passed."
