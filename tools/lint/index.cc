#include "lint/index.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <set>

namespace storsubsim::lint {
namespace {

// Identifiers that look like `name(...)` but never declare a function.
constexpr std::string_view kNotAFunction[] = {
    "if",     "for",      "while",    "switch",        "return",   "sizeof",
    "alignof", "alignas", "typeid",   "catch",         "new",      "delete",
    "static_assert",      "decltype", "noexcept",      "throw",    "requires",
    "case",   "goto",     "using",    "operator",      "co_await", "co_return",
    "co_yield", "assert", "defined",  "static_cast",   "const_cast",
    "dynamic_cast",       "reinterpret_cast"};

// Keywords that, appearing immediately before a candidate declarator, mark it
// as an expression (`return open(p);`) rather than a declaration.
constexpr std::string_view kExprContext[] = {"return",    "throw", "case",
                                             "new",       "delete", "else",
                                             "do",        "goto",  "co_return",
                                             "co_yield",  "co_await"};

bool in_list(std::string_view t, const std::string_view* begin,
             const std::string_view* end) {
  return std::find(begin, end, t) != end;
}

/// Whole-word search over `window`, skipping preprocessor lines (so
/// `#include <span>` above a declaration never reads as a view return type).
bool window_has_word(std::string_view window, std::string_view word) {
  std::size_t pos = 0;
  while (pos <= window.size()) {
    const std::size_t nl = window.find('\n', pos);
    const std::string_view line = window.substr(
        pos, nl == std::string_view::npos ? window.size() - pos : nl - pos);
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string_view::npos || line[first] != '#') {
      std::size_t at = 0;
      while ((at = line.find(word, at)) != std::string_view::npos) {
        const bool lb = at == 0 || !is_ident_char(line[at - 1]);
        const bool rb = at + word.size() >= line.size() ||
                        !is_ident_char(line[at + word.size()]);
        if (lb && rb) return true;
        at += word.size();
      }
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return false;
}

constexpr std::string_view kErrorTypes[] = {"Error", "Result", "Expected"};
constexpr std::string_view kViewTypes[] = {"string_view", "span", "LogView",
                                           "ColumnView", "EventView"};
constexpr std::string_view kOwningTypes[] = {"string", "vector"};

TypeCategory categorize_return(std::string_view window) {
  for (const std::string_view w : kErrorTypes) {
    if (window_has_word(window, w)) return TypeCategory::kError;
  }
  for (const std::string_view w : kViewTypes) {
    if (window_has_word(window, w)) return TypeCategory::kView;
  }
  return TypeCategory::kOther;
}

/// Splits `text` at top-level commas (ignoring commas nested in <>()[]{}).
std::vector<std::string_view> split_top_level(std::string_view text) {
  std::vector<std::string_view> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    const char c = i < text.size() ? text[i] : ',';
    if (c == '<' || c == '(' || c == '[' || c == '{') ++depth;
    if (c == '>' || c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth <= 0) {
      const std::string_view piece = text.substr(start, i - start);
      if (!trim(piece).empty()) out.push_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::vector<Param> parse_params(std::string_view inside) {
  std::vector<Param> out;
  for (std::string_view piece : split_top_level(inside)) {
    // Cut a default argument; the declarator is everything before '='.
    int depth = 0;
    for (std::size_t i = 0; i < piece.size(); ++i) {
      const char c = piece[i];
      if (c == '<' || c == '(' || c == '[' || c == '{') ++depth;
      if (c == '>' || c == ')' || c == ']' || c == '}') --depth;
      if (c == '=' && depth == 0) {
        piece = piece.substr(0, i);
        break;
      }
    }
    Param p;
    const Token name = ident_before(piece, piece.size());
    // An unnamed parameter leaves the type's last word here; treating it as a
    // name is harmless (no body can reference it).
    p.name = std::string(name.text);
    const std::string_view type_text = piece.substr(0, name.begin);
    const bool rvalue = type_text.find("&&") != std::string_view::npos;
    const bool by_ref = !rvalue && type_text.find('&') != std::string_view::npos;
    const bool by_ptr = type_text.find('*') != std::string_view::npos;
    bool owning = false;
    for (const std::string_view w : kOwningTypes) {
      if (window_has_word(type_text, w)) owning = true;
    }
    p.owning_by_value = owning && !by_ref && !by_ptr;
    out.push_back(std::move(p));
  }
  return out;
}

void scan_includes(const std::string& contents, FileEntry* entry) {
  std::size_t pos = 0, lineno = 1;
  while (pos <= contents.size()) {
    const std::size_t nl = contents.find('\n', pos);
    const std::string_view line = std::string_view(contents).substr(
        pos, nl == std::string::npos ? contents.size() - pos : nl - pos);
    std::size_t i = line.find_first_not_of(" \t");
    if (i != std::string_view::npos && line[i] == '#') {
      i = line.find_first_not_of(" \t", i + 1);
      if (i != std::string_view::npos && line.substr(i, 7) == "include") {
        const std::size_t open = line.find('"', i + 7);
        if (open != std::string_view::npos) {
          const std::size_t close = line.find('"', open + 1);
          if (close != std::string_view::npos) {
            entry->includes.push_back(IncludeRef{
                std::string(line.substr(open + 1, close - open - 1)), lineno});
          }
        }
      }
    }
    if (nl == std::string::npos) break;
    pos = nl + 1;
    ++lineno;
  }
}

void scan_functions(FileEntry* entry) {
  const std::string_view code = entry->stripped.code;
  for_each_identifier(code, [&](const Token& tok) {
    if (in_list(tok.text, std::begin(kNotAFunction), std::end(kNotAFunction))) return;
    if (is_member_access(code, tok)) return;
    std::size_t at = 0;
    if (next_nonspace(code, tok.end, &at) != '(') return;
    const std::size_t close = match_paren(code, at);
    if (close == std::string_view::npos) return;

    // Declarator start: back over `Class::` qualifiers.
    const std::size_t root = chain_start(code, tok);
    if (root == std::string_view::npos) return;
    std::size_t before_at = 0;
    const char before = root == 0 ? '\0' : prev_nonspace(code, root, &before_at);
    const bool typeish = is_ident_char(before) || before == '>' || before == '&' ||
                         before == '*' || before == ']';
    if (typeish) {
      const Token prev = ident_before(code, root);
      if (in_list(prev.text, std::begin(kExprContext), std::end(kExprContext))) return;
    }

    // Walk the post-parameter tail to the terminator: `{` body, `;` / `= ...;`
    // declaration, `:` ctor-init list, or `->` trailing return.
    std::size_t pos = close + 1;
    bool has_body = false, is_decl = false;
    std::size_t body_begin = 0;
    std::vector<std::pair<std::string, std::string>> inits;
    for (;;) {
      std::size_t cat = 0;
      const char c = next_nonspace(code, pos, &cat);
      if (c == '\0') return;
      if (c == '{') {
        has_body = true;
        body_begin = cat;
        break;
      }
      if (c == ';') {
        is_decl = true;
        break;
      }
      if (c == '=') {
        // `= default;`, `= delete;`, `= 0;` are declarations; anything else
        // (assignment to a call result) is an expression.
        std::size_t vat = 0;
        const char v = next_nonspace(code, cat + 1, &vat);
        if (v == '0') {
          is_decl = true;
          break;
        }
        Token t2;
        if (!next_identifier(code, cat + 1, &t2)) return;
        if (t2.text == "default" || t2.text == "delete") {
          is_decl = true;
          break;
        }
        return;
      }
      if (c == ':' && (cat + 1 >= code.size() || code[cat + 1] != ':')) {
        // Constructor member-init list: `member(args)` / `member{args}`, comma
        // separated, ending at the body brace.
        std::size_t p = cat + 1;
        for (;;) {
          Token m;
          if (!next_identifier(code, p, &m)) return;
          std::size_t a2 = 0;
          char nc = next_nonspace(code, m.end, &a2);
          if (nc == '<') {
            const std::size_t e2 = skip_angles(code, a2);
            if (e2 == std::string_view::npos) return;
            nc = next_nonspace(code, e2, &a2);
          }
          if (nc != '(' && nc != '{') return;
          const std::size_t cl =
              nc == '(' ? match_paren(code, a2) : match_brace(code, a2);
          if (cl == std::string_view::npos) return;
          inits.emplace_back(std::string(m.text),
                             trim(code.substr(a2 + 1, cl - a2 - 1)));
          const char after = next_nonspace(code, cl + 1, &a2);
          if (after == ',') {
            p = a2 + 1;
            continue;
          }
          if (after == '{') {
            has_body = true;
            body_begin = a2;
          }
          break;
        }
        if (!has_body) return;
        break;
      }
      if (c == '-' && cat + 1 < code.size() && code[cat + 1] == '>') {
        int depth = 0;
        for (std::size_t i = cat + 2; i < code.size(); ++i) {
          const char ch = code[i];
          if (ch == '(' || ch == '[' || ch == '<') ++depth;
          if (ch == ')' || ch == ']' || ch == '>') --depth;
          if (depth == 0 && ch == '{') {
            has_body = true;
            body_begin = i;
            break;
          }
          if (depth <= 0 && ch == ';') {
            is_decl = true;
            break;
          }
        }
        if (!has_body && !is_decl) return;
        break;
      }
      if (is_ident_char(c)) {
        Token t2;
        if (!next_identifier(code, cat, &t2)) return;
        if (t2.text == "const" || t2.text == "noexcept" || t2.text == "override" ||
            t2.text == "final" || t2.text == "mutable" || t2.text == "try") {
          pos = t2.end;
          if (t2.text == "noexcept") {
            std::size_t a3 = 0;
            if (next_nonspace(code, t2.end, &a3) == '(') {
              const std::size_t cl = match_paren(code, a3);
              if (cl == std::string_view::npos) return;
              pos = cl + 1;
            }
          }
          continue;
        }
        return;
      }
      return;
    }
    std::size_t body_end = 0;
    if (has_body) {
      body_end = match_brace(code, body_begin);
      if (body_end == std::string_view::npos) return;
    }
    if (!typeish) {
      // No return type before the declarator: a constructor (or a macro with
      // a body). A bare `name(args);` in that position is a call, not a
      // declaration.
      if (!has_body && inits.empty()) return;
      if (!(before == '\0' || before == ';' || before == '{' || before == '}' ||
            before == ':' || before == '~')) {
        return;
      }
    }
    (void)is_decl;

    FuncDef fd;
    fd.name = std::string(tok.text);
    fd.line = line_of(entry->stripped, tok.begin);
    fd.has_body = has_body;
    fd.body_begin = body_begin;
    fd.body_end = body_end;
    fd.ctor_inits = std::move(inits);
    fd.params = parse_params(code.substr(at + 1, close - at - 1));
    std::size_t b = root;
    while (b > 0 && code[b - 1] != ';' && code[b - 1] != '{' && code[b - 1] != '}') --b;
    const std::string_view window = code.substr(b, root - b);
    fd.ret = typeish ? categorize_return(window) : TypeCategory::kOther;
    fd.nodiscard = window_has_word(window, "nodiscard");
    entry->functions.push_back(std::move(fd));
  });

  // Drop bodiless "declarations" that sit inside another function's body:
  // almost always a most-vexing-parse read of a local variable definition
  // (`std::vector<Error> errors(shards);`), not a nested function declaration.
  auto& fns = entry->functions;
  fns.erase(std::remove_if(fns.begin(), fns.end(),
                           [&](const FuncDef& f) {
                             if (f.has_body) return false;
                             const std::size_t off =
                                 entry->stripped.line_start[f.line - 1];
                             for (const FuncDef& g : fns) {
                               if (&g != &f && g.has_body && off > g.body_begin &&
                                   off < g.body_end) {
                                 return true;
                               }
                             }
                             return false;
                           }),
            fns.end());
}

constexpr std::string_view kMutexTypes[] = {
    "mutex",       "shared_mutex",       "recursive_mutex",
    "timed_mutex", "shared_timed_mutex", "recursive_timed_mutex"};

bool inside_any_body(const FileEntry& entry, std::size_t offset) {
  for (const FuncDef& f : entry.functions) {
    if (f.has_body && offset > f.body_begin && offset < f.body_end) return true;
  }
  return false;
}

/// Declarations of the form `<type> [<...>] name [;{=]` at class/namespace
/// scope (function-local declarations are excluded via the body ranges).
void scan_typed_members(FileEntry* entry, const std::string_view* types_begin,
                        const std::string_view* types_end, bool allow_init,
                        std::vector<std::string>* out) {
  const std::string_view code = entry->stripped.code;
  for_each_identifier(code, [&](const Token& tok) {
    if (!in_list(tok.text, types_begin, types_end)) return;
    if (is_member_access(code, tok)) return;
    if (inside_any_body(*entry, tok.begin)) return;
    std::size_t pos = tok.end;
    std::size_t at = 0;
    if (next_nonspace(code, pos, &at) == '<') {
      pos = skip_angles(code, at);
      if (pos == std::string_view::npos) return;
    }
    Token name;
    if (!next_identifier(code, pos, &name)) return;
    const char after = next_nonspace(code, name.end);
    if (after == ';' || after == '{' || (allow_init && after == '=')) {
      out->push_back(std::string(name.text));
    }
  });
}

}  // namespace

FileEntry index_file(std::string display_path, const std::string& contents) {
  FileEntry entry;
  entry.display_path = std::move(display_path);
  entry.contents = &contents;
  entry.stripped = strip(contents);
  std::vector<Finding> scratch;  // bad-suppression findings are phase 1's job
  collect_annotations(entry.stripped, entry.display_path, &entry.annotations, &scratch);
  scan_includes(contents, &entry);
  scan_functions(&entry);
  scan_typed_members(&entry, std::begin(kMutexTypes), std::end(kMutexTypes),
                     /*allow_init=*/true, &entry.mutex_names);
  scan_typed_members(&entry, std::begin(kViewTypes), std::end(kViewTypes),
                     /*allow_init=*/false, &entry.view_members);
  return entry;
}

TreeIndex build_index(std::vector<FileEntry> files) {
  TreeIndex index;
  index.files = std::move(files);
  for (const FileEntry& e : index.files) {
    if (!has_segment(e.display_path, "src")) continue;
    for (const FuncDef& f : e.functions) {
      if (f.ret != TypeCategory::kError) continue;
      auto [it, inserted] = index.error_functions.try_emplace(f.name, f.nodiscard);
      if (!inserted) it->second = it->second || f.nodiscard;
    }
    index.mutex_names.insert(index.mutex_names.end(), e.mutex_names.begin(),
                             e.mutex_names.end());
    index.view_members.insert(index.view_members.end(), e.view_members.begin(),
                              e.view_members.end());
  }
  auto dedupe = [](std::vector<std::string>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  dedupe(&index.mutex_names);
  dedupe(&index.view_members);
  return index;
}

const std::map<std::string, std::vector<std::string>>& layer_closure() {
  static const std::map<std::string, std::vector<std::string>> kClosure = [] {
    // Declared direct edges of the src/ layering DAG. Kept in sync with the
    // table in docs/static-analysis.md.
    const std::map<std::string, std::vector<std::string>> direct = {
        {"obs", {}},
        {"util", {"obs"}},
        {"stats", {"util"}},
        {"model", {"stats"}},
        {"log", {"model", "obs"}},
        {"sim", {"log", "stats", "util"}},
        {"store", {"log", "util"}},
        {"core", {"sim", "store", "stats"}},
        {"replicate", {"core"}},
        {"serve", {"core", "replicate"}},
    };
    std::map<std::string, std::vector<std::string>> out;
    for (const auto& [layer, deps] : direct) {
      std::set<std::string> reach;
      std::function<void(const std::string&)> visit = [&](const std::string& l) {
        const auto it = direct.find(l);
        if (it == direct.end()) return;
        for (const std::string& d : it->second) {
          if (reach.insert(d).second) visit(d);
        }
      };
      (void)deps;
      visit(layer);
      out.emplace(layer, std::vector<std::string>(reach.begin(), reach.end()));
    }
    return out;
  }();
  return kClosure;
}

}  // namespace storsubsim::lint
