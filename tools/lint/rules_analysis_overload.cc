// analysis-overload: the unified-analysis-API guard.
//
// The AnalysisRequest redesign (docs/API.md) retired the pre-Source
// per-backend analysis entry points — compute_afr(const Dataset&),
// afr_by_class(const store::EventStore&), and friends — in favour of the
// single core::Source-taking overload per statistic. The old shape is easy
// to reintroduce by habit ("just add a Dataset overload"), and every
// reintroduction forks the validation/render path the redesign unified. This
// rule rejects any *declaration* in src/ of a known analysis entry point
// whose first parameter names a concrete backend (Dataset / EventStore /
// ShardStore) instead of Source.
//
// Call sites are unaffected: passing a Dataset lvalue to the Source overload
// is the sanctioned implicit conversion, and the backend-specific helpers
// with different names (afr_by_disk_model(const Dataset&), ...) stay legal —
// only the unified entry-point names are reserved.
#include <array>

#include "lint/index.h"
#include "lint/scan.h"

namespace storsubsim::lint {

namespace {

/// The analysis entry points unified on core::Source. Declaring any of
/// these with a concrete-backend first parameter re-forks the API.
constexpr std::array<std::string_view, 7> kUnifiedEntryPoints = {
    "compute_afr",
    "afr_by_class",
    "time_between_failures",
    "failure_correlation",
    "failure_correlation_all_types",
    "disk_lifetime_observations",
    "disk_lifetime_report",
};

constexpr std::array<std::string_view, 3> kBackendTypes = {
    "Dataset",
    "EventStore",
    "ShardStore",
};

bool is_unified_entry_point(std::string_view name) {
  for (const std::string_view candidate : kUnifiedEntryPoints) {
    if (name == candidate) return true;
  }
  return false;
}

/// Whole-word, case-sensitive containment: "EventStore" matches, the
/// store-span overload's "EventView" (or a lowercase variable named
/// "dataset") does not.
bool contains_word(std::string_view text, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    if (left_ok && right_ok) return true;
    pos = after;
  }
  return false;
}

}  // namespace

void check_analysis_overload(const TreeIndex& index, std::vector<Finding>* findings) {
  for (const FileEntry& e : index.files) {
    if (!has_segment(e.display_path, "src")) continue;
    const std::string_view code = e.stripped.code;

    for_each_identifier(code, [&](const Token& tok) {
      if (!is_unified_entry_point(tok.text)) return;
      std::size_t at = 0;
      if (next_nonspace(code, tok.end, &at) != '(') return;
      const std::size_t close = match_paren(code, at);
      if (close == std::string_view::npos) return;
      // Only declarations/definitions re-fork the API; a call site passing a
      // backend lvalue is the sanctioned implicit Source conversion. A
      // declaration's first parameter spells a type name, so restrict the
      // check to the first top-level-comma-delimited segment.
      std::size_t first_end = close;
      int depth = 0;
      for (std::size_t i = at + 1; i < close; ++i) {
        const char c = code[i];
        if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
        if (c == ',' && depth == 0) {
          first_end = i;
          break;
        }
      }
      const std::string_view first_param = code.substr(at + 1, first_end - (at + 1));
      if (contains_word(first_param, "Source")) return;
      for (const std::string_view backend : kBackendTypes) {
        if (!contains_word(first_param, backend)) continue;
        findings->push_back(Finding{
            e.display_path, line_of(e.stripped, tok.begin), Rule::kAnalysisOverload,
            "'" + std::string(tok.text) + "' declared over a concrete backend (" +
                std::string(backend) +
                "); the unified analysis entry points take core::Source — "
                "per-backend overloads were retired in the AnalysisRequest "
                "redesign (docs/API.md)",
            line_excerpt(*e.contents, line_of(e.stripped, tok.begin))});
        return;
      }
    });
  }
}

}  // namespace storsubsim::lint
