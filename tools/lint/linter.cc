// Engine orchestration: source collection, the two-phase lint_tree driver
// (parallel phase 1, indexed phase 2, deterministic merge), baselines, and
// report rendering. The scanning substrate is scan.cc, the cross-TU index is
// index.cc, and the rules live in rules_*.cc.
#include "lint/linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/index.h"
#include "lint/scan.h"
#include "obs/json.h"
#include "util/parallel.h"

namespace storsubsim::lint {

std::string_view rule_name(Rule rule) noexcept {
  switch (rule) {
    case Rule::kNondeterminism: return "nondeterminism";
    case Rule::kUnorderedIter: return "unordered-iter";
    case Rule::kRngDiscipline: return "rng-discipline";
    case Rule::kHeaderHygiene: return "header-hygiene";
    case Rule::kAllocHotpath: return "alloc-hotpath";
    case Rule::kTimerDiscipline: return "timer-discipline";
    case Rule::kViewLifetime: return "view-lifetime";
    case Rule::kErrorDiscipline: return "error-discipline";
    case Rule::kLayering: return "layering";
    case Rule::kLockDiscipline: return "lock-discipline";
    case Rule::kAnalysisOverload: return "analysis-overload";
    case Rule::kBadSuppression: return "bad-suppression";
  }
  return "unknown";
}

std::optional<Rule> rule_from_name(std::string_view name) noexcept {
  for (const Rule r : kAllRules) {
    if (rule_name(r) == name) return r;
  }
  return std::nullopt;
}

std::string normalize_path(std::string_view path, std::string_view root) {
  namespace fs = std::filesystem;
  fs::path p = fs::path(std::string(path)).lexically_normal();
  if (!root.empty()) {
    const fs::path abs_p = p.is_absolute() ? p : fs::absolute(p).lexically_normal();
    const fs::path abs_root =
        fs::absolute(fs::path(std::string(root))).lexically_normal();
    const fs::path rel = abs_p.lexically_relative(abs_root);
    if (!rel.empty() && rel.native()[0] != '.') p = rel;
  }
  std::string out = p.generic_string();
  if (out.starts_with("./")) out.erase(0, 2);
  return out;
}

std::vector<SourceFile> collect_sources(const std::vector<std::string>& paths,
                                        std::string_view root, const LintOptions& options,
                                        std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  static constexpr std::string_view kExtensions[] = {".h",   ".hh",  ".hpp", ".hxx",
                                                     ".cc",  ".cpp", ".cxx"};
  auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return std::find(std::begin(kExtensions), std::end(kExtensions), ext) !=
           std::end(kExtensions);
  };
  auto skipped = [&](const fs::path& dir) {
    const std::string name = dir.filename().string();
    return std::find(options.skip_dirs.begin(), options.skip_dirs.end(), name) !=
           options.skip_dirs.end();
  };

  std::vector<SourceFile> out;
  for (const std::string& arg : paths) {
    std::error_code ec;
    const fs::path p(arg);
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, fs::directory_options::skip_permission_denied,
                                          ec), end;
      if (ec) {
        if (errors != nullptr) errors->push_back(arg + ": " + ec.message());
        continue;
      }
      for (; it != end; it.increment(ec)) {
        if (ec) break;
        if (it->is_directory(ec) && skipped(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file(ec) && lintable(it->path())) {
          out.push_back(SourceFile{normalize_path(it->path().string(), root),
                                   it->path().string()});
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      out.push_back(SourceFile{normalize_path(arg, root), arg});
    } else {
      if (errors != nullptr) errors->push_back(arg + ": not a file or directory");
    }
  }
  // Filesystem iteration order is not specified; reports must be stable.
  std::sort(out.begin(), out.end(), [](const SourceFile& a, const SourceFile& b) {
    return a.display_path < b.display_path;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const SourceFile& a, const SourceFile& b) {
                          return a.display_path == b.display_path;
                        }),
            out.end());
  return out;
}

std::vector<SourceFile> filter_changed(std::vector<SourceFile> sources,
                                       const std::vector<std::string>& changed) {
  std::vector<std::string> wanted = changed;
  std::sort(wanted.begin(), wanted.end());
  std::vector<SourceFile> out;
  for (SourceFile& s : sources) {
    if (std::binary_search(wanted.begin(), wanted.end(), s.display_path)) {
      out.push_back(std::move(s));
    }
  }
  return out;
}

namespace {

/// Phase-1 result for one slot of the parallel scan.
struct Slot {
  bool read_ok = true;
  std::string error;
  std::string contents;
  FileReport report;
  FileEntry entry;
};

/// The shared engine body: `contents` must already be loaded into the slots.
TreeReport run_engine(std::vector<Slot>& slots, const LintOptions& options) {
  // Phase 1 (parallel, deterministic): per-file rules + per-file index entry,
  // written into pre-sized slots and merged in index order.
  util::parallel_for(slots.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Slot& slot = slots[i];
      if (!slot.read_ok) continue;
      slot.report = lint_source(slot.entry.display_path, slot.contents, options);
      slot.entry = index_file(std::move(slot.entry.display_path), slot.contents);
    }
  });

  TreeReport report;
  std::vector<FileEntry> entries;
  entries.reserve(slots.size());
  for (Slot& slot : slots) {
    if (!slot.read_ok) continue;
    ++report.file_count;
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(slot.report.findings.begin()),
                           std::make_move_iterator(slot.report.findings.end()));
    report.suppressions.insert(
        report.suppressions.end(),
        std::make_move_iterator(slot.report.suppressions.begin()),
        std::make_move_iterator(slot.report.suppressions.end()));
    entries.push_back(std::move(slot.entry));
  }

  // Phase 2: semantic rules over the cross-TU index, then inline-allow
  // matching against the annotations phase 1 already honoured per file.
  const TreeIndex index = build_index(std::move(entries));
  std::vector<Finding> tree_findings;
  check_view_lifetime(index, &tree_findings);
  check_error_discipline(index, &tree_findings);
  check_layering(index, &tree_findings);
  check_lock_discipline(index, &tree_findings);
  check_analysis_overload(index, &tree_findings);
  for (Finding& f : tree_findings) {
    bool suppressed = false;
    for (const FileEntry& e : index.files) {
      if (e.display_path != f.path) continue;
      for (const Annotation& a : e.annotations) {
        if (a.target_line == f.line && a.rule == f.rule) suppressed = true;
      }
      break;
    }
    if (!suppressed) report.findings.push_back(std::move(f));
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return rule_name(a.rule) < rule_name(b.rule);
              return a.message < b.message;
            });
  std::sort(report.suppressions.begin(), report.suppressions.end(),
            [](const Suppression& a, const Suppression& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return rule_name(a.rule) < rule_name(b.rule);
            });
  return report;
}

}  // namespace

TreeReport lint_tree(const std::vector<SourceFile>& sources,
                     const LintOptions& options,
                     std::vector<std::string>* errors) {
  std::vector<Slot> slots(sources.size());
  // Reads happen in the parallel phase too, but failures are reported in
  // slot order, so the error list stays deterministic.
  util::parallel_for(slots.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Slot& slot = slots[i];
      slot.entry.display_path = sources[i].display_path;
      std::ifstream in(sources[i].fs_path, std::ios::binary);
      if (!in) {
        slot.read_ok = false;
        slot.error = "cannot read " + sources[i].fs_path;
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      slot.contents = buf.str();
    }
  });
  for (const Slot& slot : slots) {
    if (!slot.read_ok && errors != nullptr) errors->push_back(slot.error);
  }
  return run_engine(slots, options);
}

TreeReport lint_tree_memory(const std::vector<MemoryFile>& files,
                            const LintOptions& options) {
  std::vector<Slot> slots(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    slots[i].entry.display_path = files[i].display_path;
    slots[i].contents = files[i].contents;
  }
  return run_engine(slots, options);
}

std::string render_json_report(const TreeReport& report) {
  std::string out;
  out += "{\"storsim_lint\": 1, \"files\": " + std::to_string(report.file_count);
  out += ", \"finding_count\": " + std::to_string(report.findings.size());
  out += ", \"suppression_count\": " + std::to_string(report.suppressions.size());
  out += ", \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i > 0) out += ", ";
    out += "{\"path\": \"" + obs::json_escape(f.path) + "\"";
    out += ", \"line\": " + std::to_string(f.line);
    out += ", \"rule\": \"" + std::string(rule_name(f.rule)) + "\"";
    out += ", \"message\": \"" + obs::json_escape(f.message) + "\"";
    out += ", \"excerpt\": \"" + obs::json_escape(f.excerpt) + "\"}";
  }
  out += "], \"suppressions\": [";
  for (std::size_t i = 0; i < report.suppressions.size(); ++i) {
    const Suppression& s = report.suppressions[i];
    if (i > 0) out += ", ";
    out += "{\"path\": \"" + obs::json_escape(s.path) + "\"";
    out += ", \"line\": " + std::to_string(s.line);
    out += ", \"rule\": \"" + std::string(rule_name(s.rule)) + "\"";
    out += ", \"reason\": \"" + obs::json_escape(s.reason) + "\"}";
  }
  out += "]}\n";
  return out;
}

std::string baseline_key(const Finding& finding) {
  return std::string(rule_name(finding.rule)) + "\t" + finding.path + "\t" +
         hex64(fnv1a(finding.excerpt));
}

std::string serialize_baseline(std::vector<Finding> findings) {
  std::vector<std::string> lines;
  lines.reserve(findings.size());
  for (const Finding& f : findings) {
    lines.push_back(baseline_key(f) + "\t" + f.excerpt);
  }
  std::sort(lines.begin(), lines.end());
  std::string out =
      "# storsim_lint baseline: accepted findings, one per line.\n"
      "# rule <TAB> path <TAB> excerpt-hash <TAB> excerpt\n"
      "# Regenerate with: storsim_lint --write-baseline <file> <paths...>\n";
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::map<std::string, int> parse_baseline(std::string_view text,
                                          std::vector<std::string>* errors) {
  std::map<std::string, int> out;
  std::size_t pos = 0, lineno = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    ++lineno;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    // Key is the first three tab-separated fields.
    std::size_t t1 = line.find('\t');
    std::size_t t2 = t1 == std::string_view::npos ? t1 : line.find('\t', t1 + 1);
    if (t2 == std::string_view::npos) {
      if (errors != nullptr) {
        errors->push_back("baseline line " + std::to_string(lineno) + ": malformed entry");
      }
      continue;
    }
    std::size_t t3 = line.find('\t', t2 + 1);
    const std::string_view key =
        line.substr(0, t3 == std::string_view::npos ? line.size() : t3);
    ++out[std::string(key)];
  }
  return out;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    std::map<std::string, int> baseline) {
  std::vector<Finding> fresh;
  for (Finding& f : findings) {
    const auto it = baseline.find(baseline_key(f));
    if (it != baseline.end() && it->second > 0) {
      --it->second;
      continue;
    }
    fresh.push_back(std::move(f));
  }
  return fresh;
}

std::string format_finding(const Finding& finding) {
  std::ostringstream os;
  os << finding.path << ":" << finding.line << ": [" << rule_name(finding.rule) << "] "
     << finding.message << "\n";
  if (!finding.excerpt.empty()) os << "    | " << finding.excerpt << "\n";
  return os.str();
}

}  // namespace storsubsim::lint
