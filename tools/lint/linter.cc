#include "lint/linter.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <sstream>

namespace storsubsim::lint {
namespace {

bool is_ident_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[v & 0xfu];
    v >>= 4u;
  }
  return out;
}

/// True when `segment` appears as a whole path component of `path`.
bool has_segment(std::string_view path, std::string_view segment) noexcept {
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t next = path.find('/', pos);
    const std::size_t len = (next == std::string_view::npos ? path.size() : next) - pos;
    if (path.substr(pos, len) == segment) return true;
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return false;
}

bool ends_with_path(std::string_view path, std::string_view suffix) noexcept {
  if (path.size() < suffix.size()) return false;
  if (path.substr(path.size() - suffix.size()) != suffix) return false;
  return path.size() == suffix.size() || path[path.size() - suffix.size() - 1] == '/';
}

// --- comment / string stripping ---------------------------------------------

struct Stripped {
  std::string code;                       // literals and comments blanked
  std::vector<std::string> comment_text;  // per-line concatenated comment text
  std::vector<std::size_t> line_start;    // offset of each line in `code`
};

Stripped strip(std::string_view src) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  Stripped out;
  out.code.reserve(src.size());
  out.line_start.push_back(0);
  out.comment_text.emplace_back();

  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      out.code.push_back('\n');
      out.line_start.push_back(out.code.size());
      out.comment_text.emplace_back();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.code.append("  ");
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.code.append("  ");
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R (uR, u8R, LR also exist).
          if (!out.code.empty() && out.code.back() == 'R') {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '(' && src[j] != '\n') {
              raw_delim.push_back(src[j]);
              ++j;
            }
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          out.code.push_back(' ');
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not character literals.
          const bool digit_sep = !out.code.empty() &&
                                 std::isalnum(static_cast<unsigned char>(out.code.back())) != 0;
          if (!digit_sep) state = State::kChar;
          out.code.push_back(' ');
        } else {
          out.code.push_back(c);
        }
        break;
      case State::kLineComment:
        out.comment_text.back().push_back(c);
        out.code.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out.code.append("  ");
          ++i;
        } else {
          out.comment_text.back().push_back(c);
          out.code.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\') {
          out.code.append("  ");
          ++i;
        } else {
          if (c == '"') state = State::kCode;
          out.code.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out.code.append("  ");
          ++i;
        } else {
          if (c == '\'') state = State::kCode;
          out.code.push_back(' ');
        }
        break;
      case State::kRawString: {
        // Close only on )delim"
        if (c == ')' && src.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < src.size() && src[i + 1 + raw_delim.size()] == '"') {
          for (std::size_t k = 0; k < raw_delim.size() + 2; ++k) out.code.push_back(' ');
          i += raw_delim.size() + 1;
          state = State::kCode;
        } else {
          out.code.push_back(' ');
        }
        break;
      }
    }
  }
  return out;
}

std::size_t line_of(const Stripped& s, std::size_t offset) noexcept {
  const auto it = std::upper_bound(s.line_start.begin(), s.line_start.end(), offset);
  return static_cast<std::size_t>(it - s.line_start.begin());  // 1-based
}

std::string line_excerpt(std::string_view src, std::size_t line) {
  std::size_t cur = 1, pos = 0;
  while (cur < line) {
    const std::size_t nl = src.find('\n', pos);
    if (nl == std::string_view::npos) return "";
    pos = nl + 1;
    ++cur;
  }
  const std::size_t end = src.find('\n', pos);
  return trim(src.substr(pos, end == std::string_view::npos ? std::string_view::npos
                                                            : end - pos));
}

// --- inline suppression annotations -----------------------------------------

struct Annotation {
  std::size_t target_line = 0;  // 1-based line the allow() applies to
  Rule rule = Rule::kNondeterminism;
  std::string reason;
};

bool line_has_code(const Stripped& s, std::size_t line) {
  const std::size_t begin = s.line_start[line - 1];
  const std::size_t end =
      line < s.line_start.size() ? s.line_start[line] : s.code.size();
  for (std::size_t i = begin; i < end; ++i) {
    if (std::isspace(static_cast<unsigned char>(s.code[i])) == 0) return true;
  }
  return false;
}

/// Parses `storsim-lint: allow(<rule>) reason=<text>` annotations out of the
/// comment text. Malformed annotations become kBadSuppression findings.
void collect_annotations(const Stripped& s, std::string_view path,
                         std::vector<Annotation>* annotations,
                         std::vector<Finding>* findings) {
  static constexpr std::string_view kMarker = "storsim-lint:";
  for (std::size_t li = 0; li < s.comment_text.size(); ++li) {
    const std::string& text = s.comment_text[li];
    std::size_t pos = text.find(kMarker);
    if (pos == std::string::npos) continue;
    const std::size_t line = li + 1;
    auto bad = [&](std::string msg) {
      findings->push_back(Finding{std::string(path), line, Rule::kBadSuppression,
                                  std::move(msg), trim(text)});
    };
    std::string_view rest = std::string_view(text).substr(pos + kMarker.size());
    const std::size_t open = rest.find("allow(");
    if (open == std::string_view::npos) {
      bad("storsim-lint annotation without allow(<rule>)");
      continue;
    }
    const std::size_t close = rest.find(')', open);
    if (close == std::string_view::npos) {
      bad("unterminated allow( in storsim-lint annotation");
      continue;
    }
    const std::string rule_text = trim(rest.substr(open + 6, close - open - 6));
    const auto rule = rule_from_name(rule_text);
    if (!rule) {
      bad("unknown lint rule '" + rule_text + "' in allow()");
      continue;
    }
    const std::size_t reason_pos = rest.find("reason=", close);
    const std::string reason =
        reason_pos == std::string_view::npos ? "" : trim(rest.substr(reason_pos + 7));
    if (reason.empty()) {
      bad("allow(" + rule_text + ") is missing a reason=...; suppressions must be justified");
      continue;
    }
    // Trailing annotation applies to its own line; a whole-line comment
    // applies to the next line that has code.
    std::size_t target = line;
    if (!line_has_code(s, line)) {
      target = line + 1;
      while (target <= s.comment_text.size() && !line_has_code(s, target)) ++target;
    }
    annotations->push_back(Annotation{target, *rule, reason});
  }
}

// --- token scanning ---------------------------------------------------------

struct Token {
  std::size_t begin = 0;  // offset in stripped code
  std::size_t end = 0;
  std::string_view text;
};

/// Invokes `fn` for every identifier token in the stripped code.
template <typename Fn>
void for_each_identifier(std::string_view code, Fn&& fn) {
  std::size_t i = 0;
  while (i < code.size()) {
    if (is_ident_char(code[i]) && !(code[i] >= '0' && code[i] <= '9')) {
      const std::size_t begin = i;
      while (i < code.size() && is_ident_char(code[i])) ++i;
      fn(Token{begin, i, code.substr(begin, i - begin)});
    } else {
      ++i;
    }
  }
}

char prev_nonspace(std::string_view code, std::size_t pos, std::size_t* at = nullptr) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) {
      if (at != nullptr) *at = pos;
      return code[pos];
    }
  }
  return '\0';
}

char next_nonspace(std::string_view code, std::size_t pos, std::size_t* at = nullptr) {
  while (pos < code.size()) {
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) {
      if (at != nullptr) *at = pos;
      return code[pos];
    }
    ++pos;
  }
  return '\0';
}

/// True when the identifier token at `tok` is reached via `.` or `->`
/// (a member access, e.g. `event.time`), as opposed to a free/qualified name.
bool is_member_access(std::string_view code, const Token& tok) {
  std::size_t at = 0;
  const char p = prev_nonspace(code, tok.begin, &at);
  if (p == '.') return true;
  if (p == '>' && at > 0 && code[at - 1] == '-') return true;
  return false;
}

/// Skips a balanced <...> starting at `pos` (which must point at '<').
/// Returns one past the closing '>', or npos if unbalanced.
std::size_t skip_angles(std::string_view code, std::size_t pos) {
  int depth = 0;
  while (pos < code.size()) {
    const char c = code[pos];
    if (c == '<') ++depth;
    if (c == '>') {
      --depth;
      if (depth == 0) return pos + 1;
    }
    if (c == ';' || c == '{') return std::string_view::npos;  // gave up: not a template arg list
    ++pos;
  }
  return std::string_view::npos;
}

struct NondetToken {
  std::string_view name;
  bool call_required;  // must be followed by '(' to count
  std::string_view message;
};

constexpr std::string_view kClockMsg =
    "wall-clock time source breaks replayable simulation; use simulated time "
    "(model/time.h) or pass timestamps in";
constexpr std::string_view kRandMsg =
    "hidden-global-state RNG; derive a storsubsim::stats::Rng keyed substream instead";

constexpr NondetToken kNondetTokens[] = {
    {"random_device", false,
     "std::random_device is nondeterministic; seed storsubsim::stats::Rng from the run's "
     "root seed"},
    {"system_clock", false, kClockMsg},
    {"steady_clock", false, kClockMsg},
    {"high_resolution_clock", false, kClockMsg},
    {"time", true, kClockMsg},
    {"clock", true, kClockMsg},
    {"gettimeofday", true, kClockMsg},
    {"clock_gettime", true, kClockMsg},
    {"localtime", true, kClockMsg},
    {"gmtime", true, kClockMsg},
    {"rand", true, kRandMsg},
    {"srand", true, kRandMsg},
    {"rand_r", true, kRandMsg},
    {"random", true, kRandMsg},
    {"srandom", true, kRandMsg},
    {"drand48", true, kRandMsg},
    {"lrand48", true, kRandMsg},
};

constexpr std::string_view kRngEngines[] = {
    "mt19937",      "mt19937_64",   "minstd_rand",   "minstd_rand0",
    "ranlux24",     "ranlux48",     "ranlux24_base", "ranlux48_base",
    "knuth_b",      "default_random_engine",         "seed_seq",
};

// The <random> distribution types by name (a bare `_distribution` suffix
// would also catch project functions like stats::bootstrap_distribution).
constexpr std::string_view kStdDistributions[] = {
    "uniform_int_distribution",   "uniform_real_distribution",
    "bernoulli_distribution",     "binomial_distribution",
    "negative_binomial_distribution", "geometric_distribution",
    "poisson_distribution",       "exponential_distribution",
    "gamma_distribution",         "weibull_distribution",
    "extreme_value_distribution", "normal_distribution",
    "lognormal_distribution",     "chi_squared_distribution",
    "cauchy_distribution",        "fisher_f_distribution",
    "student_t_distribution",     "discrete_distribution",
    "piecewise_constant_distribution", "piecewise_linear_distribution",
};

bool is_header(std::string_view path) noexcept {
  return path.ends_with(".h") || path.ends_with(".hh") || path.ends_with(".hpp") ||
         path.ends_with(".hxx");
}

class FileLinter {
 public:
  FileLinter(std::string_view path, std::string_view contents, const LintOptions& options)
      : path_(path), src_(contents), options_(options), stripped_(strip(contents)) {}

  FileReport run() {
    collect_annotations(stripped_, path_, &annotations_, &raw_findings_);
    const bool in_src = has_segment(path_, "src");
    const bool in_stats = in_src && has_segment(path_, "stats");
    if (in_src) {
      check_nondeterminism();
      track_unordered_declarations();
      check_unordered_iteration();
    }
    if (!in_stats) check_rng_discipline();
    if (is_header(path_)) check_header_hygiene();
    const bool in_log_hotpath = (in_src && has_segment(path_, "log")) ||
                                (in_src && has_segment(path_, "store")) ||
                                ends_with_path(path_, "src/core/pipeline.cc") ||
                                ends_with_path(path_, "src/core/sharded_build.cc");
    if (in_log_hotpath) check_alloc_hotpath();
    // The instrumented subsystems time regions exclusively through obs::Span
    // (one shared epoch, exported to metrics/traces); src/obs/ itself owns
    // the single steady_clock call site and is exempt.
    const bool timer_scoped = in_src && !has_segment(path_, "obs") &&
                              (has_segment(path_, "sim") || has_segment(path_, "log") ||
                               has_segment(path_, "store") ||
                               ends_with_path(path_, "src/core/sharded_build.cc"));
    if (timer_scoped) check_timer_discipline();
    return finish();
  }

 private:
  void add(std::size_t offset, Rule rule, std::string message) {
    const std::size_t line = line_of(stripped_, offset);
    raw_findings_.push_back(
        Finding{std::string(path_), line, rule, std::move(message), line_excerpt(src_, line)});
  }

  void check_nondeterminism() {
    const bool getenv_ok = std::any_of(
        options_.getenv_allowlist.begin(), options_.getenv_allowlist.end(),
        [&](const std::string& suffix) { return ends_with_path(path_, suffix); });
    for_each_identifier(stripped_.code, [&](const Token& tok) {
      if (is_member_access(stripped_.code, tok)) return;
      if (tok.text == "getenv") {
        if (next_nonspace(stripped_.code, tok.end) != '(') return;
        if (!getenv_ok) {
          add(tok.begin, Rule::kNondeterminism,
              "getenv reads ambient process state; only the allowlisted config entry "
              "points (src/util/parallel.cc) may consult the environment");
        }
        return;
      }
      for (const NondetToken& nd : kNondetTokens) {
        if (tok.text != nd.name) continue;
        if (nd.call_required && next_nonspace(stripped_.code, tok.end) != '(') break;
        add(tok.begin, Rule::kNondeterminism, std::string(tok.text) + ": " + std::string(nd.message));
        break;
      }
    });
  }

  /// True when the identifier token is reached through a `std::` qualifier
  /// (project-local overloads of the same name are fine).
  bool is_std_qualified(const Token& tok) const {
    const std::string_view code = stripped_.code;
    std::size_t at = 0;
    if (prev_nonspace(code, tok.begin, &at) != ':' || at == 0 || code[at - 1] != ':') {
      return false;
    }
    std::size_t b = at - 1;
    while (b > 0 && std::isspace(static_cast<unsigned char>(code[b - 1])) != 0) --b;
    std::size_t s = b;
    while (s > 0 && is_ident_char(code[s - 1])) --s;
    return code.substr(s, b - s) == "std";
  }

  // The emit/parse hot path (src/log/, src/store/, src/core/pipeline.cc)
  // promises steady-state zero allocation (docs/performance.md): every line
  // is built
  // in a reusable log::LineWriter and parsed as views into a retained
  // buffer. This check refuses the per-line allocation patterns the
  // refactor removed, so they cannot creep back in.
  void check_alloc_hotpath() {
    const std::string_view code = stripped_.code;
    for_each_identifier(code, [&](const Token& tok) {
      if (is_member_access(code, tok)) return;
      if (tok.text == "ostringstream" || tok.text == "stringstream" ||
          tok.text == "istringstream") {
        add(tok.begin, Rule::kAllocHotpath,
            std::string(tok.text) +
                " allocates per use on the log hot path; append into a reusable "
                "log::LineWriter (emit) or parse views from a retained buffer (parse)");
        return;
      }
      if (tok.text == "to_string" && is_std_qualified(tok) &&
          next_nonspace(code, tok.end) == '(') {
        add(tok.begin, Rule::kAllocHotpath,
            "std::to_string materializes a temporary string per number on the log hot "
            "path; use log::LineWriter::u64/fixed3 (std::to_chars) instead");
      }
    });
    // String-literal operator+: a real '+' in stripped code (literal/comment
    // bytes are blanked 1:1, offsets preserved) whose nearest raw-source
    // neighbor on either side is a double quote.
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i] != '+') continue;
      if (i + 1 < code.size() && (code[i + 1] == '+' || code[i + 1] == '=')) {
        ++i;  // skip ++ / +=
        continue;
      }
      if (i > 0 && code[i - 1] == '+') continue;
      const char before = prev_nonspace(src_, i);
      const char after = next_nonspace(src_, i + 1);
      if (before == '"' || after == '"') {
        add(i, Rule::kAllocHotpath,
            "string-literal operator+ builds a temporary per concatenation on the log "
            "hot path; append the pieces into a reusable log::LineWriter");
      }
    }
  }

  void check_timer_discipline() {
    const std::string_view code = stripped_.code;
    for_each_identifier(code, [&](const Token& tok) {
      if (is_member_access(code, tok)) return;
      if (tok.text == "StageTimer" || tok.text == "monotonic_seconds") {
        add(tok.begin, Rule::kTimerDiscipline,
            std::string(tok.text) +
                " is superseded in instrumented subsystems; time the region with an "
                "obs::Span (src/obs/span.h) so it shares the trace epoch and shows up "
                "in --trace/--metrics output");
        return;
      }
      if (tok.text == "chrono") {
        add(tok.begin, Rule::kTimerDiscipline,
            "direct std::chrono timing bypasses the observability layer; wrap the "
            "region in an obs::Span (src/obs/span.h) or read obs::now_seconds()");
      }
    });
  }

  void check_rng_discipline() {
    for_each_identifier(stripped_.code, [&](const Token& tok) {
      if (is_member_access(stripped_.code, tok)) return;
      const bool engine =
          std::find(std::begin(kRngEngines), std::end(kRngEngines), tok.text) !=
          std::end(kRngEngines);
      const bool distribution =
          std::find(std::begin(kStdDistributions), std::end(kStdDistributions),
                    tok.text) != std::end(kStdDistributions);
      if (!engine && !distribution) return;
      add(tok.begin, Rule::kRngDiscipline,
          std::string(tok.text) +
              " bypasses the keyed-substream discipline; all randomness must flow "
              "through storsubsim::stats::Rng (stats/rng.h)");
    });
  }

  // Records identifiers declared in this file with an unordered container
  // type (including through local `using X = std::unordered_map<...>`
  // aliases), so iteration over them can be flagged.
  void track_unordered_declarations() {
    unordered_types_ = {"unordered_map", "unordered_set", "unordered_multimap",
                        "unordered_multiset"};
    const std::string_view code = stripped_.code;
    // Pass 1: aliases. `using X = ...unordered_...;`
    for_each_identifier(code, [&](const Token& tok) {
      if (tok.text != "using") return;
      Token name;
      if (!next_identifier(tok.end, &name)) return;
      std::size_t at = 0;
      if (next_nonspace(code, name.end, &at) != '=') return;
      const std::size_t semi = code.find(';', at);
      if (semi == std::string_view::npos) return;
      const std::string_view rhs = code.substr(at, semi - at);
      for (const std::string& t : unordered_types_) {
        if (rhs.find(t) != std::string_view::npos) {
          unordered_types_.push_back(std::string(name.text));
          break;
        }
      }
    });
    // Pass 2: declarations. `<unordered type> [<...>] [&*] name [;,={(:)]`
    for_each_identifier(code, [&](const Token& tok) {
      if (std::find(unordered_types_.begin(), unordered_types_.end(), tok.text) ==
          unordered_types_.end()) {
        return;
      }
      std::size_t pos = tok.end;
      std::size_t at = 0;
      if (next_nonspace(code, pos, &at) == '<') {
        pos = skip_angles(code, at);
        if (pos == std::string_view::npos) return;
      }
      // Skip references, pointers, and cv qualifiers between type and name.
      Token name;
      for (;;) {
        const char c = next_nonspace(code, pos, &at);
        if (c == '&' || c == '*') {
          pos = at + 1;
          continue;
        }
        if (!is_ident_char(c)) return;
        if (!next_identifier(pos, &name)) return;
        if (name.text == "const" || name.text == "constexpr" || name.text == "static") {
          pos = name.end;
          continue;
        }
        break;
      }
      const char after = next_nonspace(code, name.end);
      if (after == ';' || after == ',' || after == '=' || after == '{' || after == '(' ||
          after == ')' || after == ':' || after == '[') {
        declared_unordered_.push_back(std::string(name.text));
      }
    });
  }

  bool next_identifier(std::size_t pos, Token* out) const {
    const std::string_view code = stripped_.code;
    std::size_t at = 0;
    if (!is_ident_char(next_nonspace(code, pos, &at))) return false;
    std::size_t end = at;
    while (end < code.size() && is_ident_char(code[end])) ++end;
    *out = Token{at, end, code.substr(at, end - at)};
    return true;
  }

  bool tracked(std::string_view name) const {
    return std::find(declared_unordered_.begin(), declared_unordered_.end(), name) !=
           declared_unordered_.end();
  }

  void check_unordered_iteration() {
    const std::string_view code = stripped_.code;
    // Range-for over a tracked variable (or member chain ending in one).
    for_each_identifier(code, [&](const Token& tok) {
      if (tok.text != "for") return;
      std::size_t at = 0;
      if (next_nonspace(code, tok.end, &at) != '(') return;
      // Balanced paren scan; find the top-level ':' (not '::').
      int depth = 0;
      std::size_t colon = std::string_view::npos, close = std::string_view::npos;
      for (std::size_t i = at; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') {
          --depth;
          if (depth == 0) {
            close = i;
            break;
          }
        }
        if (c == ':' && depth == 1 && colon == std::string_view::npos) {
          const bool dbl = (i + 1 < code.size() && code[i + 1] == ':') ||
                           (i > 0 && code[i - 1] == ':');
          if (!dbl) colon = i;
        }
      }
      if (colon == std::string_view::npos || close == std::string_view::npos) return;
      const std::string_view range = code.substr(colon + 1, close - colon - 1);
      std::string last_ident;
      if (!parse_var_chain(range, &last_ident)) return;
      if (!tracked(last_ident)) return;
      add(tok.begin, Rule::kUnorderedIter,
          "range-for over '" + last_ident +
              "' (std::unordered_*) leaks hash-table iteration order; iterate a sorted "
              "view / std::map, or annotate allow(unordered-iter) with a reason if the "
              "loop body is order-insensitive");
    });
    // Explicit iterator loops / algorithms: tracked.begin(), tracked->begin().
    for_each_identifier(code, [&](const Token& tok) {
      if (tok.text != "begin" && tok.text != "cbegin") return;
      if (next_nonspace(code, tok.end) != '(') return;
      std::size_t at = 0;
      const char p = prev_nonspace(code, tok.begin, &at);
      std::size_t base_end;
      if (p == '.') {
        base_end = at;
      } else if (p == '>' && at > 0 && code[at - 1] == '-') {
        base_end = at - 1;
      } else {
        return;
      }
      // Identifier immediately before the access operator.
      std::size_t b = base_end;
      while (b > 0 && std::isspace(static_cast<unsigned char>(code[b - 1])) != 0) --b;
      std::size_t s = b;
      while (s > 0 && is_ident_char(code[s - 1])) --s;
      if (s == b) return;
      const std::string_view base = code.substr(s, b - s);
      if (!tracked(base)) return;
      add(tok.begin, Rule::kUnorderedIter,
          "iterator traversal of '" + std::string(base) +
              "' (std::unordered_*) leaks hash-table iteration order; iterate a sorted "
              "view / std::map, or annotate allow(unordered-iter) with a reason if the "
              "traversal is order-insensitive");
    });
  }

  /// Accepts `name`, `*name`, `a.b->c` chains; rejects anything with calls or
  /// operators (we cannot see through function results). Returns the final
  /// identifier of the chain.
  static bool parse_var_chain(std::string_view expr, std::string* last_ident) {
    std::size_t i = 0;
    auto skip_ws = [&] {
      while (i < expr.size() && std::isspace(static_cast<unsigned char>(expr[i])) != 0) ++i;
    };
    skip_ws();
    while (i < expr.size() && (expr[i] == '*' || expr[i] == '&' || expr[i] == '(')) ++i;
    skip_ws();
    std::string last;
    for (;;) {
      skip_ws();
      if (i >= expr.size() || !is_ident_char(expr[i])) return false;
      const std::size_t s = i;
      while (i < expr.size() && is_ident_char(expr[i])) ++i;
      last.assign(expr.substr(s, i - s));
      skip_ws();
      while (i < expr.size() && expr[i] == ')') {
        ++i;
        skip_ws();
      }
      if (i >= expr.size()) break;
      if (expr[i] == '.') {
        ++i;
        continue;
      }
      if (expr[i] == '-' && i + 1 < expr.size() && expr[i + 1] == '>') {
        i += 2;
        continue;
      }
      return false;  // call, subscript, arithmetic, ... — give up silently
    }
    *last_ident = std::move(last);
    return true;
  }

  void check_header_hygiene() {
    const std::string_view code = stripped_.code;
    if (code.find("#pragma once") == std::string_view::npos) {
      const bool guarded = code.find("#ifndef") != std::string_view::npos &&
                           code.find("#define") != std::string_view::npos;
      if (!guarded) {
        raw_findings_.push_back(Finding{std::string(path_), 1, Rule::kHeaderHygiene,
                                        "header lacks #pragma once (or an include guard); "
                                        "double inclusion is an ODR time bomb",
                                        line_excerpt(src_, 1)});
      }
    }
    for_each_identifier(code, [&](const Token& tok) {
      if (tok.text != "using") return;
      Token next;
      if (!next_identifier(tok.end, &next) || next.text != "namespace") return;
      add(tok.begin, Rule::kHeaderHygiene,
          "using-namespace in a header leaks the namespace into every includer; "
          "qualify names instead");
    });
  }

  FileReport finish() {
    FileReport report;
    for (const Annotation& a : annotations_) {
      report.suppressions.push_back(
          Suppression{std::string(path_), a.target_line, a.rule, a.reason});
    }
    for (Finding& f : raw_findings_) {
      const bool suppressed =
          f.rule != Rule::kBadSuppression &&
          std::any_of(annotations_.begin(), annotations_.end(), [&](const Annotation& a) {
            return a.target_line == f.line && a.rule == f.rule;
          });
      if (!suppressed) report.findings.push_back(std::move(f));
    }
    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return rule_name(a.rule) < rule_name(b.rule);
              });
    return report;
  }

  std::string_view path_;
  std::string_view src_;
  const LintOptions& options_;
  Stripped stripped_;
  std::vector<Annotation> annotations_;
  std::vector<Finding> raw_findings_;
  std::vector<std::string> unordered_types_;
  std::vector<std::string> declared_unordered_;
};

}  // namespace

std::string_view rule_name(Rule rule) noexcept {
  switch (rule) {
    case Rule::kNondeterminism: return "nondeterminism";
    case Rule::kUnorderedIter: return "unordered-iter";
    case Rule::kRngDiscipline: return "rng-discipline";
    case Rule::kHeaderHygiene: return "header-hygiene";
    case Rule::kAllocHotpath: return "alloc-hotpath";
    case Rule::kTimerDiscipline: return "timer-discipline";
    case Rule::kBadSuppression: return "bad-suppression";
  }
  return "unknown";
}

std::optional<Rule> rule_from_name(std::string_view name) noexcept {
  for (const Rule r : kAllRules) {
    if (rule_name(r) == name) return r;
  }
  return std::nullopt;
}

FileReport lint_source(std::string_view path, std::string_view contents,
                       const LintOptions& options) {
  return FileLinter(path, contents, options).run();
}

std::string normalize_path(std::string_view path, std::string_view root) {
  namespace fs = std::filesystem;
  fs::path p = fs::path(std::string(path)).lexically_normal();
  if (!root.empty()) {
    const fs::path abs_p = p.is_absolute() ? p : fs::absolute(p).lexically_normal();
    const fs::path abs_root =
        fs::absolute(fs::path(std::string(root))).lexically_normal();
    const fs::path rel = abs_p.lexically_relative(abs_root);
    if (!rel.empty() && rel.native()[0] != '.') p = rel;
  }
  std::string out = p.generic_string();
  if (out.starts_with("./")) out.erase(0, 2);
  return out;
}

std::vector<SourceFile> collect_sources(const std::vector<std::string>& paths,
                                        std::string_view root, const LintOptions& options,
                                        std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  static constexpr std::string_view kExtensions[] = {".h",   ".hh",  ".hpp", ".hxx",
                                                     ".cc",  ".cpp", ".cxx"};
  auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return std::find(std::begin(kExtensions), std::end(kExtensions), ext) !=
           std::end(kExtensions);
  };
  auto skipped = [&](const fs::path& dir) {
    const std::string name = dir.filename().string();
    return std::find(options.skip_dirs.begin(), options.skip_dirs.end(), name) !=
           options.skip_dirs.end();
  };

  std::vector<SourceFile> out;
  for (const std::string& arg : paths) {
    std::error_code ec;
    const fs::path p(arg);
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, fs::directory_options::skip_permission_denied,
                                          ec), end;
      if (ec) {
        if (errors != nullptr) errors->push_back(arg + ": " + ec.message());
        continue;
      }
      for (; it != end; it.increment(ec)) {
        if (ec) break;
        if (it->is_directory(ec) && skipped(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file(ec) && lintable(it->path())) {
          out.push_back(SourceFile{normalize_path(it->path().string(), root),
                                   it->path().string()});
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      out.push_back(SourceFile{normalize_path(arg, root), arg});
    } else {
      if (errors != nullptr) errors->push_back(arg + ": not a file or directory");
    }
  }
  // Filesystem iteration order is not specified; reports must be stable.
  std::sort(out.begin(), out.end(), [](const SourceFile& a, const SourceFile& b) {
    return a.display_path < b.display_path;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const SourceFile& a, const SourceFile& b) {
                          return a.display_path == b.display_path;
                        }),
            out.end());
  return out;
}

std::string baseline_key(const Finding& finding) {
  return std::string(rule_name(finding.rule)) + "\t" + finding.path + "\t" +
         hex64(fnv1a(finding.excerpt));
}

std::string serialize_baseline(std::vector<Finding> findings) {
  std::vector<std::string> lines;
  lines.reserve(findings.size());
  for (const Finding& f : findings) {
    lines.push_back(baseline_key(f) + "\t" + f.excerpt);
  }
  std::sort(lines.begin(), lines.end());
  std::string out =
      "# storsim_lint baseline: accepted findings, one per line.\n"
      "# rule <TAB> path <TAB> excerpt-hash <TAB> excerpt\n"
      "# Regenerate with: storsim_lint --write-baseline <file> <paths...>\n";
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::map<std::string, int> parse_baseline(std::string_view text,
                                          std::vector<std::string>* errors) {
  std::map<std::string, int> out;
  std::size_t pos = 0, lineno = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    ++lineno;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    // Key is the first three tab-separated fields.
    std::size_t t1 = line.find('\t');
    std::size_t t2 = t1 == std::string_view::npos ? t1 : line.find('\t', t1 + 1);
    if (t2 == std::string_view::npos) {
      if (errors != nullptr) {
        errors->push_back("baseline line " + std::to_string(lineno) + ": malformed entry");
      }
      continue;
    }
    std::size_t t3 = line.find('\t', t2 + 1);
    const std::string_view key =
        line.substr(0, t3 == std::string_view::npos ? line.size() : t3);
    ++out[std::string(key)];
  }
  return out;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    std::map<std::string, int> baseline) {
  std::vector<Finding> fresh;
  for (Finding& f : findings) {
    const auto it = baseline.find(baseline_key(f));
    if (it != baseline.end() && it->second > 0) {
      --it->second;
      continue;
    }
    fresh.push_back(std::move(f));
  }
  return fresh;
}

std::string format_finding(const Finding& finding) {
  std::ostringstream os;
  os << finding.path << ":" << finding.line << ": [" << rule_name(finding.rule) << "] "
     << finding.message << "\n";
  if (!finding.excerpt.empty()) os << "    | " << finding.excerpt << "\n";
  return os.str();
}

}  // namespace storsubsim::lint
