// Phase-1 rules: per-file token scans that need no cross-TU knowledge
// (nondeterminism, unordered-iter, rng-discipline, header-hygiene,
// alloc-hotpath, timer-discipline). The phase-2 families live in the
// rules_*.cc files next to this one and run over the index instead.
#include <algorithm>
#include <cctype>

#include "lint/linter.h"
#include "lint/scan.h"

namespace storsubsim::lint {
namespace {

struct NondetToken {
  std::string_view name;
  bool call_required;  // must be followed by '(' to count
  std::string_view message;
};

constexpr std::string_view kClockMsg =
    "wall-clock time source breaks replayable simulation; use simulated time "
    "(model/time.h) or pass timestamps in";
constexpr std::string_view kRandMsg =
    "hidden-global-state RNG; derive a storsubsim::stats::Rng keyed substream instead";

constexpr NondetToken kNondetTokens[] = {
    {"random_device", false,
     "std::random_device is nondeterministic; seed storsubsim::stats::Rng from the run's "
     "root seed"},
    {"system_clock", false, kClockMsg},
    {"steady_clock", false, kClockMsg},
    {"high_resolution_clock", false, kClockMsg},
    {"time", true, kClockMsg},
    {"clock", true, kClockMsg},
    {"gettimeofday", true, kClockMsg},
    {"clock_gettime", true, kClockMsg},
    {"localtime", true, kClockMsg},
    {"gmtime", true, kClockMsg},
    {"rand", true, kRandMsg},
    {"srand", true, kRandMsg},
    {"rand_r", true, kRandMsg},
    {"random", true, kRandMsg},
    {"srandom", true, kRandMsg},
    {"drand48", true, kRandMsg},
    {"lrand48", true, kRandMsg},
};

constexpr std::string_view kRngEngines[] = {
    "mt19937",      "mt19937_64",   "minstd_rand",   "minstd_rand0",
    "ranlux24",     "ranlux48",     "ranlux24_base", "ranlux48_base",
    "knuth_b",      "default_random_engine",         "seed_seq",
};

// The <random> distribution types by name (a bare `_distribution` suffix
// would also catch project functions like stats::bootstrap_distribution).
constexpr std::string_view kStdDistributions[] = {
    "uniform_int_distribution",   "uniform_real_distribution",
    "bernoulli_distribution",     "binomial_distribution",
    "negative_binomial_distribution", "geometric_distribution",
    "poisson_distribution",       "exponential_distribution",
    "gamma_distribution",         "weibull_distribution",
    "extreme_value_distribution", "normal_distribution",
    "lognormal_distribution",     "chi_squared_distribution",
    "cauchy_distribution",        "fisher_f_distribution",
    "student_t_distribution",     "discrete_distribution",
    "piecewise_constant_distribution", "piecewise_linear_distribution",
};

class FileLinter {
 public:
  FileLinter(std::string_view path, std::string_view contents, const LintOptions& options)
      : path_(path), src_(contents), options_(options), stripped_(strip(contents)) {}

  FileReport run() {
    collect_annotations(stripped_, path_, &annotations_, &raw_findings_);
    const bool in_src = has_segment(path_, "src");
    const bool in_stats = in_src && has_segment(path_, "stats");
    if (in_src) {
      check_nondeterminism();
      track_unordered_declarations();
      check_unordered_iteration();
    }
    if (!in_stats) check_rng_discipline();
    if (is_header(path_)) check_header_hygiene();
    const bool in_log_hotpath = (in_src && has_segment(path_, "log")) ||
                                (in_src && has_segment(path_, "store")) ||
                                (in_src && has_segment(path_, "serve")) ||
                                ends_with_path(path_, "src/core/pipeline.cc") ||
                                ends_with_path(path_, "src/core/sharded_build.cc");
    if (in_log_hotpath) check_alloc_hotpath();
    // The instrumented subsystems time regions exclusively through obs::Span
    // (one shared epoch, exported to metrics/traces); src/obs/ itself owns
    // the single steady_clock call site and is exempt.
    const bool timer_scoped = in_src && !has_segment(path_, "obs") &&
                              (has_segment(path_, "sim") || has_segment(path_, "log") ||
                               has_segment(path_, "store") || has_segment(path_, "serve") ||
                               ends_with_path(path_, "src/core/sharded_build.cc"));
    if (timer_scoped) check_timer_discipline();
    return finish();
  }

 private:
  void add(std::size_t offset, Rule rule, std::string message) {
    const std::size_t line = line_of(stripped_, offset);
    raw_findings_.push_back(
        Finding{std::string(path_), line, rule, std::move(message), line_excerpt(src_, line)});
  }

  void check_nondeterminism() {
    const bool getenv_ok = std::any_of(
        options_.getenv_allowlist.begin(), options_.getenv_allowlist.end(),
        [&](const std::string& suffix) { return ends_with_path(path_, suffix); });
    for_each_identifier(stripped_.code, [&](const Token& tok) {
      if (is_member_access(stripped_.code, tok)) return;
      if (tok.text == "getenv") {
        if (next_nonspace(stripped_.code, tok.end) != '(') return;
        if (!getenv_ok) {
          add(tok.begin, Rule::kNondeterminism,
              "getenv reads ambient process state; only the allowlisted config entry "
              "points (src/util/parallel.cc) may consult the environment");
        }
        return;
      }
      for (const NondetToken& nd : kNondetTokens) {
        if (tok.text != nd.name) continue;
        if (nd.call_required && next_nonspace(stripped_.code, tok.end) != '(') break;
        add(tok.begin, Rule::kNondeterminism, std::string(tok.text) + ": " + std::string(nd.message));
        break;
      }
    });
  }

  /// True when the identifier token is reached through a `std::` qualifier
  /// (project-local overloads of the same name are fine).
  bool is_std_qualified(const Token& tok) const {
    const std::string_view code = stripped_.code;
    std::size_t at = 0;
    if (prev_nonspace(code, tok.begin, &at) != ':' || at == 0 || code[at - 1] != ':') {
      return false;
    }
    std::size_t b = at - 1;
    while (b > 0 && std::isspace(static_cast<unsigned char>(code[b - 1])) != 0) --b;
    std::size_t s = b;
    while (s > 0 && is_ident_char(code[s - 1])) --s;
    return code.substr(s, b - s) == "std";
  }

  // The emit/parse hot path (src/log/, src/store/, src/core/pipeline.cc)
  // promises steady-state zero allocation (docs/performance.md): every line
  // is built in a reusable log::LineWriter and parsed as views into a
  // retained buffer. This check refuses the per-line allocation patterns the
  // refactor removed, so they cannot creep back in.
  void check_alloc_hotpath() {
    const std::string_view code = stripped_.code;
    for_each_identifier(code, [&](const Token& tok) {
      if (is_member_access(code, tok)) return;
      if (tok.text == "ostringstream" || tok.text == "stringstream" ||
          tok.text == "istringstream") {
        add(tok.begin, Rule::kAllocHotpath,
            std::string(tok.text) +
                " allocates per use on the log hot path; append into a reusable "
                "log::LineWriter (emit) or parse views from a retained buffer (parse)");
        return;
      }
      if (tok.text == "to_string" && is_std_qualified(tok) &&
          next_nonspace(code, tok.end) == '(') {
        add(tok.begin, Rule::kAllocHotpath,
            "std::to_string materializes a temporary string per number on the log hot "
            "path; use log::LineWriter::u64/fixed3 (std::to_chars) instead");
      }
    });
    // String-literal operator+: a real '+' in stripped code (literal/comment
    // bytes are blanked 1:1, offsets preserved) whose nearest raw-source
    // neighbor on either side is a double quote.
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i] != '+') continue;
      if (i + 1 < code.size() && (code[i + 1] == '+' || code[i + 1] == '=')) {
        ++i;  // skip ++ / +=
        continue;
      }
      if (i > 0 && code[i - 1] == '+') continue;
      const char before = prev_nonspace(src_, i);
      const char after = next_nonspace(src_, i + 1);
      if (before == '"' || after == '"') {
        add(i, Rule::kAllocHotpath,
            "string-literal operator+ builds a temporary per concatenation on the log "
            "hot path; append the pieces into a reusable log::LineWriter");
      }
    }
  }

  void check_timer_discipline() {
    const std::string_view code = stripped_.code;
    for_each_identifier(code, [&](const Token& tok) {
      if (is_member_access(code, tok)) return;
      if (tok.text == "StageTimer" || tok.text == "monotonic_seconds") {
        add(tok.begin, Rule::kTimerDiscipline,
            std::string(tok.text) +
                " is superseded in instrumented subsystems; time the region with an "
                "obs::Span (src/obs/span.h) so it shares the trace epoch and shows up "
                "in --trace/--metrics output");
        return;
      }
      if (tok.text == "chrono") {
        add(tok.begin, Rule::kTimerDiscipline,
            "direct std::chrono timing bypasses the observability layer; wrap the "
            "region in an obs::Span (src/obs/span.h) or read obs::now_seconds()");
      }
    });
  }

  void check_rng_discipline() {
    for_each_identifier(stripped_.code, [&](const Token& tok) {
      if (is_member_access(stripped_.code, tok)) return;
      const bool engine =
          std::find(std::begin(kRngEngines), std::end(kRngEngines), tok.text) !=
          std::end(kRngEngines);
      const bool distribution =
          std::find(std::begin(kStdDistributions), std::end(kStdDistributions),
                    tok.text) != std::end(kStdDistributions);
      if (!engine && !distribution) return;
      add(tok.begin, Rule::kRngDiscipline,
          std::string(tok.text) +
              " bypasses the keyed-substream discipline; all randomness must flow "
              "through storsubsim::stats::Rng (stats/rng.h)");
    });
  }

  // Records identifiers declared in this file with an unordered container
  // type (including through local `using X = std::unordered_map<...>`
  // aliases), so iteration over them can be flagged.
  void track_unordered_declarations() {
    unordered_types_ = {"unordered_map", "unordered_set", "unordered_multimap",
                        "unordered_multiset"};
    const std::string_view code = stripped_.code;
    // Pass 1: aliases. `using X = ...unordered_...;`
    for_each_identifier(code, [&](const Token& tok) {
      if (tok.text != "using") return;
      Token name;
      if (!next_identifier(code, tok.end, &name)) return;
      std::size_t at = 0;
      if (next_nonspace(code, name.end, &at) != '=') return;
      const std::size_t semi = code.find(';', at);
      if (semi == std::string_view::npos) return;
      const std::string_view rhs = code.substr(at, semi - at);
      for (const std::string& t : unordered_types_) {
        if (rhs.find(t) != std::string_view::npos) {
          unordered_types_.push_back(std::string(name.text));
          break;
        }
      }
    });
    // Pass 2: declarations. `<unordered type> [<...>] [&*] name [;,={(:)]`
    for_each_identifier(code, [&](const Token& tok) {
      if (std::find(unordered_types_.begin(), unordered_types_.end(), tok.text) ==
          unordered_types_.end()) {
        return;
      }
      std::size_t pos = tok.end;
      std::size_t at = 0;
      if (next_nonspace(code, pos, &at) == '<') {
        pos = skip_angles(code, at);
        if (pos == std::string_view::npos) return;
      }
      // Skip references, pointers, and cv qualifiers between type and name.
      Token name;
      for (;;) {
        const char c = next_nonspace(code, pos, &at);
        if (c == '&' || c == '*') {
          pos = at + 1;
          continue;
        }
        if (!is_ident_char(c)) return;
        if (!next_identifier(code, pos, &name)) return;
        if (name.text == "const" || name.text == "constexpr" || name.text == "static") {
          pos = name.end;
          continue;
        }
        break;
      }
      const char after = next_nonspace(code, name.end);
      if (after == ';' || after == ',' || after == '=' || after == '{' || after == '(' ||
          after == ')' || after == ':' || after == '[') {
        declared_unordered_.push_back(std::string(name.text));
      }
    });
  }

  bool tracked(std::string_view name) const {
    return std::find(declared_unordered_.begin(), declared_unordered_.end(), name) !=
           declared_unordered_.end();
  }

  void check_unordered_iteration() {
    const std::string_view code = stripped_.code;
    // Range-for over a tracked variable (or member chain ending in one).
    for_each_identifier(code, [&](const Token& tok) {
      if (tok.text != "for") return;
      std::size_t at = 0;
      if (next_nonspace(code, tok.end, &at) != '(') return;
      // Balanced paren scan; find the top-level ':' (not '::').
      int depth = 0;
      std::size_t colon = std::string_view::npos, close = std::string_view::npos;
      for (std::size_t i = at; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') {
          --depth;
          if (depth == 0) {
            close = i;
            break;
          }
        }
        if (c == ':' && depth == 1 && colon == std::string_view::npos) {
          const bool dbl = (i + 1 < code.size() && code[i + 1] == ':') ||
                           (i > 0 && code[i - 1] == ':');
          if (!dbl) colon = i;
        }
      }
      if (colon == std::string_view::npos || close == std::string_view::npos) return;
      const std::string_view range = code.substr(colon + 1, close - colon - 1);
      std::string last_ident;
      if (!parse_var_chain(range, &last_ident)) return;
      if (!tracked(last_ident)) return;
      add(tok.begin, Rule::kUnorderedIter,
          "range-for over '" + last_ident +
              "' (std::unordered_*) leaks hash-table iteration order; iterate a sorted "
              "view / std::map, or annotate allow(unordered-iter) with a reason if the "
              "loop body is order-insensitive");
    });
    // Explicit iterator loops / algorithms: tracked.begin(), tracked->begin().
    for_each_identifier(code, [&](const Token& tok) {
      if (tok.text != "begin" && tok.text != "cbegin") return;
      if (next_nonspace(code, tok.end) != '(') return;
      std::size_t at = 0;
      const char p = prev_nonspace(code, tok.begin, &at);
      std::size_t base_end;
      if (p == '.') {
        base_end = at;
      } else if (p == '>' && at > 0 && code[at - 1] == '-') {
        base_end = at - 1;
      } else {
        return;
      }
      // Identifier immediately before the access operator.
      const Token base = ident_before(code, base_end);
      if (base.text.empty()) return;
      if (!tracked(base.text)) return;
      add(tok.begin, Rule::kUnorderedIter,
          "iterator traversal of '" + std::string(base.text) +
              "' (std::unordered_*) leaks hash-table iteration order; iterate a sorted "
              "view / std::map, or annotate allow(unordered-iter) with a reason if the "
              "traversal is order-insensitive");
    });
  }

  void check_header_hygiene() {
    const std::string_view code = stripped_.code;
    if (code.find("#pragma once") == std::string_view::npos) {
      const bool guarded = code.find("#ifndef") != std::string_view::npos &&
                           code.find("#define") != std::string_view::npos;
      if (!guarded) {
        raw_findings_.push_back(Finding{std::string(path_), 1, Rule::kHeaderHygiene,
                                        "header lacks #pragma once (or an include guard); "
                                        "double inclusion is an ODR time bomb",
                                        line_excerpt(src_, 1)});
      }
    }
    for_each_identifier(code, [&](const Token& tok) {
      if (tok.text != "using") return;
      Token next;
      if (!next_identifier(code, tok.end, &next) || next.text != "namespace") return;
      add(tok.begin, Rule::kHeaderHygiene,
          "using-namespace in a header leaks the namespace into every includer; "
          "qualify names instead");
    });
  }

  FileReport finish() {
    FileReport report;
    for (const Annotation& a : annotations_) {
      report.suppressions.push_back(
          Suppression{std::string(path_), a.target_line, a.rule, a.reason});
    }
    for (Finding& f : raw_findings_) {
      const bool suppressed =
          f.rule != Rule::kBadSuppression &&
          std::any_of(annotations_.begin(), annotations_.end(), [&](const Annotation& a) {
            return a.target_line == f.line && a.rule == f.rule;
          });
      if (!suppressed) report.findings.push_back(std::move(f));
    }
    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return rule_name(a.rule) < rule_name(b.rule);
              });
    return report;
  }

  std::string_view path_;
  std::string_view src_;
  const LintOptions& options_;
  Stripped stripped_;
  std::vector<Annotation> annotations_;
  std::vector<Finding> raw_findings_;
  std::vector<std::string> unordered_types_;
  std::vector<std::string> declared_unordered_;
};

}  // namespace

FileReport lint_source(std::string_view path, std::string_view contents,
                       const LintOptions& options) {
  return FileLinter(path, contents, options).run();
}

}  // namespace storsubsim::lint
