// layering: the src/ tree is a declared DAG (see layer_closure() in index.cc
// and the table in docs/static-analysis.md). Two checks over the include
// graph phase 1 extracted:
//
//   (a) every `#include "<layer>/..."` from a src/ file must stay within the
//       including layer's transitive dependency closure;
//   (b) the include graph over all scanned files must be cycle-free — cycles
//       are reported with the full path so the offending edge is obvious.
#include <algorithm>
#include <functional>
#include <map>

#include "lint/index.h"
#include "lint/scan.h"

namespace storsubsim::lint {
namespace {

/// The layer directory of a display path: the segment after "src"
/// ("src/store/reader.h" -> "store"); empty when the path is not under a
/// src/ segment or has no layer directory.
std::string layer_of(std::string_view path) {
  std::vector<std::string_view> segs;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t next = path.find('/', pos);
    segs.push_back(path.substr(
        pos, next == std::string_view::npos ? path.size() - pos : next - pos));
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  for (std::size_t i = 0; i + 2 < segs.size(); ++i) {
    // segs[i+1] must be a directory (a file name follows it).
    if (segs[i] == "src") return std::string(segs[i + 1]);
  }
  return "";
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& s : items) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out.empty() ? "nothing" : out;
}

struct Edge {
  std::size_t to;
  std::size_t line;        // include line in the source file
  std::string_view target;  // the include string, for messages
};

void check_dag(const TreeIndex& index, std::vector<Finding>* findings) {
  const auto& closure = layer_closure();
  for (const FileEntry& e : index.files) {
    const std::string from = layer_of(e.display_path);
    if (from.empty()) continue;
    const auto cit = closure.find(from);
    if (cit == closure.end()) continue;  // not a declared layer directory
    for (const IncludeRef& inc : e.includes) {
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string to = inc.target.substr(0, slash);
      if (to == from) continue;
      if (closure.find(to) == closure.end()) continue;  // not a layer include
      if (std::find(cit->second.begin(), cit->second.end(), to) !=
          cit->second.end()) {
        continue;
      }
      findings->push_back(Finding{
          e.display_path, inc.line, Rule::kLayering,
          "include of \"" + inc.target + "\" breaks the layering DAG: " + from +
              " may depend only on {" + join(cit->second) +
              "} (docs/static-analysis.md)",
          line_excerpt(*e.contents, inc.line)});
    }
  }
}

void check_cycles(const TreeIndex& index, std::vector<Finding>* findings) {
  // Resolve include strings to scanned files: exact display-path match first,
  // then path-suffix matches (covers both -I src and -I tools include roots).
  std::map<std::string_view, std::size_t> by_path;
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    by_path.emplace(index.files[i].display_path, i);
  }
  std::vector<std::vector<Edge>> edges(index.files.size());
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    for (const IncludeRef& inc : index.files[i].includes) {
      const auto exact = by_path.find(inc.target);
      if (exact != by_path.end()) {
        if (exact->second != i) edges[i].push_back(Edge{exact->second, inc.line, inc.target});
        continue;
      }
      for (std::size_t j = 0; j < index.files.size(); ++j) {
        if (j != i && ends_with_path(index.files[j].display_path, inc.target)) {
          edges[i].push_back(Edge{j, inc.line, inc.target});
        }
      }
    }
  }

  // DFS three-color cycle detection; each back edge reports the cycle once,
  // with the full path spelled out.
  std::vector<int> color(index.files.size(), 0);  // 0 white, 1 gray, 2 black
  std::vector<std::size_t> path;
  const std::function<void(std::size_t)> visit = [&](std::size_t u) {
    color[u] = 1;
    path.push_back(u);
    for (const Edge& edge : edges[u]) {
      if (color[edge.to] == 1) {
        const auto it = std::find(path.begin(), path.end(), edge.to);
        std::string cycle;
        for (auto p = it; p != path.end(); ++p) {
          cycle += index.files[*p].display_path;
          cycle += " -> ";
        }
        cycle += index.files[edge.to].display_path;
        findings->push_back(Finding{
            index.files[u].display_path, edge.line, Rule::kLayering,
            "include cycle: " + cycle +
                "; break the cycle with a forward declaration or by moving the "
                "shared piece down a layer",
            line_excerpt(*index.files[u].contents, edge.line)});
      } else if (color[edge.to] == 0) {
        visit(edge.to);
      }
    }
    path.pop_back();
    color[u] = 2;
  };
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    if (color[i] == 0) visit(i);
  }
}

}  // namespace

void check_layering(const TreeIndex& index, std::vector<Finding>* findings) {
  check_dag(index, findings);
  check_cycles(index, findings);
}

}  // namespace storsubsim::lint
