// storsim_lint — static enforcement of the project's determinism, memory-
// safety, and concurrency contracts.
//
// The analysis pipeline promises bit-identical output at any thread count
// (see docs/performance.md) and that corrupted storage-layer input can never
// reach undefined behavior (docs/STORE.md). Runtime ThreadInvariance tests
// and the corruption-fuzz suite catch violations probabilistically; this
// linter proves the cheap half statically by refusing to let known violation
// patterns into the tree at all.
//
// The engine runs in two phases:
//
//   phase 1 (per file, parallel)  — token-scan rules over one translation
//     unit at a time: nondeterminism, unordered-iter, rng-discipline,
//     header-hygiene, alloc-hotpath, timer-discipline. While scanning, each
//     file is also indexed: its quoted includes, declared functions (return
//     types, [[nodiscard]]-ness, bodies, parameters), mutex inventory, and
//     view-typed members.
//   phase 2 (over the cross-TU index) — semantic rules that need more than
//     one file: view-lifetime (returning/storing a view of a dying buffer),
//     error-discipline (store::Error-returning APIs must be [[nodiscard]]
//     and their results must not be silently discarded), layering (the
//     declared dependency DAG over src/, with include-cycle detection), and
//     lock-discipline (mutexes are acquired via RAII guards only; no bare
//     .lock()/.unlock(), no double-lock in one scope).
//
// Intentional exceptions are either annotated inline,
//
//   // storsim-lint: allow(unordered-iter) reason=order-insensitive counters
//
// (the reason is mandatory; the tool records every suppression it honours),
// or versioned in a baseline file via --write-baseline / --baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace storsubsim::lint {

enum class Rule {
  kNondeterminism,
  kUnorderedIter,
  kRngDiscipline,
  kHeaderHygiene,
  kAllocHotpath,
  kTimerDiscipline,
  kViewLifetime,
  kErrorDiscipline,
  kLayering,
  kLockDiscipline,
  kAnalysisOverload,
  kBadSuppression,
};

inline constexpr Rule kAllRules[] = {
    Rule::kNondeterminism, Rule::kUnorderedIter,    Rule::kRngDiscipline,
    Rule::kHeaderHygiene,  Rule::kAllocHotpath,     Rule::kTimerDiscipline,
    Rule::kViewLifetime,   Rule::kErrorDiscipline,  Rule::kLayering,
    Rule::kLockDiscipline, Rule::kAnalysisOverload, Rule::kBadSuppression};

std::string_view rule_name(Rule rule) noexcept;
std::optional<Rule> rule_from_name(std::string_view name) noexcept;

struct Finding {
  std::string path;       // normalized with '/' separators
  std::size_t line = 0;   // 1-based
  Rule rule = Rule::kNondeterminism;
  std::string message;
  std::string excerpt;    // trimmed source line the finding points at
};

/// An inline allow() annotation the linter honoured.
struct Suppression {
  std::string path;
  std::size_t line = 0;   // line the suppression applies to
  Rule rule = Rule::kNondeterminism;
  std::string reason;
};

struct LintOptions {
  /// Normalized path suffixes permitted to call getenv (configuration entry
  /// points that run before any simulation state exists).
  std::vector<std::string> getenv_allowlist = {"src/util/parallel.cc"};
  /// Directory names never descended into during recursive scans. Fixture
  /// files are deliberately bad; they are linted only when named explicitly.
  std::vector<std::string> skip_dirs = {"lint_fixtures", ".git", "build",
                                        "build-tsan", "build-asan-ubsan"};
};

struct FileReport {
  std::vector<Finding> findings;
  std::vector<Suppression> suppressions;
};

/// Lints one translation unit / header with the phase-1 per-file rules.
/// `path` should already be normalized (forward slashes, relative to the
/// repo root when possible): rule scoping (src/ vs bench/ vs tests/) and the
/// getenv allowlist key off of it. Phase-2 rules need the cross-TU index and
/// run through lint_tree instead.
FileReport lint_source(std::string_view path, std::string_view contents,
                       const LintOptions& options = {});

/// Normalizes a filesystem path for reporting: forward slashes, "./" stripped,
/// and made relative to `root` when it lies underneath it.
std::string normalize_path(std::string_view path, std::string_view root);

/// Expands files/directories into the list of lintable sources (recursing
/// into directories, honouring options.skip_dirs, matching C++ extensions).
/// Explicitly named files are always included. Returns normalized paths
/// paired with the on-disk path to read.
struct SourceFile {
  std::string display_path;  // normalized, used in reports and baselines
  std::string fs_path;       // path to open
};
std::vector<SourceFile> collect_sources(const std::vector<std::string>& paths,
                                        std::string_view root,
                                        const LintOptions& options,
                                        std::vector<std::string>* errors);

/// Restricts `sources` to entries whose display path appears in `changed`
/// (paths as git prints them: repo-relative, '/'-separated). Backs the CLI's
/// --changed-only mode for fast pre-commit runs. Note that phase-2 rules see
/// only the scanned subset: cross-TU facts living in unchanged files (for
/// example a [[nodiscard]] on a header the diff does not touch) are invisible
/// in this mode — the full scan remains the gate of record.
std::vector<SourceFile> filter_changed(std::vector<SourceFile> sources,
                                       const std::vector<std::string>& changed);

// --- the two-phase engine ---------------------------------------------------

/// An in-memory source, for driving the engine without a filesystem.
struct MemoryFile {
  std::string display_path;
  std::string contents;
};

struct TreeReport {
  std::vector<Finding> findings;        // sorted by (path, line, rule, message)
  std::vector<Suppression> suppressions;
  std::size_t file_count = 0;
};

/// The full engine: reads every source (in parallel over the shared thread
/// pool), runs the phase-1 per-file rules, builds the cross-TU index, runs
/// the phase-2 semantic rules, applies inline suppressions, and returns a
/// deterministically ordered report (sorted by path, then line, then rule —
/// identical at any thread count). I/O failures are reported via *errors.
TreeReport lint_tree(const std::vector<SourceFile>& sources,
                     const LintOptions& options,
                     std::vector<std::string>* errors);

/// Same engine over in-memory sources (tests, editor integrations).
TreeReport lint_tree_memory(const std::vector<MemoryFile>& files,
                            const LintOptions& options = {});

/// Renders a TreeReport as a machine-readable JSON document (one object:
/// schema version, file/finding/suppression counts, findings[], and
/// suppressions[]). Strict RFC 8259 — round-trips through obs::parse_json.
std::string render_json_report(const TreeReport& report);

// --- baseline support -------------------------------------------------------
// A baseline is a sorted text file, one line per accepted finding:
//   rule <TAB> path <TAB> line-hash <TAB> excerpt
// The hash is FNV-1a over the trimmed source line, so findings survive line-
// number drift but not content changes. Multiplicity is preserved: two
// identical lines in a file need two baseline entries.

std::string baseline_key(const Finding& finding);
std::string serialize_baseline(std::vector<Finding> findings);
/// Parses baseline text into key -> multiplicity. Lines starting with '#'
/// and blank lines are ignored. Unparseable lines are reported via *errors.
std::map<std::string, int> parse_baseline(std::string_view text,
                                          std::vector<std::string>* errors);
/// Drops findings covered by the baseline (consuming multiplicity) and
/// returns the remaining, genuinely new findings.
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    std::map<std::string, int> baseline);

/// "path:line: [rule] message" + indented excerpt, one finding per block.
std::string format_finding(const Finding& finding);

}  // namespace storsubsim::lint
