// storsim_lint — static enforcement of the project's determinism contract.
//
// The analysis pipeline promises bit-identical output at any thread count
// (see docs/performance.md). Runtime ThreadInvariance tests catch violations
// probabilistically; this linter proves the cheap half statically by refusing
// to let known nondeterminism sources into the tree at all:
//
//   nondeterminism  — wall clocks, rand()/srand, std::random_device, getenv
//                     (outside an explicit allowlist) in src/
//   unordered-iter  — range-for / begin() iteration over std::unordered_map
//                     or std::unordered_set in src/, whose order is a hash-
//                     table implementation detail
//   rng-discipline  — ad-hoc <random> engines or distributions anywhere;
//                     randomness must flow through stats/rng.h keyed streams
//   header-hygiene  — headers need #pragma once (or a guard) and must not
//                     contain using-namespace directives
//   alloc-hotpath   — per-line allocation patterns (std::ostringstream /
//                     std::stringstream, std::to_string, string-literal
//                     operator+) inside the log hot path (src/log/ and
//                     src/core/pipeline.cc); format through log::LineWriter
//   timer-discipline— util::StageTimer / std::chrono timing inside the
//                     instrumented subsystems (src/sim/, src/log/, src/store/);
//                     time regions with obs::Span so every measurement shares
//                     one clock epoch and lands in the trace/metric exporters
//
// Intentional exceptions are either annotated inline,
//
//   // storsim-lint: allow(unordered-iter) reason=order-insensitive counters
//
// (the reason is mandatory; the tool records every suppression it honours),
// or versioned in a baseline file via --write-baseline / --baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace storsubsim::lint {

enum class Rule {
  kNondeterminism,
  kUnorderedIter,
  kRngDiscipline,
  kHeaderHygiene,
  kAllocHotpath,
  kTimerDiscipline,
  kBadSuppression,
};

inline constexpr Rule kAllRules[] = {Rule::kNondeterminism,  Rule::kUnorderedIter,
                                     Rule::kRngDiscipline,   Rule::kHeaderHygiene,
                                     Rule::kAllocHotpath,    Rule::kTimerDiscipline,
                                     Rule::kBadSuppression};

std::string_view rule_name(Rule rule) noexcept;
std::optional<Rule> rule_from_name(std::string_view name) noexcept;

struct Finding {
  std::string path;       // normalized with '/' separators
  std::size_t line = 0;   // 1-based
  Rule rule = Rule::kNondeterminism;
  std::string message;
  std::string excerpt;    // trimmed source line the finding points at
};

/// An inline allow() annotation the linter honoured.
struct Suppression {
  std::string path;
  std::size_t line = 0;   // line the suppression applies to
  Rule rule = Rule::kNondeterminism;
  std::string reason;
};

struct LintOptions {
  /// Normalized path suffixes permitted to call getenv (configuration entry
  /// points that run before any simulation state exists).
  std::vector<std::string> getenv_allowlist = {"src/util/parallel.cc"};
  /// Directory names never descended into during recursive scans. Fixture
  /// files are deliberately bad; they are linted only when named explicitly.
  std::vector<std::string> skip_dirs = {"lint_fixtures", ".git", "build",
                                        "build-tsan", "build-asan-ubsan"};
};

struct FileReport {
  std::vector<Finding> findings;
  std::vector<Suppression> suppressions;
};

/// Lints one translation unit / header. `path` should already be normalized
/// (forward slashes, relative to the repo root when possible): rule scoping
/// (src/ vs bench/ vs tests/) and the getenv allowlist key off of it.
FileReport lint_source(std::string_view path, std::string_view contents,
                       const LintOptions& options = {});

/// Normalizes a filesystem path for reporting: forward slashes, "./" stripped,
/// and made relative to `root` when it lies underneath it.
std::string normalize_path(std::string_view path, std::string_view root);

/// Expands files/directories into the list of lintable sources (recursing
/// into directories, honouring options.skip_dirs, matching C++ extensions).
/// Explicitly named files are always included. Returns normalized paths
/// paired with the on-disk path to read.
struct SourceFile {
  std::string display_path;  // normalized, used in reports and baselines
  std::string fs_path;       // path to open
};
std::vector<SourceFile> collect_sources(const std::vector<std::string>& paths,
                                        std::string_view root,
                                        const LintOptions& options,
                                        std::vector<std::string>* errors);

// --- baseline support -------------------------------------------------------
// A baseline is a sorted text file, one line per accepted finding:
//   rule <TAB> path <TAB> line-hash <TAB> excerpt
// The hash is FNV-1a over the trimmed source line, so findings survive line-
// number drift but not content changes. Multiplicity is preserved: two
// identical lines in a file need two baseline entries.

std::string baseline_key(const Finding& finding);
std::string serialize_baseline(std::vector<Finding> findings);
/// Parses baseline text into key -> multiplicity. Lines starting with '#'
/// and blank lines are ignored. Unparseable lines are reported via *errors.
std::map<std::string, int> parse_baseline(std::string_view text,
                                          std::vector<std::string>* errors);
/// Drops findings covered by the baseline (consuming multiplicity) and
/// returns the remaining, genuinely new findings.
std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    std::map<std::string, int> baseline);

/// "path:line: [rule] message" + indented excerpt, one finding per block.
std::string format_finding(const Finding& finding);

}  // namespace storsubsim::lint
