// Phase-1 scanning substrate shared by every rule: comment/string stripping,
// token iteration, path classification, and the inline allow() annotation
// parser. Internal to the lint library — the public surface is linter.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/linter.h"

namespace storsubsim::lint {

bool is_ident_char(char c) noexcept;
std::string trim(std::string_view s);
std::uint64_t fnv1a(std::string_view s) noexcept;
std::string hex64(std::uint64_t v);

/// True when `segment` appears as a whole path component of `path`.
bool has_segment(std::string_view path, std::string_view segment) noexcept;
bool ends_with_path(std::string_view path, std::string_view suffix) noexcept;
bool is_header(std::string_view path) noexcept;

// --- comment / string stripping ---------------------------------------------

/// The stripped view of a source file: literals and comments blanked byte-
/// for-byte (offsets into `code` equal offsets into the original source),
/// the comment text collected per line, and the offset of each line start.
struct Stripped {
  std::string code;
  std::vector<std::string> comment_text;
  std::vector<std::size_t> line_start;
};

Stripped strip(std::string_view src);
std::size_t line_of(const Stripped& s, std::size_t offset) noexcept;
std::string line_excerpt(std::string_view src, std::size_t line);
bool line_has_code(const Stripped& s, std::size_t line);

// --- token scanning ---------------------------------------------------------

struct Token {
  std::size_t begin = 0;  // offset in stripped code
  std::size_t end = 0;
  std::string_view text;
};

/// Invokes `fn` for every identifier token in the stripped code.
template <typename Fn>
void for_each_identifier(std::string_view code, Fn&& fn) {
  std::size_t i = 0;
  while (i < code.size()) {
    if (is_ident_char(code[i]) && !(code[i] >= '0' && code[i] <= '9')) {
      const std::size_t begin = i;
      while (i < code.size() && is_ident_char(code[i])) ++i;
      fn(Token{begin, i, code.substr(begin, i - begin)});
    } else {
      ++i;
    }
  }
}

char prev_nonspace(std::string_view code, std::size_t pos, std::size_t* at = nullptr);
char next_nonspace(std::string_view code, std::size_t pos, std::size_t* at = nullptr);

/// True when the identifier token at `tok` is reached via `.` or `->`
/// (a member access, e.g. `event.time`), as opposed to a free/qualified name.
bool is_member_access(std::string_view code, const Token& tok);

/// Skips a balanced <...> starting at `pos` (which must point at '<').
/// Returns one past the closing '>', or npos if unbalanced.
std::size_t skip_angles(std::string_view code, std::size_t pos);

/// `pos` points at '('; returns the index of the matching ')' (tracking
/// nested (), [], {}), or npos when unbalanced.
std::size_t match_paren(std::string_view code, std::size_t pos);

/// `pos` points at '{'; returns the index of the matching '}', or npos.
std::size_t match_brace(std::string_view code, std::size_t pos);

/// Reads the identifier token ending just before `end` (skipping trailing
/// whitespace). Returns an empty text when none.
Token ident_before(std::string_view code, std::size_t end);

/// Reads the identifier token starting at/after `pos` (skipping whitespace).
bool next_identifier(std::string_view code, std::size_t pos, Token* out);

/// Accepts `name`, `*name`, `a.b->c` chains; rejects anything with calls or
/// operators (we cannot see through function results). Returns the final
/// identifier of the chain.
bool parse_var_chain(std::string_view expr, std::string* last_ident);

/// Walks a postfix chain (`a.b->c::d`) backwards from the identifier token
/// at `tok`, returning the offset of the chain's first identifier
/// (`a.b->c(` called on token `c` yields the offset of `a`). Stops at any
/// other character; `)`/`]` links (call or subscript results in the chain)
/// make the chain unresolvable and return npos.
std::size_t chain_start(std::string_view code, const Token& tok);

// --- inline suppression annotations -----------------------------------------

struct Annotation {
  std::size_t target_line = 0;  // 1-based line the allow() applies to
  Rule rule = Rule::kNondeterminism;
  std::string reason;
};

/// Parses `storsim-lint: allow(<rule>) reason=<text>` annotations out of the
/// comment text. Malformed annotations become kBadSuppression findings.
void collect_annotations(const Stripped& s, std::string_view path,
                         std::vector<Annotation>* annotations,
                         std::vector<Finding>* findings);

}  // namespace storsubsim::lint
