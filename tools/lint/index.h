// Phase-1 output, phase-2 input: the cross-TU index.
//
// index_file() extracts, from one stripped translation unit, everything the
// phase-2 semantic rules need: the quoted include list, every declared
// function with its return-type category / [[nodiscard]]-ness / parameter
// list / body range, the mutex inventory, and view-typed member names.
// build_index() merges per-file entries into tree-wide tables (the
// error-returning function table, the mutex name set, the view-member set).
//
// All of it is token-level heuristics, not a real C++ parser — precise
// enough for this codebase's style, and every rule built on it accepts
// inline allow() annotations for the residue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/linter.h"
#include "lint/scan.h"

namespace storsubsim::lint {

/// Return-type classification the phase-2 rules care about.
enum class TypeCategory : std::uint8_t {
  kOther,
  kError,  ///< store::Error / Result / Expected-style must-check types
  kView,   ///< std::string_view / std::span / LogView / ColumnView / EventView
};

struct Param {
  std::string name;
  /// The parameter owns its buffer and dies with the call: an owning type
  /// (std::string, std::vector, ...) taken by value or rvalue reference.
  bool owning_by_value = false;
};

struct FuncDef {
  std::string name;            ///< last identifier of the declarator
  std::size_t line = 0;        ///< 1-based line of the name
  TypeCategory ret = TypeCategory::kOther;
  bool nodiscard = false;      ///< [[nodiscard]] present on this declaration
  bool has_body = false;
  std::size_t body_begin = 0;  ///< offset of '{' in stripped code (when has_body)
  std::size_t body_end = 0;    ///< offset of matching '}'
  std::vector<Param> params;
  /// Constructor member-init items as (member, argument-text) pairs.
  std::vector<std::pair<std::string, std::string>> ctor_inits;
};

struct IncludeRef {
  std::string target;    ///< the quoted include string, verbatim
  std::size_t line = 0;  ///< 1-based
};

struct FileEntry {
  std::string display_path;
  const std::string* contents = nullptr;  ///< borrowed from the engine
  Stripped stripped;
  std::vector<Annotation> annotations;
  std::vector<IncludeRef> includes;
  std::vector<FuncDef> functions;
  std::vector<std::string> mutex_names;   ///< mutex-typed declarations in this file
  std::vector<std::string> view_members;  ///< view-typed members (no initializer)
};

/// Parses one file into its index entry. `contents` must outlive the entry.
FileEntry index_file(std::string display_path, const std::string& contents);

struct TreeIndex {
  std::vector<FileEntry> files;  ///< in engine order (sorted by display path)
  /// Error-returning function names declared in src/ -> true when any
  /// declaration of that name carries [[nodiscard]].
  std::map<std::string, bool> error_functions;
  /// Union of mutex names declared anywhere in src/ (sorted, unique).
  std::vector<std::string> mutex_names;
  /// Union of view-typed member names declared in src/ (sorted, unique).
  std::vector<std::string> view_members;
};

/// Merges per-file entries (already in engine order) into the tree tables.
TreeIndex build_index(std::vector<FileEntry> files);

// --- phase-2 rule families ---------------------------------------------------

void check_view_lifetime(const TreeIndex& index, std::vector<Finding>* findings);
void check_error_discipline(const TreeIndex& index, std::vector<Finding>* findings);
void check_layering(const TreeIndex& index, std::vector<Finding>* findings);
void check_lock_discipline(const TreeIndex& index, std::vector<Finding>* findings);
void check_analysis_overload(const TreeIndex& index, std::vector<Finding>* findings);

/// The declared layering DAG over src/ (docs/static-analysis.md): for each
/// layer directory, the set of layers it may include (its transitive
/// dependency closure, self excluded). Exposed for the docs test and the
/// rule implementation.
const std::map<std::string, std::vector<std::string>>& layer_closure();

}  // namespace storsubsim::lint
