// lock-discipline: in src/, mutexes are acquired through RAII guards only.
// Bare `.lock()` / `.unlock()` calls leak the lock on any early return or
// exception path; acquiring a guard on a mutex already held in the enclosing
// scope self-deadlocks (std::mutex is not recursive). Both are the guardrails
// the storsimd request path will live under.
//
// Double-lock tracking keys on the full normalized guard-argument chain
// ("state_.mu" vs "other.mu" stay distinct); guards constructed with
// defer_lock / adopt_lock / try_to_lock do not acquire and are ignored.
#include <algorithm>
#include <cctype>

#include "lint/index.h"
#include "lint/scan.h"

namespace storsubsim::lint {
namespace {

constexpr std::string_view kGuardTypes[] = {"lock_guard", "unique_lock",
                                            "scoped_lock", "shared_lock"};

std::string squeeze(std::string_view text) {
  std::string out;
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

/// Splits guard-constructor arguments at top-level commas.
std::vector<std::string> guard_keys(std::string_view args) {
  std::vector<std::string> keys;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= args.size(); ++i) {
    const char c = i < args.size() ? args[i] : ',';
    if (c == '<' || c == '(' || c == '[' || c == '{') ++depth;
    if (c == '>' || c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth <= 0) {
      std::string key = squeeze(args.substr(start, i - start));
      start = i + 1;
      if (key.empty()) continue;
      if (key.find("defer_lock") != std::string::npos ||
          key.find("adopt_lock") != std::string::npos ||
          key.find("try_to_lock") != std::string::npos) {
        // The guard does not acquire on construction; nothing to track.
        return {};
      }
      while (!key.empty() && (key.front() == '*' || key.front() == '&')) key.erase(0, 1);
      keys.push_back(std::move(key));
    }
  }
  return keys;
}

void check_bare_lock_calls(const FileEntry& e, std::vector<Finding>* findings) {
  const std::string_view code = e.stripped.code;
  for_each_identifier(code, [&](const Token& tok) {
    if (tok.text != "lock" && tok.text != "unlock") return;
    if (!is_member_access(code, tok)) return;
    if (next_nonspace(code, tok.end) != '(') return;
    const std::size_t line = line_of(e.stripped, tok.begin);
    findings->push_back(Finding{
        e.display_path, line, Rule::kLockDiscipline,
        "bare ." + std::string(tok.text) +
            "() call; acquire through std::lock_guard/unique_lock/scoped_lock so "
            "every return and exception path releases the mutex",
        line_excerpt(*e.contents, line)});
  });
}

struct GuardDecl {
  std::size_t offset = 0;  // token start within the body
  std::size_t line = 0;
  std::vector<std::string> keys;
};

void check_double_lock(const FileEntry& e, const FuncDef& f,
                       std::vector<Finding>* findings) {
  const std::string_view code = e.stripped.code;
  const std::string_view body =
      code.substr(f.body_begin, f.body_end - f.body_begin + 1);

  std::vector<GuardDecl> decls;
  for_each_identifier(body, [&](const Token& tok) {
    if (std::find(std::begin(kGuardTypes), std::end(kGuardTypes), tok.text) ==
        std::end(kGuardTypes)) {
      return;
    }
    std::size_t pos = tok.end;
    std::size_t at = 0;
    if (next_nonspace(body, pos, &at) == '<') {
      pos = skip_angles(body, at);
      if (pos == std::string_view::npos) return;
    }
    Token name;
    if (!next_identifier(body, pos, &name)) return;
    std::size_t a2 = 0;
    const char c = next_nonspace(body, name.end, &a2);
    if (c != '(' && c != '{') return;
    const std::size_t close =
        c == '(' ? match_paren(body, a2) : match_brace(body, a2);
    if (close == std::string_view::npos) return;
    GuardDecl d;
    d.offset = tok.begin;
    d.line = line_of(e.stripped, f.body_begin + tok.begin);
    d.keys = guard_keys(body.substr(a2 + 1, close - a2 - 1));
    if (!d.keys.empty()) decls.push_back(std::move(d));
  });
  if (decls.empty()) return;

  // Walk the body's brace structure; a guard's keys are held until its scope
  // closes. A second guard on a held key is a self-deadlock.
  struct Held {
    std::string key;
    std::size_t line;
  };
  std::vector<std::vector<Held>> scopes(1);
  std::size_t next_decl = 0;
  for (std::size_t i = 0; i < body.size(); ++i) {
    while (next_decl < decls.size() && decls[next_decl].offset == i) {
      const GuardDecl& d = decls[next_decl];
      for (const std::string& key : d.keys) {
        const Held* prior = nullptr;
        for (const auto& scope : scopes) {
          for (const Held& h : scope) {
            if (h.key == key) prior = &h;
          }
        }
        if (prior != nullptr) {
          findings->push_back(Finding{
              e.display_path, d.line, Rule::kLockDiscipline,
              "'" + key + "' is already locked in this scope (guard at line " +
                  std::to_string(prior->line) +
                  "); locking it again self-deadlocks — std::mutex is not recursive",
              line_excerpt(*e.contents, d.line)});
        } else {
          scopes.back().push_back(Held{key, d.line});
        }
      }
      ++next_decl;
    }
    if (body[i] == '{') scopes.emplace_back();
    if (body[i] == '}' && scopes.size() > 1) scopes.pop_back();
  }
}

}  // namespace

void check_lock_discipline(const TreeIndex& index, std::vector<Finding>* findings) {
  for (const FileEntry& e : index.files) {
    if (!has_segment(e.display_path, "src")) continue;
    check_bare_lock_calls(e, findings);
    for (const FuncDef& f : e.functions) {
      if (f.has_body) check_double_lock(e, f, findings);
    }
  }
}

}  // namespace storsubsim::lint
