// error-discipline: "corrupted input can never reach UB" only holds if every
// store::Error actually gets looked at. Two enforcement points:
//
//   (a) every src/ function returning store::Error (or Result/Expected-style
//       types) must be [[nodiscard]] on at least one declaration — the
//       compiler then polices call sites the linter cannot see;
//   (b) no call to such a function may appear as a discarded expression
//       statement, including `(void)`-casts — an intentional discard must
//       carry an allow(error-discipline) annotation so the reason is on
//       record.
//
// The function table is keyed by name across the whole src/ tree; an overload
// set shares its [[nodiscard]] status (the coarseness is documented in
// docs/static-analysis.md).
#include "lint/index.h"
#include "lint/scan.h"

namespace storsubsim::lint {

void check_error_discipline(const TreeIndex& index, std::vector<Finding>* findings) {
  for (const FileEntry& e : index.files) {
    if (!has_segment(e.display_path, "src")) continue;
    const std::string_view code = e.stripped.code;

    for (const FuncDef& f : e.functions) {
      if (f.ret != TypeCategory::kError || f.nodiscard) continue;
      const auto it = index.error_functions.find(f.name);
      if (it != index.error_functions.end() && it->second) continue;
      findings->push_back(Finding{
          e.display_path, f.line, Rule::kErrorDiscipline,
          "'" + f.name +
              "' returns an error type but no declaration is [[nodiscard]]; a "
              "silently dropped error lets corrupted input march on — annotate the "
              "declaration",
          line_excerpt(*e.contents, f.line)});
    }

    for_each_identifier(code, [&](const Token& tok) {
      const auto it = index.error_functions.find(std::string(tok.text));
      if (it == index.error_functions.end()) return;
      std::size_t at = 0;
      if (next_nonspace(code, tok.end, &at) != '(') return;
      const std::size_t close = match_paren(code, at);
      if (close == std::string_view::npos) return;
      if (next_nonspace(code, close + 1) != ';') return;
      const std::size_t root = chain_start(code, tok);
      if (root == std::string_view::npos) return;
      std::size_t bat = 0;
      const char before = root == 0 ? '\0' : prev_nonspace(code, root, &bat);
      bool statement =
          before == '\0' || before == ';' || before == '{' || before == '}';
      if (!statement && before == ')') {
        // `(void)call(...);` is still a discard; the annotation, not the
        // cast, is the sanctioned opt-out.
        const Token cast = ident_before(code, bat);
        if (cast.text == "void" && prev_nonspace(code, cast.begin) == '(') {
          statement = true;
        }
      }
      if (!statement) return;
      findings->push_back(Finding{
          e.display_path, line_of(e.stripped, tok.begin), Rule::kErrorDiscipline,
          "result of '" + std::string(tok.text) +
              "' (an error type) is discarded; check it, or annotate "
              "allow(error-discipline) with the reason the error cannot matter here",
          line_excerpt(*e.contents, line_of(e.stripped, tok.begin))});
    });
  }
}

}  // namespace storsubsim::lint
