#include "lint/scan.h"

#include <algorithm>
#include <cctype>

namespace storsubsim::lint {

bool is_ident_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[v & 0xfu];
    v >>= 4u;
  }
  return out;
}

bool has_segment(std::string_view path, std::string_view segment) noexcept {
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t next = path.find('/', pos);
    const std::size_t len = (next == std::string_view::npos ? path.size() : next) - pos;
    if (path.substr(pos, len) == segment) return true;
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return false;
}

bool ends_with_path(std::string_view path, std::string_view suffix) noexcept {
  if (path.size() < suffix.size()) return false;
  if (path.substr(path.size() - suffix.size()) != suffix) return false;
  return path.size() == suffix.size() || path[path.size() - suffix.size() - 1] == '/';
}

bool is_header(std::string_view path) noexcept {
  return path.ends_with(".h") || path.ends_with(".hh") || path.ends_with(".hpp") ||
         path.ends_with(".hxx");
}

Stripped strip(std::string_view src) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  Stripped out;
  out.code.reserve(src.size());
  out.line_start.push_back(0);
  out.comment_text.emplace_back();

  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      out.code.push_back('\n');
      out.line_start.push_back(out.code.size());
      out.comment_text.emplace_back();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.code.append("  ");
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.code.append("  ");
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R (uR, u8R, LR also exist).
          if (!out.code.empty() && out.code.back() == 'R') {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '(' && src[j] != '\n') {
              raw_delim.push_back(src[j]);
              ++j;
            }
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          out.code.push_back(' ');
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not character literals.
          const bool digit_sep = !out.code.empty() &&
                                 std::isalnum(static_cast<unsigned char>(out.code.back())) != 0;
          if (!digit_sep) state = State::kChar;
          out.code.push_back(' ');
        } else {
          out.code.push_back(c);
        }
        break;
      case State::kLineComment:
        out.comment_text.back().push_back(c);
        out.code.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out.code.append("  ");
          ++i;
        } else {
          out.comment_text.back().push_back(c);
          out.code.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\') {
          out.code.append("  ");
          ++i;
        } else {
          if (c == '"') state = State::kCode;
          out.code.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out.code.append("  ");
          ++i;
        } else {
          if (c == '\'') state = State::kCode;
          out.code.push_back(' ');
        }
        break;
      case State::kRawString: {
        // Close only on )delim"
        if (c == ')' && src.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < src.size() && src[i + 1 + raw_delim.size()] == '"') {
          for (std::size_t k = 0; k < raw_delim.size() + 2; ++k) out.code.push_back(' ');
          i += raw_delim.size() + 1;
          state = State::kCode;
        } else {
          out.code.push_back(' ');
        }
        break;
      }
    }
  }
  return out;
}

std::size_t line_of(const Stripped& s, std::size_t offset) noexcept {
  const auto it = std::upper_bound(s.line_start.begin(), s.line_start.end(), offset);
  return static_cast<std::size_t>(it - s.line_start.begin());  // 1-based
}

std::string line_excerpt(std::string_view src, std::size_t line) {
  std::size_t cur = 1, pos = 0;
  while (cur < line) {
    const std::size_t nl = src.find('\n', pos);
    if (nl == std::string_view::npos) return "";
    pos = nl + 1;
    ++cur;
  }
  const std::size_t end = src.find('\n', pos);
  return trim(src.substr(pos, end == std::string_view::npos ? std::string_view::npos
                                                            : end - pos));
}

bool line_has_code(const Stripped& s, std::size_t line) {
  const std::size_t begin = s.line_start[line - 1];
  const std::size_t end =
      line < s.line_start.size() ? s.line_start[line] : s.code.size();
  for (std::size_t i = begin; i < end; ++i) {
    if (std::isspace(static_cast<unsigned char>(s.code[i])) == 0) return true;
  }
  return false;
}

char prev_nonspace(std::string_view code, std::size_t pos, std::size_t* at) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) {
      if (at != nullptr) *at = pos;
      return code[pos];
    }
  }
  return '\0';
}

char next_nonspace(std::string_view code, std::size_t pos, std::size_t* at) {
  while (pos < code.size()) {
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) {
      if (at != nullptr) *at = pos;
      return code[pos];
    }
    ++pos;
  }
  return '\0';
}

bool is_member_access(std::string_view code, const Token& tok) {
  std::size_t at = 0;
  const char p = prev_nonspace(code, tok.begin, &at);
  if (p == '.') return true;
  if (p == '>' && at > 0 && code[at - 1] == '-') return true;
  return false;
}

std::size_t skip_angles(std::string_view code, std::size_t pos) {
  int depth = 0;
  while (pos < code.size()) {
    const char c = code[pos];
    if (c == '<') ++depth;
    if (c == '>') {
      --depth;
      if (depth == 0) return pos + 1;
    }
    if (c == ';' || c == '{') return std::string_view::npos;  // gave up: not a template arg list
    ++pos;
  }
  return std::string_view::npos;
}

std::size_t match_paren(std::string_view code, std::size_t pos) {
  int depth = 0;
  for (; pos < code.size(); ++pos) {
    const char c = code[pos];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) return c == ')' ? pos : std::string_view::npos;
    }
  }
  return std::string_view::npos;
}

std::size_t match_brace(std::string_view code, std::size_t pos) {
  int depth = 0;
  for (; pos < code.size(); ++pos) {
    const char c = code[pos];
    if (c == '{') ++depth;
    if (c == '}') {
      --depth;
      if (depth == 0) return pos;
    }
  }
  return std::string_view::npos;
}

Token ident_before(std::string_view code, std::size_t end) {
  std::size_t b = end;
  while (b > 0 && std::isspace(static_cast<unsigned char>(code[b - 1])) != 0) --b;
  std::size_t s = b;
  while (s > 0 && is_ident_char(code[s - 1])) --s;
  return Token{s, b, code.substr(s, b - s)};
}

bool next_identifier(std::string_view code, std::size_t pos, Token* out) {
  std::size_t at = 0;
  if (!is_ident_char(next_nonspace(code, pos, &at))) return false;
  std::size_t end = at;
  while (end < code.size() && is_ident_char(code[end])) ++end;
  *out = Token{at, end, code.substr(at, end - at)};
  return true;
}

bool parse_var_chain(std::string_view expr, std::string* last_ident) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < expr.size() && std::isspace(static_cast<unsigned char>(expr[i])) != 0) ++i;
  };
  skip_ws();
  while (i < expr.size() && (expr[i] == '*' || expr[i] == '&' || expr[i] == '(')) ++i;
  skip_ws();
  std::string last;
  for (;;) {
    skip_ws();
    if (i >= expr.size() || !is_ident_char(expr[i])) return false;
    const std::size_t s = i;
    while (i < expr.size() && is_ident_char(expr[i])) ++i;
    last.assign(expr.substr(s, i - s));
    skip_ws();
    while (i < expr.size() && expr[i] == ')') {
      ++i;
      skip_ws();
    }
    if (i >= expr.size()) break;
    if (expr[i] == '.') {
      ++i;
      continue;
    }
    if (expr[i] == '-' && i + 1 < expr.size() && expr[i + 1] == '>') {
      i += 2;
      continue;
    }
    return false;  // call, subscript, arithmetic, ... — give up silently
  }
  *last_ident = std::move(last);
  return true;
}

std::size_t chain_start(std::string_view code, const Token& tok) {
  std::size_t start = tok.begin;
  for (;;) {
    std::size_t at = 0;
    const char p = prev_nonspace(code, start, &at);
    if (p == ':' && at > 0 && code[at - 1] == ':') {
      const Token prev = ident_before(code, at - 1);
      if (prev.text.empty()) return start;
      start = prev.begin;
      continue;
    }
    if (p == '.') {
      const Token prev = ident_before(code, at);
      if (prev.text.empty()) return std::string_view::npos;  // `)`/`]` link
      start = prev.begin;
      continue;
    }
    if (p == '>' && at > 0 && code[at - 1] == '-') {
      const Token prev = ident_before(code, at - 1);
      if (prev.text.empty()) return std::string_view::npos;
      start = prev.begin;
      continue;
    }
    return start;
  }
}

void collect_annotations(const Stripped& s, std::string_view path,
                         std::vector<Annotation>* annotations,
                         std::vector<Finding>* findings) {
  static constexpr std::string_view kMarker = "storsim-lint:";
  for (std::size_t li = 0; li < s.comment_text.size(); ++li) {
    const std::string& text = s.comment_text[li];
    std::size_t pos = text.find(kMarker);
    if (pos == std::string::npos) continue;
    const std::size_t line = li + 1;
    auto bad = [&](std::string msg) {
      findings->push_back(Finding{std::string(path), line, Rule::kBadSuppression,
                                  std::move(msg), trim(text)});
    };
    std::string_view rest = std::string_view(text).substr(pos + kMarker.size());
    const std::size_t open = rest.find("allow(");
    if (open == std::string_view::npos) {
      bad("storsim-lint annotation without allow(<rule>)");
      continue;
    }
    const std::size_t close = rest.find(')', open);
    if (close == std::string_view::npos) {
      bad("unterminated allow( in storsim-lint annotation");
      continue;
    }
    const std::string rule_text = trim(rest.substr(open + 6, close - open - 6));
    const auto rule = rule_from_name(rule_text);
    if (!rule) {
      bad("unknown lint rule '" + rule_text + "' in allow()");
      continue;
    }
    const std::size_t reason_pos = rest.find("reason=", close);
    const std::string reason =
        reason_pos == std::string_view::npos ? "" : trim(rest.substr(reason_pos + 7));
    if (reason.empty()) {
      bad("allow(" + rule_text + ") is missing a reason=...; suppressions must be justified");
      continue;
    }
    // Trailing annotation applies to its own line; a whole-line comment
    // applies to the next line that has code.
    std::size_t target = line;
    if (!line_has_code(s, line)) {
      target = line + 1;
      while (target <= s.comment_text.size() && !line_has_code(s, target)) ++target;
    }
    annotations->push_back(Annotation{target, *rule, reason});
  }
}

}  // namespace storsubsim::lint
