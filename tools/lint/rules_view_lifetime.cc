// view-lifetime: a view type (std::string_view / std::span / LogView /
// ColumnView / EventView) must never outlive the buffer it points into. The
// zero-alloc log pipeline and the mmap'd store hand out views aggressively;
// this rule refuses the two escape patterns that turn them into dangling
// pointers:
//
//   (a) a view-returning function whose return expression references a local
//       owning buffer (or an owning parameter taken by value) — the buffer
//       dies at the `}` while the view escapes;
//   (b) a view-typed member assigned from an owning by-value parameter — the
//       member outlives the call that owned the buffer.
#include <algorithm>
#include <set>

#include "lint/index.h"
#include "lint/scan.h"

namespace storsubsim::lint {
namespace {

constexpr std::string_view kLocalOwners[] = {"string", "vector"};

bool word_in(std::string_view text, std::string_view word) {
  std::size_t at = 0;
  while ((at = text.find(word, at)) != std::string_view::npos) {
    const bool lb = at == 0 || !is_ident_char(text[at - 1]);
    const bool rb =
        at + word.size() >= text.size() || !is_ident_char(text[at + word.size()]);
    if (lb && rb) return true;
    at += word.size();
  }
  return false;
}

void add(const FileEntry& e, std::size_t line, std::string message,
         std::vector<Finding>* findings) {
  findings->push_back(Finding{e.display_path, line, Rule::kViewLifetime,
                              std::move(message), line_excerpt(*e.contents, line)});
}

void check_view_returns(const FileEntry& e, const FuncDef& f,
                        std::vector<Finding>* findings) {
  const std::string_view code = e.stripped.code;
  const std::string_view body =
      code.substr(f.body_begin, f.body_end - f.body_begin + 1);

  // The buffers that die when this function returns: owning by-value
  // parameters plus owning locals declared in the body.
  std::vector<std::string> dying;
  for (const Param& p : f.params) {
    if (p.owning_by_value && !p.name.empty()) dying.push_back(p.name);
  }
  for_each_identifier(body, [&](const Token& tok) {
    if (std::find(std::begin(kLocalOwners), std::end(kLocalOwners), tok.text) ==
        std::end(kLocalOwners)) {
      return;
    }
    if (is_member_access(body, tok)) return;
    std::size_t pos = tok.end;
    std::size_t at = 0;
    if (next_nonspace(body, pos, &at) == '<') {
      pos = skip_angles(body, at);
      if (pos == std::string_view::npos) return;
    }
    Token name;
    if (!next_identifier(body, pos, &name)) return;
    const char after = next_nonspace(body, name.end);
    if (after == ';' || after == '=' || after == '(' || after == '{') {
      dying.push_back(std::string(name.text));
    }
  });
  if (dying.empty()) return;

  std::set<std::size_t> flagged;  // one finding per return statement
  for_each_identifier(body, [&](const Token& tok) {
    if (tok.text != "return") return;
    const std::size_t semi = body.find(';', tok.end);
    if (semi == std::string_view::npos) return;
    const std::string_view expr = body.substr(tok.end, semi - tok.end);
    for_each_identifier(expr, [&](const Token& rt) {
      if (is_member_access(expr, rt)) return;  // .data() etc. — owner counted at its own token
      if (std::find(dying.begin(), dying.end(), rt.text) == dying.end()) return;
      const std::size_t line = line_of(e.stripped, f.body_begin + tok.begin);
      if (!flagged.insert(line).second) return;
      add(e, line,
          "'" + f.name + "' returns a view backed by '" + std::string(rt.text) +
              "', an owning buffer that dies when the function returns; return an "
              "owning type or take the buffer by reference from the caller",
          findings);
    });
  });
}

void check_member_stores(const TreeIndex& index, const FileEntry& e,
                         const FuncDef& f, std::vector<Finding>* findings) {
  std::vector<const Param*> owning;
  for (const Param& p : f.params) {
    if (p.owning_by_value && !p.name.empty()) owning.push_back(&p);
  }
  if (owning.empty()) return;
  auto is_view_member = [&](std::string_view name) {
    return std::binary_search(index.view_members.begin(), index.view_members.end(),
                              std::string(name));
  };

  for (const auto& [member, arg] : f.ctor_inits) {
    if (!is_view_member(member)) continue;
    for (const Param* p : owning) {
      if (!word_in(arg, p->name)) continue;
      add(e, f.line,
          "constructor stores a view of by-value parameter '" + p->name +
              "' into member '" + member +
              "'; the parameter's buffer dies when the constructor returns — store "
              "an owning copy or take a caller-owned reference",
          findings);
    }
  }

  if (!f.has_body) return;
  const std::string_view code = e.stripped.code;
  const std::string_view body =
      code.substr(f.body_begin, f.body_end - f.body_begin + 1);
  for_each_identifier(body, [&](const Token& tok) {
    if (!is_view_member(tok.text)) return;
    std::size_t at = 0;
    if (next_nonspace(body, tok.end, &at) != '=') return;
    if (at + 1 < body.size() && body[at + 1] == '=') return;  // comparison
    std::size_t prev_at = 0;
    const char prev = prev_nonspace(body, tok.begin, &prev_at);
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>') return;
    const std::size_t semi = body.find(';', at);
    if (semi == std::string_view::npos) return;
    const std::string_view rhs = body.substr(at + 1, semi - at - 1);
    for (const Param* p : owning) {
      if (!word_in(rhs, p->name)) continue;
      const std::size_t line = line_of(e.stripped, f.body_begin + tok.begin);
      add(e, line,
          "view member '" + std::string(tok.text) +
              "' is assigned from by-value parameter '" + p->name +
              "', whose buffer dies when '" + f.name +
              "' returns; store an owning copy or take a caller-owned reference",
          findings);
    }
  });
}

}  // namespace

void check_view_lifetime(const TreeIndex& index, std::vector<Finding>* findings) {
  for (const FileEntry& e : index.files) {
    if (!has_segment(e.display_path, "src")) continue;
    for (const FuncDef& f : e.functions) {
      if (f.ret == TypeCategory::kView && f.has_body) {
        check_view_returns(e, f, findings);
      }
      check_member_stores(index, e, f, findings);
    }
  }
}

}  // namespace storsubsim::lint
