// storsubsim — command-line front end.
//
// Produces and consumes the same artifacts the paper's pipeline used: text
// support logs and configuration snapshots, as files on disk.
//
//   storsubsim simulate --scale 0.1 --seed 7 --logs fleet.log
//       --snapshot fleet.snap [--precursors]
//   storsubsim analyze  --input fleet.log --snapshot fleet.snap
//       --report afr|burstiness|correlation|vulnerability|events
//       [--class low-end] [--exclude-h] [--csv]
//   storsubsim analyze  --input fleet.store --report afr
//   storsubsim inspect  --snapshot fleet.snap
//   storsubsim predict  --logs fleet.log --snapshot fleet.snap
//       [--threshold 3] [--window-days 14] [--horizon-days 30]
//   storsubsim store build --out fleet.store [--scale 0.1 --seed 7]
//       [--logs fleet.log --snapshot fleet.snap]
//   storsubsim store query --store fleet.store [--type disk] [--class low-end]
//       [--family F] [--from-days D] [--to-days D] [--group-by class|type|family]
//   storsubsim store stats --store fleet.store
//
// `analyze`, `inspect` and `predict` know nothing about the simulator's internals —
// they parse whatever log/snapshot files you give them, so logs produced by
// other tools (or hand-edited scenarios) work as well. `analyze --input PATH`
// sniffs the path: a columnar store (STORCOL1 magic) is mapped and the reports
// come straight off the column spans, a shard directory (STORSHARD1 MANIFEST,
// produced by `store build --shards`) is analyzed shard by shard with
// byte-identical results (see docs/STORE.md); anything else is treated as a
// text log and needs `--snapshot`. The older `--logs`/`--store` spellings
// remain as aliases and produce byte-identical output.
//
// Observability (docs/OBSERVABILITY.md): every command accepts
//   --metrics          print the metric snapshot to stderr on success
//   --trace FILE       write a Chrome trace_event JSON of recorded spans
//   --manifest FILE    write a run-manifest JSON (provenance + metrics)
// None of these change a single stdout byte — analysis output is identical
// with observability on or off, at any --threads value.
#include <algorithm>
#include <array>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/afr.h"
#include "core/analysis_render.h"
#include "core/analysis_request.h"
#include "core/burstiness.h"
#include "core/correlation.h"
#include "core/prediction.h"
#include "core/raid_vulnerability.h"
#include "core/report.h"
#include "core/sharded_build.h"
#include "core/source.h"
#include "core/store_bridge.h"
#include "log/classifier.h"
#include "log/parser.h"
#include "log/snapshot.h"
#include "model/fleet_config.h"
#include "model/time.h"
#include "obs/obs.h"
#include "replicate/replicate.h"
#include "replicate/table.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "sim/log_bridge.h"
#include "sim/precursors.h"
#include "sim/scenario.h"
#include "store/format.h"
#include "store/query.h"
#include "store/shards.h"
#include "util/parallel.h"
#include "util/rss.h"

using namespace storsubsim;

namespace {

struct Args {
  std::string command;
  std::string subcommand;  ///< second bare token, e.g. `store build`
  std::map<std::string, std::string> options;
  std::vector<std::string> flags;

  bool has_flag(const std::string& name) const {
    for (const auto& f : flags) {
      if (f == name) return true;
    }
    return false;
  }
  std::string get(const std::string& name, const std::string& fallback = "") const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& name, double fallback) const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  if (argc >= 3 && std::string(argv[2]).rfind("--", 0) != 0) args.subcommand = argv[2];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[arg] = argv[++i];
    } else {
      args.flags.push_back(arg);
    }
  }
  return args;
}

int usage() {
  std::cerr <<
      R"(usage:
  storsubsim simulate --logs FILE --snapshot FILE [--scale S] [--seed N] [--precursors]
                      [--threads N]
  storsubsim analyze  (--input FILE [--snapshot FILE] | --logs FILE --snapshot FILE | --store FILE)
                      --report afr|afr-total|burstiness|correlation|lifetime|vulnerability|events
                      [--class CLASS] [--exclude-h] [--csv]
  storsubsim analyze  --replicates FILE [--csv]
  storsubsim replicate --out FILE [--scale S] [--seed N] [--max-replicates N] [--min-replicates N]
                      [--batch B] [--ci-rel R] [--confidence C] [--csv] [--threads N]
  storsubsim inspect  --snapshot FILE [--csv]
  storsubsim predict  --logs FILE --snapshot FILE [--threshold K] [--window-days W] [--horizon-days H]
  storsubsim store build --out FILE ([--scale S] [--seed N] | --logs FILE --snapshot FILE)
  storsubsim store build --out DIR --shards N [--max-rss-mb M] [--scale S] [--seed N]
  storsubsim store query --store FILE|DIR [--type TYPE] [--class CLASS] [--family F]
                      [--from-days D] [--to-days D] [--group-by class|type|family] [--csv]
  storsubsim store stats --store FILE|DIR [--csv]
  storsubsim serve    --input FILE|DIR --socket PATH [--max-open-shards N] [--threads N]
                      [--replicates FILE]
  storsubsim client   --socket PATH
                      --endpoint afr|afr_by_class|tbf|correlation|lifetime|query|stats|replicate_summary
                      [--type TYPE] [--class CLASS] [--family F] [--from-days D]
                      [--to-days D] [--group-by class|type|family] [--csv]
observability (any command): [--metrics] [--trace FILE] [--manifest FILE]
)";
  return 2;
}

/// True when `path` starts with the columnar store magic ("STORCOL1"). Used
/// by `analyze --input` to pick the store or log/snapshot path automatically.
bool is_store_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::array<char, store::kMagic.size()> head{};
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  return in.gcount() == static_cast<std::streamsize>(head.size()) &&
         std::equal(head.begin(), head.end(), store::kMagic.begin());
}

/// True when `path` is a shard directory (contains a MANIFEST starting with
/// the STORSHARD1 magic). Analyses over it are byte-identical to the
/// equivalent single-file store.
bool is_shard_dir(const std::string& path) {
  std::ifstream in(path + "/" + std::string(store::kManifestFileName), std::ios::binary);
  if (!in) return false;
  std::string head(store::kManifestMagic.size(), '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  return in.gcount() == static_cast<std::streamsize>(head.size()) &&
         head == store::kManifestMagic;
}

bool open_shards(const std::string& dir, store::ShardStore& out) {
  const auto err = out.open(dir);
  if (!err.ok()) {
    std::cerr << "cannot open shard directory " << dir << ": " << err.describe() << "\n";
    return false;
  }
  return true;
}

int cmd_simulate(const Args& args) {
  const std::string log_path = args.get("logs");
  const std::string snap_path = args.get("snapshot");
  if (log_path.empty() || snap_path.empty()) return usage();
  const double scale = args.get_double("scale", 0.1);
  const auto seed = static_cast<std::uint64_t>(args.get_double("seed", 20080226));

  std::cerr << "simulating the standard fleet at scale " << scale << " (seed " << seed
            << ")...\n";
  auto fs = sim::run_standard(scale, seed);

  std::ofstream logs(log_path);
  if (!logs) {
    std::cerr << "cannot write " << log_path << "\n";
    return 1;
  }
  std::size_t lines = sim::write_failure_logs(logs, fs.fleet, fs.result.failures);
  if (args.has_flag("precursors")) {
    const auto precursors =
        sim::generate_precursors(fs.fleet, fs.result, sim::PrecursorParams::standard());
    lines += sim::write_precursor_logs(logs, fs.fleet, precursors);
  }
  std::ofstream snap(snap_path);
  if (!snap) {
    std::cerr << "cannot write " << snap_path << "\n";
    return 1;
  }
  log::write_snapshot(snap, fs.fleet);

  std::cerr << "wrote " << lines << " log lines to " << log_path << " and "
            << fs.fleet.systems().size() << "-system snapshot to " << snap_path << "\n";
  return 0;
}

/// Applies the `--class` / `--exclude-h` cohort selection shared by the
/// log-backed and store-backed analysis paths.
std::optional<core::Dataset> apply_cli_filter(const core::Dataset& dataset, const Args& args) {
  core::Filter filter;
  if (args.has_flag("exclude-h")) filter.exclude_family_h = true;
  const std::string cls = args.get("class");
  if (!cls.empty()) {
    const auto parsed = model::parse_system_class(cls);
    if (!parsed) {
      std::cerr << "unknown system class '" << cls << "'\n";
      return std::nullopt;
    }
    filter.system_class = parsed;
  }
  return dataset.filter(filter);
}

/// True when the invocation asks for a cohort narrower than the whole fleet
/// (the store fast paths cover only the unfiltered cohort).
bool wants_filter(const Args& args) {
  return args.has_flag("exclude-h") || !args.get("class").empty();
}

bool open_store(const std::string& path, store::EventStore& out) {
  const auto err = out.open(path);
  if (!err.ok()) {
    std::cerr << "cannot open store " << path << ": " << err.describe() << "\n";
    return false;
  }
  return true;
}

std::optional<core::Dataset> load_dataset(const Args& args,
                                          std::vector<log::LogRecord>* records_out,
                                          std::string log_path = "") {
  if (log_path.empty()) log_path = args.get("logs");
  const std::string snap_path = args.get("snapshot");
  if (log_path.empty() || snap_path.empty()) return std::nullopt;

  std::ifstream logs(log_path);
  if (!logs) {
    std::cerr << "cannot read " << log_path << "\n";
    return std::nullopt;
  }
  std::vector<log::LogRecord> records;
  const auto parse_stats = log::parse_stream(logs, records);
  std::cerr << "parsed " << parse_stats.lines_parsed << "/" << parse_stats.lines_total
            << " log lines (" << parse_stats.lines_malformed << " malformed)\n";

  std::ifstream snap(snap_path);
  if (!snap) {
    std::cerr << "cannot read " << snap_path << "\n";
    return std::nullopt;
  }
  auto snapshot = log::parse_snapshot(snap);
  if (!snapshot.ok()) {
    std::cerr << "snapshot error: " << snapshot.error << "\n";
    return std::nullopt;
  }

  auto failures = log::classify(records);
  if (records_out != nullptr) *records_out = std::move(records);
  const core::Dataset dataset(
      std::make_shared<log::Inventory>(std::move(snapshot.inventory)),
      std::move(failures));
  return apply_cli_filter(dataset, args);
}

void print(const core::TextTable& table, const Args& args) {
  if (args.has_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

int cmd_analyze(const Args& args) {
  // `--replicates FILE`: render a stored STORREP1 replication summary —
  // byte-identical to what `storsubsim replicate` printed when it wrote the
  // table, without re-simulating anything.
  const std::string replicates_path = args.get("replicates");
  if (!replicates_path.empty()) {
    replicate::ReplicateSummary summary;
    if (const auto err = replicate::read_table(replicates_path, &summary); !err.ok()) {
      std::cerr << "cannot read replicate table " << replicates_path << ": "
                << err.describe() << "\n";
      return 1;
    }
    std::cout << replicate::render_summary(summary, args.has_flag("csv"));
    return 0;
  }
  // `--input FILE` is the unified spelling: the file is sniffed for the
  // STORCOL1 magic and routed to the store or log path. `--store` / `--logs`
  // remain as aliases with byte-identical output.
  std::string store_path = args.get("store");
  std::string log_path = args.get("logs");
  const std::string input = args.get("input");
  if (!input.empty()) {
    if (!store_path.empty() || !log_path.empty()) {
      std::cerr << "--input replaces --logs/--store; pass only one spelling\n";
      return usage();
    }
    if (is_shard_dir(input) || is_store_file(input)) {
      store_path = input;
    } else {
      log_path = input;
    }
  }
  // A shard directory routes through the ShardStore backend; analyses over
  // it are byte-identical to the equivalent single-file store.
  std::string shard_dir;
  if (!store_path.empty() && is_shard_dir(store_path)) {
    shard_dir = store_path;
    store_path.clear();
  }
  const bool have_shards = !shard_dir.empty();
  const bool have_store = !store_path.empty();
  store::ShardStore shard_store;
  if (have_shards) {
    if (!open_shards(shard_dir, shard_store)) return 1;
    // analyze touches every shard; open them all now so a corrupt shard
    // surfaces as a typed error instead of a mid-analysis exception.
    if (const auto err = shard_store.open_all(); !err.ok()) {
      std::cerr << "cannot open shard directory " << shard_dir << ": " << err.describe()
                << "\n";
      return 1;
    }
  }
  store::EventStore event_store;
  if (have_store && !open_store(store_path, event_store)) return 1;
  const std::string report = args.get("report", "afr");

  // The store fast paths serve the whole-fleet cohort straight off the mapped
  // columns; a filtered cohort (or a report that joins per-event inventory)
  // goes through the reconstructed Dataset instead — same results either way.
  const bool needs_dataset = (!have_store && !have_shards) || wants_filter(args) ||
                             report == "events" || report == "vulnerability";
  std::optional<core::Dataset> dataset;
  if (needs_dataset) {
    dataset = have_shards
                  ? apply_cli_filter(core::dataset_from_shards(shard_store), args)
                  : (have_store
                         ? apply_cli_filter(core::dataset_from_store(event_store), args)
                         : load_dataset(args, nullptr, log_path));
    if (!dataset) return usage();
  }
  // One polymorphic handle for the analysis calls below: the filtered Dataset
  // when one was built, the mapped store(s) otherwise.
  const core::Source source = dataset      ? core::Source(*dataset)
                              : have_shards ? core::Source(shard_store)
                                            : core::Source(event_store);

  // The table-producing reports go through core::AnalysisRequest +
  // core::render_statistic — the same typed request and renderer the
  // storsimd serve endpoints execute, which is what makes the daemon
  // byte-identical to this offline path (docs/SERVE.md, docs/API.md).
  const bool csv = args.has_flag("csv");
  const auto statistic = core::statistic_from_report(report);
  if (statistic.has_value() && *statistic != core::StatisticId::kQuery) {
    core::AnalysisRequest request;
    if (const auto err = core::AnalysisRequest::from_params(*statistic, {}, csv, &request);
        !err.ok()) {
      std::cerr << err.message << "\n";
      return 1;
    }
    std::cout << core::render_statistic(source, request);
  } else if (report == "events") {
    // Raw classified-failure export (one row per failure, joined with the
    // inventory) — feed to R/pandas/duckdb for analyses this tool lacks.
    core::TextTable table({"time_s", "type", "disk", "system", "shelf", "raid_group",
                           "disk_model", "shelf_model", "class", "paths"});
    for (const auto& e : dataset->events()) {
      const auto& disk = dataset->disk_of(e);
      const auto& sys = dataset->system_of(e);
      table.add_row({core::fmt(e.time, 3), std::string(model::to_string(e.type)),
                     std::to_string(e.disk.value()), std::to_string(sys.id.value()),
                     std::to_string(disk.shelf.value()),
                     disk.raid_group.valid() ? std::to_string(disk.raid_group.value()) : "-",
                     model::to_string(disk.model), model::to_string(sys.shelf_model),
                     std::string(model::to_string(sys.cls)),
                     std::string(model::to_string(sys.paths))});
    }
    print(table, args);
  } else if (report == "vulnerability") {
    core::TextTable table({"window", "mode", "double incidents", "independent model",
                           "underestimation", "RAID4 defeated", "RAID6 defeated"});
    for (const bool disk_only : {true, false}) {
      for (const double hours : {6.0, 24.0, 72.0}) {
        const auto r = core::raid_vulnerability(*dataset, hours * 3600.0, disk_only);
        table.add_row({core::fmt(hours, 0) + "h", disk_only ? "disk-only" : "all-types",
                       std::to_string(r.double_failure_incidents),
                       core::fmt(r.expected_double_incidents_independent, 1),
                       core::fmt(r.underestimation_factor(), 1) + "x",
                       std::to_string(r.raid4_groups_defeated),
                       std::to_string(r.raid6_groups_defeated)});
      }
    }
    print(table, args);
  } else {
    std::cerr << "unknown report '" << report << "'\n";
    return usage();
  }
  return 0;
}

int cmd_inspect(const Args& args) {
  // Fleet overview from a snapshot alone (no failure logs needed).
  const std::string snap_path = args.get("snapshot");
  if (snap_path.empty()) return usage();
  std::ifstream snap(snap_path);
  if (!snap) {
    std::cerr << "cannot read " << snap_path << "\n";
    return 1;
  }
  auto snapshot = log::parse_snapshot(snap);
  if (!snapshot.ok()) {
    std::cerr << "snapshot error: " << snapshot.error << "\n";
    return 1;
  }
  const core::Dataset dataset(
      std::make_shared<log::Inventory>(std::move(snapshot.inventory)), {});

  core::TextTable table({"class", "systems", "shelves", "RAID groups", "disk records",
                         "disk-years", "dual-path systems"});
  for (const auto cls : model::kAllSystemClasses) {
    core::Filter f;
    f.system_class = cls;
    const auto cohort = dataset.filter(f);
    if (cohort.selected_system_count() == 0) continue;
    std::size_t dual = 0;
    for (const auto& sys : cohort.inventory().systems) {
      if (cohort.system_selected(sys.id) && sys.paths == model::PathConfig::kDualPath) {
        ++dual;
      }
    }
    table.add_row({std::string(model::to_string(cls)),
                   std::to_string(cohort.selected_system_count()),
                   std::to_string(cohort.selected_shelf_count()),
                   std::to_string(cohort.selected_raid_group_count()),
                   std::to_string(cohort.selected_disk_record_count()),
                   core::fmt(cohort.disk_exposure_years(), 0), std::to_string(dual)});
  }
  print(table, args);

  core::TextTable models({"disk model", "systems", "disk records"});
  std::map<std::string, std::pair<std::size_t, std::size_t>> by_model;
  for (const auto& sys : dataset.inventory().systems) {
    ++by_model[model::to_string(sys.disk_model)].first;
  }
  for (const auto& d : dataset.inventory().disks) {
    ++by_model[model::to_string(d.model)].second;
  }
  for (const auto& [name, counts] : by_model) {
    models.add_row({name, std::to_string(counts.first), std::to_string(counts.second)});
  }
  print(models, args);
  return 0;
}

int cmd_predict(const Args& args) {
  std::vector<log::LogRecord> records;
  const auto dataset = load_dataset(args, &records);
  if (!dataset) return usage();
  const auto precursors = sim::extract_precursors(records);
  if (precursors.empty()) {
    std::cerr << "no component-error records in the logs — simulate with --precursors\n";
    return 1;
  }

  core::PredictorConfig config;
  config.threshold = static_cast<std::size_t>(args.get_double("threshold", 3));
  config.window_seconds = args.get_double("window-days", 14.0) * model::kSecondsPerDay;
  config.horizon_seconds = args.get_double("horizon-days", 30.0) * model::kSecondsPerDay;

  core::TextTable table({"signal -> target", "alarms", "precision", "recall", "median lead",
                         "false alarms / 1000 dy"});
  const struct {
    sim::PrecursorKind signal;
    model::FailureType target;
  } pairs[] = {
      {sim::PrecursorKind::kMediumError, model::FailureType::kDisk},
      {sim::PrecursorKind::kLinkReset, model::FailureType::kPhysicalInterconnect},
      {sim::PrecursorKind::kCmdTimeout, model::FailureType::kPerformance},
  };
  for (const auto& p : pairs) {
    config.signal = p.signal;
    config.target = p.target;
    const auto r = core::evaluate_predictor(*dataset, precursors, config);
    table.add_row({std::string(sim::to_string(p.signal)) + " -> " +
                       std::string(model::to_string(p.target)),
                   std::to_string(r.alarms), core::fmt_pct(r.precision(), 1),
                   core::fmt_pct(r.recall(), 1),
                   core::fmt(r.median_lead_seconds / model::kSecondsPerDay, 1) + " days",
                   core::fmt(1000.0 * r.false_alarms_per_disk_year, 2)});
  }
  print(table, args);
  return 0;
}

/// `store build --shards N [--max-rss-mb M]`: the streaming sharded build.
/// Simulates the fleet in bounded chunks and writes a shard directory whose
/// analyses are byte-identical to the monolithic store (docs/STORE.md).
int cmd_store_build_sharded(const Args& args, const std::string& out) {
  const auto seed = static_cast<std::uint64_t>(args.get_double("seed", 20080226));
  const double scale = args.get_double("scale", 0.1);

  core::ShardedBuildOptions options;
  options.shards = static_cast<std::size_t>(args.get_double("shards", 0.0));
  options.max_rss_mb = static_cast<std::uint64_t>(args.get_double("max-rss-mb", 0.0));
  if (options.shards == 0 && options.max_rss_mb == 0) {
    std::cerr << "sharded build needs --shards N and/or --max-rss-mb M\n";
    return usage();
  }

  auto config = model::standard_fleet_config(scale, seed);
  std::cerr << "building sharded store at scale " << scale << " (seed " << seed << ")";
  if (options.max_rss_mb > 0) std::cerr << " under " << options.max_rss_mb << " MiB";
  std::cerr << "...\n";

  core::ShardedBuildResult result;
  const auto err = core::build_sharded_store(out, config, options, &result);
  if (!err.ok()) {
    std::cerr << "cannot build sharded store " << out << ": " << err.describe() << "\n";
    return 1;
  }
  std::cerr << "wrote " << result.events << "-event store (" << result.disk_records
            << " disk records) as " << result.shards << " shards to " << out << "\n";
  if (result.peak_rss_bytes > 0) {
    std::cerr << "peak RSS " << result.peak_rss_bytes / (1024 * 1024) << " MiB\n";
  }

  obs::RunManifest manifest;
  manifest.tool = "storsubsim store build";
  manifest.seed = seed;
  manifest.scale = scale;
  manifest.threads = util::thread_count();
  manifest.info.emplace_back("out", out);
  manifest.info.emplace_back("source", "simulate-sharded");
  manifest.numbers.emplace_back("events", static_cast<double>(result.events));
  manifest.numbers.emplace_back("disk_records", static_cast<double>(result.disk_records));
  manifest.numbers.emplace_back("shards", static_cast<double>(result.shards));
  manifest.numbers.emplace_back("peak_rss_bytes",
                                static_cast<double>(result.peak_rss_bytes));
  const std::string manifest_path = out + "/build.manifest.json";
  if (!obs::write_manifest(manifest_path, manifest)) {
    std::cerr << "cannot write manifest " << manifest_path << "\n";
    return 1;
  }
  return 0;
}

int cmd_store_build(const Args& args) {
  const std::string out = args.get("out");
  if (out.empty()) return usage();
  if (args.options.contains("shards") || args.options.contains("max-rss-mb")) {
    return cmd_store_build_sharded(args, out);
  }
  const std::string log_path = args.get("logs");
  const std::string snap_path = args.get("snapshot");
  const bool from_logs = !log_path.empty() && !snap_path.empty();
  // Provenance recorded in the header; unknown (0) when converting foreign
  // log/snapshot artifacts unless given explicitly.
  const auto seed = static_cast<std::uint64_t>(args.get_double("seed", from_logs ? 0 : 20080226));
  const double scale = args.get_double("scale", from_logs ? 0.0 : 0.1);

  std::optional<core::SimulationDataset> run;
  if (from_logs) {
    std::ifstream logs(log_path);
    if (!logs) {
      std::cerr << "cannot read " << log_path << "\n";
      return 1;
    }
    std::vector<log::LogRecord> records;
    const auto parse_stats = log::parse_stream(logs, records);
    std::ifstream snap(snap_path);
    if (!snap) {
      std::cerr << "cannot read " << snap_path << "\n";
      return 1;
    }
    auto snapshot = log::parse_snapshot(snap);
    if (!snapshot.ok()) {
      std::cerr << "snapshot error: " << snapshot.error << "\n";
      return 1;
    }
    log::ClassifierStats cstats;
    auto failures = log::classify(records, {}, &cstats);
    core::PipelineStats pipeline;
    pipeline.log_lines_written = parse_stats.lines_total;
    pipeline.log_lines_parsed = parse_stats.lines_parsed;
    pipeline.raid_records = cstats.raid_records;
    pipeline.failures_classified = failures.size();
    pipeline.duplicates_dropped = cstats.duplicates_dropped;
    pipeline.missing_disk_dropped = cstats.missing_disk_dropped;
    run.emplace(core::SimulationDataset{
        core::Dataset(std::make_shared<log::Inventory>(std::move(snapshot.inventory)),
                      std::move(failures)),
        sim::SimCounters{}, pipeline});
  } else {
    std::cerr << "simulating the standard fleet at scale " << scale << " (seed " << seed
              << ")...\n";
    run.emplace(core::simulate_and_analyze(model::standard_fleet_config(scale, seed)));
  }

  const auto err = core::write_store(out, *run, seed, scale);
  if (!err.ok()) {
    std::cerr << "cannot write store " << out << ": " << err.describe() << "\n";
    return 1;
  }
  std::cerr << "wrote " << run->dataset.events().size() << "-event store ("
            << run->dataset.inventory().disks.size() << " disk records) to " << out << "\n";

  // Every store build leaves a provenance manifest beside the artifact, so a
  // store file can always be traced back to the run that produced it.
  obs::RunManifest manifest;
  manifest.tool = "storsubsim store build";
  manifest.seed = seed;
  manifest.scale = scale;
  manifest.threads = util::thread_count();
  manifest.info.emplace_back("out", out);
  manifest.info.emplace_back("source", from_logs ? "logs" : "simulate");
  manifest.numbers.emplace_back("events",
                                static_cast<double>(run->dataset.events().size()));
  manifest.numbers.emplace_back(
      "disk_records", static_cast<double>(run->dataset.inventory().disks.size()));
  manifest.numbers.emplace_back("peak_rss_bytes",
                                static_cast<double>(util::peak_rss_bytes()));
  const std::string manifest_path = out + ".manifest.json";
  if (!obs::write_manifest(manifest_path, manifest)) {
    std::cerr << "cannot write manifest " << manifest_path << "\n";
    return 1;
  }
  return 0;
}

int cmd_store_query(const Args& args) {
  const std::string path = args.get("store");
  if (path.empty()) return usage();
  const bool sharded = is_shard_dir(path);
  store::ShardStore shards;
  store::EventStore es;
  if (sharded) {
    if (!open_shards(path, shards)) return 1;
  } else if (!open_store(path, es)) {
    return 1;
  }

  // Flags travel as raw strings into the one shared validator
  // (core::AnalysisRequest::from_params) — the daemon runs the identical
  // code on its JSON params, so a bad value gets the same message here and
  // over the socket.
  core::RequestParams params;
  params.type = args.get("type");
  params.cls = args.get("class");
  params.family = args.get("family");
  params.group_by = args.get("group-by");
  if (args.options.contains("from-days")) {
    params.from_days = args.get_double("from-days", 0.0);
  }
  if (args.options.contains("to-days")) {
    params.to_days = args.get_double("to-days", 0.0);
  }
  core::AnalysisRequest request;
  if (const auto err = core::AnalysisRequest::from_params(
          core::StatisticId::kQuery, params, args.has_flag("csv"), &request);
      !err.ok()) {
    std::cerr << err.message << "\n";
    return 1;
  }
  const store::Query& query = request.query;

  store::QueryResult result;
  if (sharded) {
    if (const auto err = store::run_query(shards, query, &result); !err.ok()) {
      std::cerr << "query over " << path << " failed: " << err.describe() << "\n";
      return 1;
    }
  } else {
    result = store::run_query(es, query);
  }
  std::cout << core::render_query_result(result, args.has_flag("csv"));
  std::cerr << "scanned " << result.stats.rows_scanned << " rows in "
            << result.stats.blocks_scanned << " blocks (" << result.stats.blocks_pruned
            << " pruned by the time index), matched " << result.stats.rows_matched << "\n";
  return 0;
}

/// `store stats` over a shard directory: MANIFEST summary plus one row per
/// shard, without fully opening any shard.
int cmd_store_stats_sharded(const Args& args, const std::string& path) {
  store::ShardStore shards;
  if (!open_shards(path, shards)) return 1;
  const auto& m = shards.manifest();

  core::TextTable header({"field", "value"});
  header.add_row({"manifest version", std::to_string(m.version)});
  header.add_row({"shards", std::to_string(shards.shard_count())});
  header.add_row({"seed", std::to_string(m.seed)});
  header.add_row({"scale", core::fmt(m.scale, 3)});
  header.add_row({"horizon (days)", core::fmt(m.horizon_seconds / model::kSecondsPerDay, 1)});
  header.add_row({"events", std::to_string(m.events)});
  header.add_row({"systems", std::to_string(m.systems)});
  header.add_row({"shelves", std::to_string(m.shelves)});
  header.add_row({"disk records", std::to_string(m.disks_total)});
  header.add_row({"RAID groups", std::to_string(m.raid_groups)});
  header.add_row({"disk-years", core::fmt(m.exposure.total_disk_years, 0)});
  header.add_row({"log lines written", std::to_string(m.meta.log_lines_written)});
  header.add_row({"log lines parsed", std::to_string(m.meta.log_lines_parsed)});
  header.add_row({"failures classified", std::to_string(m.meta.failures_classified)});
  header.add_row({"duplicates dropped", std::to_string(m.meta.duplicates_dropped)});
  if (m.peak_rss_bytes > 0) {
    header.add_row({"build peak RSS (MiB)", std::to_string(m.peak_rss_bytes / (1024 * 1024))});
  }
  print(header, args);

  core::TextTable per_shard(
      {"shard", "systems", "sys range", "disk records", "events", "bytes"});
  for (std::size_t i = 0; i < shards.shard_count(); ++i) {
    const auto& info = shards.info(i);
    per_shard.add_row({info.file, std::to_string(info.systems),
                       std::to_string(info.sys_begin) + ".." + std::to_string(info.sys_end),
                       std::to_string(info.disks_total), std::to_string(info.events),
                       std::to_string(info.file_size)});
  }
  print(per_shard, args);
  return 0;
}

int cmd_store_stats(const Args& args) {
  const std::string path = args.get("store");
  if (path.empty()) return usage();
  if (is_shard_dir(path)) return cmd_store_stats_sharded(args, path);
  store::EventStore es;
  if (!open_store(path, es)) return 1;
  const auto& h = es.header();
  const auto& m = es.meta();
  const auto& exposure = es.exposure();

  core::TextTable header({"field", "value"});
  header.add_row({"format version", std::to_string(h.format_version)});
  header.add_row({"file size", std::to_string(h.file_size)});
  header.add_row({"seed", std::to_string(h.seed)});
  header.add_row({"scale", core::fmt(h.scale, 3)});
  header.add_row({"horizon (days)", core::fmt(h.horizon_seconds / model::kSecondsPerDay, 1)});
  header.add_row({"events", std::to_string(h.event_count)});
  header.add_row({"systems", std::to_string(h.system_count)});
  header.add_row({"shelves", std::to_string(h.shelf_count)});
  header.add_row({"disk records", std::to_string(h.disk_count)});
  header.add_row({"RAID groups", std::to_string(h.raid_group_count)});
  header.add_row({"disk-years", core::fmt(exposure.total_disk_years, 0)});
  header.add_row({"log lines written", std::to_string(m.log_lines_written)});
  header.add_row({"log lines parsed", std::to_string(m.log_lines_parsed)});
  header.add_row({"failures classified", std::to_string(m.failures_classified)});
  header.add_row({"duplicates dropped", std::to_string(m.duplicates_dropped)});
  print(header, args);

  core::TextTable shards({"class", "events", "blocks", "systems", "disk-years"});
  for (const auto cls : model::kAllSystemClasses) {
    const std::size_t c = model::index_of(cls);
    shards.add_row({std::string(model::to_string(cls)),
                    std::to_string(es.events(cls).size()),
                    std::to_string(es.blocks(cls).size()),
                    std::to_string(exposure.class_system_count[c]),
                    core::fmt(exposure.class_disk_years[c], 0)});
  }
  print(shards, args);
  return 0;
}

/// `storsubsim replicate`: the Monte Carlo replication driver
/// (docs/REPLICATION.md). Runs keyed-substream replicates of the whole
/// simulate -> classify pipeline, prints the CI summary, and writes the
/// STORREP1 table plus a provenance manifest beside it.
int cmd_replicate(const Args& args) {
  const std::string out = args.get("out");
  if (out.empty()) return usage();

  replicate::ReplicateOptions options;
  options.scale = args.get_double("scale", options.scale);
  options.seed = static_cast<std::uint64_t>(args.get_double("seed", 20080226));
  options.max_replicates = static_cast<std::size_t>(
      args.get_double("max-replicates", static_cast<double>(options.max_replicates)));
  options.min_replicates = static_cast<std::size_t>(
      args.get_double("min-replicates", static_cast<double>(options.min_replicates)));
  options.batch =
      static_cast<std::size_t>(args.get_double("batch", static_cast<double>(options.batch)));
  options.confidence = args.get_double("confidence", options.confidence);
  options.ci_rel = args.get_double("ci-rel", options.ci_rel);

  std::cerr << "replicating the standard fleet at scale " << options.scale << " (seed "
            << options.seed << ", up to " << options.max_replicates << " replicates)...\n";
  const auto summary = replicate::run_replication(options);
  if (const auto err = replicate::write_table(out, summary); !err.ok()) {
    std::cerr << "cannot write replicate table " << out << ": " << err.describe() << "\n";
    return 1;
  }
  std::cout << replicate::render_summary(summary, args.has_flag("csv"));
  std::cerr << "wrote " << summary.replicates << "-replicate table to " << out << " ("
            << replicate::to_string(summary.stop_reason) << ")\n";

  // Replicate-mode provenance beside the artifact (same pattern as store
  // build): which substream seeded the replicates, how many ran, and why
  // the run stopped — enough to reproduce or audit the table.
  std::size_t converged = 0;
  std::size_t min_stopped_at = 0;
  for (const auto& stat : summary.stats) {
    if (stat.stopped_at == 0) continue;
    ++converged;
    if (min_stopped_at == 0 || stat.stopped_at < min_stopped_at) {
      min_stopped_at = stat.stopped_at;
    }
  }
  obs::RunManifest manifest;
  manifest.tool = "storsubsim replicate";
  manifest.seed = options.seed;
  manifest.scale = options.scale;
  manifest.threads = util::thread_count();
  manifest.info.emplace_back("out", out);
  manifest.info.emplace_back("seed_stream", std::string(replicate::kSeedStream));
  manifest.info.emplace_back("stop_reason",
                             std::string(replicate::to_string(summary.stop_reason)));
  manifest.numbers.emplace_back("replicates", static_cast<double>(summary.replicates));
  manifest.numbers.emplace_back("max_replicates",
                                static_cast<double>(options.max_replicates));
  manifest.numbers.emplace_back("ci_rel", options.ci_rel);
  manifest.numbers.emplace_back("converged_statistics", static_cast<double>(converged));
  manifest.numbers.emplace_back("min_stopped_at", static_cast<double>(min_stopped_at));
  manifest.numbers.emplace_back("peak_rss_bytes",
                                static_cast<double>(util::peak_rss_bytes()));
  const std::string manifest_path = out + ".manifest.json";
  if (!obs::write_manifest(manifest_path, manifest)) {
    std::cerr << "cannot write manifest " << manifest_path << "\n";
    return 1;
  }
  return 0;
}

int cmd_store(const Args& args) {
  if (args.subcommand == "build") return cmd_store_build(args);
  if (args.subcommand == "query") return cmd_store_query(args);
  if (args.subcommand == "stats") return cmd_store_stats(args);
  return usage();
}

// --- storsimd (docs/SERVE.md) -----------------------------------------------

/// Drain self-pipe fd for the signal handler; -1 while no daemon runs.
std::atomic<int> g_serve_drain_fd{-1};

/// SIGINT/SIGTERM → one byte down the daemon's drain pipe. write() is
/// async-signal-safe; everything else happens on the serve thread.
void serve_signal_handler(int /*signum*/) {
  const int fd = g_serve_drain_fd.load();
  if (fd >= 0) {
    const char byte = 'd';
    const ssize_t rc = write(fd, &byte, 1);
    static_cast<void>(rc);
  }
}

int cmd_serve(const Args& args) {
  serve::ServeOptions options;
  options.input = args.get("input");
  options.socket_path = args.get("socket");
  if (options.input.empty() || options.socket_path.empty()) return usage();
  options.max_open_shards =
      static_cast<std::size_t>(args.get_double("max-open-shards", 0.0));
  options.threads = static_cast<unsigned>(args.get_double("threads", 0.0));
  options.replicates = args.get("replicates");

  serve::Daemon daemon;
  if (const auto err = daemon.start(options); !err.ok()) {
    std::cerr << "cannot start storsimd: " << err.describe() << "\n";
    return 1;
  }
  g_serve_drain_fd.store(daemon.drain_signal_fd());
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::cerr << "storsimd serving " << options.input
            << (daemon.sharded() ? " (sharded)" : "") << " on "
            << options.socket_path << "\n";
  const auto err = daemon.serve();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_drain_fd.store(-1);
  if (!err.ok()) {
    std::cerr << "storsimd failed: " << err.describe() << "\n";
    return 1;
  }
  std::cerr << "storsimd drained\n";
  return 0;
}

int cmd_client(const Args& args) {
  const std::string socket_path = args.get("socket");
  serve::Request request;
  request.endpoint = args.get("endpoint");
  if (socket_path.empty() || request.endpoint.empty()) return usage();
  request.csv = args.has_flag("csv");
  request.params.type = args.get("type");
  request.params.cls = args.get("class");
  request.params.family = args.get("family");
  request.params.group_by = args.get("group-by");
  if (args.options.contains("from-days")) {
    request.params.from_days = args.get_double("from-days", 0.0);
  }
  if (args.options.contains("to-days")) {
    request.params.to_days = args.get_double("to-days", 0.0);
  }

  serve::Client client;
  if (const auto err = client.connect(socket_path); !err.ok()) {
    std::cerr << "cannot reach storsimd: " << err.describe() << "\n";
    return 1;
  }
  serve::Response response;
  if (const auto err = client.request(request, &response); !err.ok()) {
    std::cerr << "request failed: " << err.describe() << "\n";
    return 1;
  }
  if (!response.ok) {
    std::cerr << "daemon error [" << response.error_code << "]: "
              << response.message << "\n";
    return 1;
  }
  // The table bytes are exactly what the offline command prints to stdout.
  std::cout << response.table;
  return 0;
}

int dispatch(const Args& args) {
  if (args.command == "simulate") return cmd_simulate(args);
  if (args.command == "analyze") return cmd_analyze(args);
  if (args.command == "inspect") return cmd_inspect(args);
  if (args.command == "predict") return cmd_predict(args);
  if (args.command == "replicate") return cmd_replicate(args);
  if (args.command == "store") return cmd_store(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "client") return cmd_client(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  // 0 = auto (STORSIM_THREADS env var, else hardware concurrency). Results
  // are identical for any thread count; see docs/performance.md.
  util::set_thread_count(
      static_cast<unsigned>(args.get_double("threads", 0.0)));

  // Observability is opt-in and side-channel only: stdout (the analysis
  // output) carries the same bytes whether these flags are set or not.
  const std::string trace_path = args.get("trace");
  if (!trace_path.empty()) obs::set_tracing_enabled(true);

  const int rc = dispatch(args);
  if (rc != 0) return rc;

  if (!trace_path.empty() && !obs::write_trace_json(trace_path)) {
    std::cerr << "cannot write trace " << trace_path << "\n";
    return 1;
  }
  const std::string manifest_path = args.get("manifest");
  if (!manifest_path.empty()) {
    obs::RunManifest manifest;
    manifest.tool = "storsubsim " + args.command +
                    (args.subcommand.empty() ? "" : " " + args.subcommand);
    manifest.seed = static_cast<std::uint64_t>(args.get_double("seed", 0.0));
    manifest.scale = args.get_double("scale", 0.0);
    manifest.threads = util::thread_count();
    for (const char* key :
         {"logs", "snapshot", "store", "input", "out", "report", "replicates"}) {
      const std::string value = args.get(key);
      if (!value.empty()) manifest.info.emplace_back(key, value);
    }
    // Peak RSS of the whole run (VmHWM; 0 where the platform hides it), so
    // every manifest records the memory footprint alongside the timings.
    manifest.numbers.emplace_back("peak_rss_bytes",
                                  static_cast<double>(util::peak_rss_bytes()));
    if (!obs::write_manifest(manifest_path, manifest)) {
      std::cerr << "cannot write manifest " << manifest_path << "\n";
      return 1;
    }
  }
  if (args.has_flag("metrics")) {
    std::cerr << obs::registry().snapshot().to_text();
  }
  return 0;
}
