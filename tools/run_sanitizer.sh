#!/usr/bin/env sh
# Build a sanitizer preset and run the suite that preset is meant to audit.
#
#   tools/run_sanitizer.sh tsan  [extra ctest args...]
#   tools/run_sanitizer.sh asan  [extra ctest args...]   # alias for asan-ubsan
#   tools/run_sanitizer.sh ubsan [extra ctest args...]   # alias for asan-ubsan
#
# tsan      — races the fleet-parallel execution layer: thread-pool, simulator,
#             and stats unit tests under ThreadSanitizer, then the cross-
#             thread-count determinism tests at 1 and 8 workers. Any data race
#             in the parallel shelf/system fan-out, the sharded log pipeline,
#             or the bootstrap replicate split fails the script.
# asan/ubsan — the full ctest suite under AddressSanitizer + UBSan with
#             -fno-sanitize-recover=all, so any heap error, leak, signed
#             overflow, or container overflow aborts the offending test.
#
# See docs/static-analysis.md for how this fits the verify loop.
set -eu

if [ "$#" -lt 1 ]; then
  echo "usage: $0 {tsan|asan|ubsan|asan-ubsan} [extra ctest args...]" >&2
  exit 2
fi

mode="$1"
shift

case "$mode" in
  tsan) preset=tsan ;;
  asan | ubsan | asan-ubsan) preset=asan-ubsan ;;
  *)
    echo "$0: unknown sanitizer '$mode' (expected tsan, asan, ubsan, or asan-ubsan)" >&2
    exit 2
    ;;
esac

cd "$(dirname "$0")/.."

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"

# The lint gate is milliseconds and the instrumented build just produced a
# fresh storsim_lint; run it so a sanitizer pass cannot green-light a tree
# the default verify loop would reject.
"./build-${preset}/tools/storsim_lint" --check --root . src bench tests

run_ctest() {
  ctest --test-dir "build-${preset}" --output-on-failure "$@"
}

if [ "$preset" = tsan ]; then
  # Unit tests for the parallel substrate and everything that fans out on it.
  run_ctest -R 'ThreadPool|ParallelFor|ThreadConfig'
  run_ctest -R 'Simulator\.|Bootstrap'

  # Observability registry and trace buffers: relaxed per-thread shard writes
  # merged by snapshot() — exactly the lock-free fast path TSan audits. The
  # Determinism tests drive the full pipeline at 1/4/8 workers with the obs
  # layer recording throughout.
  run_ctest -R 'Registry\.|Trace\.|Span\.|Determinism\.'

  # storsimd: 16 concurrent clients against real connection threads, the
  # request pool, and the shard LRU — the hottest lock choreography in the
  # tree (pin/evict vs. mmap teardown, drain vs. in-flight requests).
  run_ctest -R 'ServeSuite\.'

  # Determinism contract under contention and with an oversubscribed pool:
  # the invariance tests internally compare 1-thread vs 4-thread runs; running
  # them with the pool default pinned to 1 and then 8 exercises both the
  # inline path and heavy oversubscription on small machines.
  for threads in 1 8; do
    echo "== determinism tests with STORSIM_THREADS=${threads} =="
    STORSIM_THREADS="${threads}" run_ctest \
      -R 'BitIdenticalAcrossThreadCounts' "$@"
  done
  echo "TSan suite passed."
else
  # Leak checking is on by default under ASan; keep it that way and fail hard
  # on any UB diagnostic.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    run_ctest "$@"
  echo "ASan/UBSan suite passed."
fi
