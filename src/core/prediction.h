// Failure prediction from component errors — the paper's proposed future
// work ("design storage failure prediction algorithms based on component
// errors"), built and evaluated on the simulated fleet.
//
// The predictor family is the one real storage stacks deploy (e.g. the
// proactive fail-out the paper mentions in §2.3): raise an alarm for a disk
// when at least `threshold` component errors of a given kind land within a
// trailing `window`. An alarm is a true prediction when the targeted failure
// type strikes that disk within the prediction `horizon`.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "sim/precursors.h"

namespace storsubsim::core {

/// Two deployable predictor families:
///  * count threshold — alarm when >= k errors land in a trailing window
///    (simple, what SMART-style fail-out rules use);
///  * EWMA rate — exponentially-weighted error-rate estimate crossing a
///    threshold (smoother, less sensitive to window edges).
enum class PredictorKind { kCountThreshold, kEwmaRate };

struct PredictorConfig {
  PredictorKind kind = PredictorKind::kCountThreshold;
  sim::PrecursorKind signal = sim::PrecursorKind::kMediumError;
  model::FailureType target = model::FailureType::kDisk;

  // --- count-threshold family ---
  /// Alarm when >= threshold signal events land within `window_seconds`.
  std::size_t threshold = 3;
  double window_seconds = 14.0 * model::kSecondsPerDay;

  // --- EWMA-rate family ---
  /// Decay time constant of the rate estimator.
  double ewma_tau_days = 7.0;
  /// Alarm when the estimated rate exceeds this many events per day.
  double rate_threshold_per_day = 0.35;

  /// An alarm is true if the target failure hits the disk within this long.
  double horizon_seconds = 30.0 * model::kSecondsPerDay;
};

struct PredictionOutcome {
  PredictorConfig config;

  std::size_t alarms = 0;
  std::size_t true_alarms = 0;
  std::size_t failures_total = 0;      ///< target failures in the dataset
  std::size_t failures_predicted = 0;  ///< preceded by an alarm within horizon

  /// Median time from the earliest in-horizon alarm to the failure.
  double median_lead_seconds = 0.0;
  /// Nuisance rate: alarms that predicted nothing, per disk-year.
  double false_alarms_per_disk_year = 0.0;

  double precision() const {
    return alarms == 0 ? 0.0
                       : static_cast<double>(true_alarms) / static_cast<double>(alarms);
  }
  double recall() const {
    return failures_total == 0 ? 0.0
                               : static_cast<double>(failures_predicted) /
                                     static_cast<double>(failures_total);
  }
};

/// Evaluates one predictor over the dataset's failure history and the
/// precursor stream. Alarms re-arm after each target failure of the disk or
/// once the window count falls back below the threshold.
PredictionOutcome evaluate_predictor(const Dataset& dataset,
                                     std::span<const sim::PrecursorEvent> precursors,
                                     const PredictorConfig& config);

/// Sweeps the alarm threshold (the precision/recall trade-off curve).
std::vector<PredictionOutcome> threshold_sweep(
    const Dataset& dataset, std::span<const sim::PrecursorEvent> precursors,
    PredictorConfig base, std::span<const std::size_t> thresholds);

}  // namespace storsubsim::core
