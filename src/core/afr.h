// Annualized failure rates with exposure-time accounting.
//
// AFR = events / disk-years x 100%, where a disk-year is accrued only while
// a disk record is actually installed inside the study window — exactly how
// the paper accounts for replaced disks ("we account for that in our
// analysis by calculating the life time of each individual disk", Table 1).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/source.h"
#include "stats/intervals.h"
#include "store/reader.h"

namespace storsubsim::core {

struct AfrBreakdown {
  std::string label;
  double disk_years = 0.0;
  std::array<std::size_t, 4> events{};  // indexed by FailureType

  std::size_t total_events() const;
  /// AFR contribution of one failure type, percent per disk-year.
  double afr_pct(model::FailureType type) const;
  /// Whole-subsystem AFR (all four types), percent per disk-year.
  double total_afr_pct() const;
  /// Fraction of subsystem failures of this type, in [0, 1].
  double share(model::FailureType type) const;
  /// Garwood (exact Poisson) CI on one type's AFR percentage.
  stats::Interval afr_ci(model::FailureType type, double confidence) const;
};

/// AFR of the whole cohort — the unified entry point. Dataset-backed
/// sources walk the in-memory events; store-backed sources read the column
/// spans and the pre-computed exposure table, which the writer accumulated
/// in the same order as Dataset::disk_exposure_years — the two paths are
/// bit-identical (pinned by tests/core/source_test.cc).
AfrBreakdown compute_afr(const Source& source, std::string label = {});

/// AFR broken down by system class (paper Figure 4). Classes with no
/// systems are skipped identically on both backends.
std::vector<AfrBreakdown> afr_by_class(const Source& source);

/// AFR of one store event span with an explicit cohort denominator (the
/// store-query aggregation path; no Dataset equivalent).
AfrBreakdown compute_afr(const store::EventView& events, double disk_years,
                         std::string label = {});

// The pre-Source per-backend overloads (compute_afr(Dataset&), ...) were
// retired in the AnalysisRequest redesign; pass any backend through the
// implicit Source conversions above. storsim_lint's analysis-overload rule
// rejects reintroduction (docs/static-analysis.md).

/// AFR by disk model within one class+shelf cohort (paper Figure 5 panels).
std::vector<AfrBreakdown> afr_by_disk_model(const Dataset& dataset);

/// AFR by shelf enclosure model within a cohort (paper Figure 6 panels).
std::vector<AfrBreakdown> afr_by_shelf_model(const Dataset& dataset);

/// AFR by path configuration (paper Figure 7 panels).
std::vector<AfrBreakdown> afr_by_path_config(const Dataset& dataset);

/// Cross-environment stability of a statistic (paper Finding 4): for each
/// disk model appearing in >= 2 (class, shelf-model) environments, the mean,
/// standard deviation and relative std-dev of the per-environment values.
struct StabilityRow {
  std::string disk_model;
  std::size_t environments = 0;
  double mean_disk_afr = 0.0;
  double rel_stddev_disk_afr = 0.0;  ///< stddev / mean of the disk-failure AFR
  double mean_subsystem_afr = 0.0;
  double rel_stddev_subsystem_afr = 0.0;
};

std::vector<StabilityRow> afr_stability_by_disk_model(const Dataset& dataset);

}  // namespace storsubsim::core
