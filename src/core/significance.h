// Cohort comparisons with statistical significance (paper Figures 6 and 7:
// shelf-model and multipathing effects on physical interconnect failures,
// significant at 99.5-99.9% confidence).
#pragma once

#include <string>

#include "core/afr.h"
#include "core/dataset.h"
#include "stats/hypothesis.h"
#include "stats/intervals.h"

namespace storsubsim::core {

/// Poisson-rate z-test for two cohorts' per-type AFR: events k over exposure
/// E per cohort. Returned as a TTestResult (statistic + two-sided p).
stats::TTestResult rate_comparison_test(std::size_t events_a, double exposure_a_years,
                                        std::size_t events_b, double exposure_b_years);

struct CohortComparison {
  AfrBreakdown a;
  AfrBreakdown b;
  model::FailureType focus = model::FailureType::kPhysicalInterconnect;
  stats::TTestResult focus_test;  ///< rate test on the focus failure type
  stats::Interval focus_ci_a;     ///< CI on cohort A's focus AFR (percent)
  stats::Interval focus_ci_b;

  /// Relative reduction of the focus AFR going from A to B, in [0, 1].
  double focus_reduction() const;
  /// Relative reduction of the whole-subsystem AFR going from A to B.
  double total_reduction() const;
  bool significant_at(double confidence) const {
    return focus_test.significant_at(confidence);
  }
};

/// Compares two cohorts on one failure type at the given CI confidence.
CohortComparison compare_cohorts(const Dataset& cohort_a, std::string label_a,
                                 const Dataset& cohort_b, std::string label_b,
                                 model::FailureType focus, double ci_confidence);

}  // namespace storsubsim::core
