#include "core/pipeline.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "log/classifier.h"
#include "log/line_writer.h"
#include "log/parser.h"
#include "obs/obs.h"
#include "sim/log_bridge.h"
#include "util/parallel.h"

namespace storsubsim::core {

namespace {

/// Rough bytes-per-failure for pre-sizing a shard's log buffer: chains are
/// 3-6 lines of ~60-190 characters (see log/emitter.cc tables).
constexpr std::size_t kLogBytesPerFailure = 768;

/// One shard's emit -> parse -> classify round-trip. The emitter, parser and
/// classifier are stateless across records except for the classifier's
/// (disk, type) de-duplication window — and a disk lives in exactly one
/// system, so sharding by system keeps every dedup decision within a shard.
///
/// The whole trip happens in one retained text buffer: the emitter appends
/// rendered lines to it, the parser walks it yielding views that alias it,
/// and the classifier consumes the views — the buffer outlives all of them
/// (it dies when this function returns, after classification).
struct ShardOutput {
  std::vector<log::ClassifiedFailure> failures;
  PipelineStats stats;
};

ShardOutput roundtrip_shard(const model::Fleet& fleet,
                            std::span<const sim::SimFailure> failures) {
  ShardOutput out;

  {
    obs::Span span("pipeline.emit");
    log::LineWriter log_text(failures.size() * kLogBytesPerFailure);
    out.stats.log_lines_written = sim::write_failure_logs(log_text, fleet, failures);
    out.stats.stage_seconds.emit = span.stop();

    obs::Span parse_span("pipeline.parse");
    std::vector<log::LogView> records;
    const log::ParseStats parse_stats = log::parse_text(log_text.view(), records);
    out.stats.log_lines_parsed = parse_stats.lines_parsed;
    out.stats.stage_seconds.parse = parse_span.stop();

    obs::Span classify_span("pipeline.classify");
    log::ClassifierStats classifier_stats;
    out.failures = log::classify(std::span<const log::LogView>(records),
                                 log::ClassifierOptions{}, &classifier_stats);
    out.stats.raid_records = classifier_stats.raid_records;
    out.stats.duplicates_dropped = classifier_stats.duplicates_dropped;
    out.stats.missing_disk_dropped = classifier_stats.missing_disk_dropped;
    out.stats.failures_classified = out.failures.size();
    out.stats.stage_seconds.classify = classify_span.stop();
  }

  STORSIM_OBS_COUNTER(c_classified, "pipeline.failures_classified",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_classified, out.stats.failures_classified);
  return out;
}

void accumulate(PipelineStats& into, const PipelineStats& shard) {
  into.log_lines_written += shard.log_lines_written;
  into.log_lines_parsed += shard.log_lines_parsed;
  into.raid_records += shard.raid_records;
  into.failures_classified += shard.failures_classified;
  into.duplicates_dropped += shard.duplicates_dropped;
  into.missing_disk_dropped += shard.missing_disk_dropped;
  into.stage_seconds.emit += shard.stage_seconds.emit;
  into.stage_seconds.parse += shard.stage_seconds.parse;
  into.stage_seconds.classify += shard.stage_seconds.classify;
}

}  // namespace

Dataset dataset_via_logs(const model::Fleet& fleet, const sim::SimResult& result,
                         PipelineStats* stats) {
  PipelineStats local;

  // The config snapshot is one global artifact; round-trip it serially
  // through a string buffer.
  log::LineWriter snapshot_text;
  log::write_snapshot(snapshot_text, fleet);
  auto snapshot = log::parse_snapshot(snapshot_text.view());
  if (!snapshot.ok()) {
    throw std::runtime_error(
        std::string("pipeline: snapshot round-trip failed: ").append(snapshot.error));
  }

  const std::size_t n_systems = fleet.systems().size();
  std::size_t shards = std::min<std::size_t>(util::thread_count(),
                                             n_systems == 0 ? 1 : n_systems);
  if (result.failures.size() < 2048) shards = 1;  // not worth the fan-out
  STORSIM_OBS_COUNTER(c_shards, "pipeline.shards",
                      ::storsubsim::obs::Stability::kSchedulingDependent);
  STORSIM_OBS_ADD(c_shards, shards);

  std::vector<log::ClassifiedFailure> classified;
  if (shards <= 1) {
    ShardOutput out = roundtrip_shard(fleet, result.failures);
    classified = std::move(out.failures);
    local = out.stats;
  } else {
    // Partition failures by contiguous system ranges (shard s owns systems
    // [s*n/S, (s+1)*n/S)), preserving detection order within each bucket.
    std::vector<std::uint32_t> shard_of_system(n_systems);
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = n_systems * s / shards;
      const std::size_t end = n_systems * (s + 1) / shards;
      for (std::size_t sys = begin; sys < end; ++sys) {
        shard_of_system[sys] = static_cast<std::uint32_t>(s);
      }
    }
    std::vector<std::vector<sim::SimFailure>> buckets(shards);
    for (auto& b : buckets) b.reserve(result.failures.size() / shards + 1);
    for (const auto& f : result.failures) {
      buckets[shard_of_system[f.system.value()]].push_back(f);
    }

    std::vector<ShardOutput> outputs(shards);
    util::parallel_for(shards, [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        outputs[s] = roundtrip_shard(fleet, buckets[s]);
      }
    });

    std::size_t total = 0;
    for (const auto& out : outputs) total += out.failures.size();
    classified.reserve(total);
    for (auto& out : outputs) {
      classified.insert(classified.end(), out.failures.begin(), out.failures.end());
      accumulate(local, out.stats);
    }
    // Restore the classifier's global output order (time, disk, type) so the
    // sharded pipeline is bit-identical to the serial one.
    obs::Span sort_span("pipeline.sort");
    std::sort(classified.begin(), classified.end(),
              [](const log::ClassifiedFailure& a, const log::ClassifiedFailure& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.disk != b.disk) return a.disk < b.disk;
                return static_cast<int>(a.type) < static_cast<int>(b.type);
              });
    local.stage_seconds.sort = sort_span.stop();
  }

  if (stats != nullptr) *stats = local;
  return Dataset(std::make_shared<log::Inventory>(std::move(snapshot.inventory)),
                 std::move(classified));
}

Dataset dataset_in_memory(const model::Fleet& fleet, const sim::SimResult& result) {
  std::vector<FailureEvent> events;
  events.reserve(result.failures.size());
  for (const auto& f : result.failures) {
    events.push_back(FailureEvent{f.detect_time, f.disk, f.system, f.type});
  }
  return Dataset(std::make_shared<log::Inventory>(log::inventory_from_fleet(fleet)),
                 std::move(events));
}

SimulationDataset simulate_and_analyze(const model::FleetConfig& config,
                                       const sim::SimParams& params, bool through_text_logs) {
  obs::Span sim_span("pipeline.simulate");
  sim::FleetSimulation simulation = sim::simulate_fleet(config, params);
  const double simulate_seconds = sim_span.stop();
  PipelineStats pipeline;
  Dataset dataset = through_text_logs
                        ? dataset_via_logs(simulation.fleet, simulation.result, &pipeline)
                        : dataset_in_memory(simulation.fleet, simulation.result);
  pipeline.stage_seconds.simulate = simulate_seconds;
  return SimulationDataset{std::move(dataset), simulation.result.counters, pipeline};
}

}  // namespace storsubsim::core
