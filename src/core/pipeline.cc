#include "core/pipeline.h"

#include <memory>
#include <sstream>
#include <stdexcept>

#include "log/classifier.h"
#include "log/parser.h"
#include "sim/log_bridge.h"

namespace storsubsim::core {

Dataset dataset_via_logs(const model::Fleet& fleet, const sim::SimResult& result,
                         PipelineStats* stats) {
  PipelineStats local;

  // 1. Emit the failure logs and the config snapshot as text.
  std::stringstream log_text;
  local.log_lines_written = sim::write_failure_logs(log_text, fleet, result.failures);
  std::stringstream snapshot_text;
  log::write_snapshot(snapshot_text, fleet);

  // 2. Parse them back.
  std::vector<log::LogRecord> records;
  const log::ParseStats parse_stats = log::parse_stream(log_text, records);
  local.log_lines_parsed = parse_stats.lines_parsed;

  auto snapshot = log::parse_snapshot(snapshot_text);
  if (!snapshot.ok()) {
    throw std::runtime_error("pipeline: snapshot round-trip failed: " + snapshot.error);
  }

  // 3. Classify RAID-layer records into failures and join.
  log::ClassifierStats classifier_stats;
  auto failures = log::classify(records, log::ClassifierOptions{}, &classifier_stats);
  local.raid_records = classifier_stats.raid_records;
  local.failures_classified = failures.size();

  if (stats != nullptr) *stats = local;
  return Dataset(std::make_shared<log::Inventory>(std::move(snapshot.inventory)),
                 std::move(failures));
}

Dataset dataset_in_memory(const model::Fleet& fleet, const sim::SimResult& result) {
  std::vector<FailureEvent> events;
  events.reserve(result.failures.size());
  for (const auto& f : result.failures) {
    events.push_back(FailureEvent{f.detect_time, f.disk, f.system, f.type});
  }
  return Dataset(std::make_shared<log::Inventory>(log::inventory_from_fleet(fleet)),
                 std::move(events));
}

SimulationDataset simulate_and_analyze(const model::FleetConfig& config,
                                       const sim::SimParams& params, bool through_text_logs) {
  sim::FleetSimulation simulation = sim::simulate_fleet(config, params);
  PipelineStats pipeline;
  Dataset dataset = through_text_logs
                        ? dataset_via_logs(simulation.fleet, simulation.result, &pipeline)
                        : dataset_in_memory(simulation.fleet, simulation.result);
  return SimulationDataset{std::move(dataset), simulation.result.counters, pipeline};
}

}  // namespace storsubsim::core
