#include "core/pipeline.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "log/classifier.h"
#include "log/parser.h"
#include "sim/log_bridge.h"
#include "util/parallel.h"

namespace storsubsim::core {

namespace {

/// One shard's emit -> parse -> classify round-trip. The emitter, parser and
/// classifier are stateless across records except for the classifier's
/// (disk, type) de-duplication window — and a disk lives in exactly one
/// system, so sharding by system keeps every dedup decision within a shard.
struct ShardOutput {
  std::vector<log::ClassifiedFailure> failures;
  PipelineStats stats;
};

ShardOutput roundtrip_shard(const model::Fleet& fleet,
                            std::span<const sim::SimFailure> failures) {
  ShardOutput out;
  std::stringstream log_text;
  out.stats.log_lines_written = sim::write_failure_logs(log_text, fleet, failures);

  std::vector<log::LogRecord> records;
  const log::ParseStats parse_stats = log::parse_stream(log_text, records);
  out.stats.log_lines_parsed = parse_stats.lines_parsed;

  log::ClassifierStats classifier_stats;
  out.failures = log::classify(records, log::ClassifierOptions{}, &classifier_stats);
  out.stats.raid_records = classifier_stats.raid_records;
  out.stats.failures_classified = out.failures.size();
  return out;
}

}  // namespace

Dataset dataset_via_logs(const model::Fleet& fleet, const sim::SimResult& result,
                         PipelineStats* stats) {
  PipelineStats local;

  // The config snapshot is one global artifact; round-trip it serially.
  std::stringstream snapshot_text;
  log::write_snapshot(snapshot_text, fleet);
  auto snapshot = log::parse_snapshot(snapshot_text);
  if (!snapshot.ok()) {
    throw std::runtime_error("pipeline: snapshot round-trip failed: " + snapshot.error);
  }

  const std::size_t n_systems = fleet.systems().size();
  std::size_t shards = std::min<std::size_t>(util::thread_count(),
                                             n_systems == 0 ? 1 : n_systems);
  if (result.failures.size() < 2048) shards = 1;  // not worth the fan-out

  std::vector<log::ClassifiedFailure> classified;
  if (shards <= 1) {
    ShardOutput out = roundtrip_shard(fleet, result.failures);
    classified = std::move(out.failures);
    local = out.stats;
  } else {
    // Partition failures by contiguous system ranges (shard s owns systems
    // [s*n/S, (s+1)*n/S)), preserving detection order within each bucket.
    std::vector<std::uint32_t> shard_of_system(n_systems);
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = n_systems * s / shards;
      const std::size_t end = n_systems * (s + 1) / shards;
      for (std::size_t sys = begin; sys < end; ++sys) {
        shard_of_system[sys] = static_cast<std::uint32_t>(s);
      }
    }
    std::vector<std::vector<sim::SimFailure>> buckets(shards);
    for (auto& b : buckets) b.reserve(result.failures.size() / shards + 1);
    for (const auto& f : result.failures) {
      buckets[shard_of_system[f.system.value()]].push_back(f);
    }

    std::vector<ShardOutput> outputs(shards);
    util::parallel_for(shards, [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        outputs[s] = roundtrip_shard(fleet, buckets[s]);
      }
    });

    std::size_t total = 0;
    for (const auto& out : outputs) total += out.failures.size();
    classified.reserve(total);
    for (auto& out : outputs) {
      classified.insert(classified.end(), out.failures.begin(), out.failures.end());
      local.log_lines_written += out.stats.log_lines_written;
      local.log_lines_parsed += out.stats.log_lines_parsed;
      local.raid_records += out.stats.raid_records;
      local.failures_classified += out.stats.failures_classified;
    }
    // Restore the classifier's global output order (time, disk, type) so the
    // sharded pipeline is bit-identical to the serial one.
    std::sort(classified.begin(), classified.end(),
              [](const log::ClassifiedFailure& a, const log::ClassifiedFailure& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.disk != b.disk) return a.disk < b.disk;
                return static_cast<int>(a.type) < static_cast<int>(b.type);
              });
  }

  if (stats != nullptr) *stats = local;
  return Dataset(std::make_shared<log::Inventory>(std::move(snapshot.inventory)),
                 std::move(classified));
}

Dataset dataset_in_memory(const model::Fleet& fleet, const sim::SimResult& result) {
  std::vector<FailureEvent> events;
  events.reserve(result.failures.size());
  for (const auto& f : result.failures) {
    events.push_back(FailureEvent{f.detect_time, f.disk, f.system, f.type});
  }
  return Dataset(std::make_shared<log::Inventory>(log::inventory_from_fleet(fleet)),
                 std::move(events));
}

SimulationDataset simulate_and_analyze(const model::FleetConfig& config,
                                       const sim::SimParams& params, bool through_text_logs) {
  sim::FleetSimulation simulation = sim::simulate_fleet(config, params);
  PipelineStats pipeline;
  Dataset dataset = through_text_logs
                        ? dataset_via_logs(simulation.fleet, simulation.result, &pipeline)
                        : dataset_in_memory(simulation.fleet, simulation.result);
  return SimulationDataset{std::move(dataset), simulation.result.counters, pipeline};
}

}  // namespace storsubsim::core
