#include "core/burstiness.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

namespace storsubsim::core {

namespace {

struct ScopedEvent {
  double time;
  std::uint32_t scope_id;
  std::uint32_t disk;
  std::uint8_t type;
};

/// The shared gap walk: sorts the bucketed events by (scope, time) and pools
/// inter-arrival gaps per series. Both the Dataset and the store entry
/// points feed the same ScopedEvent set, so their results are identical.
BurstinessResult pooled_gaps(std::vector<ScopedEvent> events, Scope scope) {
  BurstinessResult result;
  result.scope = scope;
  // Sort by (scope, time) so each scope's stream is contiguous and ordered.
  std::sort(events.begin(), events.end(), [](const ScopedEvent& a, const ScopedEvent& b) {
    if (a.scope_id != b.scope_id) return a.scope_id < b.scope_id;
    return a.time < b.time;
  });

  // Walk each scope's stream once per series. `last_time`/`last_disk` track
  // the previously kept event of the series within the current scope.
  struct SeriesState {
    double last_time = -1.0;
    std::uint32_t last_disk = 0;
    bool has_last = false;
  };
  std::array<SeriesState, kSeriesCount> state{};
  std::uint32_t current_scope = 0;
  bool first = true;

  for (const auto& ev : events) {
    if (first || ev.scope_id != current_scope) {
      state = {};
      current_scope = ev.scope_id;
      first = false;
    }
    for (const std::size_t series : {static_cast<std::size_t>(ev.type), kOverallSeries}) {
      SeriesState& s = state[series];
      if (s.has_last && s.last_disk == ev.disk) {
        // Duplicate: same disk reporting again — refresh the anchor time so
        // a later different-disk failure measures from the latest report,
        // but record no gap.
        s.last_time = ev.time;
        continue;
      }
      if (s.has_last) {
        result.gaps[series].push_back(ev.time - s.last_time);
      }
      s.last_time = ev.time;
      s.last_disk = ev.disk;
      s.has_last = true;
    }
  }
  return result;
}

BurstinessResult gaps_of(const Dataset& dataset, Scope scope) {
  // Bucket events by scope id.
  std::vector<ScopedEvent> events;
  events.reserve(dataset.events().size());
  for (const auto& e : dataset.events()) {
    const auto& disk = dataset.disk_of(e);
    std::uint32_t scope_id;
    if (scope == Scope::kShelf) {
      scope_id = disk.shelf.value();
    } else {
      if (!disk.raid_group.valid()) continue;  // spare not in any group
      scope_id = disk.raid_group.value();
    }
    events.push_back(ScopedEvent{e.time, scope_id, e.disk.value(),
                                 static_cast<std::uint8_t>(model::index_of(e.type))});
  }
  return pooled_gaps(std::move(events), scope);
}

BurstinessResult gaps_of(const store::EventStore& store, Scope scope) {
  // The store's event columns already carry the shelf/RAID-group join, so
  // bucketing needs no inventory lookups at all.
  std::vector<ScopedEvent> events;
  events.reserve(static_cast<std::size_t>(store.event_count()));
  for (const auto cls : model::kAllSystemClasses) {
    const store::EventView& view = store.events(cls);
    for (std::size_t i = 0; i < view.size(); ++i) {
      std::uint32_t scope_id;
      if (scope == Scope::kShelf) {
        scope_id = view.shelf[i];
      } else {
        if (!model::RaidGroupId(view.raid_group[i]).valid()) continue;
        scope_id = view.raid_group[i];
      }
      events.push_back(ScopedEvent{view.time[i], scope_id, view.disk[i], view.type[i]});
    }
  }
  return pooled_gaps(std::move(events), scope);
}

BurstinessResult gaps_of(const store::ShardStore& shards, Scope scope) {
  // Same bucketing as the single-file path with each shard's local ids
  // rebased through the MANIFEST bases. pooled_gaps re-sorts by (scope,
  // time), and a scope never spans shards, so the shard-major collection
  // order is immaterial.
  std::vector<ScopedEvent> events;
  events.reserve(static_cast<std::size_t>(shards.manifest().events));
  for (const auto cls : model::kAllSystemClasses) {
    for (std::size_t s = 0; s < shards.shard_count(); ++s) {
      const store::EventView& view = shards.shard_checked(s).events(cls);
      for (std::size_t i = 0; i < view.size(); ++i) {
        std::uint32_t scope_id;
        if (scope == Scope::kShelf) {
          scope_id = static_cast<std::uint32_t>(shards.global_shelf(s, view.shelf[i]));
        } else {
          if (!model::RaidGroupId(view.raid_group[i]).valid()) continue;
          scope_id =
              static_cast<std::uint32_t>(shards.global_raid_group(s, view.raid_group[i]));
        }
        events.push_back(
            ScopedEvent{view.time[i], scope_id,
                        static_cast<std::uint32_t>(shards.global_disk(s, view.disk[i])),
                        view.type[i]});
      }
    }
  }
  return pooled_gaps(std::move(events), scope);
}

}  // namespace

BurstinessResult time_between_failures(const Source& source, Scope scope) {
  if (const Dataset* d = source.dataset()) return gaps_of(*d, scope);
  if (const store::EventStore* s = source.store()) return gaps_of(*s, scope);
  return gaps_of(*source.shards(), scope);
}

stats::Ecdf BurstinessResult::ecdf(std::size_t series) const {
  return stats::Ecdf(gaps[series]);
}

double BurstinessResult::fraction_within(std::size_t series, double seconds) const {
  const auto& g = gaps[series];
  if (g.empty()) return 0.0;
  std::size_t n = 0;
  for (const double x : g) {
    if (x <= seconds) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(g.size());
}

}  // namespace storsubsim::core
