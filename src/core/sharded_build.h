// Streaming sharded store builds: mega-fleets in bounded memory.
//
// The monolithic path (simulate_and_analyze + write_store) materializes the
// whole fleet, every failure and the full store image at once — peak RSS
// grows linearly with --scale. build_sharded_store instead drives the
// simulator in contiguous global system ranges ("chunks"), feeds each chunk
// through the unchanged emit -> parse -> classify pipeline, and writes each
// chunk out as a standalone STORCOL1 shard before the next chunk is built —
// so peak memory is bounded by the largest chunk, not the fleet.
//
// Bit-identity: a chunk's fleet is positioned by RNG fork replay
// (model::Fleet::build_chunk) and its simulator substreams are keyed by
// global indices (sim::SimIndexBases), so every sampled value equals the
// corresponding slice of the monolithic run. The MANIFEST's merged exposure
// table reproduces the monolithic accumulation order, making every analysis
// over the shard directory byte-identical to the single-file store
// (docs/STORE.md).
//
// Parallelism: shards fan out across the shared pool into disjoint chunk
// buffers; an RSS budget caps the number of in-flight chunks instead of
// failing. Results are bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/fleet_config.h"
#include "sim/params.h"
#include "store/shards.h"

namespace storsubsim::core {

struct ShardedBuildOptions {
  /// Shard count; 0 derives it from max_rss_mb (or 1 with no budget).
  std::size_t shards = 0;
  /// Peak-RSS budget in MiB; 0 = unbudgeted. With a budget the shard count
  /// and the number of in-flight chunks are chosen so the estimated working
  /// set stays under it.
  std::uint64_t max_rss_mb = 0;
  sim::SimParams params = sim::SimParams::standard();
};

struct ShardedBuildResult {
  std::size_t shards = 0;
  std::uint64_t events = 0;
  std::uint64_t disk_records = 0;
  std::uint64_t peak_rss_bytes = 0;        ///< VmHWM after the build (0 = unknown)
  std::vector<double> shard_build_seconds; ///< per-shard simulate+pipeline+write
};

/// Rough peak working set of building one chunk, in bytes per initial disk:
/// fleet records, simulator state, the text-log round-trip and the encoded
/// store image. Deliberately conservative; used only to derive shard counts
/// from --max-rss-mb.
inline constexpr std::uint64_t kBuildBytesPerDisk = 1536;

/// Estimated peak working set of a build with `chunk_disks`-disk chunks and
/// `in_flight` of them resident at once.
inline constexpr std::uint64_t estimate_build_bytes(std::uint64_t chunk_disks,
                                                    std::uint64_t in_flight) {
  return chunk_disks * kBuildBytesPerDisk * in_flight;
}

/// Simulates `config` in chunks and writes a shard directory (STORCOL1
/// shards + MANIFEST) to `dir`, creating it if needed. Returns the first
/// error encountered; on success the directory opens with
/// store::ShardStore::open and analyses over it are byte-identical to the
/// monolithic store of the same config/seed.
[[nodiscard]] store::Error build_sharded_store(const std::string& dir, const model::FleetConfig& config,
                                 const ShardedBuildOptions& options,
                                 ShardedBuildResult* result = nullptr);

}  // namespace storsubsim::core
