#include "core/correlation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "stats/summary.h"

namespace storsubsim::core {

namespace {

/// Per-scope, per-window failure counts for one failure type.
/// Returns: counts[scope][window_index]; only complete windows are counted.
struct WindowCounts {
  std::size_t windows_observed = 0;
  // Ordered so downstream accumulation (dispersion_index sums doubles over
  // this) walks windows in a canonical order — hash-table iteration order is
  // an implementation detail the determinism contract must not depend on.
  std::map<std::uint64_t, std::size_t> counts;  // (scope, window) -> n
  std::vector<std::size_t> histogram;                     // histogram of counts per window
};

WindowCounts count_windows(const Dataset& dataset, Scope scope, model::FailureType type,
                           double window_seconds) {
  WindowCounts wc;
  const auto& inv = dataset.inventory();

  // Complete windows per scope: from the owning system's deployment to the
  // horizon.
  auto windows_for_system = [&](model::SystemId sys) -> std::size_t {
    const double observed = inv.horizon_seconds - inv.systems[sys.value()].deploy_time;
    return observed >= window_seconds
               ? static_cast<std::size_t>(std::floor(observed / window_seconds))
               : 0;
  };

  std::vector<std::size_t> scope_windows;  // per scope id
  if (scope == Scope::kShelf) {
    scope_windows.resize(inv.shelves.size(), 0);
    for (const auto& sh : inv.shelves) {
      if (dataset.system_selected(sh.system)) {
        scope_windows[sh.id.value()] = windows_for_system(sh.system);
      }
    }
  } else {
    scope_windows.resize(inv.raid_groups.size(), 0);
    for (const auto& g : inv.raid_groups) {
      if (dataset.system_selected(g.system)) {
        scope_windows[g.id.value()] = windows_for_system(g.system);
      }
    }
  }
  for (const auto w : scope_windows) wc.windows_observed += w;

  // Count events into (scope, window) cells.
  for (const auto& e : dataset.events()) {
    if (e.type != type) continue;
    const auto& disk = dataset.disk_of(e);
    std::uint32_t scope_id;
    if (scope == Scope::kShelf) {
      scope_id = disk.shelf.value();
    } else {
      if (!disk.raid_group.valid()) continue;
      scope_id = disk.raid_group.value();
    }
    const double deploy = inv.systems[disk.system.value()].deploy_time;
    const double offset = e.time - deploy;
    if (offset < 0.0) continue;
    const auto window = static_cast<std::size_t>(std::floor(offset / window_seconds));
    if (window >= scope_windows[scope_id]) continue;  // partial trailing window
    ++wc.counts[(static_cast<std::uint64_t>(scope_id) << 20u) | window];
  }

  // Histogram of per-window multiplicities (windows with zero events are
  // wc.windows_observed - counts.size()).
  for (const auto& [_, n] : wc.counts) {
    if (wc.histogram.size() <= n) wc.histogram.resize(n + 1, 0);
    ++wc.histogram[n];
  }
  return wc;
}

/// Store-backed twin of count_windows: same (scope, window) cells, fed from
/// the mapped columns. Every accumulation is an integer tally into an
/// ordered map, so the two paths cannot diverge.
WindowCounts count_windows(const store::EventStore& store, Scope scope,
                           model::FailureType type, double window_seconds) {
  WindowCounts wc;
  const double horizon = store.header().horizon_seconds;
  const auto deploy = store.topology(store::ColumnId::kSysDeploy)->as_f64();

  auto windows_for_system = [&](std::uint32_t sys) -> std::size_t {
    const double observed = horizon - deploy[sys];
    return observed >= window_seconds
               ? static_cast<std::size_t>(std::floor(observed / window_seconds))
               : 0;
  };

  const auto scope_systems =
      scope == Scope::kShelf
          ? store.topology(store::ColumnId::kShelfSystem)->as_u32()
          : store.topology(store::ColumnId::kRgSystem)->as_u32();
  std::vector<std::size_t> scope_windows(scope_systems.size(), 0);
  for (std::size_t i = 0; i < scope_systems.size(); ++i) {
    scope_windows[i] = windows_for_system(scope_systems[i]);
  }
  for (const auto w : scope_windows) wc.windows_observed += w;

  const auto wanted = static_cast<std::uint8_t>(model::index_of(type));
  for (const auto cls : model::kAllSystemClasses) {
    const store::EventView& view = store.events(cls);
    for (std::size_t i = 0; i < view.size(); ++i) {
      if (view.type[i] != wanted) continue;
      std::uint32_t scope_id;
      if (scope == Scope::kShelf) {
        scope_id = view.shelf[i];
      } else {
        if (!model::RaidGroupId(view.raid_group[i]).valid()) continue;
        scope_id = view.raid_group[i];
      }
      const double offset = view.time[i] - deploy[view.system[i]];
      if (offset < 0.0) continue;
      const auto window = static_cast<std::size_t>(std::floor(offset / window_seconds));
      if (window >= scope_windows[scope_id]) continue;  // partial trailing window
      ++wc.counts[(static_cast<std::uint64_t>(scope_id) << 20u) | window];
    }
  }

  for (const auto& [_, n] : wc.counts) {
    if (wc.histogram.size() <= n) wc.histogram.resize(n + 1, 0);
    ++wc.histogram[n];
  }
  return wc;
}

/// Shard-directory twin: per-shard tallies with scope ids rebased into the
/// global key space. A scope (shelf or RAID group) belongs to exactly one
/// shard, so the per-shard (scope, window) cells are disjoint and merging
/// is plain map insertion; windows_observed is an integer sum. The merged
/// counts are therefore exactly the monolithic store's counts.
WindowCounts count_windows(const store::ShardStore& shards, Scope scope,
                           model::FailureType type, double window_seconds) {
  WindowCounts wc;
  const auto wanted = static_cast<std::uint8_t>(model::index_of(type));
  for (std::size_t s = 0; s < shards.shard_count(); ++s) {
    const store::EventStore& store = shards.shard_checked(s);
    const double horizon = store.header().horizon_seconds;
    const auto deploy = store.topology(store::ColumnId::kSysDeploy)->as_f64();

    auto windows_for_system = [&](std::uint32_t sys) -> std::size_t {
      const double observed = horizon - deploy[sys];
      return observed >= window_seconds
                 ? static_cast<std::size_t>(std::floor(observed / window_seconds))
                 : 0;
    };

    const auto scope_systems =
        scope == Scope::kShelf
            ? store.topology(store::ColumnId::kShelfSystem)->as_u32()
            : store.topology(store::ColumnId::kRgSystem)->as_u32();
    std::vector<std::size_t> scope_windows(scope_systems.size(), 0);
    for (std::size_t i = 0; i < scope_systems.size(); ++i) {
      scope_windows[i] = windows_for_system(scope_systems[i]);
    }
    for (const auto w : scope_windows) wc.windows_observed += w;

    for (const auto cls : model::kAllSystemClasses) {
      const store::EventView& view = store.events(cls);
      for (std::size_t i = 0; i < view.size(); ++i) {
        if (view.type[i] != wanted) continue;
        std::uint32_t local_scope;
        std::uint64_t global_scope;
        if (scope == Scope::kShelf) {
          local_scope = view.shelf[i];
          global_scope = shards.global_shelf(s, local_scope);
        } else {
          if (!model::RaidGroupId(view.raid_group[i]).valid()) continue;
          local_scope = view.raid_group[i];
          global_scope = shards.global_raid_group(s, local_scope);
        }
        const double offset = view.time[i] - deploy[view.system[i]];
        if (offset < 0.0) continue;
        const auto window = static_cast<std::size_t>(std::floor(offset / window_seconds));
        if (window >= scope_windows[local_scope]) continue;  // partial trailing window
        ++wc.counts[(global_scope << 20u) | window];
      }
    }
  }

  for (const auto& [_, n] : wc.counts) {
    if (wc.histogram.size() <= n) wc.histogram.resize(n + 1, 0);
    ++wc.histogram[n];
  }
  return wc;
}

CorrelationResult result_from_counts(const WindowCounts& wc, Scope scope,
                                     model::FailureType type, double window_seconds) {
  CorrelationResult r;
  r.scope = scope;
  r.type = type;
  r.window_seconds = window_seconds;
  r.windows_observed = wc.windows_observed;
  r.windows_with_one = wc.histogram.size() > 1 ? wc.histogram[1] : 0;
  r.windows_with_two = wc.histogram.size() > 2 ? wc.histogram[2] : 0;
  return r;
}

}  // namespace

double CorrelationResult::empirical_p1() const {
  return windows_observed == 0
             ? 0.0
             : static_cast<double>(windows_with_one) / static_cast<double>(windows_observed);
}

double CorrelationResult::empirical_p2() const {
  return windows_observed == 0
             ? 0.0
             : static_cast<double>(windows_with_two) / static_cast<double>(windows_observed);
}

double CorrelationResult::theoretical_p2() const {
  const double p1 = empirical_p1();
  return 0.5 * p1 * p1;
}

double CorrelationResult::correlation_factor() const {
  const double theory = theoretical_p2();
  return theory > 0.0 ? empirical_p2() / theory : 0.0;
}

stats::Interval CorrelationResult::empirical_p2_ci(double confidence) const {
  return stats::proportion_ci_wilson(windows_with_two, windows_observed, confidence);
}

stats::TTestResult CorrelationResult::independence_test() const {
  // Compare the observed count of 2-failure windows against the count the
  // independence hypothesis predicts, as a two-proportion test over the same
  // number of windows (the paper reports this comparison as a t-test).
  const auto expected = static_cast<std::size_t>(
      std::llround(theoretical_p2() * static_cast<double>(windows_observed)));
  return stats::two_proportion_test(windows_with_two, windows_observed, expected,
                                    windows_observed);
}

CorrelationResult failure_correlation(const Source& source, Scope scope,
                                      model::FailureType type, double window_seconds) {
  const WindowCounts wc =
      source.dataset() != nullptr
          ? count_windows(*source.dataset(), scope, type, window_seconds)
          : (source.store() != nullptr
                 ? count_windows(*source.store(), scope, type, window_seconds)
                 : count_windows(*source.shards(), scope, type, window_seconds));
  return result_from_counts(wc, scope, type, window_seconds);
}

std::vector<CorrelationResult> failure_correlation_all_types(const Source& source,
                                                             Scope scope,
                                                             double window_seconds) {
  std::vector<CorrelationResult> out;
  out.reserve(model::kAllFailureTypes.size());
  for (const auto type : model::kAllFailureTypes) {
    out.push_back(failure_correlation(source, scope, type, window_seconds));
  }
  return out;
}

std::vector<MultiplicityRow> failure_multiplicity(const Dataset& dataset, Scope scope,
                                                  model::FailureType type, std::size_t max_n,
                                                  double window_seconds) {
  const WindowCounts wc = count_windows(dataset, scope, type, window_seconds);
  std::vector<MultiplicityRow> rows;
  if (wc.windows_observed == 0) return rows;
  const double p1 = wc.histogram.size() > 1 ? static_cast<double>(wc.histogram[1]) /
                                                  static_cast<double>(wc.windows_observed)
                                            : 0.0;
  double factorial = 1.0;
  double p1_power = p1;
  for (std::size_t n = 1; n <= max_n; ++n) {
    MultiplicityRow row;
    row.n = n;
    row.empirical = (wc.histogram.size() > n ? static_cast<double>(wc.histogram[n]) : 0.0) /
                    static_cast<double>(wc.windows_observed);
    row.theoretical = p1_power / factorial;
    rows.push_back(row);
    p1_power *= p1;
    factorial *= static_cast<double>(n + 1);
  }
  return rows;
}

double dispersion_index(const Dataset& dataset, Scope scope, model::FailureType type,
                        double window_seconds) {
  const WindowCounts wc = count_windows(dataset, scope, type, window_seconds);
  if (wc.windows_observed == 0) return 0.0;
  stats::Accumulator acc;
  std::size_t nonzero = 0;
  for (const auto& [_, n] : wc.counts) {
    acc.add(static_cast<double>(n));
    ++nonzero;
  }
  for (std::size_t i = nonzero; i < wc.windows_observed; ++i) acc.add(0.0);
  const double mean = acc.mean();
  return mean > 0.0 ? acc.variance() / mean : 0.0;
}

double CrossTypeResult::baseline_probability() const {
  return -std::expm1(-baseline_rate_per_scope_second * window_seconds);
}

double CrossTypeResult::lift() const {
  const double base = baseline_probability();
  return base > 0.0 ? conditional_probability() / base : 0.0;
}

CrossTypeResult cross_type_correlation(const Dataset& dataset, Scope scope,
                                       model::FailureType trigger,
                                       model::FailureType response, double window_seconds) {
  CrossTypeResult result;
  result.trigger = trigger;
  result.response = response;
  result.scope = scope;
  result.window_seconds = window_seconds;

  // Bucket trigger and response streams per scope.
  std::unordered_map<std::uint32_t, std::vector<double>> trigger_times;
  std::unordered_map<std::uint32_t, std::vector<double>> response_times;
  std::size_t response_count = 0;
  for (const auto& e : dataset.events()) {
    if (e.type != trigger && e.type != response) continue;
    const auto& disk = dataset.disk_of(e);
    std::uint32_t scope_id;
    if (scope == Scope::kShelf) {
      scope_id = disk.shelf.value();
    } else {
      if (!disk.raid_group.valid()) continue;
      scope_id = disk.raid_group.value();
    }
    if (e.type == trigger) trigger_times[scope_id].push_back(e.time);
    if (e.type == response) {
      response_times[scope_id].push_back(e.time);
      ++response_count;
    }
  }

  // The homogeneous-independence null: responses arrive as one Poisson
  // stream at the cohort's mean per-scope rate.
  const auto& inv = dataset.inventory();
  double scope_seconds = 0.0;
  if (scope == Scope::kShelf) {
    for (const auto& sh : inv.shelves) {
      if (!dataset.system_selected(sh.system)) continue;
      scope_seconds +=
          std::max(0.0, inv.horizon_seconds - inv.systems[sh.system.value()].deploy_time);
    }
  } else {
    for (const auto& g : inv.raid_groups) {
      if (!dataset.system_selected(g.system)) continue;
      scope_seconds +=
          std::max(0.0, inv.horizon_seconds - inv.systems[g.system.value()].deploy_time);
    }
  }
  result.baseline_rate_per_scope_second =
      scope_seconds > 0.0 ? static_cast<double>(response_count) / scope_seconds : 0.0;

  // Only order-insensitive integer counters accumulate across scopes.
  // storsim-lint: allow(unordered-iter) reason=per-scope integer tallies; no cross-scope FP accumulation or ordered output
  for (auto& [scope_id, triggers] : trigger_times) {
    std::sort(triggers.begin(), triggers.end());
    auto rit = response_times.find(scope_id);
    if (rit != response_times.end()) std::sort(rit->second.begin(), rit->second.end());
    for (const double t : triggers) {
      ++result.triggers;
      if (rit == response_times.end()) continue;
      const auto& responses = rit->second;
      const auto lo = std::upper_bound(responses.begin(), responses.end(), t);
      if (lo != responses.end() && *lo <= t + window_seconds) ++result.triggers_followed;
    }
  }
  return result;
}

}  // namespace storsubsim::core
