// core::Source — the unified input façade for the analysis API.
//
// The analysis layer historically forked into parallel overloads: one taking
// the in-memory Dataset (simulate -> emit -> parse -> classify), one taking
// the mmap'd columnar store::EventStore. Every new statistic had to be
// written twice. Source collapses the fork: it is a non-owning variant over
// the backends, implicitly constructible from any of them, so a single
// `compute_afr(const Source&)`-style entry point serves all — and the code
// paths are pinned bit-identical by the Source equivalence suite
// (tests/core/source_test.cc).
//
// The third backend is a store::ShardStore — a sharded store directory
// (docs/STORE.md). Analyses over it rebase each shard's local ids through
// the MANIFEST's prefix-sum bases and reproduce the monolithic accumulation
// order, so results are byte-identical to the single-file store. Shards are
// faulted in lazily; wrap with open_all() first if a typed open error must
// be surfaced (the lazy path throws std::runtime_error on a corrupt shard).
//
// Ownership: Source borrows. The referenced backend must outlive the
// Source; construction from temporaries is deleted to make the obvious
// dangling pattern (wrapping the result of dataset.filter(...) and keeping
// it) a compile error. See docs/API.md.
#pragma once

#include <variant>

#include "core/dataset.h"
#include "store/reader.h"
#include "store/shards.h"

namespace storsubsim::core {

class Source {
 public:
  // Implicit by design: call sites read compute_afr(dataset) and
  // compute_afr(store), not compute_afr(Source(dataset)).
  Source(const Dataset& dataset) noexcept : ref_(&dataset) {}          // NOLINT
  Source(const store::EventStore& store) noexcept : ref_(&store) {}    // NOLINT
  Source(const store::ShardStore& shards) noexcept : ref_(&shards) {}  // NOLINT
  Source(Dataset&&) = delete;
  Source(store::EventStore&&) = delete;
  Source(store::ShardStore&&) = delete;

  bool is_store() const noexcept {
    return std::holds_alternative<const store::EventStore*>(ref_);
  }

  /// The dataset backend, or nullptr otherwise.
  const Dataset* dataset() const noexcept {
    const auto* const* d = std::get_if<const Dataset*>(&ref_);
    return d != nullptr ? *d : nullptr;
  }

  /// The single-file store backend, or nullptr otherwise.
  const store::EventStore* store() const noexcept {
    const auto* const* s = std::get_if<const store::EventStore*>(&ref_);
    return s != nullptr ? *s : nullptr;
  }

  /// The shard-directory backend, or nullptr otherwise.
  const store::ShardStore* shards() const noexcept {
    const auto* const* s = std::get_if<const store::ShardStore*>(&ref_);
    return s != nullptr ? *s : nullptr;
  }

  /// Dispatches to exactly one of the callables; all must return the same
  /// type. The workhorse of the single-entry-point analysis functions.
  template <typename DatasetFn, typename StoreFn, typename ShardsFn>
  auto visit(DatasetFn&& on_dataset, StoreFn&& on_store, ShardsFn&& on_shards) const {
    if (const Dataset* d = dataset()) return on_dataset(*d);
    if (const store::EventStore* s = store()) return on_store(*s);
    return on_shards(*shards());
  }

 private:
  std::variant<const Dataset*, const store::EventStore*, const store::ShardStore*> ref_;
};

}  // namespace storsubsim::core
