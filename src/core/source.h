// core::Source — the unified input façade for the analysis API.
//
// The analysis layer historically forked into parallel overloads: one taking
// the in-memory Dataset (simulate -> emit -> parse -> classify), one taking
// the mmap'd columnar store::EventStore. Every new statistic had to be
// written twice. Source collapses the fork: it is a non-owning variant over
// the two backends, implicitly constructible from either, so a single
// `compute_afr(const Source&)`-style entry point serves both — and the two
// code paths are pinned bit-identical by the Source equivalence suite
// (tests/core/source_test.cc).
//
// Ownership: Source borrows. The referenced Dataset/EventStore must outlive
// the Source; construction from temporaries is deleted to make the obvious
// dangling pattern (wrapping the result of dataset.filter(...) and keeping
// it) a compile error. See docs/API.md.
#pragma once

#include <variant>

#include "core/dataset.h"
#include "store/reader.h"

namespace storsubsim::core {

class Source {
 public:
  // Implicit by design: call sites read compute_afr(dataset) and
  // compute_afr(store), not compute_afr(Source(dataset)).
  Source(const Dataset& dataset) noexcept : ref_(&dataset) {}          // NOLINT
  Source(const store::EventStore& store) noexcept : ref_(&store) {}    // NOLINT
  Source(Dataset&&) = delete;
  Source(store::EventStore&&) = delete;

  bool is_store() const noexcept {
    return std::holds_alternative<const store::EventStore*>(ref_);
  }

  /// The dataset backend, or nullptr when store-backed.
  const Dataset* dataset() const noexcept {
    const auto* const* d = std::get_if<const Dataset*>(&ref_);
    return d != nullptr ? *d : nullptr;
  }

  /// The store backend, or nullptr when dataset-backed.
  const store::EventStore* store() const noexcept {
    const auto* const* s = std::get_if<const store::EventStore*>(&ref_);
    return s != nullptr ? *s : nullptr;
  }

  /// Dispatches to exactly one of the callables; both must return the same
  /// type. The workhorse of the single-entry-point analysis functions.
  template <typename DatasetFn, typename StoreFn>
  auto visit(DatasetFn&& on_dataset, StoreFn&& on_store) const {
    if (const Dataset* d = dataset()) return on_dataset(*d);
    return on_store(*store());
  }

 private:
  std::variant<const Dataset*, const store::EventStore*> ref_;
};

}  // namespace storsubsim::core
