// Disk lifetime analysis: survival curves and age-dependent hazard from the
// dataset's install/remove records and disk-failure events.
//
// Complements the time-between-failures view (Figure 9) with the per-device
// view: is the disk hazard constant with age (the assumption behind the
// memoryless models), does the data show infant mortality or wear-out, and
// what fraction of disks survive the study (heavily censored — why the
// Kaplan-Meier machinery is needed).
#pragma once

#include <vector>

#include "core/dataset.h"
#include "core/source.h"
#include "stats/survival.h"
#include "store/reader.h"

namespace storsubsim::core {

/// Builds (duration, failed) observations per disk record in the cohort:
/// duration is the record's observed lifetime (clipped to the study window);
/// `event` is true iff a *disk* failure was recorded for that disk. Records
/// alive at the horizon — the overwhelming majority — are right-censored.
/// The unified entry point: dataset-backed sources sweep the inventory,
/// store-backed sources (whole cohort) the mapped install/remove columns, in
/// the same disk-id order — the same observations either way.
std::vector<stats::SurvivalObservation> disk_lifetime_observations(const Source& source);

struct LifetimeReport {
  stats::KaplanMeier survival;
  std::vector<stats::HazardBin> hazard_by_age;
  std::size_t disks = 0;
  std::size_t failures = 0;
  double censored_fraction = 0.0;
};

/// Fits the survival curve and the age-binned hazard. `age_edges_days`
/// defaults to {0, 30, 90, 180, 365, 730, 1340} when empty.
LifetimeReport disk_lifetime_report(const Source& source,
                                    std::vector<double> age_edges_days = {});

}  // namespace storsubsim::core
