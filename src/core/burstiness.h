// Temporal locality ("burstiness") of failures within shelves and RAID
// groups (paper Section 5.1, Figure 9).
//
// For every shelf (or RAID group) we collect the detection times of its
// failures, drop consecutive duplicates from the same disk (the paper:
// "we filtered out all duplicate failures" — the object of study is the
// time between failures of *different* disks), and pool the resulting
// inter-arrival gaps across all scopes of the same kind.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "core/source.h"
#include "stats/ecdf.h"
#include "store/reader.h"

namespace storsubsim::core {

enum class Scope { kShelf, kRaidGroup };

/// Index 0..3 = the four failure types; index 4 = overall (all types pooled).
inline constexpr std::size_t kOverallSeries = 4;
inline constexpr std::size_t kSeriesCount = 5;

struct BurstinessResult {
  Scope scope = Scope::kShelf;
  /// Inter-arrival gaps (seconds) pooled over all scopes, per series.
  std::array<std::vector<double>, kSeriesCount> gaps;

  /// Empirical CDF of one series.
  stats::Ecdf ecdf(std::size_t series) const;
  /// Fraction of gaps below `seconds` (the paper quotes the fraction within
  /// 10,000 s: ~48% per shelf, ~30% per RAID group overall).
  double fraction_within(std::size_t series, double seconds) const;
  std::size_t gap_count(std::size_t series) const { return gaps[series].size(); }
};

/// Pooled inter-arrival gaps per scope kind — the unified entry point.
/// Dataset-backed sources join scope ids through the inventory; store-backed
/// sources read the pre-joined scope columns straight from the mapped file.
/// Both feed the same gap walk, so the pooled gaps are identical. Note a
/// store-backed Source always covers the whole (unfiltered) cohort; for
/// filtered cohorts, reconstruct a Dataset via core::dataset_from_store and
/// filter it.
BurstinessResult time_between_failures(const Source& source, Scope scope);

/// Convenience index for a failure-type series.
constexpr std::size_t series_of(model::FailureType type) { return model::index_of(type); }

}  // namespace storsubsim::core
