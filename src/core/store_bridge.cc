#include "core/store_bridge.h"

#include <algorithm>
#include <memory>
#include <vector>

namespace storsubsim::core {

store::StoreMeta make_store_meta(const sim::SimCounters& counters,
                                 const PipelineStats& pipeline) {
  store::StoreMeta meta;
  for (std::size_t i = 0; i < meta.sim_events_by_type.size(); ++i) {
    meta.sim_events_by_type[i] = counters.events_by_type[i];
  }
  meta.sim_replacements = counters.replacements;
  meta.sim_triggered_disk_failures = counters.triggered_disk_failures;
  meta.sim_shelf_faults = counters.shelf_faults;
  meta.sim_path_faults = counters.path_faults;
  meta.sim_masked_path_faults = counters.masked_path_faults;
  meta.log_lines_written = pipeline.log_lines_written;
  meta.log_lines_parsed = pipeline.log_lines_parsed;
  meta.raid_records = pipeline.raid_records;
  meta.failures_classified = pipeline.failures_classified;
  meta.duplicates_dropped = pipeline.duplicates_dropped;
  meta.missing_disk_dropped = pipeline.missing_disk_dropped;
  return meta;
}

sim::SimCounters sim_counters_from_meta(const store::StoreMeta& meta) {
  sim::SimCounters counters;
  for (std::size_t i = 0; i < counters.events_by_type.size(); ++i) {
    counters.events_by_type[i] = static_cast<std::size_t>(meta.sim_events_by_type[i]);
  }
  counters.replacements = static_cast<std::size_t>(meta.sim_replacements);
  counters.triggered_disk_failures =
      static_cast<std::size_t>(meta.sim_triggered_disk_failures);
  counters.shelf_faults = static_cast<std::size_t>(meta.sim_shelf_faults);
  counters.path_faults = static_cast<std::size_t>(meta.sim_path_faults);
  counters.masked_path_faults = static_cast<std::size_t>(meta.sim_masked_path_faults);
  return counters;
}

PipelineStats pipeline_stats_from_meta(const store::StoreMeta& meta) {
  PipelineStats stats;
  stats.log_lines_written = static_cast<std::size_t>(meta.log_lines_written);
  stats.log_lines_parsed = static_cast<std::size_t>(meta.log_lines_parsed);
  stats.raid_records = static_cast<std::size_t>(meta.raid_records);
  stats.failures_classified = static_cast<std::size_t>(meta.failures_classified);
  stats.duplicates_dropped = static_cast<std::size_t>(meta.duplicates_dropped);
  stats.missing_disk_dropped = static_cast<std::size_t>(meta.missing_disk_dropped);
  return stats;
}

store::Error write_store(const std::string& path, const SimulationDataset& run,
                         std::uint64_t seed, double scale) {
  store::StoreContents contents;
  contents.inventory = &run.dataset.inventory();
  contents.events = run.dataset.events();
  contents.meta = make_store_meta(run.counters, run.pipeline);
  contents.seed = seed;
  contents.scale = scale;
  return store::write_store_file(path, contents);
}

Dataset dataset_from_store(const store::EventStore& store) {
  std::vector<FailureEvent> events;
  events.reserve(static_cast<std::size_t>(store.event_count()));
  for (const auto cls : model::kAllSystemClasses) {
    const store::EventView& view = store.events(cls);
    for (std::size_t i = 0; i < view.size(); ++i) {
      events.push_back(FailureEvent{view.time[i], model::DiskId(view.disk[i]),
                                    model::SystemId(view.system[i]),
                                    static_cast<model::FailureType>(view.type[i])});
    }
  }
  // Restore the canonical global order across the four class shards (each
  // shard is already (time, disk, type)-sorted internally).
  std::sort(events.begin(), events.end(),
            [](const FailureEvent& a, const FailureEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.disk != b.disk) return a.disk < b.disk;
              return static_cast<int>(a.type) < static_cast<int>(b.type);
            });
  return Dataset(std::make_shared<log::Inventory>(store.rebuild_inventory()),
                 std::move(events));
}

SimulationDataset simulation_dataset_from_store(const store::EventStore& store) {
  return SimulationDataset{dataset_from_store(store),
                           sim_counters_from_meta(store.meta()),
                           pipeline_stats_from_meta(store.meta())};
}

Dataset dataset_from_shards(const store::ShardStore& shards) {
  const store::ShardManifest& manifest = shards.manifest();

  // Per-shard local inventories, then stitch in the global order. The whole
  // fleet is materialized either way on this path, so the intermediate copies
  // only cost a constant factor.
  std::vector<log::Inventory> local;
  local.reserve(shards.shard_count());
  for (std::size_t s = 0; s < shards.shard_count(); ++s) {
    local.push_back(shards.shard_checked(s).rebuild_inventory());
  }

  log::Inventory inv;
  inv.horizon_seconds = manifest.horizon_seconds;
  inv.systems.reserve(static_cast<std::size_t>(manifest.systems));
  inv.shelves.reserve(static_cast<std::size_t>(manifest.shelves));
  inv.disks.reserve(static_cast<std::size_t>(manifest.disks_total));
  inv.raid_groups.reserve(static_cast<std::size_t>(manifest.raid_groups));

  for (std::size_t s = 0; s < local.size(); ++s) {
    for (const auto& sys : local[s].systems) {
      log::InventorySystem out = sys;
      out.id = model::SystemId(
          static_cast<std::uint32_t>(shards.global_system(s, sys.id.value())));
      inv.systems.push_back(out);
    }
    for (const auto& shelf : local[s].shelves) {
      log::InventoryShelf out = shelf;
      out.id = model::ShelfId(
          static_cast<std::uint32_t>(shards.global_shelf(s, shelf.id.value())));
      out.system = model::SystemId(
          static_cast<std::uint32_t>(shards.global_system(s, shelf.system.value())));
      inv.shelves.push_back(out);
    }
    for (const auto& rg : local[s].raid_groups) {
      log::InventoryRaidGroup out = rg;
      out.id = model::RaidGroupId(
          static_cast<std::uint32_t>(shards.global_raid_group(s, rg.id.value())));
      out.system = model::SystemId(
          static_cast<std::uint32_t>(shards.global_system(s, rg.system.value())));
      inv.raid_groups.push_back(out);
    }
  }

  // Disks: the monolithic order is [every shard's initial disks, in shard
  // order] then [every shard's replacement disks, in shard order]
  // (docs/STORE.md), so two shard-major passes reproduce it exactly.
  auto rebased_disk = [&](std::size_t s, const log::InventoryDisk& d) {
    log::InventoryDisk out = d;
    out.id =
        model::DiskId(static_cast<std::uint32_t>(shards.global_disk(s, d.id.value())));
    out.system = model::SystemId(
        static_cast<std::uint32_t>(shards.global_system(s, d.system.value())));
    out.shelf = model::ShelfId(
        static_cast<std::uint32_t>(shards.global_shelf(s, d.shelf.value())));
    out.raid_group = model::RaidGroupId(
        static_cast<std::uint32_t>(shards.global_raid_group(s, d.raid_group.value())));
    return out;
  };
  for (const bool replacement_pass : {false, true}) {
    for (std::size_t s = 0; s < local.size(); ++s) {
      const auto initial = static_cast<std::size_t>(shards.info(s).disks_initial);
      const std::size_t begin = replacement_pass ? initial : 0;
      const std::size_t end = replacement_pass ? local[s].disks.size() : initial;
      for (std::size_t i = begin; i < end; ++i) {
        inv.disks.push_back(rebased_disk(s, local[s].disks[i]));
      }
    }
  }
  local.clear();

  std::vector<FailureEvent> events;
  events.reserve(static_cast<std::size_t>(manifest.events));
  for (std::size_t s = 0; s < shards.shard_count(); ++s) {
    const store::EventStore& store = shards.shard(s);
    for (const auto cls : model::kAllSystemClasses) {
      const store::EventView& view = store.events(cls);
      for (std::size_t i = 0; i < view.size(); ++i) {
        events.push_back(FailureEvent{
            view.time[i],
            model::DiskId(static_cast<std::uint32_t>(shards.global_disk(s, view.disk[i]))),
            model::SystemId(
                static_cast<std::uint32_t>(shards.global_system(s, view.system[i]))),
            static_cast<model::FailureType>(view.type[i])});
      }
    }
  }
  // Same canonical re-sort as dataset_from_store: global ids make the
  // (time, disk, type) key identical to the monolithic one.
  std::sort(events.begin(), events.end(),
            [](const FailureEvent& a, const FailureEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.disk != b.disk) return a.disk < b.disk;
              return static_cast<int>(a.type) < static_cast<int>(b.type);
            });
  return Dataset(std::make_shared<log::Inventory>(std::move(inv)), std::move(events));
}

SimulationDataset simulation_dataset_from_shards(const store::ShardStore& shards) {
  return SimulationDataset{dataset_from_shards(shards),
                           sim_counters_from_meta(shards.manifest().meta),
                           pipeline_stats_from_meta(shards.manifest().meta)};
}

}  // namespace storsubsim::core
