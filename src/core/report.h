// Plain-text table and CSV rendering for the experiment harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace storsubsim::core {

/// Simple ASCII table builder: set headers, add string rows, stream out.
/// Numeric cells are right-aligned automatically.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  void print(std::ostream& out) const;

  /// Renders as CSV (no alignment, comma-escaped).
  void print_csv(std::ostream& out) const;

  /// print()/print_csv() captured into a string — the exact bytes the
  /// stream renderers would emit. Used wherever a table must travel as a
  /// value (the serve endpoints) while staying byte-identical to the CLI.
  std::string to_text() const;
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers used across benches.
std::string fmt(double value, int precision = 2);
std::string fmt_pct(double fraction, int precision = 1);  ///< 0.42 -> "42.0%"

}  // namespace storsubsim::core
