// The analysis dataset: failure events joined with fleet inventory.
//
// This is the entry point of the `storanalysis` library (the paper's
// contribution). A Dataset owns a set of classified failure events plus the
// inventory needed to interpret them (which shelf/RAID group/system/model a
// disk belonged to, and for how long it was exposed). All analyses — AFR
// breakdowns, burstiness CDFs, correlation tests — run against a Dataset,
// and cohort studies are expressed as Dataset filters.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "log/classifier.h"
#include "log/snapshot.h"
#include "model/enums.h"
#include "model/ids.h"

namespace storsubsim::core {

/// One analyzed failure (detection-time stamped, as in the paper).
using FailureEvent = log::ClassifiedFailure;

/// Cohort selector. All set fields must match (conjunction); matching is by
/// the *system* owning each disk/event.
struct Filter {
  std::optional<model::SystemClass> system_class;
  std::optional<model::DiskModelName> disk_model;
  std::optional<char> disk_family;  ///< any capacity of the family
  std::optional<model::ShelfModelName> shelf_model;
  std::optional<model::PathConfig> paths;
  /// Excludes systems using the problematic disk family H (paper Figure 4(b)).
  bool exclude_family_h = false;

  bool matches(const log::InventorySystem& system) const;
};

class Dataset {
 public:
  /// Builds from a parsed inventory + classified events (the end-to-end log
  /// path). Events referencing unknown disks are dropped and counted.
  Dataset(std::shared_ptr<const log::Inventory> inventory, std::vector<FailureEvent> events);

  /// Applies a cohort filter; shares the inventory with the parent.
  Dataset filter(const Filter& f) const;

  // --- events ---------------------------------------------------------------
  /// Events sorted by detection time.
  std::span<const FailureEvent> events() const { return events_; }
  std::size_t event_count(model::FailureType type) const;
  std::size_t dropped_unknown_disk() const { return dropped_unknown_disk_; }

  // --- inventory ------------------------------------------------------------
  const log::Inventory& inventory() const { return *inventory_; }
  /// True if the owning system of this disk is in the cohort.
  bool system_selected(model::SystemId id) const { return system_mask_[id.value()] != 0; }

  std::size_t selected_system_count() const;
  std::size_t selected_shelf_count() const;
  std::size_t selected_raid_group_count() const;
  /// Disk records (including replacements) belonging to selected systems.
  std::size_t selected_disk_record_count() const;

  /// Total disk exposure of the cohort, in disk-years.
  double disk_exposure_years() const;

  /// Observed shelf time in shelf-years (shelves accrue time from their
  /// system's deployment to the horizon).
  double shelf_exposure_years() const;
  double raid_group_exposure_years() const;

  /// Per-event enrichment helpers.
  const log::InventoryDisk& disk_of(const FailureEvent& event) const;
  const log::InventorySystem& system_of(const FailureEvent& event) const;

 private:
  Dataset() = default;

  std::shared_ptr<const log::Inventory> inventory_;
  std::vector<FailureEvent> events_;
  std::vector<char> system_mask_;
  std::size_t dropped_unknown_disk_ = 0;
};

}  // namespace storsubsim::core
