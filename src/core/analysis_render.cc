#include "core/analysis_render.h"

#include <cmath>

#include "core/afr.h"
#include "core/burstiness.h"
#include "core/correlation.h"
#include "core/lifetime.h"
#include "core/report.h"
#include "model/time.h"

namespace storsubsim::core {

namespace {

std::string emit(const TextTable& table, bool csv) {
  return csv ? table.to_csv() : table.to_text();
}

void add_afr_row(TextTable& table, const AfrBreakdown& b) {
  table.add_row({b.label, fmt(b.afr_pct(model::FailureType::kDisk), 2),
                 fmt(b.afr_pct(model::FailureType::kPhysicalInterconnect), 2),
                 fmt(b.afr_pct(model::FailureType::kProtocol), 2),
                 fmt(b.afr_pct(model::FailureType::kPerformance), 2),
                 fmt(b.total_afr_pct(), 2), fmt(b.disk_years, 0)});
}

}  // namespace

std::string render_afr_total(const Source& source, bool csv) {
  TextTable table({"cohort", "disk", "interconnect", "protocol", "performance",
                   "total AFR", "disk-years"});
  add_afr_row(table, compute_afr(source, "all"));
  return emit(table, csv);
}

std::string render_afr_by_class(const Source& source, bool csv) {
  TextTable table({"class", "disk", "interconnect", "protocol", "performance",
                   "total AFR", "disk-years"});
  for (const auto& b : afr_by_class(source)) add_afr_row(table, b);
  return emit(table, csv);
}

std::string render_tbf(const Source& source, bool csv) {
  TextTable table({"scope", "series", "gaps", "within 10^3 s", "within 10^4 s",
                   "within 10^5 s"});
  for (const auto scope : {Scope::kShelf, Scope::kRaidGroup}) {
    const auto r = time_between_failures(source, scope);
    const char* scope_name = scope == Scope::kShelf ? "shelf" : "raid-group";
    for (std::size_t s = 0; s < kSeriesCount; ++s) {
      const std::string label =
          s == kOverallSeries ? "overall"
                              : std::string(model::to_string(model::kAllFailureTypes[s]));
      table.add_row({scope_name, label, std::to_string(r.gap_count(s)),
                     fmt_pct(r.fraction_within(s, 1e3), 1),
                     fmt_pct(r.fraction_within(s, 1e4), 1),
                     fmt_pct(r.fraction_within(s, 1e5), 1)});
    }
  }
  return emit(table, csv);
}

std::string render_correlation(const Source& source, bool csv) {
  TextTable table({"scope", "type", "windows", "P(1)", "P(2)", "theory P(2)", "factor"});
  for (const auto scope : {Scope::kShelf, Scope::kRaidGroup}) {
    const auto results = failure_correlation_all_types(source, scope);
    for (const auto& r : results) {
      table.add_row({scope == Scope::kShelf ? "shelf" : "raid-group",
                     std::string(model::to_string(r.type)),
                     std::to_string(r.windows_observed),
                     fmt(100.0 * r.empirical_p1(), 3) + "%",
                     fmt(100.0 * r.empirical_p2(), 3) + "%",
                     fmt(100.0 * r.theoretical_p2(), 4) + "%",
                     fmt(r.correlation_factor(), 1) + "x"});
    }
  }
  return emit(table, csv);
}

std::string render_lifetime(const Source& source, bool csv) {
  const auto report = disk_lifetime_report(source);
  TextTable summary({"disks", "disk failures", "censored", "survival 1y", "survival 2y",
                     "survival 3y", "median (days)"});
  const double median = report.survival.median();
  summary.add_row(
      {std::to_string(report.disks), std::to_string(report.failures),
       fmt_pct(report.censored_fraction, 1),
       fmt(report.survival.survival(model::from_years(1.0)), 4),
       fmt(report.survival.survival(model::from_years(2.0)), 4),
       fmt(report.survival.survival(model::from_years(3.0)), 4),
       std::isinf(median) ? std::string("beyond horizon")
                          : fmt(median / model::kSecondsPerDay, 1)});

  TextTable hazard(
      {"age band", "failures", "exposure (disk-years)", "hazard (%/disk-year)"});
  for (const auto& bin : report.hazard_by_age) {
    hazard.add_row({fmt(bin.age_lo / model::kSecondsPerDay, 0) + "-" +
                        fmt(bin.age_hi / model::kSecondsPerDay, 0) + " d",
                    std::to_string(bin.events), fmt(model::years(bin.exposure), 0),
                    fmt(100.0 * bin.rate() * model::kSecondsPerYear, 2)});
  }
  return emit(summary, csv) + emit(hazard, csv);
}

std::string render_query_result(const store::QueryResult& result, bool csv) {
  TextTable table({"group", "disk", "interconnect", "protocol", "performance", "events",
                   "disk-years", "AFR %"});
  for (const auto& g : result.groups) {
    table.add_row(
        {g.label, std::to_string(g.events_by_type[0]), std::to_string(g.events_by_type[1]),
         std::to_string(g.events_by_type[2]), std::to_string(g.events_by_type[3]),
         std::to_string(g.events),
         g.disk_years > 0.0 ? fmt(g.disk_years, 0) : std::string("-"),
         g.disk_years > 0.0 ? fmt(g.afr_pct, 2) : std::string("-")});
  }
  return emit(table, csv);
}

}  // namespace storsubsim::core
