// Bridges the analysis layer to the columnar event store (src/store/):
// "simulate once, analyze many".
//
// The store library deliberately knows nothing about sim/ or core/ — its
// meta block is plain integers. This header owns the two-way mapping:
// a completed SimulationDataset (events + inventory + counters) is written
// out with write_store, and a store file is rehydrated into the *exact*
// Dataset the pipeline would have produced with dataset_from_store — same
// event bytes, same inventory, same FP results from every analysis.
#pragma once

#include <cstdint>
#include <string>

#include "core/pipeline.h"
#include "store/reader.h"
#include "store/shards.h"
#include "store/writer.h"

namespace storsubsim::core {

/// Mirrors a completed run's counters into the store's meta block.
store::StoreMeta make_store_meta(const sim::SimCounters& counters,
                                 const PipelineStats& pipeline);

/// Reverse mapping, for store-backed reruns that report the original run's
/// statistics.
sim::SimCounters sim_counters_from_meta(const store::StoreMeta& meta);
PipelineStats pipeline_stats_from_meta(const store::StoreMeta& meta);

/// Serializes a completed run to `path`. `seed`/`scale` are provenance
/// recorded in the header (the dataset does not know them).
[[nodiscard]] store::Error write_store(const std::string& path, const SimulationDataset& run,
                         std::uint64_t seed, double scale);

/// Rebuilds the exact in-memory Dataset from an opened store: events arrive
/// in the canonical (time, disk, type) order the classifier produces, so the
/// Dataset constructor yields bit-identical state to the pipeline path.
Dataset dataset_from_store(const store::EventStore& store);

/// Dataset plus the original run's counters from the meta block. Stage
/// timings are zero — nothing was simulated.
SimulationDataset simulation_dataset_from_store(const store::EventStore& store);

/// Rebuilds the monolithic Dataset from a shard directory: every shard's
/// local ids are rebased through the MANIFEST bases and the inventory is
/// stitched in the global order (systems/shelves/RAID groups shard-major;
/// disks as initial blocks shard-major, then replacement blocks
/// shard-major), so the result is bit-identical to dataset_from_store on
/// the equivalent single-file store. This materializes the whole fleet —
/// reach for the streaming Source(ShardStore) analyses when the fleet is
/// too large. Requires/forces all shards open (throws on a corrupt shard).
Dataset dataset_from_shards(const store::ShardStore& shards);

/// Dataset plus the original run's counters from the MANIFEST's summed
/// meta block.
SimulationDataset simulation_dataset_from_shards(const store::ShardStore& shards);

}  // namespace storsubsim::core
