// Distribution fitting for time-between-failure samples (paper Figure 9:
// Exponential, Gamma and Weibull candidates; the paper finds the Gamma is
// the only fit not rejected for disk-failure interarrivals at the 0.05
// level, while no common distribution fits the other failure types).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/fitting.h"
#include "stats/hypothesis.h"

namespace storsubsim::core {

enum class CandidateFamily { kExponential, kGamma, kWeibull };

std::string to_string(CandidateFamily family);

struct CandidateFit {
  CandidateFamily family = CandidateFamily::kExponential;
  stats::FitResult fit;
  stats::ChiSquareResult gof;
  bool rejected_at_005 = false;

  /// CDF of the fitted distribution, for plotting against the ECDF.
  double cdf(double x) const;
};

struct FitReport {
  std::size_t sample_size = 0;
  std::vector<CandidateFit> candidates;

  /// The candidate with the highest log-likelihood.
  const CandidateFit& best_by_likelihood() const;
  /// nullptr when every candidate is rejected at 0.05.
  const CandidateFit* best_non_rejected() const;
};

/// Fits all three candidate families to a positive sample of interarrival
/// gaps and runs a chi-square goodness-of-fit per candidate.
///
/// `max_gof_sample` bounds the sample size used by the goodness-of-fit test
/// (0 = use everything). With hundreds of thousands of gaps the chi-square
/// test has enough power to reject any parametric model over tiny systematic
/// deviations; capping the GoF sample (the parameters are still fitted on
/// the full sample) keeps the test's power comparable to the paper's setting.
/// The subsample takes evenly strided elements, so it is deterministic.
FitReport fit_interarrivals(std::span<const double> gaps, std::size_t gof_bins = 20,
                            std::size_t max_gof_sample = 0);

}  // namespace storsubsim::core
