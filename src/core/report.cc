#include "core/report.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

namespace storsubsim::core {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'e' && c != 'x') {
      return false;
    }
  }
  return true;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    out << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      const bool right = align_numeric && looks_numeric(cell);
      if (right) {
        out << std::string(width[c] - cell.size(), ' ') << cell;
      } else {
        out << cell << std::string(width[c] - cell.size(), ' ');
      }
      out << (c + 1 < headers_.size() ? " | " : " |");
    }
    out << '\n';
  };
  print_row(headers_, false);
  out << "|-";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(width[c], '-') << (c + 1 < headers_.size() ? "-|-" : "-|");
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row, true);
}

void TextTable::print_csv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_text() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  print_csv(os);
  return os.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(100.0 * fraction, precision) + "%";
}

}  // namespace storsubsim::core
