#include "core/significance.h"

#include <cmath>
#include <stdexcept>

#include "stats/special_functions.h"

namespace storsubsim::core {

stats::TTestResult rate_comparison_test(std::size_t events_a, double exposure_a_years,
                                        std::size_t events_b, double exposure_b_years) {
  if (!(exposure_a_years > 0.0) || !(exposure_b_years > 0.0)) {
    throw std::invalid_argument("rate_comparison_test: exposure must be positive");
  }
  const double ka = static_cast<double>(events_a);
  const double kb = static_cast<double>(events_b);
  const double ra = ka / exposure_a_years;
  const double rb = kb / exposure_b_years;
  stats::TTestResult r;
  r.mean_a = ra;
  r.mean_b = rb;
  r.difference = ra - rb;
  // Var(k/E) = k/E^2 under Poisson.
  const double se = std::sqrt(ka / (exposure_a_years * exposure_a_years) +
                              kb / (exposure_b_years * exposure_b_years));
  if (se == 0.0) {
    r.t_statistic = 0.0;
    r.degrees_of_freedom = ka + kb;
    r.p_value_two_sided = (ra == rb) ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = (ra - rb) / se;
  r.degrees_of_freedom = ka + kb;  // informational; normal tail is used
  r.p_value_two_sided = 2.0 * (1.0 - stats::normal_cdf(std::fabs(r.t_statistic)));
  return r;
}

double CohortComparison::focus_reduction() const {
  const double afr_a = a.afr_pct(focus);
  if (afr_a <= 0.0) return 0.0;
  return (afr_a - b.afr_pct(focus)) / afr_a;
}

double CohortComparison::total_reduction() const {
  const double afr_a = a.total_afr_pct();
  if (afr_a <= 0.0) return 0.0;
  return (afr_a - b.total_afr_pct()) / afr_a;
}

CohortComparison compare_cohorts(const Dataset& cohort_a, std::string label_a,
                                 const Dataset& cohort_b, std::string label_b,
                                 model::FailureType focus, double ci_confidence) {
  CohortComparison cmp;
  cmp.a = compute_afr(cohort_a, std::move(label_a));
  cmp.b = compute_afr(cohort_b, std::move(label_b));
  cmp.focus = focus;
  cmp.focus_test =
      rate_comparison_test(cmp.a.events[model::index_of(focus)], cmp.a.disk_years,
                           cmp.b.events[model::index_of(focus)], cmp.b.disk_years);
  cmp.focus_ci_a = cmp.a.afr_ci(focus, ci_confidence);
  cmp.focus_ci_b = cmp.b.afr_ci(focus, ci_confidence);
  return cmp;
}

}  // namespace storsubsim::core
