// core::AnalysisRequest — the one typed way to name "a statistic" and "an
// analysis request" across every front end.
//
// Before this header, three hand-rolled parsers validated the same knobs:
// `storsubsim analyze`/`store query` flag handling, the storsimd JSON body
// validation (serve/protocol.cc), and ad-hoc call sites in the benches. Each
// had its own error wording, so "the daemon rejects exactly what the offline
// CLI rejects" was a convention, not a property. AnalysisRequest collapses
// the fork:
//
//   * StatisticId names each analysis statistic once, with both of its
//     historical spellings (CLI `--report` name vs wire endpoint name —
//     they differ for historical reasons and both are load-bearing).
//   * RequestParams carries the raw, still-unparsed parameter strings
//     exactly as they travel on the wire or arrive as flags.
//   * AnalysisRequest::from_params is the single validator: CLI flags and
//     serve JSON bodies both funnel through it, so a bad parameter yields
//     byte-identical wording offline and over the socket (regression-tested
//     both ways in tests/tools/cli_test.cc and tests/serve/serve_test.cc).
//   * render_statistic is the single renderer entry point: `analyze`, the
//     daemon, and the replication engine all produce report bytes through
//     it, which is what makes "daemon == offline, byte for byte" true by
//     construction.
//
// The pre-Source per-backend analysis overloads (compute_afr(Dataset&), ...)
// were retired with this redesign; storsim_lint's analysis-overload rule
// keeps them from coming back (docs/static-analysis.md).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/source.h"
#include "store/query.h"

namespace storsubsim::core {

/// Every statistic the unified analysis API can be asked for. kQuery is the
/// filtered/grouped store scan; the others are whole-cohort reports.
enum class StatisticId : std::uint8_t {
  kAfrTotal,    ///< whole-cohort AFR, one row
  kAfrByClass,  ///< AFR by system class (paper Figure 4)
  kTbf,         ///< time-between-failures burstiness (paper Figure 9)
  kCorrelation, ///< P(1)/P(2) correlation factors (paper Figure 10)
  kLifetime,    ///< Kaplan-Meier survival + age-binned hazard
  kQuery,       ///< predicate/group-by scan over a columnar store
};

inline constexpr std::array<StatisticId, 6> kAllStatistics = {
    StatisticId::kAfrTotal, StatisticId::kAfrByClass,  StatisticId::kTbf,
    StatisticId::kCorrelation, StatisticId::kLifetime, StatisticId::kQuery,
};

/// Wire spelling (storsimd endpoint names): "afr", "afr_by_class", "tbf",
/// "correlation", "lifetime", "query".
std::string_view endpoint_name(StatisticId id) noexcept;

/// CLI spelling (`analyze --report` names): "afr-total", "afr", "burstiness",
/// "correlation", "lifetime", "query". Note the historical mismatch: the
/// report called "afr" is the by-class table (endpoint "afr_by_class"), and
/// the endpoint called "afr" is the total (report "afr-total").
std::string_view report_name(StatisticId id) noexcept;

std::optional<StatisticId> statistic_from_endpoint(std::string_view name) noexcept;
std::optional<StatisticId> statistic_from_report(std::string_view name) noexcept;

/// Raw request parameters exactly as they travel on the wire or arrive as
/// CLI flags. Strings stay unparsed here so the client renders exactly what
/// the user typed and every front end applies the same validation.
struct RequestParams {
  std::string type;      ///< failure type name; empty = no predicate
  std::string cls;       ///< system class name
  std::string family;    ///< single-letter disk family
  std::string group_by;  ///< "class" | "type" | "family"; empty = none
  std::optional<double> from_days;
  std::optional<double> to_days;

  bool empty() const noexcept {
    return type.empty() && cls.empty() && family.empty() && group_by.empty() &&
           !from_days.has_value() && !to_days.has_value();
  }
};

/// Typed outcome of validating a request. `code` is one of the storsimd wire
/// error codes ("bad-param", "bad-request", "unknown-endpoint", ...); the
/// message is the exact text the offline CLI prints. Empty code = success.
struct RequestError {
  std::string code;
  std::string message;

  bool ok() const noexcept { return code.empty(); }
};

RequestError make_request_error(std::string_view code, std::string_view message);

/// A fully validated analysis request: the typed statistic plus, for kQuery,
/// the typed store::Query the raw params parsed into.
struct AnalysisRequest {
  StatisticId statistic = StatisticId::kAfrTotal;
  bool csv = false;
  store::Query query;  ///< populated for kQuery; default (match-all) otherwise

  /// The single validator. Converts raw params into a typed request with the
  /// same day-to-second scaling and the same error wording everywhere:
  /// "unknown failure type 'x'", "unknown system class 'x'", "disk family
  /// must be a single letter, got 'x'", "unknown group-by 'x' (want
  /// class|type|family)". Non-query statistics reject params outright
  /// ("params are only valid for the query endpoint").
  [[nodiscard]] static RequestError from_params(StatisticId statistic,
                                                const RequestParams& params, bool csv,
                                                AnalysisRequest* out);
};

/// Runs a kQuery request's scan over a store-backed Source. Dataset-backed
/// sources have no column scan to run and yield a typed error.
[[nodiscard]] store::Error run_source_query(const Source& source,
                                            const store::Query& query,
                                            store::QueryResult* out);

/// The single renderer entry point: the exact bytes `storsubsim analyze` /
/// `store query` print and every storsimd endpoint returns, for any
/// statistic. kQuery requests run their scan first (store-backed sources
/// only) and throw std::runtime_error on a store error — callers needing
/// typed errors or scan stats use run_source_query directly.
std::string render_statistic(const Source& source, const AnalysisRequest& request);

}  // namespace storsubsim::core
