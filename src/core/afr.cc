#include "core/afr.h"

#include <algorithm>
#include <map>

#include "stats/summary.h"

namespace storsubsim::core {

namespace {

using model::FailureType;

AfrBreakdown accumulate(const Dataset& dataset, std::string label) {
  AfrBreakdown b;
  b.label = std::move(label);
  b.disk_years = dataset.disk_exposure_years();
  for (const auto& e : dataset.events()) {
    ++b.events[model::index_of(e.type)];
  }
  return b;
}

AfrBreakdown accumulate(const store::EventStore& store, std::string label) {
  AfrBreakdown b;
  b.label = std::move(label);
  b.disk_years = store.exposure().total_disk_years;
  for (const auto cls : model::kAllSystemClasses) {
    for (const auto type : store.events(cls).type) ++b.events[type];
  }
  return b;
}

AfrBreakdown accumulate(const store::ShardStore& shards, std::string label) {
  AfrBreakdown b;
  b.label = std::move(label);
  // Denominator from the MANIFEST's merged exposure table (bit-identical to
  // the monolithic footer); event counts are integer sums over shards.
  b.disk_years = shards.manifest().exposure.total_disk_years;
  for (std::size_t i = 0; i < shards.shard_count(); ++i) {
    const store::EventStore& store = shards.shard_checked(i);
    for (const auto cls : model::kAllSystemClasses) {
      for (const auto type : store.events(cls).type) ++b.events[type];
    }
  }
  return b;
}

std::vector<AfrBreakdown> by_class(const Dataset& dataset) {
  std::vector<AfrBreakdown> out;
  for (const auto cls : model::kAllSystemClasses) {
    Filter f;
    f.system_class = cls;
    const Dataset cohort = dataset.filter(f);
    if (cohort.selected_system_count() == 0) continue;
    out.push_back(compute_afr(cohort, std::string(model::to_string(cls))));
  }
  return out;
}

std::vector<AfrBreakdown> by_class(const store::EventStore& store) {
  std::vector<AfrBreakdown> out;
  for (const auto cls : model::kAllSystemClasses) {
    const std::size_t c = model::index_of(cls);
    if (store.exposure().class_system_count[c] == 0) continue;  // empty cohort
    out.push_back(compute_afr(store.events(cls),
                              store.exposure().class_disk_years[c],
                              std::string(model::to_string(cls))));
  }
  return out;
}

std::vector<AfrBreakdown> by_class(const store::ShardStore& shards) {
  const store::ExposureTable& exposure = shards.manifest().exposure;
  std::vector<AfrBreakdown> out;
  for (const auto cls : model::kAllSystemClasses) {
    const std::size_t c = model::index_of(cls);
    if (exposure.class_system_count[c] == 0) continue;  // empty cohort
    AfrBreakdown b;
    b.label = std::string(model::to_string(cls));
    b.disk_years = exposure.class_disk_years[c];
    for (std::size_t i = 0; i < shards.shard_count(); ++i) {
      for (const auto type : shards.shard_checked(i).events(cls).type) ++b.events[type];
    }
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace

std::size_t AfrBreakdown::total_events() const {
  std::size_t n = 0;
  for (const auto c : events) n += c;
  return n;
}

double AfrBreakdown::afr_pct(FailureType type) const {
  if (disk_years <= 0.0) return 0.0;
  return 100.0 * static_cast<double>(events[model::index_of(type)]) / disk_years;
}

double AfrBreakdown::total_afr_pct() const {
  if (disk_years <= 0.0) return 0.0;
  return 100.0 * static_cast<double>(total_events()) / disk_years;
}

double AfrBreakdown::share(FailureType type) const {
  const auto total = total_events();
  if (total == 0) return 0.0;
  return static_cast<double>(events[model::index_of(type)]) / static_cast<double>(total);
}

stats::Interval AfrBreakdown::afr_ci(FailureType type, double confidence) const {
  const auto ci =
      stats::rate_ci_garwood(events[model::index_of(type)], disk_years, confidence);
  return stats::Interval{100.0 * ci.lower, 100.0 * ci.upper, 100.0 * ci.point};
}

AfrBreakdown compute_afr(const Source& source, std::string label) {
  if (const Dataset* d = source.dataset()) return accumulate(*d, std::move(label));
  if (const store::EventStore* s = source.store()) return accumulate(*s, std::move(label));
  return accumulate(*source.shards(), std::move(label));
}

AfrBreakdown compute_afr(const store::EventView& events, double disk_years,
                         std::string label) {
  AfrBreakdown b;
  b.label = std::move(label);
  b.disk_years = disk_years;
  for (const auto type : events.type) ++b.events[type];
  return b;
}

std::vector<AfrBreakdown> afr_by_class(const Source& source) {
  if (const Dataset* d = source.dataset()) return by_class(*d);
  if (const store::EventStore* s = source.store()) return by_class(*s);
  return by_class(*source.shards());
}

std::vector<AfrBreakdown> afr_by_disk_model(const Dataset& dataset) {
  // Discover models present among selected systems, in name order.
  std::map<model::DiskModelName, bool> present;
  for (const auto& sys : dataset.inventory().systems) {
    if (dataset.system_selected(sys.id)) present[sys.disk_model] = true;
  }
  std::vector<AfrBreakdown> out;
  for (const auto& [name, _] : present) {
    Filter f;
    f.disk_model = name;
    const Dataset cohort = dataset.filter(f);
    out.push_back(compute_afr(cohort, "Disk " + model::to_string(name)));
  }
  return out;
}

std::vector<AfrBreakdown> afr_by_shelf_model(const Dataset& dataset) {
  std::map<model::ShelfModelName, bool> present;
  for (const auto& sys : dataset.inventory().systems) {
    if (dataset.system_selected(sys.id)) present[sys.shelf_model] = true;
  }
  std::vector<AfrBreakdown> out;
  for (const auto& [name, _] : present) {
    Filter f;
    f.shelf_model = name;
    const Dataset cohort = dataset.filter(f);
    out.push_back(compute_afr(cohort, "Shelf Model " + model::to_string(name)));
  }
  return out;
}

std::vector<AfrBreakdown> afr_by_path_config(const Dataset& dataset) {
  std::vector<AfrBreakdown> out;
  for (const auto paths :
       {model::PathConfig::kSinglePath, model::PathConfig::kDualPath}) {
    Filter f;
    f.paths = paths;
    const Dataset cohort = dataset.filter(f);
    if (cohort.selected_system_count() == 0) continue;
    out.push_back(compute_afr(cohort, std::string(model::to_string(paths))));
  }
  return out;
}

std::vector<StabilityRow> afr_stability_by_disk_model(const Dataset& dataset) {
  // Environment = (system class, shelf model). For each disk model, compute
  // the per-environment disk-failure AFR and subsystem AFR, then summarize
  // their spread.
  using EnvKey = std::pair<model::SystemClass, model::ShelfModelName>;
  std::map<model::DiskModelName, std::map<EnvKey, bool>> environments;
  for (const auto& sys : dataset.inventory().systems) {
    if (dataset.system_selected(sys.id)) {
      environments[sys.disk_model][EnvKey(sys.cls, sys.shelf_model)] = true;
    }
  }

  std::vector<StabilityRow> rows;
  for (const auto& [disk_model, envs] : environments) {
    if (envs.size() < 2) continue;
    stats::Accumulator disk_afr;
    stats::Accumulator subsystem_afr;
    for (const auto& [env, _] : envs) {
      Filter f;
      f.disk_model = disk_model;
      f.system_class = env.first;
      f.shelf_model = env.second;
      const Dataset cohort = dataset.filter(f);
      const auto b = compute_afr(cohort);
      if (b.disk_years <= 0.0) continue;
      disk_afr.add(b.afr_pct(FailureType::kDisk));
      subsystem_afr.add(b.total_afr_pct());
    }
    if (disk_afr.count() < 2) continue;
    StabilityRow row;
    row.disk_model = model::to_string(disk_model);
    row.environments = disk_afr.count();
    row.mean_disk_afr = disk_afr.mean();
    row.rel_stddev_disk_afr =
        disk_afr.mean() > 0.0 ? disk_afr.stddev() / disk_afr.mean() : 0.0;
    row.mean_subsystem_afr = subsystem_afr.mean();
    row.rel_stddev_subsystem_afr =
        subsystem_afr.mean() > 0.0 ? subsystem_afr.stddev() / subsystem_afr.mean() : 0.0;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace storsubsim::core
