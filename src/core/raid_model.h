// Classical analytic RAID reliability (the model the paper challenges).
//
// Patterson/Gibson/Katz-style Markov math computes the expected time to a
// group-defeating multi-failure under two assumptions the paper's data
// violates: failures are independent and exponentially distributed. This
// module implements that math so the simulated (correlated) reality can be
// compared against the classical prediction — see
// `bench/raid_vulnerability` and `core/raid_vulnerability` for the measured
// side.
#pragma once

#include <cstddef>

namespace storsubsim::core {

struct RaidGroupModel {
  std::size_t disks = 8;                 ///< data + parity disks in the group
  double disk_afr_fraction = 0.009;      ///< per-disk annual failure prob (e.g. 0.009)
  double repair_hours = 24.0;            ///< mean time to rebuild/replace one disk
};

/// Mean time to data loss (hours) for single-parity RAID (RAID4/5):
/// MTTDL = mu / (n (n-1) lambda^2) for repair rate mu >> lambda.
double mttdl_single_parity_hours(const RaidGroupModel& model);

/// Mean time to data loss (hours) for double-parity RAID (RAID6):
/// MTTDL = mu^2 / (n (n-1) (n-2) lambda^3).
double mttdl_double_parity_hours(const RaidGroupModel& model);

/// Probability that a group suffers a defeating multi-failure within
/// `years` (exponential approximation: 1 - exp(-t / MTTDL)).
double defeat_probability_single_parity(const RaidGroupModel& model, double years);
double defeat_probability_double_parity(const RaidGroupModel& model, double years);

}  // namespace storsubsim::core
