#include "core/raid_model.h"

#include <cmath>
#include <stdexcept>

namespace storsubsim::core {

namespace {

constexpr double kHoursPerYear = 8766.0;

void validate(const RaidGroupModel& model, std::size_t min_disks) {
  if (model.disks < min_disks) {
    throw std::invalid_argument("RaidGroupModel: too few disks for the RAID level");
  }
  if (!(model.disk_afr_fraction > 0.0) || !(model.disk_afr_fraction < 1.0)) {
    throw std::invalid_argument("RaidGroupModel: disk AFR must be in (0,1)");
  }
  if (!(model.repair_hours > 0.0)) {
    throw std::invalid_argument("RaidGroupModel: repair time must be positive");
  }
}

/// Per-disk failure rate in 1/hour from the annualized failure fraction.
double lambda_per_hour(const RaidGroupModel& model) {
  // AFR = 1 - exp(-lambda * 1yr)  =>  lambda = -ln(1 - AFR) / 8766h.
  return -std::log(1.0 - model.disk_afr_fraction) / kHoursPerYear;
}

}  // namespace

double mttdl_single_parity_hours(const RaidGroupModel& model) {
  validate(model, 2);
  const double lambda = lambda_per_hour(model);
  const double mu = 1.0 / model.repair_hours;
  const double n = static_cast<double>(model.disks);
  return mu / (n * (n - 1.0) * lambda * lambda);
}

double mttdl_double_parity_hours(const RaidGroupModel& model) {
  validate(model, 3);
  const double lambda = lambda_per_hour(model);
  const double mu = 1.0 / model.repair_hours;
  const double n = static_cast<double>(model.disks);
  return mu * mu / (n * (n - 1.0) * (n - 2.0) * lambda * lambda * lambda);
}

double defeat_probability_single_parity(const RaidGroupModel& model, double years) {
  return -std::expm1(-years * kHoursPerYear / mttdl_single_parity_hours(model));
}

double defeat_probability_double_parity(const RaidGroupModel& model, double years) {
  return -std::expm1(-years * kHoursPerYear / mttdl_double_parity_hours(model));
}

}  // namespace storsubsim::core
