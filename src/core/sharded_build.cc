#include "core/sharded_build.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "core/store_bridge.h"
#include "model/fleet.h"
#include "obs/obs.h"
#include "sim/simulator.h"
#include "util/parallel.h"
#include "util/rss.h"

namespace storsubsim::core {

namespace {

/// Creates `dir` if it does not exist yet (one level; the parent must
/// exist). Returns false when the path exists but is not a directory, or
/// the creation fails.
bool ensure_directory(const std::string& dir) {
  struct ::stat st {};
  if (::stat(dir.c_str(), &st) == 0) return S_ISDIR(st.st_mode);
  return ::mkdir(dir.c_str(), 0775) == 0;
}

std::string shard_file_name(std::size_t index) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "shard-%04zu.store", index);
  return std::string(buf);
}

/// Chunk boundaries in global system indices: `shards + 1` cut points,
/// strictly increasing, chosen so each chunk carries roughly the same
/// number of *initial* disks (the memory driver), using the plan's
/// cumulative disk counts.
std::vector<std::size_t> chunk_bounds(const model::FleetPlan& plan, std::size_t shards) {
  const std::size_t n_systems = plan.system_count();
  const std::uint64_t total_disks = plan.disks.back();
  std::vector<std::size_t> bounds(shards + 1, 0);
  bounds[shards] = n_systems;
  for (std::size_t s = 1; s < shards; ++s) {
    const std::uint64_t target = total_disks * s / shards;
    const auto it = std::lower_bound(plan.disks.begin(), plan.disks.end(), target);
    bounds[s] = static_cast<std::size_t>(it - plan.disks.begin());
  }
  // Enforce strict monotonicity (possible ties when systems are huge or
  // shards ~ systems): every chunk must own at least one system.
  for (std::size_t s = 1; s < shards; ++s) {
    bounds[s] = std::max(bounds[s], bounds[s - 1] + 1);
  }
  for (std::size_t s = shards; s-- > 1;) {
    bounds[s] = std::min(bounds[s], bounds[s + 1] - 1);
  }
  return bounds;
}

}  // namespace

store::Error build_sharded_store(const std::string& dir, const model::FleetConfig& config,
                                 const ShardedBuildOptions& options,
                                 ShardedBuildResult* result) {
  obs::Span span("store.sharded_build");
  if (!ensure_directory(dir)) {
    return store::Error{store::ErrorCode::kIo, "cannot create shard directory"};
  }

  // Plan pass: cumulative topology counts in bounded memory. Everything the
  // chunking decisions need, without building the fleet.
  const model::FleetPlan plan = model::Fleet::plan(config);
  const std::size_t n_systems = plan.system_count();
  if (n_systems == 0) {
    return store::Error{store::ErrorCode::kBadValue, "empty fleet config"};
  }
  const std::uint64_t total_disks = plan.disks.back();
  const std::uint64_t budget_bytes = options.max_rss_mb * 1024 * 1024;

  std::size_t shards = options.shards;
  if (shards == 0) {
    if (budget_bytes > 0) {
      // Smallest shard count whose single-chunk working set fits the budget.
      shards = static_cast<std::size_t>(
          (total_disks * kBuildBytesPerDisk + budget_bytes - 1) / budget_bytes);
      if (shards == 0) shards = 1;
    } else {
      shards = 1;
    }
  }
  shards = std::min(shards, n_systems);
  if (shards == 0) shards = 1;

  // A budget also caps how many chunks may be resident at once.
  unsigned build_threads = 0;  // 0 = resolved thread_count()
  if (budget_bytes > 0) {
    const std::uint64_t chunk_disks = (total_disks + shards - 1) / shards;
    const std::uint64_t chunk_bytes = chunk_disks * kBuildBytesPerDisk;
    const std::uint64_t in_flight = chunk_bytes == 0 ? 1 : budget_bytes / chunk_bytes;
    build_threads = static_cast<unsigned>(std::clamp<std::uint64_t>(
        in_flight, 1, util::thread_count()));
  }

  STORSIM_OBS_COUNTER(c_shards, "store.sharded_build.shards",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_shards, shards);

  const std::vector<std::size_t> bounds = chunk_bounds(plan, shards);

  // Per-shard outputs land in disjoint slots; the fan-out is bit-identical
  // to the serial loop because each chunk depends only on (config, range).
  std::vector<store::ShardInfo> infos(shards);
  std::vector<store::Error> errors(shards);
  std::vector<double> seconds(shards, 0.0);

  util::parallel_for(
      shards,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          obs::Span shard_span("store.build_shard");
          const std::size_t sys_begin = bounds[s];
          const std::size_t sys_end = bounds[s + 1];

          // Chunk fleet with global RNG positioning, then the monolithic
          // simulate -> emit -> parse -> classify flow on the chunk alone.
          model::Fleet fleet = model::Fleet::build_chunk(config, sys_begin, sys_end);
          sim::SimIndexBases bases;
          bases.system = sys_begin;
          bases.shelf = plan.shelves[sys_begin];
          sim::Simulator simulator(fleet, options.params, bases);
          sim::SimResult sim_result = simulator.run();

          PipelineStats pipeline;
          Dataset dataset = dataset_via_logs(fleet, sim_result, &pipeline);
          SimulationDataset run{std::move(dataset), sim_result.counters, pipeline};

          store::ShardInfo& info = infos[s];
          info.file = shard_file_name(s);
          info.sys_begin = sys_begin;
          info.sys_end = sys_end;
          info.systems = fleet.systems().size();
          info.shelves = fleet.shelves().size();
          info.raid_groups = fleet.raid_groups().size();
          info.disks_initial = fleet.initial_disk_count();
          info.disks_total = fleet.disks().size();
          info.events = run.dataset.events().size();

          std::string path = dir;
          path += '/';
          path += info.file;
          errors[s] = write_store(path, run, config.seed, config.scale);
          seconds[s] = shard_span.stop();
        }
      },
      build_threads);

  for (const auto& err : errors) {
    if (!err.ok()) return err;
  }

  // Merge pass: re-open each shard (full validation) and accumulate the
  // exposure table in the monolithic order, plus the summed meta counters.
  store::ShardManifest manifest;
  manifest.seed = config.seed;
  manifest.scale = config.scale;
  manifest.horizon_seconds = config.horizon_seconds;
  manifest.shards = std::move(infos);
  if (store::Error err =
          store::merge_shard_tables(dir, &manifest.shards, config.horizon_seconds,
                                    &manifest.exposure, &manifest.meta);
      !err.ok()) {
    return err;
  }
  for (const auto& info : manifest.shards) {
    manifest.systems += info.systems;
    manifest.shelves += info.shelves;
    manifest.disks_initial += info.disks_initial;
    manifest.disks_total += info.disks_total;
    manifest.raid_groups += info.raid_groups;
    manifest.events += info.events;
  }
  manifest.peak_rss_bytes = util::peak_rss_bytes();
  STORSIM_OBS_COUNTER(c_rss, "store.sharded_build.peak_rss_bytes",
                      ::storsubsim::obs::Stability::kSchedulingDependent);
  STORSIM_OBS_ADD(c_rss, manifest.peak_rss_bytes);

  if (store::Error err = store::write_manifest_file(dir, manifest); !err.ok()) {
    return err;
  }

  if (result != nullptr) {
    result->shards = manifest.shards.size();
    result->events = manifest.events;
    result->disk_records = manifest.disks_total;
    result->peak_rss_bytes = manifest.peak_rss_bytes;
    result->shard_build_seconds = std::move(seconds);
  }
  return store::Error{};
}

}  // namespace storsubsim::core
