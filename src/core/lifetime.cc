#include "core/lifetime.h"

#include <algorithm>
#include <unordered_set>

#include "model/time.h"

namespace storsubsim::core {

namespace {

std::vector<stats::SurvivalObservation> observations_of(const Dataset& dataset) {
  // Which disks had a disk failure (the event that ends a record's life;
  // other failure types leave the disk in place).
  std::unordered_set<std::uint32_t> failed;
  for (const auto& e : dataset.events()) {
    if (e.type == model::FailureType::kDisk) failed.insert(e.disk.value());
  }

  const auto& inv = dataset.inventory();
  std::vector<stats::SurvivalObservation> out;
  out.reserve(inv.disks.size());
  for (const auto& d : inv.disks) {
    if (!dataset.system_selected(d.system)) continue;
    const double start = std::max(0.0, d.install_time);
    const double end = std::min(inv.horizon_seconds, d.remove_time);
    if (end <= start) continue;  // never observed inside the window
    stats::SurvivalObservation obs;
    obs.duration = end - start;
    // Only an in-window removal caused by a disk failure counts as an
    // observed event; otherwise the record is censored at the horizon.
    obs.event = failed.contains(d.id.value()) && d.remove_time <= inv.horizon_seconds;
    out.push_back(obs);
  }
  return out;
}

LifetimeReport report_from_observations(
    const std::vector<stats::SurvivalObservation>& observations,
    std::vector<double> age_edges_days) {
  if (age_edges_days.empty()) {
    age_edges_days = {0.0, 30.0, 90.0, 180.0, 365.0, 730.0, 1340.0};
  }
  std::vector<double> edges_seconds;
  edges_seconds.reserve(age_edges_days.size());
  for (const double d : age_edges_days) edges_seconds.push_back(d * model::kSecondsPerDay);

  LifetimeReport report;
  report.disks = observations.size();
  report.survival = stats::KaplanMeier::fit(observations);
  report.failures = report.survival.total_events();
  report.hazard_by_age = stats::hazard_by_age(observations, edges_seconds);
  report.censored_fraction =
      observations.empty()
          ? 0.0
          : 1.0 - static_cast<double>(report.failures) /
                      static_cast<double>(observations.size());
  return report;
}

std::vector<stats::SurvivalObservation> observations_of(const store::EventStore& store) {
  std::unordered_set<std::uint32_t> failed;
  for (const auto cls : model::kAllSystemClasses) {
    const store::EventView& view = store.events(cls);
    for (std::size_t i = 0; i < view.size(); ++i) {
      if (view.type[i] == static_cast<std::uint8_t>(model::FailureType::kDisk)) {
        failed.insert(view.disk[i]);
      }
    }
  }

  const double horizon = store.header().horizon_seconds;
  const auto install = store.topology(store::ColumnId::kDiskInstall)->as_f64();
  const auto remove = store.topology(store::ColumnId::kDiskRemove)->as_f64();
  std::vector<stats::SurvivalObservation> out;
  out.reserve(install.size());
  for (std::size_t i = 0; i < install.size(); ++i) {
    const double start = std::max(0.0, install[i]);
    const double end = std::min(horizon, remove[i]);
    if (end <= start) continue;  // never observed inside the window
    stats::SurvivalObservation obs;
    obs.duration = end - start;
    obs.event =
        failed.contains(static_cast<std::uint32_t>(i)) && remove[i] <= horizon;
    out.push_back(obs);
  }
  return out;
}

std::vector<stats::SurvivalObservation> observations_of(const store::ShardStore& shards) {
  // The monolithic disk order is [every shard's initial disks, in shard
  // order] then [every shard's replacement disks, in shard order]
  // (docs/STORE.md), so two shard-major passes — initial rows first, then
  // replacement rows — reproduce the single-file observation sequence
  // exactly. Events reference shard-local disk ids, so each shard gets its
  // own failed-disk set.
  std::vector<std::unordered_set<std::uint32_t>> failed(shards.shard_count());
  for (std::size_t s = 0; s < shards.shard_count(); ++s) {
    const store::EventStore& store = shards.shard_checked(s);
    for (const auto cls : model::kAllSystemClasses) {
      const store::EventView& view = store.events(cls);
      for (std::size_t i = 0; i < view.size(); ++i) {
        if (view.type[i] == static_cast<std::uint8_t>(model::FailureType::kDisk)) {
          failed[s].insert(view.disk[i]);
        }
      }
    }
  }

  std::vector<stats::SurvivalObservation> out;
  out.reserve(static_cast<std::size_t>(shards.manifest().disks_total));
  for (const bool replacement_pass : {false, true}) {
    for (std::size_t s = 0; s < shards.shard_count(); ++s) {
      const store::EventStore& store = shards.shard(s);
      const double horizon = store.header().horizon_seconds;
      const auto install = store.topology(store::ColumnId::kDiskInstall)->as_f64();
      const auto remove = store.topology(store::ColumnId::kDiskRemove)->as_f64();
      const auto initial = static_cast<std::size_t>(shards.info(s).disks_initial);
      const std::size_t begin = replacement_pass ? initial : 0;
      const std::size_t end = replacement_pass ? install.size() : initial;
      for (std::size_t i = begin; i < end; ++i) {
        const double start = std::max(0.0, install[i]);
        const double stop = std::min(horizon, remove[i]);
        if (stop <= start) continue;  // never observed inside the window
        stats::SurvivalObservation obs;
        obs.duration = stop - start;
        obs.event = failed[s].contains(static_cast<std::uint32_t>(i)) &&
                    remove[i] <= horizon;
        out.push_back(obs);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<stats::SurvivalObservation> disk_lifetime_observations(const Source& source) {
  if (const Dataset* d = source.dataset()) return observations_of(*d);
  if (const store::EventStore* s = source.store()) return observations_of(*s);
  return observations_of(*source.shards());
}

LifetimeReport disk_lifetime_report(const Source& source,
                                    std::vector<double> age_edges_days) {
  return report_from_observations(disk_lifetime_observations(source),
                                  std::move(age_edges_days));
}

}  // namespace storsubsim::core
