#include "core/lifetime.h"

#include <algorithm>
#include <unordered_set>

#include "model/time.h"

namespace storsubsim::core {

std::vector<stats::SurvivalObservation> disk_lifetime_observations(const Dataset& dataset) {
  // Which disks had a disk failure (the event that ends a record's life;
  // other failure types leave the disk in place).
  std::unordered_set<std::uint32_t> failed;
  for (const auto& e : dataset.events()) {
    if (e.type == model::FailureType::kDisk) failed.insert(e.disk.value());
  }

  const auto& inv = dataset.inventory();
  std::vector<stats::SurvivalObservation> out;
  out.reserve(inv.disks.size());
  for (const auto& d : inv.disks) {
    if (!dataset.system_selected(d.system)) continue;
    const double start = std::max(0.0, d.install_time);
    const double end = std::min(inv.horizon_seconds, d.remove_time);
    if (end <= start) continue;  // never observed inside the window
    stats::SurvivalObservation obs;
    obs.duration = end - start;
    // Only an in-window removal caused by a disk failure counts as an
    // observed event; otherwise the record is censored at the horizon.
    obs.event = failed.contains(d.id.value()) && d.remove_time <= inv.horizon_seconds;
    out.push_back(obs);
  }
  return out;
}

LifetimeReport disk_lifetime_report(const Dataset& dataset,
                                    std::vector<double> age_edges_days) {
  if (age_edges_days.empty()) {
    age_edges_days = {0.0, 30.0, 90.0, 180.0, 365.0, 730.0, 1340.0};
  }
  std::vector<double> edges_seconds;
  edges_seconds.reserve(age_edges_days.size());
  for (const double d : age_edges_days) edges_seconds.push_back(d * model::kSecondsPerDay);

  const auto observations = disk_lifetime_observations(dataset);
  LifetimeReport report;
  report.disks = observations.size();
  report.survival = stats::KaplanMeier::fit(observations);
  report.failures = report.survival.total_events();
  report.hazard_by_age = stats::hazard_by_age(observations, edges_seconds);
  report.censored_fraction =
      observations.empty()
          ? 0.0
          : 1.0 - static_cast<double>(report.failures) /
                      static_cast<double>(observations.size());
  return report;
}

}  // namespace storsubsim::core
