// Self-correlation of failures within shelves and RAID groups
// (paper Section 5.2, Figure 10).
//
// Method (paper §5.2.1-5.2.2): if failures were independent, the probability
// of a scope experiencing exactly two failures in a window T would satisfy
// P(2) = P(1)^2 / 2 (and generally P(N) = P(1)^N / N!). We measure the
// empirical P(1) and P(2) over scope-year windows and compare the empirical
// P(2) with the theoretical prediction; empirical >> theoretical means
// failures share causes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/burstiness.h"
#include "core/dataset.h"
#include "core/source.h"
#include "model/time.h"
#include "stats/hypothesis.h"
#include "stats/intervals.h"

namespace storsubsim::core {

struct CorrelationResult {
  Scope scope = Scope::kShelf;
  model::FailureType type = model::FailureType::kDisk;
  double window_seconds = 0.0;

  std::size_t windows_observed = 0;  ///< complete scope-windows in the field
  std::size_t windows_with_one = 0;
  std::size_t windows_with_two = 0;

  double empirical_p1() const;
  double empirical_p2() const;
  /// P(1)^2 / 2 — the independence prediction (paper equation 3).
  double theoretical_p2() const;
  /// Correlation strength: empirical P(2) / theoretical P(2). ~1 under
  /// independence; the paper reports ~6x for disk failures, 10-25x for the
  /// other types.
  double correlation_factor() const;

  /// Wilson CI on the empirical P(2).
  stats::Interval empirical_p2_ci(double confidence) const;
  /// One-vs-theory proportion test (the paper's t-test of empirical vs
  /// theoretical P(2)).
  stats::TTestResult independence_test() const;
};

/// Computes P(1)/P(2) statistics for one failure type — the unified entry
/// point. Each scope contributes floor(observed_time / window) complete
/// windows; a scope deployed for less than one window is excluded (paper:
/// "Only storage systems that have been in the field for one year or more
/// are considered"). Dataset-backed sources join scopes via the inventory;
/// store-backed sources (whole, unfiltered cohort) read the mapped event and
/// topology columns — pure integer tallies, identical on both paths.
CorrelationResult failure_correlation(const Source& source, Scope scope,
                                      model::FailureType type,
                                      double window_seconds = model::kSecondsPerYear);

/// All four types at once.
std::vector<CorrelationResult> failure_correlation_all_types(
    const Source& source, Scope scope, double window_seconds = model::kSecondsPerYear);

/// The generalized check P(N) = P(1)^N / N! for N = 1..max_n (paper
/// equation 4): empirical vs theoretical window fractions.
struct MultiplicityRow {
  std::size_t n = 0;
  double empirical = 0.0;
  double theoretical = 0.0;
};

std::vector<MultiplicityRow> failure_multiplicity(const Dataset& dataset, Scope scope,
                                                  model::FailureType type, std::size_t max_n,
                                                  double window_seconds =
                                                      model::kSecondsPerYear);

/// Index of dispersion (variance-to-mean ratio) of per-scope-window failure
/// counts: exactly 1 for a homogeneous Poisson process, > 1 under clustering
/// or scope heterogeneity. A second, binning-free lens on Finding 11.
double dispersion_index(const Dataset& dataset, Scope scope, model::FailureType type,
                        double window_seconds = model::kSecondsPerYear);

/// Cross-type triggering: after a `trigger` failure in a scope, how often
/// does a `response` failure (of a different type) follow within `window`,
/// versus the homogeneous-independence baseline?
struct CrossTypeResult {
  model::FailureType trigger = model::FailureType::kDisk;
  model::FailureType response = model::FailureType::kDisk;
  Scope scope = Scope::kShelf;
  double window_seconds = 0.0;

  std::size_t triggers = 0;
  std::size_t triggers_followed = 0;  ///< trigger events with a response in-window

  /// Mean response rate per scope-second across the cohort (the null).
  double baseline_rate_per_scope_second = 0.0;

  double conditional_probability() const {
    return triggers == 0 ? 0.0
                         : static_cast<double>(triggers_followed) /
                               static_cast<double>(triggers);
  }
  /// Expected follow probability if responses were a homogeneous Poisson
  /// stream independent of the triggers.
  double baseline_probability() const;
  /// conditional / baseline; >> 1 means the trigger type foreshadows the
  /// response type within the scope.
  double lift() const;
};

CrossTypeResult cross_type_correlation(const Dataset& dataset, Scope scope,
                                       model::FailureType trigger,
                                       model::FailureType response, double window_seconds);

}  // namespace storsubsim::core
