#include "core/prediction.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

namespace storsubsim::core {

PredictionOutcome evaluate_predictor(const Dataset& dataset,
                                     std::span<const sim::PrecursorEvent> precursors,
                                     const PredictorConfig& config) {
  PredictionOutcome outcome;
  outcome.config = config;

  // Per-disk signal and failure streams (precursors arrive sorted; keep
  // order within each disk).
  std::unordered_map<std::uint32_t, std::vector<double>> signals;
  for (const auto& p : precursors) {
    if (p.kind != config.signal) continue;
    if (!p.disk.valid() || p.disk.value() >= dataset.inventory().disks.size()) continue;
    if (!dataset.system_selected(dataset.inventory().disks[p.disk.value()].system)) continue;
    signals[p.disk.value()].push_back(p.time);
  }
  std::unordered_map<std::uint32_t, std::vector<double>> failures;
  for (const auto& e : dataset.events()) {
    if (e.type != config.target) continue;
    failures[e.disk.value()].push_back(e.time);
    ++outcome.failures_total;
  }

  std::vector<double> leads;

  // Per-disk loop only bumps integer counters and appends to `leads`, which
  // is sorted before the median is taken — visit order cannot leak out.
  // storsim-lint: allow(unordered-iter) reason=order-insensitive counters; leads re-sorted before use
  for (auto& [disk, times] : signals) {
    std::sort(times.begin(), times.end());
    auto fit = failures.find(disk);
    const std::vector<double> no_failures;
    const std::vector<double>& disk_failures =
        fit == failures.end() ? no_failures : fit->second;

    // Generate alarms. Both families disarm after firing and re-arm once the
    // statistic falls back below threshold; a failure resets the state (the
    // disk was replaced / the incident resolved).
    std::vector<double> alarm_times;
    std::size_t next_failure = 0;
    if (config.kind == PredictorKind::kCountThreshold) {
      std::deque<double> window;
      bool armed = true;
      for (const double t : times) {
        while (next_failure < disk_failures.size() && disk_failures[next_failure] <= t) {
          window.clear();
          armed = true;
          ++next_failure;
        }
        window.push_back(t);
        while (!window.empty() && window.front() < t - config.window_seconds) {
          window.pop_front();
        }
        if (window.size() < config.threshold) {
          armed = true;
          continue;
        }
        if (armed) {
          alarm_times.push_back(t);
          armed = false;
        }
      }
    } else {
      // EWMA rate: each event bumps the estimate by 1/tau after decaying it
      // by exp(-dt/tau); the steady-state estimate for a Poisson stream of
      // rate r is r.
      const double tau = config.ewma_tau_days * 86400.0;
      const double threshold = config.rate_threshold_per_day / 86400.0;
      double rate = 0.0;
      double last = -1.0;
      bool armed = true;
      for (const double t : times) {
        while (next_failure < disk_failures.size() && disk_failures[next_failure] <= t) {
          rate = 0.0;
          last = -1.0;
          armed = true;
          ++next_failure;
        }
        if (last >= 0.0) rate *= std::exp(-(t - last) / tau);
        rate += 1.0 / tau;
        last = t;
        if (rate < threshold) {
          armed = true;
          continue;
        }
        if (armed) {
          alarm_times.push_back(t);
          armed = false;
        }
      }
    }

    // Score the alarms against the failure stream.
    outcome.alarms += alarm_times.size();
    for (const double alarm : alarm_times) {
      const auto it =
          std::lower_bound(disk_failures.begin(), disk_failures.end(), alarm);
      if (it != disk_failures.end() && *it - alarm <= config.horizon_seconds) {
        ++outcome.true_alarms;
      }
    }
    // A failure counts as predicted if any alarm fell in [T_f - horizon, T_f].
    for (const double failure : disk_failures) {
      const auto lo = std::lower_bound(alarm_times.begin(), alarm_times.end(),
                                       failure - config.horizon_seconds);
      if (lo != alarm_times.end() && *lo <= failure) {
        ++outcome.failures_predicted;
        leads.push_back(failure - *lo);
      }
    }
  }

  if (!leads.empty()) {
    std::sort(leads.begin(), leads.end());
    outcome.median_lead_seconds = leads[leads.size() / 2];
  }
  const double disk_years = dataset.disk_exposure_years();
  if (disk_years > 0.0) {
    outcome.false_alarms_per_disk_year =
        static_cast<double>(outcome.alarms - outcome.true_alarms) / disk_years;
  }
  return outcome;
}

std::vector<PredictionOutcome> threshold_sweep(
    const Dataset& dataset, std::span<const sim::PrecursorEvent> precursors,
    PredictorConfig base, std::span<const std::size_t> thresholds) {
  std::vector<PredictionOutcome> out;
  out.reserve(thresholds.size());
  for (const std::size_t k : thresholds) {
    base.threshold = k;
    out.push_back(evaluate_predictor(dataset, precursors, base));
  }
  return out;
}

}  // namespace storsubsim::core
