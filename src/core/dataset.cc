#include "core/dataset.h"

#include <algorithm>
#include <stdexcept>

#include "model/time.h"

namespace storsubsim::core {

bool Filter::matches(const log::InventorySystem& system) const {
  if (system_class && system.cls != *system_class) return false;
  if (disk_model && !(system.disk_model == *disk_model)) return false;
  if (disk_family && system.disk_model.family != *disk_family) return false;
  if (shelf_model && !(system.shelf_model == *shelf_model)) return false;
  if (paths && system.paths != *paths) return false;
  if (exclude_family_h && system.disk_model.family == 'H') return false;
  return true;
}

Dataset::Dataset(std::shared_ptr<const log::Inventory> inventory,
                 std::vector<FailureEvent> events)
    : inventory_(std::move(inventory)) {
  if (!inventory_) throw std::invalid_argument("Dataset: null inventory");
  system_mask_.assign(inventory_->systems.size(), 1);
  events_.reserve(events.size());
  for (auto& e : events) {
    if (!e.disk.valid() || e.disk.value() >= inventory_->disks.size()) {
      ++dropped_unknown_disk_;
      continue;
    }
    // Trust the inventory's system mapping over the event's (log lines can
    // be replayed across head failovers).
    e.system = inventory_->disks[e.disk.value()].system;
    events_.push_back(e);
  }
  std::sort(events_.begin(), events_.end(),
            [](const FailureEvent& a, const FailureEvent& b) { return a.time < b.time; });
}

Dataset Dataset::filter(const Filter& f) const {
  Dataset out;
  out.inventory_ = inventory_;
  out.system_mask_.assign(inventory_->systems.size(), 0);
  for (const auto& sys : inventory_->systems) {
    if (system_mask_[sys.id.value()] != 0 && f.matches(sys)) {
      out.system_mask_[sys.id.value()] = 1;
    }
  }
  out.events_.reserve(events_.size());
  for (const auto& e : events_) {
    if (out.system_mask_[e.system.value()] != 0) out.events_.push_back(e);
  }
  out.dropped_unknown_disk_ = dropped_unknown_disk_;
  return out;
}

std::size_t Dataset::event_count(model::FailureType type) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.type == type) ++n;
  }
  return n;
}

std::size_t Dataset::selected_system_count() const {
  std::size_t n = 0;
  for (const char m : system_mask_) n += static_cast<std::size_t>(m);
  return n;
}

std::size_t Dataset::selected_shelf_count() const {
  std::size_t n = 0;
  for (const auto& sh : inventory_->shelves) {
    if (system_mask_[sh.system.value()] != 0) ++n;
  }
  return n;
}

std::size_t Dataset::selected_raid_group_count() const {
  std::size_t n = 0;
  for (const auto& g : inventory_->raid_groups) {
    if (system_mask_[g.system.value()] != 0) ++n;
  }
  return n;
}

std::size_t Dataset::selected_disk_record_count() const {
  std::size_t n = 0;
  for (const auto& d : inventory_->disks) {
    if (system_mask_[d.system.value()] != 0) ++n;
  }
  return n;
}

double Dataset::disk_exposure_years() const {
  double total = 0.0;
  for (const auto& d : inventory_->disks) {
    if (system_mask_[d.system.value()] != 0) total += inventory_->disk_exposure_years(d);
  }
  return total;
}

double Dataset::shelf_exposure_years() const {
  double total = 0.0;
  for (const auto& sh : inventory_->shelves) {
    if (system_mask_[sh.system.value()] == 0) continue;
    const auto& sys = inventory_->systems[sh.system.value()];
    const double span = inventory_->horizon_seconds - sys.deploy_time;
    if (span > 0.0) total += model::years(span);
  }
  return total;
}

double Dataset::raid_group_exposure_years() const {
  double total = 0.0;
  for (const auto& g : inventory_->raid_groups) {
    if (system_mask_[g.system.value()] == 0) continue;
    const auto& sys = inventory_->systems[g.system.value()];
    const double span = inventory_->horizon_seconds - sys.deploy_time;
    if (span > 0.0) total += model::years(span);
  }
  return total;
}

const log::InventoryDisk& Dataset::disk_of(const FailureEvent& event) const {
  return inventory_->disks[event.disk.value()];
}

const log::InventorySystem& Dataset::system_of(const FailureEvent& event) const {
  return inventory_->systems[disk_of(event).system.value()];
}

}  // namespace storsubsim::core
