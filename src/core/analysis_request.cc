#include "core/analysis_request.h"

#include <stdexcept>

#include "core/analysis_render.h"
#include "model/enums.h"
#include "model/time.h"

namespace storsubsim::core {

std::string_view endpoint_name(StatisticId id) noexcept {
  switch (id) {
    case StatisticId::kAfrTotal: return "afr";
    case StatisticId::kAfrByClass: return "afr_by_class";
    case StatisticId::kTbf: return "tbf";
    case StatisticId::kCorrelation: return "correlation";
    case StatisticId::kLifetime: return "lifetime";
    case StatisticId::kQuery: return "query";
  }
  return "unknown";
}

std::string_view report_name(StatisticId id) noexcept {
  switch (id) {
    case StatisticId::kAfrTotal: return "afr-total";
    case StatisticId::kAfrByClass: return "afr";
    case StatisticId::kTbf: return "burstiness";
    case StatisticId::kCorrelation: return "correlation";
    case StatisticId::kLifetime: return "lifetime";
    case StatisticId::kQuery: return "query";
  }
  return "unknown";
}

std::optional<StatisticId> statistic_from_endpoint(std::string_view name) noexcept {
  for (const StatisticId id : kAllStatistics) {
    if (endpoint_name(id) == name) return id;
  }
  return std::nullopt;
}

std::optional<StatisticId> statistic_from_report(std::string_view name) noexcept {
  for (const StatisticId id : kAllStatistics) {
    if (report_name(id) == name) return id;
  }
  return std::nullopt;
}

RequestError make_request_error(std::string_view code, std::string_view message) {
  RequestError err;
  err.code.assign(code);
  err.message.assign(message);
  return err;
}

RequestError AnalysisRequest::from_params(StatisticId statistic,
                                          const RequestParams& params, bool csv,
                                          AnalysisRequest* out) {
  AnalysisRequest request;
  request.statistic = statistic;
  request.csv = csv;
  if (statistic != StatisticId::kQuery) {
    if (!params.empty()) {
      return make_request_error("bad-request",
                                "params are only valid for the query endpoint");
    }
    *out = request;
    return RequestError{};
  }

  // The historical `storsubsim store query` flag handling, token for token —
  // every front end must reject exactly what the offline CLI rejects, with
  // the same wording.
  if (!params.type.empty()) {
    const auto parsed = model::parse_failure_type(params.type);
    if (!parsed) {
      std::string message("unknown failure type '");
      message.append(params.type).append("'");
      return make_request_error("bad-param", message);
    }
    request.query.failure_type = parsed;
  }
  if (!params.cls.empty()) {
    const auto parsed = model::parse_system_class(params.cls);
    if (!parsed) {
      std::string message("unknown system class '");
      message.append(params.cls).append("'");
      return make_request_error("bad-param", message);
    }
    request.query.system_class = parsed;
  }
  if (!params.family.empty()) {
    if (params.family.size() != 1) {
      std::string message("disk family must be a single letter, got '");
      message.append(params.family).append("'");
      return make_request_error("bad-param", message);
    }
    request.query.disk_family = params.family[0];
  }
  if (params.from_days.has_value()) {
    request.query.time_begin = *params.from_days * model::kSecondsPerDay;
  }
  if (params.to_days.has_value()) {
    request.query.time_end = *params.to_days * model::kSecondsPerDay;
  }
  if (params.group_by == "class") {
    request.query.group_by = store::Query::GroupBy::kSystemClass;
  } else if (params.group_by == "type") {
    request.query.group_by = store::Query::GroupBy::kFailureType;
  } else if (params.group_by == "family") {
    request.query.group_by = store::Query::GroupBy::kDiskFamily;
  } else if (!params.group_by.empty()) {
    std::string message("unknown group-by '");
    message.append(params.group_by).append("' (want class|type|family)");
    return make_request_error("bad-param", message);
  }
  *out = request;
  return RequestError{};
}

store::Error run_source_query(const Source& source, const store::Query& query,
                              store::QueryResult* out) {
  if (const store::EventStore* es = source.store()) {
    *out = store::run_query(*es, query);
    return store::Error{};
  }
  if (const store::ShardStore* shards = source.shards()) {
    // Drive QueryRun shard-at-a-time (lazy const opening) — the same scan
    // run_query(ShardStore&) wraps, minus its non-const pin bookkeeping.
    store::ScanScratch scratch;
    store::QueryRun run(query, &scratch);
    for (std::size_t i = 0; i < shards->shard_count(); ++i) {
      if (store::Error err = shards->ensure_open(i); !err.ok()) return err;
      run.scan(shards->shard(i));
    }
    *out = run.finish(shards->manifest().exposure);
    return store::Error{};
  }
  return store::make_error(store::ErrorCode::kBadValue,
                           "query statistic needs a store-backed source", 0);
}

std::string render_statistic(const Source& source, const AnalysisRequest& request) {
  switch (request.statistic) {
    case StatisticId::kAfrTotal: return render_afr_total(source, request.csv);
    case StatisticId::kAfrByClass: return render_afr_by_class(source, request.csv);
    case StatisticId::kTbf: return render_tbf(source, request.csv);
    case StatisticId::kCorrelation: return render_correlation(source, request.csv);
    case StatisticId::kLifetime: return render_lifetime(source, request.csv);
    case StatisticId::kQuery: {
      store::QueryResult result;
      if (const store::Error err = run_source_query(source, request.query, &result);
          !err.ok()) {
        throw std::runtime_error(err.describe());
      }
      return render_query_result(result, request.csv);
    }
  }
  return {};
}

}  // namespace storsubsim::core
