// The one place analysis results become report bytes.
//
// `storsubsim analyze`, `storsubsim store query`, and every storsimd serve
// endpoint render through these functions, so "the daemon answers
// byte-identically to offline analyze" is true by construction: both sides
// call the same renderer over the same core::Source. Each function returns
// the exact bytes the CLI prints to stdout (text table or CSV).
#pragma once

#include <string>

#include "core/source.h"
#include "store/query.h"

namespace storsubsim::core {

/// Whole-cohort AFR, one row (`analyze --report afr-total`, endpoint `afr`).
std::string render_afr_total(const Source& source, bool csv);

/// AFR by system class, paper Figure 4 (`analyze --report afr`, endpoint
/// `afr_by_class`).
std::string render_afr_by_class(const Source& source, bool csv);

/// Time-between-failures table, paper Figure 9 (`analyze --report
/// burstiness`, endpoint `tbf`).
std::string render_tbf(const Source& source, bool csv);

/// Correlation P(1)/P(2) table, paper Figure 10 (`analyze --report
/// correlation`, endpoint `correlation`).
std::string render_correlation(const Source& source, bool csv);

/// Kaplan-Meier survival summary + age-binned hazard (`analyze --report
/// lifetime`, endpoint `lifetime`): two tables, concatenated.
std::string render_lifetime(const Source& source, bool csv);

/// Group table of a store query (`store query`, endpoint `query`). The scan
/// accounting (stats) goes to stderr in the CLI and is not part of these
/// bytes.
std::string render_query_result(const store::QueryResult& result, bool csv);

}  // namespace storsubsim::core
