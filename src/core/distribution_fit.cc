#include "core/distribution_fit.h"

#include <algorithm>
#include <stdexcept>

namespace storsubsim::core {

std::string to_string(CandidateFamily family) {
  switch (family) {
    case CandidateFamily::kExponential: return "Exponential";
    case CandidateFamily::kGamma: return "Gamma";
    case CandidateFamily::kWeibull: return "Weibull";
  }
  return "unknown";
}

double CandidateFit::cdf(double x) const {
  switch (family) {
    case CandidateFamily::kExponential: return stats::to_exponential(fit).cdf(x);
    case CandidateFamily::kGamma: return stats::to_gamma(fit).cdf(x);
    case CandidateFamily::kWeibull: return stats::to_weibull(fit).cdf(x);
  }
  return 0.0;
}

const CandidateFit& FitReport::best_by_likelihood() const {
  if (candidates.empty()) throw std::logic_error("FitReport: no candidates");
  return *std::max_element(candidates.begin(), candidates.end(),
                           [](const CandidateFit& a, const CandidateFit& b) {
                             return a.fit.log_likelihood < b.fit.log_likelihood;
                           });
}

const CandidateFit* FitReport::best_non_rejected() const {
  const CandidateFit* best = nullptr;
  for (const auto& c : candidates) {
    if (c.rejected_at_005) continue;
    if (best == nullptr || c.fit.log_likelihood > best->fit.log_likelihood) best = &c;
  }
  return best;
}

FitReport fit_interarrivals(std::span<const double> gaps, std::size_t gof_bins,
                            std::size_t max_gof_sample) {
  // Guard against zero gaps (events detected in the same scrub second):
  // nudge them to a small positive value so the positive-support fitters and
  // log-likelihoods stay defined.
  std::vector<double> xs(gaps.begin(), gaps.end());
  for (auto& x : xs) {
    if (x <= 0.0) x = 1e-3;
  }
  if (xs.empty()) throw std::invalid_argument("fit_interarrivals: empty sample");

  std::vector<double> gof_sample;
  if (max_gof_sample != 0 && xs.size() > max_gof_sample) {
    gof_sample.reserve(max_gof_sample);
    const double stride = static_cast<double>(xs.size()) / static_cast<double>(max_gof_sample);
    for (std::size_t i = 0; i < max_gof_sample; ++i) {
      gof_sample.push_back(xs[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
    }
  } else {
    gof_sample = xs;
  }

  FitReport report;
  report.sample_size = xs.size();

  auto add = [&](CandidateFamily family, stats::FitResult fit, auto cdf, auto quantile,
                 std::size_t params) {
    CandidateFit c;
    c.family = family;
    c.fit = fit;
    c.gof = stats::chi_square_gof(gof_sample, cdf, quantile, params, gof_bins);
    c.rejected_at_005 = c.gof.rejected_at(0.05);
    report.candidates.push_back(std::move(c));
  };

  {
    const auto fit = stats::fit_exponential_mle(xs);
    const auto d = stats::to_exponential(fit);
    add(CandidateFamily::kExponential, fit, [d](double x) { return d.cdf(x); },
        [d](double p) { return d.quantile(p); }, 1);
  }
  {
    const auto fit = stats::fit_gamma_mle(xs);
    const auto d = stats::to_gamma(fit);
    add(CandidateFamily::kGamma, fit, [d](double x) { return d.cdf(x); },
        [d](double p) { return d.quantile(p); }, 2);
  }
  {
    const auto fit = stats::fit_weibull_mle(xs);
    const auto d = stats::to_weibull(fit);
    add(CandidateFamily::kWeibull, fit, [d](double x) { return d.cdf(x); },
        [d](double p) { return d.quantile(p); }, 2);
  }
  return report;
}

}  // namespace storsubsim::core
