// End-to-end dataset construction: simulate -> emit text logs -> parse ->
// classify -> join with the parsed snapshot. This mirrors how the paper's
// data flowed (AutoSupport logs in, analysis out) and exercises every
// substrate, so the benches and examples default to it. The in-memory
// fast path (no text round-trip) is available for interactive use.
#pragma once

#include <cstdint>

#include "core/dataset.h"
#include "model/fleet_config.h"
#include "sim/params.h"
#include "sim/simulator.h"

namespace storsubsim::core {

/// Wall time each pipeline stage spent, in seconds. Observability only —
/// stage times are outputs, never inputs, so the dataset stays bit-identical
/// regardless of timer behavior. In the sharded pipeline emit/parse/classify
/// are summed across shards (CPU-seconds, not wall span).
struct StageSeconds {
  double simulate = 0.0;
  double emit = 0.0;
  double parse = 0.0;
  double classify = 0.0;
  double sort = 0.0;  ///< global merge sort of shard outputs
};

struct PipelineStats {
  std::size_t log_lines_written = 0;
  std::size_t log_lines_parsed = 0;
  std::size_t raid_records = 0;
  std::size_t failures_classified = 0;
  std::size_t duplicates_dropped = 0;    ///< classifier de-dup window hits
  std::size_t missing_disk_dropped = 0;  ///< RAID records without a disk id
  StageSeconds stage_seconds;
};

/// Builds a Dataset from an already-run simulation via the text-log
/// round-trip (emit -> parse -> classify -> parse snapshot -> join).
Dataset dataset_via_logs(const model::Fleet& fleet, const sim::SimResult& result,
                         PipelineStats* stats = nullptr);

/// Builds a Dataset directly from simulator output (no text round-trip).
Dataset dataset_in_memory(const model::Fleet& fleet, const sim::SimResult& result);

/// One-call convenience: build fleet, simulate, and return the dataset via
/// the text-log path.
struct SimulationDataset {
  Dataset dataset;
  sim::SimCounters counters;
  PipelineStats pipeline;
};

SimulationDataset simulate_and_analyze(const model::FleetConfig& config,
                                       const sim::SimParams& params = sim::SimParams::standard(),
                                       bool through_text_logs = true);

}  // namespace storsubsim::core
