#include "log/record.h"

#include "log/codes.h"

namespace storsubsim::log {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::optional<Severity> parse_severity(std::string_view s) {
  if (s == "info") return Severity::kInfo;
  if (s == "warning") return Severity::kWarning;
  if (s == "error") return Severity::kError;
  return std::nullopt;
}

Layer layer_of_code(std::string_view code) {
  if (code.starts_with("fci.")) return Layer::kFibreChannel;
  if (code.starts_with("scsi.")) return Layer::kScsi;
  if (code.starts_with("disk.")) return Layer::kDiskDriver;
  if (code.starts_with("raid.")) return Layer::kRaid;
  return Layer::kOther;
}

std::string_view raid_code_for(model::FailureType type) {
  return code_name(raid_terminal_for(type));
}

std::optional<model::FailureType> failure_type_of_code(std::string_view code) {
  return failure_type_of(code_id(code));
}

}  // namespace storsubsim::log
