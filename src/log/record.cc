#include "log/record.h"

namespace storsubsim::log {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::optional<Severity> parse_severity(std::string_view s) {
  if (s == "info") return Severity::kInfo;
  if (s == "warning") return Severity::kWarning;
  if (s == "error") return Severity::kError;
  return std::nullopt;
}

Layer layer_of_code(std::string_view code) {
  if (code.starts_with("fci.")) return Layer::kFibreChannel;
  if (code.starts_with("scsi.")) return Layer::kScsi;
  if (code.starts_with("disk.")) return Layer::kDiskDriver;
  if (code.starts_with("raid.")) return Layer::kRaid;
  return Layer::kOther;
}

std::string_view raid_code_for(model::FailureType type) {
  switch (type) {
    case model::FailureType::kDisk:
      return "raid.config.disk.failed";
    case model::FailureType::kPhysicalInterconnect:
      return "raid.config.filesystem.disk.missing";
    case model::FailureType::kProtocol:
      return "raid.disk.protocol.error";
    case model::FailureType::kPerformance:
      return "raid.disk.timeout.slow";
  }
  return "raid.unknown";
}

std::optional<model::FailureType> failure_type_of_code(std::string_view code) {
  for (const auto t : model::kAllFailureTypes) {
    if (code == raid_code_for(t)) return t;
  }
  return std::nullopt;
}

}  // namespace storsubsim::log
