// LineWriter — an append-only text buffer for the log hot path.
//
// The emitter used to build every line through `std::ostringstream` and
// chained `std::string operator+`, which costs one or more heap
// allocations per line (~700k lines per full-scale run). LineWriter keeps
// a single reusable `std::string` and appends into it: literals as
// `string_view`s, numbers via `std::to_chars`, and timestamps through a
// fixed-width renderer. The buffer grows geometrically and is reused
// across lines/batches, so steady-state emission performs no allocation.
//
// Buffer lifetime rule: `view()` (and any `string_view` derived from it)
// is invalidated by the next mutating call, exactly like
// `std::string::data()`. Parse results that point into a retained buffer
// (see parser.h) require the writer — or the string moved out of it via
// `take()` — to outlive them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace storsubsim::log {

class LineWriter {
 public:
  LineWriter() = default;
  /// Pre-sizes the buffer (bytes) so steady-state appends never reallocate.
  explicit LineWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  /// Drops the content, keeps the capacity.
  void clear() noexcept { buf_.clear(); }

  std::string_view view() const noexcept { return buf_; }
  const std::string& str() const noexcept { return buf_; }
  std::size_t size() const noexcept { return buf_.size(); }
  bool empty() const noexcept { return buf_.empty(); }

  /// Moves the buffer out, leaving the writer empty (capacity not retained).
  std::string take() noexcept { return std::move(buf_); }

  LineWriter& text(std::string_view s) {
    buf_.append(s);
    return *this;
  }
  LineWriter& ch(char c) {
    buf_.push_back(c);
    return *this;
  }
  LineWriter& newline() { return ch('\n'); }

  LineWriter& u32(std::uint32_t v) { return u64(v); }
  LineWriter& u64(std::uint64_t v);

  /// Appends `v` as printf "%.3f" would (the log format's time rendering).
  LineWriter& fixed3(double v);

  /// Appends the cosmetic wall-clock rendering of a sim timestamp:
  /// "D%04d %02d:%02d:%02d" (days zero-padded to at least 4 digits).
  LineWriter& timestamp(double sim_seconds);

 private:
  std::string buf_;
};

}  // namespace storsubsim::log
