// Renders failure events as AutoSupport-style text logs.
//
// For each storage subsystem failure the emitter writes the propagation
// chain a real system would log — lower-layer precursor events followed by
// the RAID-layer terminal event (paper Figure 3). The terminal line carries
// machine-readable attributes (disk/system ids) so the parser can rebuild
// the analysis dataset without heuristics, while the prose stays faithful
// to the look of the original logs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "log/record.h"
#include "model/enums.h"
#include "model/ids.h"

namespace storsubsim::log {

/// A failure occurrence the emitter knows how to narrate.
struct EmittableFailure {
  double detect_time = 0.0;
  model::FailureType type = model::FailureType::kDisk;
  model::DiskId disk;
  model::SystemId system;
  /// Device address rendered as "adapter.target", e.g. "8.24".
  std::string device_address = "0.0";
  std::string serial;
};

/// Builds the full record chain (precursors + RAID terminal) for a failure.
/// Precursor timestamps precede `detect_time` by seconds to minutes, in the
/// order the layers would report them.
std::vector<LogRecord> propagation_chain(const EmittableFailure& failure);

/// Renders one record as a single text line:
///   <ts> [<code>:<severity>] [sys=N disk=N] <message>
std::string render_line(const LogRecord& record);

/// Pretty wall-clock rendering of a sim timestamp ("Sun Jul 23 05:43:36").
std::string render_timestamp(double sim_seconds);

/// Streams whole propagation chains for a batch of failures, in time order.
class LogEmitter {
 public:
  explicit LogEmitter(std::ostream& out) : out_(&out) {}

  /// Emits the propagation chain for one failure.
  void emit(const EmittableFailure& failure);

  /// Emits a single already-built record.
  void emit(const LogRecord& record);

  std::size_t lines_written() const { return lines_; }

 private:
  std::ostream* out_;
  std::size_t lines_ = 0;
};

}  // namespace storsubsim::log
