// Renders failure events as AutoSupport-style text logs.
//
// For each storage subsystem failure the emitter writes the propagation
// chain a real system would log — lower-layer precursor events followed by
// the RAID-layer terminal event (paper Figure 3). The terminal line carries
// machine-readable attributes (disk/system ids) so the parser can rebuild
// the analysis dataset without heuristics, while the prose stays faithful
// to the look of the original logs.
//
// Two emission paths share one chain table (docs/FORMAT.md):
//   * the buffer fast path — `emit_chain` formats every line in place into
//     a reusable LineWriter from static message templates, allocation-free
//     at steady state; this is what the dataset pipeline uses;
//   * the record path — `propagation_chain` materializes owning LogRecords
//     for callers that inspect or reorder individual events (tests, the
//     forensics example).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "log/line_writer.h"
#include "log/record.h"
#include "model/enums.h"
#include "model/ids.h"

namespace storsubsim::log {

/// A failure occurrence the emitter knows how to narrate.
struct EmittableFailure {
  double detect_time = 0.0;
  model::FailureType type = model::FailureType::kDisk;
  model::DiskId disk;
  model::SystemId system;
  /// Device address rendered as "adapter.target", e.g. "8.24".
  std::string device_address = "0.0";
  std::string serial;
};

/// The view-based flavor of EmittableFailure for the buffer fast path: the
/// caller keeps the address/serial bytes alive for the duration of the call
/// (a stack scratch buffer suffices — nothing is retained).
struct FailureLineInput {
  double detect_time = 0.0;
  model::FailureType type = model::FailureType::kDisk;
  model::DiskId disk;
  model::SystemId system;
  std::string_view device_address = "0.0";
  std::string_view serial;
};

/// Appends the full rendered propagation chain (newline-terminated lines)
/// for one failure to `out`. Returns the number of lines appended.
std::size_t emit_chain(LineWriter& out, const FailureLineInput& failure);

/// Builds the full record chain (precursors + RAID terminal) for a failure.
/// Precursor timestamps precede `detect_time` by seconds to minutes, in the
/// order the layers would report them. Renders byte-identically to
/// `emit_chain` (both read the same static chain table).
std::vector<LogRecord> propagation_chain(const EmittableFailure& failure);

/// Appends one record as a single text line (no trailing newline):
///   <ts> [<code>:<severity>] [sys=N disk=N] <message>
void render_line_to(LineWriter& out, const LogRecord& record);

/// Convenience wrapper over `render_line_to` returning an owning string.
std::string render_line(const LogRecord& record);

/// Pretty wall-clock rendering of a sim timestamp ("Sun Jul 23 05:43:36").
std::string render_timestamp(double sim_seconds);

/// Streams whole propagation chains for a batch of failures, in time order.
class LogEmitter {
 public:
  explicit LogEmitter(std::ostream& out) : out_(&out) {}

  /// Emits the propagation chain for one failure.
  void emit(const EmittableFailure& failure);

  /// Emits a single already-built record.
  void emit(const LogRecord& record);

  std::size_t lines_written() const { return lines_; }

 private:
  std::ostream* out_;
  LineWriter scratch_;
  std::size_t lines_ = 0;
};

}  // namespace storsubsim::log
