#include "log/codes.h"

#include <algorithm>
#include <array>

namespace storsubsim::log {

namespace {

constexpr std::array<std::string_view, kEventCodeCount> kNames = {
    "fci.device.timeout",
    "fci.adapter.reset",
    "fci.link.reset",
    "scsi.cmd.abortedByHost",
    "scsi.cmd.selectionTimeout",
    "scsi.cmd.noMorePaths",
    "scsi.cmd.checkCondition",
    "scsi.cmd.protocolViolation",
    "scsi.cmd.retryExhausted",
    "scsi.cmd.slowResponse",
    "scsi.cmd.slowCompletion",
    "disk.ioMediumError",
    "raid.config.disk.failed",
    "raid.config.filesystem.disk.missing",
    "raid.disk.protocol.error",
    "raid.disk.timeout.slow",
};

struct IndexEntry {
  std::string_view name;
  EventCode code;
};

/// The table sorted by spelling, built once, so resolution is a binary
/// search over ~16 views (no hashing, no allocation).
const std::array<IndexEntry, kEventCodeCount>& sorted_index() {
  static const std::array<IndexEntry, kEventCodeCount> index = [] {
    std::array<IndexEntry, kEventCodeCount> out{};
    for (std::size_t i = 0; i < kEventCodeCount; ++i) {
      out[i] = IndexEntry{kNames[i], static_cast<EventCode>(i)};
    }
    std::sort(out.begin(), out.end(),
              [](const IndexEntry& a, const IndexEntry& b) { return a.name < b.name; });
    return out;
  }();
  return index;
}

}  // namespace

std::string_view code_name(EventCode code) noexcept {
  const auto i = static_cast<std::size_t>(code);
  return i < kEventCodeCount ? kNames[i] : std::string_view("?");
}

EventCode code_id(std::string_view name) noexcept {
  const auto& index = sorted_index();
  const auto it = std::lower_bound(
      index.begin(), index.end(), name,
      [](const IndexEntry& e, std::string_view n) { return e.name < n; });
  if (it != index.end() && it->name == name) return it->code;
  return EventCode::kUnknown;
}

std::optional<model::FailureType> failure_type_of(EventCode code) noexcept {
  switch (code) {
    case EventCode::kRaidDiskFailed: return model::FailureType::kDisk;
    case EventCode::kRaidDiskMissing: return model::FailureType::kPhysicalInterconnect;
    case EventCode::kRaidProtocolError: return model::FailureType::kProtocol;
    case EventCode::kRaidTimeoutSlow: return model::FailureType::kPerformance;
    default: return std::nullopt;
  }
}

EventCode raid_terminal_for(model::FailureType type) noexcept {
  switch (type) {
    case model::FailureType::kDisk: return EventCode::kRaidDiskFailed;
    case model::FailureType::kPhysicalInterconnect: return EventCode::kRaidDiskMissing;
    case model::FailureType::kProtocol: return EventCode::kRaidProtocolError;
    case model::FailureType::kPerformance: return EventCode::kRaidTimeoutSlow;
  }
  return EventCode::kUnknown;
}

}  // namespace storsubsim::log
