#include "log/snapshot.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "model/fleet.h"
#include "model/time.h"

namespace storsubsim::log {

namespace {

using model::DiskId;
using model::RaidGroupId;
using model::ShelfId;
using model::SystemId;

std::string fmt_time(double t) {
  if (std::isinf(t)) return "inf";
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << t;
  return os.str();
}

/// Splits "key=value" tokens out of a line.
class TokenReader {
 public:
  explicit TokenReader(std::string_view line) : line_(line) {}

  /// Finds "key=" and returns the value up to the next space.
  std::optional<std::string_view> get(std::string_view key) const {
    std::string needle = std::string(key) + "=";
    std::size_t pos = 0;
    while (true) {
      pos = line_.find(needle, pos);
      if (pos == std::string_view::npos) return std::nullopt;
      // Must be at start or preceded by a space to avoid matching suffixes
      // ("model=" inside "disk-model=").
      if (pos == 0 || line_[pos - 1] == ' ') break;
      pos += needle.size();
    }
    const std::size_t start = pos + needle.size();
    const std::size_t end = line_.find(' ', start);
    return line_.substr(start, end == std::string_view::npos ? line_.size() - start
                                                             : end - start);
  }

  std::optional<std::uint32_t> get_u32(std::string_view key) const {
    const auto v = get(key);
    if (!v) return std::nullopt;
    if (*v == "-") return model::Id<model::DiskTag>::kInvalid;
    std::uint32_t out = 0;
    const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
    if (ec != std::errc{} || ptr != v->data() + v->size()) return std::nullopt;
    return out;
  }

  std::optional<double> get_time(std::string_view key) const {
    const auto v = get(key);
    if (!v) return std::nullopt;
    if (*v == "inf") return std::numeric_limits<double>::infinity();
    double out = 0.0;
    const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
    if (ec != std::errc{} || ptr != v->data() + v->size()) return std::nullopt;
    return out;
  }

 private:
  std::string_view line_;
};

}  // namespace

double Inventory::disk_exposure_years(const InventoryDisk& disk) const {
  const double start = std::max(0.0, disk.install_time);
  const double end = std::min(horizon_seconds, disk.remove_time);
  return end > start ? model::years(end - start) : 0.0;
}

void write_snapshot(std::ostream& out, const model::Fleet& fleet) {
  out << "SNAPSHOT horizon=" << fmt_time(fleet.horizon_seconds()) << '\n';
  for (const auto& s : fleet.systems()) {
    out << "SYSTEM id=" << s.id.value() << " class=" << model::to_string(s.cls)
        << " paths=" << model::to_string(s.paths)
        << " disk-model=" << model::to_string(s.disk_model)
        << " shelf-model=" << model::to_string(s.shelf_model)
        << " deploy=" << fmt_time(s.deploy_time) << " cohort=" << s.cohort << '\n';
  }
  for (const auto& sh : fleet.shelves()) {
    out << "SHELF id=" << sh.id.value() << " sys=" << sh.system.value()
        << " model=" << model::to_string(sh.model) << '\n';
  }
  for (const auto& g : fleet.raid_groups()) {
    out << "GROUP id=" << g.id.value() << " sys=" << g.system.value()
        << " type=" << model::to_string(g.type) << " members=" << g.members.size()
        << " span=" << g.shelf_span() << '\n';
  }
  for (const auto& d : fleet.disks()) {
    out << "DISK id=" << d.id.value() << " model=" << model::to_string(d.model)
        << " sys=" << d.system.value() << " shelf=" << d.shelf.value() << " group="
        << (d.raid_group.valid() ? std::to_string(d.raid_group.value()) : std::string("-"))
        << " slot=" << d.slot << " install=" << fmt_time(d.install_time)
        << " remove=" << fmt_time(d.remove_time) << '\n';
  }
  out << "END\n";
}

Inventory inventory_from_fleet(const model::Fleet& fleet) {
  Inventory inv;
  inv.horizon_seconds = fleet.horizon_seconds();
  inv.systems.reserve(fleet.systems().size());
  for (const auto& s : fleet.systems()) {
    inv.systems.push_back(InventorySystem{s.id, s.cls, s.paths, s.disk_model, s.shelf_model,
                                          s.deploy_time, s.cohort});
  }
  inv.shelves.reserve(fleet.shelves().size());
  for (const auto& sh : fleet.shelves()) {
    inv.shelves.push_back(InventoryShelf{sh.id, sh.system, sh.model});
  }
  inv.raid_groups.reserve(fleet.raid_groups().size());
  for (const auto& g : fleet.raid_groups()) {
    inv.raid_groups.push_back(InventoryRaidGroup{
        g.id, g.system, g.type, static_cast<std::uint32_t>(g.members.size()), g.shelf_span()});
  }
  inv.disks.reserve(fleet.disks().size());
  for (const auto& d : fleet.disks()) {
    inv.disks.push_back(InventoryDisk{d.id, d.model, d.system, d.shelf, d.raid_group, d.slot,
                                      d.install_time, d.remove_time});
  }
  return inv;
}

SnapshotParseResult parse_snapshot(std::istream& in) {
  SnapshotParseResult result;
  Inventory& inv = result.inventory;
  std::string line;
  bool saw_header = false;
  bool saw_end = false;

  auto fail = [&](const std::string& why) {
    result.error = "snapshot line " + std::to_string(result.lines) + ": " + why;
  };

  while (std::getline(in, line)) {
    ++result.lines;
    if (line.empty() || line[0] == '#') continue;
    const TokenReader tokens{line};

    if (line.starts_with("SNAPSHOT ")) {
      const auto horizon = tokens.get_time("horizon");
      if (!horizon) return fail("bad SNAPSHOT header"), result;
      inv.horizon_seconds = *horizon;
      saw_header = true;
    } else if (line.starts_with("SYSTEM ")) {
      InventorySystem s;
      const auto id = tokens.get_u32("id");
      const auto cls = tokens.get("class");
      const auto paths = tokens.get("paths");
      const auto dm = tokens.get("disk-model");
      const auto sm = tokens.get("shelf-model");
      const auto deploy = tokens.get_time("deploy");
      const auto cohort = tokens.get_u32("cohort");
      if (!id || !cls || !paths || !dm || !sm || !deploy || !cohort) {
        return fail("bad SYSTEM record"), result;
      }
      const auto cls_v = model::parse_system_class(*cls);
      const auto paths_v = model::parse_path_config(*paths);
      const auto dm_v = model::parse_disk_model_name(*dm);
      const auto sm_v = model::parse_shelf_model_name(*sm);
      if (!cls_v || !paths_v || !dm_v || !sm_v) return fail("bad SYSTEM enum"), result;
      s.id = SystemId(*id);
      s.cls = *cls_v;
      s.paths = *paths_v;
      s.disk_model = *dm_v;
      s.shelf_model = *sm_v;
      s.deploy_time = *deploy;
      s.cohort = *cohort;
      if (s.id.value() != inv.systems.size()) return fail("SYSTEM ids not dense"), result;
      inv.systems.push_back(s);
    } else if (line.starts_with("SHELF ")) {
      const auto id = tokens.get_u32("id");
      const auto sys = tokens.get_u32("sys");
      const auto m = tokens.get("model");
      if (!id || !sys || !m) return fail("bad SHELF record"), result;
      const auto m_v = model::parse_shelf_model_name(*m);
      if (!m_v) return fail("bad SHELF model"), result;
      if (*id != inv.shelves.size()) return fail("SHELF ids not dense"), result;
      inv.shelves.push_back(InventoryShelf{ShelfId(*id), SystemId(*sys), *m_v});
    } else if (line.starts_with("GROUP ")) {
      const auto id = tokens.get_u32("id");
      const auto sys = tokens.get_u32("sys");
      const auto type = tokens.get("type");
      const auto members = tokens.get_u32("members");
      const auto span = tokens.get_u32("span");
      if (!id || !sys || !type || !members || !span) return fail("bad GROUP record"), result;
      const auto type_v = model::parse_raid_type(*type);
      if (!type_v) return fail("bad GROUP type"), result;
      if (*id != inv.raid_groups.size()) return fail("GROUP ids not dense"), result;
      inv.raid_groups.push_back(
          InventoryRaidGroup{RaidGroupId(*id), SystemId(*sys), *type_v, *members, *span});
    } else if (line.starts_with("DISK ")) {
      const auto id = tokens.get_u32("id");
      const auto m = tokens.get("model");
      const auto sys = tokens.get_u32("sys");
      const auto shelf = tokens.get_u32("shelf");
      const auto group = tokens.get_u32("group");
      const auto slot = tokens.get_u32("slot");
      const auto install = tokens.get_time("install");
      const auto remove = tokens.get_time("remove");
      if (!id || !m || !sys || !shelf || !group || !slot || !install || !remove) {
        return fail("bad DISK record"), result;
      }
      const auto m_v = model::parse_disk_model_name(*m);
      if (!m_v) return fail("bad DISK model"), result;
      if (*id != inv.disks.size()) return fail("DISK ids not dense"), result;
      inv.disks.push_back(InventoryDisk{DiskId(*id), *m_v, SystemId(*sys), ShelfId(*shelf),
                                        RaidGroupId(*group), *slot, *install, *remove});
    } else if (line == "END") {
      saw_end = true;
      break;
    } else {
      return fail("unrecognized record: " + line.substr(0, 32)), result;
    }
  }

  if (!saw_header) result.error = "snapshot: missing SNAPSHOT header";
  if (saw_header && !saw_end) result.error = "snapshot: missing END marker";

  // Referential integrity.
  if (result.ok()) {
    for (const auto& sh : inv.shelves) {
      if (sh.system.value() >= inv.systems.size()) {
        result.error = "snapshot: SHELF references unknown system";
        return result;
      }
    }
    for (const auto& g : inv.raid_groups) {
      if (g.system.value() >= inv.systems.size()) {
        result.error = "snapshot: GROUP references unknown system";
        return result;
      }
    }
    for (const auto& d : inv.disks) {
      if (d.system.value() >= inv.systems.size() || d.shelf.value() >= inv.shelves.size() ||
          (d.raid_group.valid() && d.raid_group.value() >= inv.raid_groups.size())) {
        result.error = "snapshot: DISK references unknown entity";
        return result;
      }
    }
  }
  return result;
}

}  // namespace storsubsim::log
