#include "log/snapshot.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>

#include "model/fleet.h"
#include "model/time.h"

namespace storsubsim::log {

namespace {

using model::DiskId;
using model::RaidGroupId;
using model::ShelfId;
using model::SystemId;

/// Appends a time value the way the format spells it: %.3f, or "inf" for
/// the open-ended remove time of still-installed disks.
void append_time(LineWriter& out, double t) {
  if (std::isinf(t)) {
    out.text("inf");
  } else {
    out.fixed3(t);
  }
}

/// Splits "key=value" tokens out of a line.
class TokenReader {
 public:
  explicit TokenReader(std::string_view line) : line_(line) {}

  /// Finds "key=" and returns the value up to the next space.
  std::optional<std::string_view> get(std::string_view key) const {
    std::size_t pos = 0;
    while (true) {
      pos = line_.find(key, pos);
      if (pos == std::string_view::npos) return std::nullopt;
      const std::size_t eq = pos + key.size();
      // Must be at start or preceded by a space to avoid matching suffixes
      // ("model=" inside "disk-model="), and the key itself must be
      // followed by '=' rather than being a prefix of a longer key.
      if ((pos == 0 || line_[pos - 1] == ' ') && eq < line_.size() && line_[eq] == '=') break;
      pos += 1;
    }
    const std::size_t start = pos + key.size() + 1;
    const std::size_t end = line_.find(' ', start);
    return line_.substr(start, end == std::string_view::npos ? line_.size() - start
                                                             : end - start);
  }

  std::optional<std::uint32_t> get_u32(std::string_view key) const {
    const auto v = get(key);
    if (!v) return std::nullopt;
    if (*v == "-") return model::Id<model::DiskTag>::kInvalid;
    std::uint32_t out = 0;
    const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
    if (ec != std::errc{} || ptr != v->data() + v->size()) return std::nullopt;
    return out;
  }

  std::optional<double> get_time(std::string_view key) const {
    const auto v = get(key);
    if (!v) return std::nullopt;
    if (*v == "inf") return std::numeric_limits<double>::infinity();
    double out = 0.0;
    const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
    if (ec != std::errc{} || ptr != v->data() + v->size()) return std::nullopt;
    return out;
  }

 private:
  std::string_view line_;
};

}  // namespace

double Inventory::disk_exposure_years(const InventoryDisk& disk) const {
  const double start = std::max(0.0, disk.install_time);
  const double end = std::min(horizon_seconds, disk.remove_time);
  return end > start ? model::years(end - start) : 0.0;
}

void write_snapshot(LineWriter& out, const model::Fleet& fleet) {
  out.text("SNAPSHOT horizon=");
  append_time(out, fleet.horizon_seconds());
  out.newline();
  for (const auto& s : fleet.systems()) {
    out.text("SYSTEM id=").u32(s.id.value());
    out.text(" class=").text(model::to_string(s.cls));
    out.text(" paths=").text(model::to_string(s.paths));
    out.text(" disk-model=").text(model::to_string(s.disk_model));
    out.text(" shelf-model=").text(model::to_string(s.shelf_model));
    out.text(" deploy=");
    append_time(out, s.deploy_time);
    out.text(" cohort=").u32(s.cohort).newline();
  }
  for (const auto& sh : fleet.shelves()) {
    out.text("SHELF id=").u32(sh.id.value());
    out.text(" sys=").u32(sh.system.value());
    out.text(" model=").text(model::to_string(sh.model)).newline();
  }
  for (const auto& g : fleet.raid_groups()) {
    out.text("GROUP id=").u32(g.id.value());
    out.text(" sys=").u32(g.system.value());
    out.text(" type=").text(model::to_string(g.type));
    out.text(" members=").u64(g.members.size());
    out.text(" span=").u32(g.shelf_span()).newline();
  }
  for (const auto& d : fleet.disks()) {
    out.text("DISK id=").u32(d.id.value());
    out.text(" model=").text(model::to_string(d.model));
    out.text(" sys=").u32(d.system.value());
    out.text(" shelf=").u32(d.shelf.value());
    out.text(" group=");
    if (d.raid_group.valid()) {
      out.u32(d.raid_group.value());
    } else {
      out.ch('-');
    }
    out.text(" slot=").u32(d.slot);
    out.text(" install=");
    append_time(out, d.install_time);
    out.text(" remove=");
    append_time(out, d.remove_time);
    out.newline();
  }
  out.text("END\n");
}

void write_snapshot(std::ostream& out, const model::Fleet& fleet) {
  LineWriter buf;
  write_snapshot(buf, fleet);
  out << buf.view();
}

Inventory inventory_from_fleet(const model::Fleet& fleet) {
  Inventory inv;
  inv.horizon_seconds = fleet.horizon_seconds();
  inv.systems.reserve(fleet.systems().size());
  for (const auto& s : fleet.systems()) {
    inv.systems.push_back(InventorySystem{s.id, s.cls, s.paths, s.disk_model, s.shelf_model,
                                          s.deploy_time, s.cohort});
  }
  inv.shelves.reserve(fleet.shelves().size());
  for (const auto& sh : fleet.shelves()) {
    inv.shelves.push_back(InventoryShelf{sh.id, sh.system, sh.model});
  }
  inv.raid_groups.reserve(fleet.raid_groups().size());
  for (const auto& g : fleet.raid_groups()) {
    inv.raid_groups.push_back(InventoryRaidGroup{
        g.id, g.system, g.type, static_cast<std::uint32_t>(g.members.size()), g.shelf_span()});
  }
  inv.disks.reserve(fleet.disks().size());
  for (const auto& d : fleet.disks()) {
    inv.disks.push_back(InventoryDisk{d.id, d.model, d.system, d.shelf, d.raid_group, d.slot,
                                      d.install_time, d.remove_time});
  }
  return inv;
}

SnapshotParseResult parse_snapshot(std::string_view text) {
  SnapshotParseResult result;
  Inventory& inv = result.inventory;
  bool saw_header = false;
  bool saw_end = false;

  auto fail = [&](std::string_view why, std::string_view detail = {}) {
    LineWriter msg;
    msg.text("snapshot line ").u64(result.lines).text(": ").text(why).text(detail);
    result.error = msg.take();
  };

  std::size_t pos = 0;
  while (pos < text.size() && !saw_end && result.ok()) {
    const auto nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, (nl == std::string_view::npos ? text.size() : nl) - pos);
    pos = (nl == std::string_view::npos) ? text.size() : nl + 1;

    ++result.lines;
    if (line.empty() || line[0] == '#') continue;
    const TokenReader tokens{line};

    if (line.starts_with("SNAPSHOT ")) {
      const auto horizon = tokens.get_time("horizon");
      if (!horizon) return fail("bad SNAPSHOT header"), result;
      inv.horizon_seconds = *horizon;
      saw_header = true;
    } else if (line.starts_with("SYSTEM ")) {
      InventorySystem s;
      const auto id = tokens.get_u32("id");
      const auto cls = tokens.get("class");
      const auto paths = tokens.get("paths");
      const auto dm = tokens.get("disk-model");
      const auto sm = tokens.get("shelf-model");
      const auto deploy = tokens.get_time("deploy");
      const auto cohort = tokens.get_u32("cohort");
      if (!id || !cls || !paths || !dm || !sm || !deploy || !cohort) {
        return fail("bad SYSTEM record"), result;
      }
      const auto cls_v = model::parse_system_class(*cls);
      const auto paths_v = model::parse_path_config(*paths);
      const auto dm_v = model::parse_disk_model_name(*dm);
      const auto sm_v = model::parse_shelf_model_name(*sm);
      if (!cls_v || !paths_v || !dm_v || !sm_v) return fail("bad SYSTEM enum"), result;
      s.id = SystemId(*id);
      s.cls = *cls_v;
      s.paths = *paths_v;
      s.disk_model = *dm_v;
      s.shelf_model = *sm_v;
      s.deploy_time = *deploy;
      s.cohort = *cohort;
      if (s.id.value() != inv.systems.size()) return fail("SYSTEM ids not dense"), result;
      inv.systems.push_back(s);
    } else if (line.starts_with("SHELF ")) {
      const auto id = tokens.get_u32("id");
      const auto sys = tokens.get_u32("sys");
      const auto m = tokens.get("model");
      if (!id || !sys || !m) return fail("bad SHELF record"), result;
      const auto m_v = model::parse_shelf_model_name(*m);
      if (!m_v) return fail("bad SHELF model"), result;
      if (*id != inv.shelves.size()) return fail("SHELF ids not dense"), result;
      inv.shelves.push_back(InventoryShelf{ShelfId(*id), SystemId(*sys), *m_v});
    } else if (line.starts_with("GROUP ")) {
      const auto id = tokens.get_u32("id");
      const auto sys = tokens.get_u32("sys");
      const auto type = tokens.get("type");
      const auto members = tokens.get_u32("members");
      const auto span = tokens.get_u32("span");
      if (!id || !sys || !type || !members || !span) return fail("bad GROUP record"), result;
      const auto type_v = model::parse_raid_type(*type);
      if (!type_v) return fail("bad GROUP type"), result;
      if (*id != inv.raid_groups.size()) return fail("GROUP ids not dense"), result;
      inv.raid_groups.push_back(
          InventoryRaidGroup{RaidGroupId(*id), SystemId(*sys), *type_v, *members, *span});
    } else if (line.starts_with("DISK ")) {
      const auto id = tokens.get_u32("id");
      const auto m = tokens.get("model");
      const auto sys = tokens.get_u32("sys");
      const auto shelf = tokens.get_u32("shelf");
      const auto group = tokens.get_u32("group");
      const auto slot = tokens.get_u32("slot");
      const auto install = tokens.get_time("install");
      const auto remove = tokens.get_time("remove");
      if (!id || !m || !sys || !shelf || !group || !slot || !install || !remove) {
        return fail("bad DISK record"), result;
      }
      const auto m_v = model::parse_disk_model_name(*m);
      if (!m_v) return fail("bad DISK model"), result;
      if (*id != inv.disks.size()) return fail("DISK ids not dense"), result;
      inv.disks.push_back(InventoryDisk{DiskId(*id), *m_v, SystemId(*sys), ShelfId(*shelf),
                                        RaidGroupId(*group), *slot, *install, *remove});
    } else if (line == "END") {
      saw_end = true;
    } else {
      return fail("unrecognized record: ", line.substr(0, 32)), result;
    }
  }

  if (!saw_header) result.error = "snapshot: missing SNAPSHOT header";
  if (saw_header && !saw_end) result.error = "snapshot: missing END marker";

  // Referential integrity.
  if (result.ok()) {
    for (const auto& sh : inv.shelves) {
      if (sh.system.value() >= inv.systems.size()) {
        result.error = "snapshot: SHELF references unknown system";
        return result;
      }
    }
    for (const auto& g : inv.raid_groups) {
      if (g.system.value() >= inv.systems.size()) {
        result.error = "snapshot: GROUP references unknown system";
        return result;
      }
    }
    for (const auto& d : inv.disks) {
      if (d.system.value() >= inv.systems.size() || d.shelf.value() >= inv.shelves.size() ||
          (d.raid_group.valid() && d.raid_group.value() >= inv.raid_groups.size())) {
        result.error = "snapshot: DISK references unknown entity";
        return result;
      }
    }
  }
  return result;
}

SnapshotParseResult parse_snapshot(std::istream& in) {
  std::string text;
  char chunk[1 << 16];
  while (in) {
    in.read(chunk, sizeof(chunk));
    text.append(chunk, static_cast<std::size_t>(in.gcount()));
  }
  return parse_snapshot(std::string_view(text));
}

}  // namespace storsubsim::log
