#include "log/classifier.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "obs/obs.h"

namespace storsubsim::log {

namespace {

std::optional<model::FailureType> terminal_type(const LogRecord& r) {
  return failure_type_of_code(r.code);
}

std::optional<model::FailureType> terminal_type(const LogView& r) {
  return failure_type_of(r.code_id);
}

std::uint64_t dedup_key(const ClassifiedFailure& f) {
  return (static_cast<std::uint64_t>(f.disk.value()) << 2u) | model::index_of(f.type);
}

template <class Record>
std::vector<ClassifiedFailure> classify_impl(std::span<const Record> records,
                                             const ClassifierOptions& options,
                                             ClassifierStats* stats) {
  ClassifierStats local;

  // Counting pass so the collection vector is sized exactly once; terminal
  // detection is a code-id switch (or one code compare on the owning path),
  // far cheaper than the reallocations it avoids.
  std::size_t terminals = 0;
  for (const auto& r : records) {
    if (terminal_type(r)) ++terminals;
  }

  std::vector<ClassifiedFailure> failures;
  failures.reserve(terminals);
  for (const auto& r : records) {
    const auto type = terminal_type(r);
    if (!type) continue;  // precursor or unrelated RAID event
    ++local.raid_records;
    if (!r.disk.valid()) {
      ++local.missing_disk_dropped;
      continue;
    }
    failures.push_back(ClassifiedFailure{r.time, r.disk, r.system, *type});
  }
  std::sort(failures.begin(), failures.end(),
            [](const ClassifiedFailure& a, const ClassifiedFailure& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.disk != b.disk) return a.disk < b.disk;
              return static_cast<int>(a.type) < static_cast<int>(b.type);
            });

  // Collapse duplicates: same (disk, type) within the window keeps only the
  // earliest record. The last-kept table is a sorted key array with a
  // parallel time column, sized from the input — replaces the node-based
  // unordered_map that dominated this stage's allocations.
  std::vector<std::uint64_t> keys;
  keys.reserve(failures.size());
  for (const auto& f : failures) keys.push_back(dedup_key(f));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<double> last_kept(keys.size(), -std::numeric_limits<double>::infinity());

  std::vector<ClassifiedFailure> out;
  out.reserve(failures.size());
  for (const auto& f : failures) {
    const std::uint64_t key = dedup_key(f);
    const auto slot = static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
    if (f.time - last_kept[slot] < options.dedup_window_seconds) {
      ++local.duplicates_dropped;
      continue;
    }
    last_kept[slot] = f.time;
    out.push_back(f);
  }
  STORSIM_OBS_COUNTER(c_records, "log.classify.records",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_records, records.size());
  STORSIM_OBS_COUNTER(c_dupes, "log.classify.duplicates_dropped",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_dupes, local.duplicates_dropped);
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace

std::vector<ClassifiedFailure> classify(std::span<const LogRecord> records,
                                        const ClassifierOptions& options,
                                        ClassifierStats* stats) {
  return classify_impl(records, options, stats);
}

std::vector<ClassifiedFailure> classify(std::span<const LogView> records,
                                        const ClassifierOptions& options,
                                        ClassifierStats* stats) {
  return classify_impl(records, options, stats);
}

}  // namespace storsubsim::log
