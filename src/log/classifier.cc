#include "log/classifier.h"

#include <algorithm>
#include <unordered_map>

namespace storsubsim::log {

std::vector<ClassifiedFailure> classify(std::span<const LogRecord> records,
                                        const ClassifierOptions& options,
                                        ClassifierStats* stats) {
  ClassifierStats local;
  std::vector<ClassifiedFailure> failures;
  for (const auto& r : records) {
    const auto type = failure_type_of_code(r.code);
    if (!type) continue;  // precursor or unrelated RAID event
    ++local.raid_records;
    if (!r.disk.valid()) {
      ++local.missing_disk_dropped;
      continue;
    }
    failures.push_back(ClassifiedFailure{r.time, r.disk, r.system, *type});
  }
  std::sort(failures.begin(), failures.end(),
            [](const ClassifiedFailure& a, const ClassifiedFailure& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.disk != b.disk) return a.disk < b.disk;
              return static_cast<int>(a.type) < static_cast<int>(b.type);
            });

  // Collapse duplicates: same (disk, type) within the window keeps only the
  // earliest record.
  std::vector<ClassifiedFailure> out;
  out.reserve(failures.size());
  // Key: disk id * 4 + type index -> last kept time.
  std::unordered_map<std::uint64_t, double> last_kept;
  for (const auto& f : failures) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(f.disk.value()) << 2u) | model::index_of(f.type);
    const auto it = last_kept.find(key);
    if (it != last_kept.end() && f.time - it->second < options.dedup_window_seconds) {
      ++local.duplicates_dropped;
      continue;
    }
    last_kept[key] = f.time;
    out.push_back(f);
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace storsubsim::log
