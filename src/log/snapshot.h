// Configuration snapshots: the inventory side of the support logs.
//
// The studied systems copy their configuration into the logs weekly (paper
// §2.5); the analysis joins failure events with this inventory to know which
// shelf/RAID group/model a failed disk belonged to, and to account exposure
// time. We serialize a complete inventory (systems, shelves, disks with
// install/remove times, RAID groups) as a text section and parse it back
// into a plain `Inventory` that the analysis layer consumes — keeping the
// analysis decoupled from the simulator's live Fleet object.
//
// Like the failure-log pipeline, the snapshot codec has a buffer fast path:
// `write_snapshot(LineWriter&, ...)` appends the section to a reusable
// buffer and `parse_snapshot(std::string_view)` walks text in place; the
// stream forms are thin adapters over them.
#pragma once

#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "log/line_writer.h"
#include "model/disk_model.h"
#include "model/enums.h"
#include "model/ids.h"
#include "model/shelf_model.h"

namespace storsubsim::model {
class Fleet;
}

namespace storsubsim::log {

struct InventorySystem {
  model::SystemId id;
  model::SystemClass cls = model::SystemClass::kNearLine;
  model::PathConfig paths = model::PathConfig::kSinglePath;
  model::DiskModelName disk_model;
  model::ShelfModelName shelf_model;
  double deploy_time = 0.0;
  std::uint32_t cohort = 0;
};

struct InventoryShelf {
  model::ShelfId id;
  model::SystemId system;
  model::ShelfModelName model;
};

struct InventoryDisk {
  model::DiskId id;
  model::DiskModelName model;
  model::SystemId system;
  model::ShelfId shelf;
  model::RaidGroupId raid_group;
  std::uint32_t slot = 0;
  double install_time = 0.0;
  double remove_time = std::numeric_limits<double>::infinity();
};

struct InventoryRaidGroup {
  model::RaidGroupId id;
  model::SystemId system;
  model::RaidType type = model::RaidType::kRaid4;
  std::uint32_t member_count = 0;
  std::uint32_t shelf_span = 0;
};

/// The complete joined inventory. Entries are indexed by their dense ids
/// (entry i has id i), which the parser verifies.
struct Inventory {
  std::vector<InventorySystem> systems;
  std::vector<InventoryShelf> shelves;
  std::vector<InventoryDisk> disks;
  std::vector<InventoryRaidGroup> raid_groups;
  double horizon_seconds = 0.0;

  /// Exposure of a disk record in years, clipped to [0, horizon].
  double disk_exposure_years(const InventoryDisk& disk) const;
};

/// Appends the fleet's full inventory (including retired disk records) to a
/// text buffer. This is the implementation; the stream overload wraps it.
void write_snapshot(LineWriter& out, const model::Fleet& fleet);

/// Serializes the fleet's full inventory (including retired disk records).
void write_snapshot(std::ostream& out, const model::Fleet& fleet);

/// Result of parsing a snapshot; `error` is empty on success.
struct SnapshotParseResult {
  Inventory inventory;
  std::string error;
  std::size_t lines = 0;

  bool ok() const { return error.empty(); }
};

/// Parses a snapshot section from an in-memory buffer (no stream, no
/// per-line copies). The result owns everything; `text` may die after.
SnapshotParseResult parse_snapshot(std::string_view text);

SnapshotParseResult parse_snapshot(std::istream& in);

/// Builds the same Inventory directly from a live fleet (bypassing text) —
/// used by tests to verify write/parse round-trips and by callers that do
/// not need the end-to-end path.
Inventory inventory_from_fleet(const model::Fleet& fleet);

}  // namespace storsubsim::log
