// Turns parsed log records into storage subsystem failure events.
//
// Following the paper's methodology (§2.5), only RAID-layer events are
// counted as storage subsystem failures — lower-layer precursors are the
// *explanation* of a failure, not additional failures. A de-duplication
// window collapses repeated RAID-layer reports of the same (disk, type)
// that land within a short interval (log replay and multi-path reporting can
// duplicate the terminal line).
#pragma once

#include <span>
#include <vector>

#include "log/parser.h"
#include "log/record.h"
#include "model/enums.h"
#include "model/ids.h"

namespace storsubsim::log {

/// A classified storage subsystem failure, the unit of all analysis.
struct ClassifiedFailure {
  double time = 0.0;  ///< detection time (RAID-layer event timestamp)
  model::DiskId disk;
  model::SystemId system;
  model::FailureType type = model::FailureType::kDisk;

  friend bool operator==(const ClassifiedFailure&, const ClassifiedFailure&) = default;
};

struct ClassifierOptions {
  /// RAID-layer duplicates of the same (disk, type) within this window are
  /// collapsed into the first occurrence.
  double dedup_window_seconds = 600.0;
};

struct ClassifierStats {
  std::size_t raid_records = 0;
  std::size_t duplicates_dropped = 0;
  std::size_t missing_disk_dropped = 0;  ///< RAID record without a disk id
};

/// Extracts and de-duplicates failures. Records may arrive in any order;
/// output is sorted by time.
std::vector<ClassifiedFailure> classify(std::span<const LogRecord> records,
                                        const ClassifierOptions& options = {},
                                        ClassifierStats* stats = nullptr);

/// View-record overload — the pipeline fast path. Terminal detection
/// switches on the interned event-code id, so no string is touched.
/// Produces the same failures and stats as the owning overload for
/// equivalent input.
std::vector<ClassifiedFailure> classify(std::span<const LogView> records,
                                        const ClassifierOptions& options = {},
                                        ClassifierStats* stats = nullptr);

}  // namespace storsubsim::log
