#include "log/line_writer.h"

#include <charconv>
#include <cmath>

namespace storsubsim::log {

namespace {

/// Writes `v` zero-padded to `width` digits at `p` (wider values keep all
/// digits); returns one past the last written char.
char* put_padded(char* p, std::uint64_t v, int width) {
  char digits[20];
  const auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), v);
  (void)ec;  // unsigned to_chars into a 20-byte buffer cannot fail
  for (auto n = static_cast<int>(end - digits); n < width; ++n) *p++ = '0';
  for (const char* d = digits; d != end; ++d) *p++ = *d;
  return p;
}

}  // namespace

LineWriter& LineWriter::u64(std::uint64_t v) {
  char digits[20];
  const auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), v);
  (void)ec;
  buf_.append(digits, end);
  return *this;
}

LineWriter& LineWriter::fixed3(double v) {
  char digits[64];
  const auto [end, ec] =
      std::to_chars(digits, digits + sizeof(digits), v, std::chars_format::fixed, 3);
  if (ec == std::errc{}) {
    buf_.append(digits, end);
  } else {
    buf_.append("inf");  // magnitude beyond the buffer; format guards with isinf first
  }
  return *this;
}

LineWriter& LineWriter::timestamp(double sim_seconds) {
  const double clamped = std::max(0.0, sim_seconds);
  const long total = std::lround(std::floor(clamped));
  const auto days = static_cast<std::uint64_t>(total / 86400);
  const auto hours = static_cast<std::uint64_t>((total % 86400) / 3600);
  const auto mins = static_cast<std::uint64_t>((total % 3600) / 60);
  const auto secs = static_cast<std::uint64_t>(total % 60);
  // Rendered into a stack buffer first so the hot path pays one append, not
  // eight ("D" + up-to-20-digit day + " hh:mm:ss").
  char stamp[32];
  char* p = stamp;
  *p++ = 'D';
  p = put_padded(p, days, 4);
  *p++ = ' ';
  p = put_padded(p, hours, 2);
  *p++ = ':';
  p = put_padded(p, mins, 2);
  *p++ = ':';
  p = put_padded(p, secs, 2);
  buf_.append(stamp, p);
  return *this;
}

}  // namespace storsubsim::log
