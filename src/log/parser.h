// Parses AutoSupport-style text logs back into structured records.
//
// The parser is deliberately forgiving: real support logs contain lines from
// every subsystem, many of which the analysis does not understand. Unknown
// or malformed lines are counted, not fatal.
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

#include "log/record.h"

namespace storsubsim::log {

struct ParseStats {
  std::size_t lines_total = 0;
  std::size_t lines_parsed = 0;
  std::size_t lines_skipped = 0;  ///< blank or recognizably foreign lines
  std::size_t lines_malformed = 0;  ///< looked like ours but failed to parse
};

/// Parses a single rendered line; nullopt if the line is not a log record.
std::optional<LogRecord> parse_line(std::string_view line);

/// Parses an entire stream; appends parsed records to `out` in file order.
ParseStats parse_stream(std::istream& in, std::vector<LogRecord>& out);

}  // namespace storsubsim::log
