// Parses AutoSupport-style text logs back into structured records.
//
// The parser is deliberately forgiving: real support logs contain lines from
// every subsystem, many of which the analysis does not understand. Unknown
// or malformed lines are counted, not fatal.
//
// Two result shapes (docs/FORMAT.md):
//   * LogView — the zero-copy fast path. `parse_text` walks a retained text
//     buffer directly and yields records whose `code`/`message` are
//     `string_view`s into that buffer; the event code is additionally
//     resolved to an interned id (log/codes.h) so downstream consumers
//     never compare strings. The buffer must outlive the views.
//   * LogRecord — the owning path (`parse_line` / `parse_stream`), a thin
//     adapter over the fast path for callers that keep records around.
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

#include "log/codes.h"
#include "log/record.h"

namespace storsubsim::log {

struct ParseStats {
  std::size_t lines_total = 0;
  std::size_t lines_parsed = 0;
  std::size_t lines_skipped = 0;  ///< blank or recognizably foreign lines
  std::size_t lines_malformed = 0;  ///< looked like ours but failed to parse
};

/// A parsed line whose text fields alias the source buffer (zero-copy).
struct LogView {
  double time = 0.0;                          ///< seconds since study start
  EventCode code_id = EventCode::kUnknown;    ///< interned id (kUnknown = foreign code)
  Severity severity = Severity::kInfo;
  model::DiskId disk;
  model::SystemId system;
  std::string_view code;     ///< aliases the parsed buffer
  std::string_view message;  ///< aliases the parsed buffer

  Layer layer() const { return layer_of_code(code); }
};

/// Parses one rendered line into `out` without copying text; returns false
/// if the line is not a log record (out is unspecified then).
bool parse_line_view(std::string_view line, LogView& out);

/// Parses a whole text buffer (lines separated by '\n'); appends view
/// records — aliasing `text` — to `out` in buffer order. The caller keeps
/// `text` alive for as long as the views are used.
ParseStats parse_text(std::string_view text, std::vector<LogView>& out);

/// Parses a single rendered line; nullopt if the line is not a log record.
std::optional<LogRecord> parse_line(std::string_view line);

/// Parses an entire stream; appends parsed records to `out` in file order.
ParseStats parse_stream(std::istream& in, std::vector<LogRecord>& out);

}  // namespace storsubsim::log
