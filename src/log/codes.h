// Interned event codes — the central table of every message code the
// emitter writes and the parser understands.
//
// The log hot path used to compare heap-allocated code strings at every
// layer (emit, classify, precursor extraction). Interning collapses that:
// the emitter writes `std::string_view` constants, the parser resolves an
// incoming code to a small integer id in one lookup, and everything
// downstream (failure classification, layer attribution, precursor
// recovery) switches on the id instead of re-comparing strings.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "model/enums.h"

namespace storsubsim::log {

/// Every interned event code. Values are dense so tables can be indexed by
/// `static_cast<std::size_t>(code)`; `kUnknown` marks codes outside the
/// table (foreign subsystems, hand-edited logs) and is always last.
enum class EventCode : std::uint8_t {
  // Fibre Channel layer.
  kFciDeviceTimeout,       ///< fci.device.timeout
  kFciAdapterReset,        ///< fci.adapter.reset
  kFciLinkReset,           ///< fci.link.reset (precursor)
  // SCSI layer.
  kScsiAbortedByHost,      ///< scsi.cmd.abortedByHost
  kScsiSelectionTimeout,   ///< scsi.cmd.selectionTimeout
  kScsiNoMorePaths,        ///< scsi.cmd.noMorePaths
  kScsiCheckCondition,     ///< scsi.cmd.checkCondition
  kScsiProtocolViolation,  ///< scsi.cmd.protocolViolation
  kScsiRetryExhausted,     ///< scsi.cmd.retryExhausted
  kScsiSlowResponse,       ///< scsi.cmd.slowResponse
  kScsiSlowCompletion,     ///< scsi.cmd.slowCompletion (precursor)
  // Disk driver layer.
  kDiskIoMediumError,      ///< disk.ioMediumError (also a precursor)
  // RAID layer terminals (paper §2.5) — one per FailureType.
  kRaidDiskFailed,         ///< raid.config.disk.failed
  kRaidDiskMissing,        ///< raid.config.filesystem.disk.missing
  kRaidProtocolError,      ///< raid.disk.protocol.error
  kRaidTimeoutSlow,        ///< raid.disk.timeout.slow
  kUnknown,
};

inline constexpr std::size_t kEventCodeCount =
    static_cast<std::size_t>(EventCode::kUnknown);

/// The interned spelling of a code; "?" for kUnknown.
std::string_view code_name(EventCode code) noexcept;

/// Resolves a code spelling to its id; kUnknown when not in the table.
EventCode code_id(std::string_view name) noexcept;

/// Failure type of a RAID-layer terminal code; nullopt for every other id.
std::optional<model::FailureType> failure_type_of(EventCode code) noexcept;

/// The RAID-layer terminal code for a failure type.
EventCode raid_terminal_for(model::FailureType type) noexcept;

}  // namespace storsubsim::log
