#include "log/parser.h"

#include <charconv>
#include <istream>
#include <string>

namespace storsubsim::log {

namespace {

/// Parses "name=value" where value is a decimal integer or '-'.
std::optional<std::uint32_t> parse_id_attr(std::string_view text, std::string_view name) {
  const auto pos = text.find(name);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view rest = text.substr(pos + name.size());
  if (rest.starts_with("-")) return model::Id<model::DiskTag>::kInvalid;
  std::uint32_t value = 0;
  const auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), value);
  if (ec != std::errc{} || ptr == rest.data()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<LogRecord> parse_line(std::string_view line) {
  // Expected shape:
  //   D0012 03:14:15 t=<seconds> [<code>:<severity>] [sys=N disk=N]: <message>
  const auto t_pos = line.find(" t=");
  if (t_pos == std::string_view::npos) return std::nullopt;

  LogRecord record;
  {
    std::string_view rest = line.substr(t_pos + 3);
    // std::from_chars for double is available in GCC >= 11.
    double t = 0.0;
    const auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), t);
    if (ec != std::errc{}) return std::nullopt;
    record.time = t;
    line = std::string_view(ptr, static_cast<std::size_t>(rest.data() + rest.size() - ptr));
  }

  const auto code_open = line.find('[');
  const auto code_close = line.find(']');
  if (code_open == std::string_view::npos || code_close == std::string_view::npos ||
      code_close <= code_open) {
    return std::nullopt;
  }
  {
    std::string_view code_sev = line.substr(code_open + 1, code_close - code_open - 1);
    const auto colon = code_sev.rfind(':');
    if (colon == std::string_view::npos) return std::nullopt;
    record.code = std::string(code_sev.substr(0, colon));
    const auto sev = parse_severity(code_sev.substr(colon + 1));
    if (!sev) return std::nullopt;
    record.severity = *sev;
  }

  std::string_view after = line.substr(code_close + 1);
  const auto attr_open = after.find('[');
  const auto attr_close = after.find(']');
  if (attr_open == std::string_view::npos || attr_close == std::string_view::npos ||
      attr_close <= attr_open) {
    return std::nullopt;
  }
  {
    std::string_view attrs = after.substr(attr_open + 1, attr_close - attr_open - 1);
    const auto sys = parse_id_attr(attrs, "sys=");
    const auto disk = parse_id_attr(attrs, "disk=");
    if (!sys || !disk) return std::nullopt;
    record.system = model::SystemId(*sys);
    record.disk = model::DiskId(*disk);
  }

  std::string_view message = after.substr(attr_close + 1);
  if (message.starts_with(": ")) message.remove_prefix(2);
  record.message = std::string(message);
  return record;
}

ParseStats parse_stream(std::istream& in, std::vector<LogRecord>& out) {
  ParseStats stats;
  std::string line;
  while (std::getline(in, line)) {
    ++stats.lines_total;
    if (line.empty() || line[0] == '#') {
      ++stats.lines_skipped;
      continue;
    }
    // Lines without our "t=" marker are foreign (other subsystems, console
    // noise); lines with the marker that still fail to parse are malformed.
    if (auto record = parse_line(line)) {
      out.push_back(std::move(*record));
      ++stats.lines_parsed;
    } else if (line.find(" t=") != std::string::npos) {
      ++stats.lines_malformed;
    } else {
      ++stats.lines_skipped;
    }
  }
  return stats;
}

}  // namespace storsubsim::log
