#include "log/parser.h"

#include <charconv>
#include <istream>
#include <string>

#include "obs/obs.h"

namespace storsubsim::log {

namespace {

/// Parses "name=value" where value is a decimal integer or '-'. The match is
/// anchored at a token boundary — start of the attribute block or preceded
/// by a space — so "sys=" can never match inside a longer attribute name
/// (e.g. a hypothetical "subsys=").
std::optional<std::uint32_t> parse_id_attr(std::string_view text, std::string_view name) {
  std::size_t pos = 0;
  for (;;) {
    pos = text.find(name, pos);
    if (pos == std::string_view::npos) return std::nullopt;
    if (pos == 0 || text[pos - 1] == ' ') break;
    pos += 1;  // mid-token hit; resume the scan after it
  }
  std::string_view rest = text.substr(pos + name.size());
  if (rest.starts_with("-")) return model::Id<model::DiskTag>::kInvalid;
  std::uint32_t value = 0;
  const auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), value);
  if (ec != std::errc{} || ptr == rest.data()) return std::nullopt;
  return value;
}

}  // namespace

bool parse_line_view(std::string_view line, LogView& out) {
  // Expected shape:
  //   D0012 03:14:15 t=<seconds> [<code>:<severity>] [sys=N disk=N]: <message>
  const auto t_pos = line.find(" t=");
  if (t_pos == std::string_view::npos) return false;

  {
    std::string_view rest = line.substr(t_pos + 3);
    // std::from_chars for double is available in GCC >= 11.
    double t = 0.0;
    const auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), t);
    if (ec != std::errc{}) return false;
    out.time = t;
    line = std::string_view(ptr, static_cast<std::size_t>(rest.data() + rest.size() - ptr));
  }

  const auto code_open = line.find('[');
  const auto code_close = line.find(']');
  if (code_open == std::string_view::npos || code_close == std::string_view::npos ||
      code_close <= code_open) {
    return false;
  }
  {
    std::string_view code_sev = line.substr(code_open + 1, code_close - code_open - 1);
    const auto colon = code_sev.rfind(':');
    if (colon == std::string_view::npos) return false;
    out.code = code_sev.substr(0, colon);
    out.code_id = code_id(out.code);
    const auto sev = parse_severity(code_sev.substr(colon + 1));
    if (!sev) return false;
    out.severity = *sev;
  }

  std::string_view after = line.substr(code_close + 1);
  const auto attr_open = after.find('[');
  const auto attr_close = after.find(']');
  if (attr_open == std::string_view::npos || attr_close == std::string_view::npos ||
      attr_close <= attr_open) {
    return false;
  }
  {
    std::string_view attrs = after.substr(attr_open + 1, attr_close - attr_open - 1);
    const auto sys = parse_id_attr(attrs, "sys=");
    const auto disk = parse_id_attr(attrs, "disk=");
    if (!sys || !disk) return false;
    out.system = model::SystemId(*sys);
    out.disk = model::DiskId(*disk);
  }

  std::string_view message = after.substr(attr_close + 1);
  if (message.starts_with(": ")) message.remove_prefix(2);
  out.message = message;
  return true;
}

ParseStats parse_text(std::string_view text, std::vector<LogView>& out) {
  ParseStats stats;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, (nl == std::string_view::npos ? text.size() : nl) - pos);

    ++stats.lines_total;
    if (line.empty() || line[0] == '#') {
      ++stats.lines_skipped;
    } else {
      // Lines without our "t=" marker are foreign (other subsystems, console
      // noise); lines with the marker that still fail to parse are malformed.
      LogView view;
      if (parse_line_view(line, view)) {
        out.push_back(view);
        ++stats.lines_parsed;
      } else if (line.find(" t=") != std::string_view::npos) {
        ++stats.lines_malformed;
      } else {
        ++stats.lines_skipped;
      }
    }

    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  STORSIM_OBS_COUNTER(c_lines, "log.parse.lines",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_lines, stats.lines_total);
  STORSIM_OBS_COUNTER(c_parsed, "log.parse.records",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_parsed, stats.lines_parsed);
  return stats;
}

std::optional<LogRecord> parse_line(std::string_view line) {
  LogView view;
  if (!parse_line_view(line, view)) return std::nullopt;
  LogRecord record;
  record.time = view.time;
  record.code = std::string(view.code);
  record.severity = view.severity;
  record.disk = view.disk;
  record.system = view.system;
  record.message = std::string(view.message);
  return record;
}

ParseStats parse_stream(std::istream& in, std::vector<LogRecord>& out) {
  // Slurp the stream and run the buffer fast path; the owning records copy
  // out of the buffer before it dies.
  std::string text;
  char chunk[1 << 16];
  while (in) {
    in.read(chunk, sizeof(chunk));
    text.append(chunk, static_cast<std::size_t>(in.gcount()));
  }

  std::vector<LogView> views;
  const ParseStats stats = parse_text(text, views);
  out.reserve(out.size() + views.size());
  for (const LogView& v : views) {
    LogRecord record;
    record.time = v.time;
    record.code = std::string(v.code);
    record.severity = v.severity;
    record.disk = v.disk;
    record.system = v.system;
    record.message = std::string(v.message);
    out.push_back(std::move(record));
  }
  return stats;
}

}  // namespace storsubsim::log
