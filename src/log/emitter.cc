#include "log/emitter.h"

#include <array>
#include <charconv>
#include <ostream>
#include <span>

#include "log/codes.h"

namespace storsubsim::log {

namespace {

using model::FailureType;

// --- static chain table -----------------------------------------------------
// One table drives both emission paths. A message is a sequence of pieces;
// each piece appends a literal and then (optionally) one of the per-failure
// substitution slots, so formatting is pure appends — no temporaries.

enum class Slot : std::uint8_t { kNone, kDev, kAdapter, kSerial };

struct MsgPiece {
  std::string_view text;
  Slot slot = Slot::kNone;
};

struct ChainStep {
  double dt;  ///< seconds before the RAID-layer detection time
  EventCode code;
  Severity severity;
  std::span<const MsgPiece> message;
};

constexpr MsgPiece kMsgDeviceTimeout[] = {
    {"Adapter ", Slot::kAdapter},
    {" encountered a device timeout on device ", Slot::kDev}};
constexpr MsgPiece kMsgAdapterReset[] = {{"Resetting Fibre Channel adapter ", Slot::kAdapter},
                                         {"."}};
constexpr MsgPiece kMsgAbortedByHost[] = {{"Device ", Slot::kDev},
                                          {": Command aborted by host adapter"}};
constexpr MsgPiece kMsgSelectionTimeout[] = {
    {"Device ", Slot::kDev},
    {": Adapter/target error: Targeted device did not respond to requested I/O. I/O will "
     "be retried."}};
constexpr MsgPiece kMsgNoMorePaths[] = {
    {"Device ", Slot::kDev}, {": No more paths to device. All retries have failed."}};
constexpr MsgPiece kMsgDiskMissing[] = {{"File system Disk ", Slot::kDev},
                                        {" S/N [", Slot::kSerial},
                                        {"] is missing."}};

constexpr MsgPiece kMsgMediumError[] = {
    {"Device ", Slot::kDev}, {": medium error during read, sector remap attempted."}};
constexpr MsgPiece kMsgCheckCondition[] = {
    {"Device ", Slot::kDev},
    {": check condition: hardware error, internal target failure."}};
constexpr MsgPiece kMsgDiskFailed[] = {{"Disk ", Slot::kDev},
                                       {" S/N [", Slot::kSerial},
                                       {"] failed; marked for reconstruction."}};

constexpr MsgPiece kMsgProtocolViolation[] = {
    {"Device ", Slot::kDev},
    {": unexpected response for tagged command; protocol violation suspected."}};
constexpr MsgPiece kMsgRetryExhausted[] = {
    {"Device ", Slot::kDev},
    {": command retries exhausted; responses remain inconsistent."}};
constexpr MsgPiece kMsgProtocolError[] = {
    {"Disk ", Slot::kDev},
    {" S/N [", Slot::kSerial},
    {"] visible but I/O requests are not correctly responded."}};

constexpr MsgPiece kMsgSlowResponse[] = {
    {"Device ", Slot::kDev}, {": request latency exceeds service threshold."}};
constexpr MsgPiece kMsgTimeoutSlow[] = {
    {"Disk ", Slot::kDev},
    {" S/N [", Slot::kSerial},
    {"] cannot serve I/O requests in a timely manner."}};

// The exact event sequence of the paper's Figure 3.
constexpr ChainStep kInterconnectChain[] = {
    {166.0, EventCode::kFciDeviceTimeout, Severity::kError, kMsgDeviceTimeout},
    {152.0, EventCode::kFciAdapterReset, Severity::kInfo, kMsgAdapterReset},
    {152.0, EventCode::kScsiAbortedByHost, Severity::kError, kMsgAbortedByHost},
    {130.0, EventCode::kScsiSelectionTimeout, Severity::kError, kMsgSelectionTimeout},
    {120.0, EventCode::kScsiNoMorePaths, Severity::kError, kMsgNoMorePaths},
    {0.0, EventCode::kRaidDiskMissing, Severity::kInfo, kMsgDiskMissing},
};

constexpr ChainStep kDiskChain[] = {
    {240.0, EventCode::kDiskIoMediumError, Severity::kError, kMsgMediumError},
    {90.0, EventCode::kScsiCheckCondition, Severity::kError, kMsgCheckCondition},
    {0.0, EventCode::kRaidDiskFailed, Severity::kError, kMsgDiskFailed},
};

constexpr ChainStep kProtocolChain[] = {
    {75.0, EventCode::kScsiProtocolViolation, Severity::kError, kMsgProtocolViolation},
    {30.0, EventCode::kScsiRetryExhausted, Severity::kError, kMsgRetryExhausted},
    {0.0, EventCode::kRaidProtocolError, Severity::kError, kMsgProtocolError},
};

constexpr ChainStep kPerformanceChain[] = {
    {420.0, EventCode::kScsiSlowResponse, Severity::kWarning, kMsgSlowResponse},
    {200.0, EventCode::kScsiSlowResponse, Severity::kWarning, kMsgSlowResponse},
    {0.0, EventCode::kRaidTimeoutSlow, Severity::kWarning, kMsgTimeoutSlow},
};

std::span<const ChainStep> chain_for(FailureType type) {
  switch (type) {
    case FailureType::kDisk: return kDiskChain;
    case FailureType::kPhysicalInterconnect: return kInterconnectChain;
    case FailureType::kProtocol: return kProtocolChain;
    case FailureType::kPerformance: return kPerformanceChain;
  }
  return {};
}

/// Per-step " [<code>:<severity>]" fragments, prerendered once at first use
/// from the same code/severity tables the record path reads, so the hot loop
/// appends one view instead of five pieces per line.
template <std::size_t N>
std::array<std::string, N> build_code_sev_fragments(const ChainStep (&steps)[N]) {
  std::array<std::string, N> out;
  for (std::size_t i = 0; i < N; ++i) {
    LineWriter frag;
    frag.text(" [").text(code_name(steps[i].code)).ch(':');
    frag.text(to_string(steps[i].severity)).ch(']');
    out[i] = frag.take();
  }
  return out;
}

std::span<const std::string> code_sev_fragments_for(FailureType type) {
  static const auto interconnect = build_code_sev_fragments(kInterconnectChain);
  static const auto disk = build_code_sev_fragments(kDiskChain);
  static const auto protocol = build_code_sev_fragments(kProtocolChain);
  static const auto performance = build_code_sev_fragments(kPerformanceChain);
  switch (type) {
    case FailureType::kDisk: return disk;
    case FailureType::kPhysicalInterconnect: return interconnect;
    case FailureType::kProtocol: return protocol;
    case FailureType::kPerformance: return performance;
  }
  return {};
}

/// Renders " [sys=N disk=N]: " into `buf` (invalid ids as '-'); the block is
/// constant across a failure's whole chain, so callers format it once.
std::string_view format_id_block(std::span<char> buf, model::SystemId system,
                                 model::DiskId disk) {
  constexpr std::string_view kSysPrefix = " [sys=";
  constexpr std::string_view kDiskPrefix = " disk=";
  constexpr std::string_view kSuffix = "]: ";
  char* p = buf.data();
  for (const char c : kSysPrefix) *p++ = c;
  if (system.valid()) {
    p = std::to_chars(p, buf.data() + buf.size(), system.value()).ptr;
  } else {
    *p++ = '-';
  }
  for (const char c : kDiskPrefix) *p++ = c;
  if (disk.valid()) {
    p = std::to_chars(p, buf.data() + buf.size(), disk.value()).ptr;
  } else {
    *p++ = '-';
  }
  for (const char c : kSuffix) *p++ = c;
  return std::string_view(buf.data(), static_cast<std::size_t>(p - buf.data()));
}

void append_slot(LineWriter& out, Slot slot, const FailureLineInput& f,
                 std::string_view adapter) {
  switch (slot) {
    case Slot::kNone: break;
    case Slot::kDev: out.text(f.device_address); break;
    case Slot::kAdapter: out.text(adapter); break;
    case Slot::kSerial: out.text(f.serial); break;
  }
}

void append_message(LineWriter& out, std::span<const MsgPiece> pieces,
                    const FailureLineInput& f, std::string_view adapter) {
  for (const MsgPiece& piece : pieces) {
    out.text(piece.text);
    append_slot(out, piece.slot, f, adapter);
  }
}

/// Everything before the free-form message: timestamp, raw time, code,
/// severity, and the machine-readable id block.
void append_line_head(LineWriter& out, double time, std::string_view code, Severity severity,
                      model::SystemId system, model::DiskId disk) {
  out.timestamp(time).text(" t=").fixed3(time);
  out.text(" [").text(code).ch(':').text(to_string(severity)).ch(']');
  out.text(" [sys=");
  if (system.valid()) {
    out.u32(system.value());
  } else {
    out.ch('-');
  }
  out.text(" disk=");
  if (disk.valid()) {
    out.u32(disk.value());
  } else {
    out.ch('-');
  }
  out.text("]: ");
}

}  // namespace

std::size_t emit_chain(LineWriter& out, const FailureLineInput& f) {
  const std::string_view dev = f.device_address;
  const std::string_view adapter = dev.substr(0, dev.find('.'));
  const auto steps = chain_for(f.type);
  const auto fragments = code_sev_fragments_for(f.type);
  char id_buf[48];  // " [sys=" + 10 digits + " disk=" + 10 digits + "]: "
  const std::string_view id_block = format_id_block(id_buf, f.system, f.disk);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const ChainStep& step = steps[i];
    const double t = f.detect_time - step.dt;
    out.timestamp(t).text(" t=").fixed3(t).text(fragments[i]).text(id_block);
    append_message(out, step.message, f, adapter);
    out.newline();
  }
  return steps.size();
}

std::vector<LogRecord> propagation_chain(const EmittableFailure& f) {
  const FailureLineInput input{f.detect_time, f.type,           f.disk,
                               f.system,      f.device_address, f.serial};
  const std::string_view dev = input.device_address;
  const std::string_view adapter = dev.substr(0, dev.find('.'));

  std::vector<LogRecord> chain;
  const auto steps = chain_for(f.type);
  chain.reserve(steps.size());
  LineWriter message;
  for (const ChainStep& step : steps) {
    message.clear();
    append_message(message, step.message, input, adapter);
    LogRecord r;
    r.time = f.detect_time - step.dt;
    r.code = std::string(code_name(step.code));
    r.severity = step.severity;
    r.disk = f.disk;
    r.system = f.system;
    r.message = std::string(message.view());
    chain.push_back(std::move(r));
  }
  return chain;
}

std::string render_timestamp(double sim_seconds) {
  // Render as day/hh:mm:ss offsets from study start; analysis parses the raw
  // seconds attribute instead, so this is purely cosmetic.
  LineWriter out;
  out.timestamp(sim_seconds);
  return out.take();
}

void render_line_to(LineWriter& out, const LogRecord& r) {
  append_line_head(out, r.time, r.code, r.severity, r.system, r.disk);
  out.text(r.message);
}

std::string render_line(const LogRecord& r) {
  LineWriter out;
  render_line_to(out, r);
  return out.take();
}

void LogEmitter::emit(const LogRecord& record) {
  scratch_.clear();
  render_line_to(scratch_, record);
  scratch_.newline();
  *out_ << scratch_.view();
  ++lines_;
}

void LogEmitter::emit(const EmittableFailure& failure) {
  scratch_.clear();
  lines_ += emit_chain(scratch_, FailureLineInput{failure.detect_time, failure.type,
                                                  failure.disk, failure.system,
                                                  failure.device_address, failure.serial});
  *out_ << scratch_.view();
}

}  // namespace storsubsim::log
