#include "log/emitter.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace storsubsim::log {

namespace {

using model::FailureType;

LogRecord make(double t, std::string code, Severity sev, const EmittableFailure& f,
               std::string message) {
  LogRecord r;
  r.time = t;
  r.code = std::move(code);
  r.severity = sev;
  r.disk = f.disk;
  r.system = f.system;
  r.message = std::move(message);
  return r;
}

}  // namespace

std::vector<LogRecord> propagation_chain(const EmittableFailure& f) {
  std::vector<LogRecord> chain;
  const double t = f.detect_time;
  const std::string& dev = f.device_address;
  const std::string adapter = dev.substr(0, dev.find('.'));

  switch (f.type) {
    case FailureType::kPhysicalInterconnect:
      // The exact shape of the paper's Figure 3 example.
      chain.push_back(make(t - 166.0, "fci.device.timeout", Severity::kError, f,
                           "Adapter " + adapter + " encountered a device timeout on device " +
                               dev));
      chain.push_back(make(t - 152.0, "fci.adapter.reset", Severity::kInfo, f,
                           "Resetting Fibre Channel adapter " + adapter + "."));
      chain.push_back(make(t - 152.0, "scsi.cmd.abortedByHost", Severity::kError, f,
                           "Device " + dev + ": Command aborted by host adapter"));
      chain.push_back(make(t - 130.0, "scsi.cmd.selectionTimeout", Severity::kError, f,
                           "Device " + dev +
                               ": Adapter/target error: Targeted device did not respond to "
                               "requested I/O. I/O will be retried."));
      chain.push_back(make(t - 120.0, "scsi.cmd.noMorePaths", Severity::kError, f,
                           "Device " + dev + ": No more paths to device. All retries have "
                                             "failed."));
      chain.push_back(make(t, "raid.config.filesystem.disk.missing", Severity::kInfo, f,
                           "File system Disk " + dev + " S/N [" + f.serial + "] is missing."));
      break;

    case FailureType::kDisk:
      chain.push_back(make(t - 240.0, "disk.ioMediumError", Severity::kError, f,
                           "Device " + dev + ": medium error during read, sector remap "
                                             "attempted."));
      chain.push_back(make(t - 90.0, "scsi.cmd.checkCondition", Severity::kError, f,
                           "Device " + dev + ": check condition: hardware error, internal "
                                             "target failure."));
      chain.push_back(make(t, "raid.config.disk.failed", Severity::kError, f,
                           "Disk " + dev + " S/N [" + f.serial +
                               "] failed; marked for reconstruction."));
      break;

    case FailureType::kProtocol:
      chain.push_back(make(t - 75.0, "scsi.cmd.protocolViolation", Severity::kError, f,
                           "Device " + dev + ": unexpected response for tagged command; "
                                             "protocol violation suspected."));
      chain.push_back(make(t - 30.0, "scsi.cmd.retryExhausted", Severity::kError, f,
                           "Device " + dev + ": command retries exhausted; responses remain "
                                             "inconsistent."));
      chain.push_back(make(t, "raid.disk.protocol.error", Severity::kError, f,
                           "Disk " + dev + " S/N [" + f.serial +
                               "] visible but I/O requests are not correctly responded."));
      break;

    case FailureType::kPerformance:
      chain.push_back(make(t - 420.0, "scsi.cmd.slowResponse", Severity::kWarning, f,
                           "Device " + dev + ": request latency exceeds service threshold."));
      chain.push_back(make(t - 200.0, "scsi.cmd.slowResponse", Severity::kWarning, f,
                           "Device " + dev + ": request latency exceeds service threshold."));
      chain.push_back(make(t, "raid.disk.timeout.slow", Severity::kWarning, f,
                           "Disk " + dev + " S/N [" + f.serial +
                               "] cannot serve I/O requests in a timely manner."));
      break;
  }
  return chain;
}

std::string render_timestamp(double sim_seconds) {
  // Render as day/hh:mm:ss offsets from study start; analysis parses the raw
  // seconds attribute instead, so this is purely cosmetic.
  const double clamped = std::max(0.0, sim_seconds);
  const long total = std::lround(std::floor(clamped));
  const long days = total / 86400;
  const long hours = (total % 86400) / 3600;
  const long mins = (total % 3600) / 60;
  const long secs = total % 60;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "D%04ld %02ld:%02ld:%02ld", days, hours, mins, secs);
  return buf;
}

std::string render_line(const LogRecord& r) {
  std::ostringstream os;
  os << render_timestamp(r.time) << " t=" << std::fixed;
  os.precision(3);
  os << r.time << " [" << r.code << ":" << to_string(r.severity) << "]";
  os << " [sys=" << (r.system.valid() ? std::to_string(r.system.value()) : std::string("-"))
     << " disk=" << (r.disk.valid() ? std::to_string(r.disk.value()) : std::string("-"))
     << "]: " << r.message;
  return os.str();
}

void LogEmitter::emit(const LogRecord& record) {
  *out_ << render_line(record) << '\n';
  ++lines_;
}

void LogEmitter::emit(const EmittableFailure& failure) {
  for (const auto& record : propagation_chain(failure)) emit(record);
}

}  // namespace storsubsim::log
