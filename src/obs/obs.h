// Umbrella header + the per-event instrumentation macros.
//
// Instrumentation on per-event hot paths (log emit/parse/classify, store
// query row loops) goes through these macros so a build can compile it out
// entirely: configure with -DSTORSUBSIM_OBS_PER_EVENT=OFF and every
// STORSIM_OBS_* expands to a no-op — zero instructions, zero data. The
// default build keeps them on; the fast path is a relaxed add on a
// thread-local shard (obs/registry.h).
//
// Usage (function scope; registration happens once, thread-safely):
//   STORSIM_OBS_COUNTER(c_lines, "log.parse.lines",
//                       ::storsubsim::obs::Stability::kDeterministic);
//   STORSIM_OBS_ADD(c_lines, batch.size());
//
// Stage-granularity timing does not use macros — construct an obs::Span
// directly; spans are always compiled in (their values feed PipelineStats).
#pragma once

#include "obs/manifest.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "obs/trace.h"

#ifndef STORSIM_OBS_PER_EVENT
#define STORSIM_OBS_PER_EVENT 1
#endif

#if STORSIM_OBS_PER_EVENT

#define STORSIM_OBS_COUNTER(var, name, stability) \
  static ::storsubsim::obs::Counter var =         \
      ::storsubsim::obs::registry().counter((name), (stability))
#define STORSIM_OBS_ADD(var, n) (var).add(static_cast<std::uint64_t>(n))
#define STORSIM_OBS_HISTOGRAM(var, name, stability) \
  static ::storsubsim::obs::Histogram var =         \
      ::storsubsim::obs::registry().histogram((name), (stability))
#define STORSIM_OBS_OBSERVE(var, v) (var).observe(static_cast<std::uint64_t>(v))

#else  // compiled out: no statics, no atomics, no registration

#define STORSIM_OBS_COUNTER(var, name, stability) static_cast<void>(0)
#define STORSIM_OBS_ADD(var, n) static_cast<void>(0)
#define STORSIM_OBS_HISTOGRAM(var, name, stability) static_cast<void>(0)
#define STORSIM_OBS_OBSERVE(var, v) static_cast<void>(0)

#endif  // STORSIM_OBS_PER_EVENT
