#include "obs/manifest.h"

#include <cstdio>
#include <fstream>

#include "obs/json.h"
#include "obs/registry.h"

namespace storsubsim::obs {

namespace {

void append_number(std::string& out, double value) {
  char buf[40];
  // Shortest round-trip-safe decimal; manifests are diffed byte-for-byte in
  // run_checks, so the formatting must be deterministic.
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void append_string_field(std::string& out, std::string_view key,
                         std::string_view value, bool trailing_comma) {
  out += "  \"";
  out += json_escape(key);
  out += "\": \"";
  out += json_escape(value);
  out += '"';
  if (trailing_comma) out += ',';
  out += '\n';
}

}  // namespace

std::string_view git_describe() noexcept {
#ifdef STORSUBSIM_GIT_DESCRIBE
  return STORSUBSIM_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string manifest_json(const RunManifest& manifest) {
  std::string out = "{\n";
  out += "  \"storsubsim_manifest\": 1,\n";
  append_string_field(out, "tool", manifest.tool, true);
  append_string_field(out, "git_describe", git_describe(), true);
  out += "  \"seed\": " + std::to_string(manifest.seed) + ",\n";
  out += "  \"scale\": ";
  append_number(out, manifest.scale);
  out += ",\n  \"threads\": " + std::to_string(manifest.threads) + ",\n";

  out += "  \"info\": {";
  for (std::size_t i = 0; i < manifest.info.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n    \"" + json_escape(manifest.info[i].first) + "\": \"" +
           json_escape(manifest.info[i].second) + '"';
  }
  out += manifest.info.empty() ? "},\n" : "\n  },\n";

  out += "  \"numbers\": {";
  for (std::size_t i = 0; i < manifest.numbers.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n    \"" + json_escape(manifest.numbers[i].first) + "\": ";
    append_number(out, manifest.numbers[i].second);
  }
  out += manifest.numbers.empty() ? "}" : "\n  }";

  if (manifest.include_metrics) {
    out += ",\n  \"metrics\": ";
    out += registry().snapshot().to_json();
  }
  out += "\n}\n";
  return out;
}

bool write_manifest(const std::string& path, const RunManifest& manifest) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << manifest_json(manifest);
  return static_cast<bool>(out);
}

}  // namespace storsubsim::obs
