// Scoped spans: the project's timing primitive, subsuming util::StageTimer.
//
// Every wall-clock read in the tree funnels through obs::now_seconds() — one
// steady-clock site, one storsim-lint allow(nondeterminism) annotation, one
// process epoch. Spans measure a scope's duration, feed it back to the caller
// (stop() returns seconds, so PipelineStats-style stage accounting keeps
// working), and — when tracing is enabled — append a Chrome trace_event to
// the calling thread's buffer (obs/trace.h).
//
// Lifetime rules:
//  - A Span must not outlive the scope whose name it carries; name must be a
//    string literal (stored by pointer, never copied).
//  - stop() is idempotent via the destructor: an explicitly stopped span
//    records nothing further when destroyed.
//  - Spans nest freely (each is independent); the trace viewer reconstructs
//    the hierarchy from the thread id + time intervals.
#pragma once

namespace storsubsim::obs {

/// Seconds on the process-wide monotonic clock, relative to a fixed epoch
/// captured at startup. Differences and absolute values are both meaningful
/// within one process; values are observability outputs, never inputs.
double now_seconds() noexcept;

class Span {
 public:
  /// `name` must be a string literal (or otherwise outlive the trace sink).
  explicit Span(const char* name) noexcept
      : name_(name), start_seconds_(now_seconds()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (open_) stop();
  }

  /// Ends the span, records it to the trace buffer (when tracing), and
  /// returns the elapsed seconds. Subsequent calls return 0 and record
  /// nothing.
  double stop() noexcept;

  /// Elapsed seconds so far without ending the span.
  double seconds() const noexcept { return now_seconds() - start_seconds_; }

 private:
  const char* name_;
  double start_seconds_;
  bool open_ = true;
};

}  // namespace storsubsim::obs
