#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace storsubsim::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!parse_value(v, 0)) {
      if (error != nullptr) *error = message_ + " at byte " + std::to_string(pos_);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing garbage at byte " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* message) {
    if (message_.empty()) message_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
      case 'f': return parse_keyword(out);
      case 'n': return parse_keyword(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue member;
      if (!parse_value(member, depth + 1)) return false;
      out.object.emplace(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue element;
      if (!parse_value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character");
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4u;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // Validation-grade decoding: escapes beyond Latin-1 are preserved
          // as '?' placeholders rather than full UTF-8; the writers in this
          // codebase never emit them.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_keyword(JsonValue& out) {
    const std::string_view rest = text_.substr(pos_);
    if (rest.rfind("true", 0) == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (rest.rfind("false", 0) == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (rest.rfind("null", 0) == 0) {
      out.type = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return fail("bad keyword");
  }

  bool parse_number(JsonValue& out) {
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr == begin) return fail("bad number");
    out.type = JsonValue::Type::kNumber;
    out.number = value;
    pos_ += static_cast<std::size_t>(ptr - begin);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace storsubsim::obs
