#include "obs/span.h"

#include <chrono>

#include "obs/trace.h"

namespace storsubsim::obs {

namespace {

double read_clock() noexcept {
  // The project's only wall-clock read: every timer (spans, StageTimer,
  // bench harness deltas) funnels through here, keeping the "timings are
  // outputs, never inputs" rule auditable at a single site.
  // storsim-lint: allow(nondeterminism) reason=observability-only span timing; values are reported, never fed back into simulation or analysis
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

/// Process epoch: captured once before main() so every span and trace
/// timestamp shares the same zero and traces start near t=0.
const double g_epoch = read_clock();

}  // namespace

double now_seconds() noexcept { return read_clock() - g_epoch; }

double Span::stop() noexcept {
  if (!open_) return 0.0;
  open_ = false;
  const double elapsed = now_seconds() - start_seconds_;
  if (tracing_enabled()) {
    detail::record_span(name_, start_seconds_, elapsed);
  }
  return elapsed;
}

}  // namespace storsubsim::obs
