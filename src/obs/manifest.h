// Run manifests: a small JSON provenance record emitted by CLI runs, bench
// harnesses, and store builds — what ran (tool, git describe), with which
// knobs (seed, scale, threads), what it measured (named numbers), and the
// final metric snapshot. One file per run; the schema is validated by
// obs::parse_json in tests and tools/run_checks.sh.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace storsubsim::obs {

struct RunManifest {
  std::string tool;  ///< e.g. "storsubsim analyze", "bench/pipeline_throughput"
  std::uint64_t seed = 0;
  double scale = 0.0;
  std::size_t threads = 0;  ///< resolved worker count for the run

  /// Free-form string facts (input paths, report names, ...).
  std::vector<std::pair<std::string, std::string>> info;
  /// Named measurements (wall times, speedups, byte counts, ...).
  std::vector<std::pair<std::string, double>> numbers;
  /// Embed the registry snapshot under "metrics" (default on).
  bool include_metrics = true;
};

/// The `git describe --always --dirty` of the source tree at configure time
/// ("unknown" when git was unavailable).
std::string_view git_describe() noexcept;

/// Serializes the manifest (plus the current metric snapshot) as JSON.
std::string manifest_json(const RunManifest& manifest);

/// Writes manifest_json() to `path`; false on I/O failure.
bool write_manifest(const std::string& path, const RunManifest& manifest);

}  // namespace storsubsim::obs
