// Chrome trace_event exporter: spans buffered per thread, serialized as the
// JSON Object Format that chrome://tracing and Perfetto load directly.
//
// Tracing is opt-in at runtime (--trace <file> in the CLI and benches).
// When disabled, Span::stop() skips the buffer entirely; enabling it changes
// no simulation or analysis byte — buffers are append-only side channels.
#pragma once

#include <cstdint>
#include <string>

namespace storsubsim::obs {

/// Globally enables/disables span recording. Off by default.
void set_tracing_enabled(bool enabled) noexcept;
bool tracing_enabled() noexcept;

/// Drops every buffered event (registrations of thread buffers survive).
void reset_trace() noexcept;

/// Number of events currently buffered across all threads.
std::size_t trace_event_count();

/// Small dense id of the calling thread in registration order (0 = first
/// thread to record or ask). Used as the "tid" field of trace events.
std::uint32_t trace_thread_id();

/// Serializes all buffered events as a Chrome trace_event JSON document
/// ("X" complete events, microsecond timestamps, sorted by start time).
std::string trace_json();

/// Writes trace_json() to `path`; false on I/O failure.
bool write_trace_json(const std::string& path);

namespace detail {
/// Appends one complete event to the calling thread's buffer. Called by
/// Span::stop() only when tracing is enabled.
void record_span(const char* name, double start_seconds, double dur_seconds);
}  // namespace detail

}  // namespace storsubsim::obs
