#include "obs/registry.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <memory>
#include <mutex>

#include "obs/json.h"

namespace storsubsim::obs {

namespace {

struct HistCells {
  std::atomic<std::uint64_t> sum{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

/// One thread's private cells. Shards are owned by the registry state and are
/// never freed, so a worker thread that exits leaves its tallies behind for
/// later snapshots (counts must not vanish with the pool).
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxScalars> scalar{};
  std::array<HistCells, kMaxHistograms> hist{};
};

struct MetricInfo {
  std::string name;
  Kind kind = Kind::kCounter;
  Stability stability = Stability::kDeterministic;
  std::uint32_t scalar_slot = 0;
  std::uint32_t hist_slot = 0;  ///< histograms only
};

struct State {
  std::mutex mutex;
  std::vector<MetricInfo> metrics;           // registration order
  std::vector<std::unique_ptr<Shard>> shards;  // all threads ever seen
  std::uint32_t next_scalar = 0;
  std::uint32_t next_hist = 0;
};

/// Leaked on purpose: worker threads (and static destructors that observe
/// metrics) may run after any particular static's destructor; keeping the
/// state reachable through a static pointer makes every handle valid for the
/// whole process lifetime without destruction-order hazards.
State& state() noexcept {
  static State* const s = new State();
  return *s;
}

thread_local Shard* tl_shard = nullptr;

Shard& this_shard() {
  if (tl_shard == nullptr) {
    State& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.shards.push_back(std::make_unique<Shard>());
    tl_shard = s.shards.back().get();
  }
  return *tl_shard;
}

/// Power-of-two bucket of a sample: 0 -> 0, otherwise 1 + floor(log2(v)).
std::uint32_t bucket_of(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  const auto b = static_cast<std::uint32_t>(std::bit_width(value));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

const MetricInfo* find_metric(const State& s, std::string_view name) {
  for (const auto& m : s.metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void append_metric_text(std::string& out, const MetricValue& m) {
  out += m.name;
  out += ' ';
  out += std::to_string(m.value);
  if (m.kind == Kind::kHistogram) {
    out += " sum=";
    out += std::to_string(m.sum);
    out += " buckets=[";
    bool first = true;
    for (std::size_t b = 0; b < m.buckets.size(); ++b) {
      if (m.buckets[b] == 0) continue;
      if (!first) out += ',';
      first = false;
      out += std::to_string(b);
      out += ':';
      out += std::to_string(m.buckets[b]);
    }
    out += ']';
  }
  out += '\n';
}

}  // namespace

void Counter::add(std::uint64_t n) noexcept {
  if (slot_ == UINT32_MAX) return;
  this_shard().scalar[slot_].fetch_add(n, std::memory_order_relaxed);
}

void Gauge::update_max(std::uint64_t value) noexcept {
  if (slot_ == UINT32_MAX) return;
  // The cell is only ever written by its owning thread; a plain
  // read-compare-store is race-free and cheaper than a CAS loop.
  std::atomic<std::uint64_t>& cell = this_shard().scalar[slot_];
  if (value > cell.load(std::memory_order_relaxed)) {
    cell.store(value, std::memory_order_relaxed);
  }
}

void Histogram::observe(std::uint64_t value) noexcept {
  if (scalar_slot_ == UINT32_MAX) return;
  Shard& shard = this_shard();
  shard.scalar[scalar_slot_].fetch_add(1, std::memory_order_relaxed);
  HistCells& h = shard.hist[hist_slot_];
  h.sum.fetch_add(value, std::memory_order_relaxed);
  h.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

Counter Registry::counter(std::string_view name, Stability stability) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (const MetricInfo* existing = find_metric(s, name)) {
    return Counter(existing->kind == Kind::kCounter ? existing->scalar_slot
                                                    : UINT32_MAX);
  }
  if (s.next_scalar >= kMaxScalars) return Counter();  // inert: out of slots
  MetricInfo info;
  info.name = std::string(name);
  info.kind = Kind::kCounter;
  info.stability = stability;
  info.scalar_slot = s.next_scalar++;
  s.metrics.push_back(info);
  return Counter(info.scalar_slot);
}

Gauge Registry::gauge(std::string_view name) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (const MetricInfo* existing = find_metric(s, name)) {
    return Gauge(existing->kind == Kind::kGauge ? existing->scalar_slot
                                                : UINT32_MAX);
  }
  if (s.next_scalar >= kMaxScalars) return Gauge();
  MetricInfo info;
  info.name = std::string(name);
  info.kind = Kind::kGauge;
  // A high-water mark is a property of one particular interleaving.
  info.stability = Stability::kSchedulingDependent;
  info.scalar_slot = s.next_scalar++;
  s.metrics.push_back(info);
  return Gauge(info.scalar_slot);
}

Histogram Registry::histogram(std::string_view name, Stability stability) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (const MetricInfo* existing = find_metric(s, name)) {
    return existing->kind == Kind::kHistogram
               ? Histogram(existing->scalar_slot, existing->hist_slot)
               : Histogram();
  }
  if (s.next_scalar >= kMaxScalars || s.next_hist >= kMaxHistograms) {
    return Histogram();
  }
  MetricInfo info;
  info.name = std::string(name);
  info.kind = Kind::kHistogram;
  info.stability = stability;
  info.scalar_slot = s.next_scalar++;
  info.hist_slot = s.next_hist++;
  s.metrics.push_back(info);
  return Histogram(info.scalar_slot, info.hist_slot);
}

Snapshot Registry::snapshot() const {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  Snapshot snap;
  snap.metrics.reserve(s.metrics.size());
  for (const auto& info : s.metrics) {
    MetricValue m;
    m.name = info.name;
    m.kind = info.kind;
    m.stability = info.stability;
    if (info.kind == Kind::kHistogram) {
      m.buckets.assign(kHistogramBuckets, 0);
    }
    for (const auto& shard : s.shards) {
      const std::uint64_t cell =
          shard->scalar[info.scalar_slot].load(std::memory_order_relaxed);
      if (info.kind == Kind::kGauge) {
        m.value = std::max(m.value, cell);
      } else {
        m.value += cell;
      }
      if (info.kind == Kind::kHistogram) {
        const HistCells& h = shard->hist[info.hist_slot];
        m.sum += h.sum.load(std::memory_order_relaxed);
        for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
          m.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
        }
      }
    }
    while (!m.buckets.empty() && m.buckets.back() == 0) m.buckets.pop_back();
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return snap;
}

void Registry::reset() noexcept {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& shard : s.shards) {
    for (auto& cell : shard->scalar) cell.store(0, std::memory_order_relaxed);
    for (auto& h : shard->hist) {
      h.sum.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

Registry& registry() noexcept {
  static Registry* const r = new Registry();
  return *r;
}

std::string Snapshot::to_text(bool deterministic_only) const {
  std::string out;
  for (const auto& m : metrics) {
    if (deterministic_only && !m.deterministic()) continue;
    append_metric_text(out, m);
  }
  return out;
}

std::string Snapshot::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const auto& m : metrics) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"name\": \"";
    out += json_escape(m.name);
    out += "\", \"kind\": \"";
    out += m.kind == Kind::kCounter ? "counter"
           : m.kind == Kind::kGauge ? "gauge"
                                    : "histogram";
    out += "\", \"stability\": \"";
    out += m.deterministic() ? "deterministic" : "scheduling-dependent";
    out += "\", \"value\": ";
    out += std::to_string(m.value);
    if (m.kind == Kind::kHistogram) {
      out += ", \"sum\": ";
      out += std::to_string(m.sum);
      out += ", \"buckets\": [";
      for (std::size_t b = 0; b < m.buckets.size(); ++b) {
        if (b != 0) out += ',';
        out += std::to_string(m.buckets[b]);
      }
      out += ']';
    }
    out += '}';
  }
  out += "\n  ]";
  return out;
}

const MetricValue* Snapshot::find(std::string_view name) const noexcept {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace storsubsim::obs
