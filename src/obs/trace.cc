#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.h"

namespace storsubsim::obs {

namespace {

struct TraceEvent {
  const char* name;
  double start_seconds;
  double dur_seconds;
  std::uint32_t tid;
};

struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  // owned here, never freed
};

/// Leaked like the registry state: thread buffers must stay valid for any
/// thread that ever recorded, regardless of static destruction order.
TraceState& state() noexcept {
  static TraceState* const s = new TraceState();
  return *s;
}

thread_local ThreadBuffer* tl_buffer = nullptr;

ThreadBuffer& this_buffer() {
  if (tl_buffer == nullptr) {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<std::uint32_t>(s.buffers.size());
    s.buffers.push_back(std::move(buffer));
    tl_buffer = s.buffers.back().get();
  }
  return *tl_buffer;
}

void append_double(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  out += buf;
}

}  // namespace

void set_tracing_enabled(bool enabled) noexcept {
  state().enabled.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

void reset_trace() noexcept {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& buffer : s.buffers) buffer->events.clear();
}

std::size_t trace_event_count() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::size_t n = 0;
  for (const auto& buffer : s.buffers) n += buffer->events.size();
  return n;
}

std::uint32_t trace_thread_id() { return this_buffer().tid; }

namespace detail {

void record_span(const char* name, double start_seconds, double dur_seconds) {
  ThreadBuffer& buffer = this_buffer();
  if (buffer.events.capacity() == buffer.events.size()) {
    buffer.events.reserve(buffer.events.size() + 1024);
  }
  buffer.events.push_back(TraceEvent{name, start_seconds, dur_seconds, buffer.tid});
}

}  // namespace detail

std::string trace_json() {
  std::vector<TraceEvent> events;
  {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    std::size_t total = 0;
    for (const auto& buffer : s.buffers) total += buffer->events.size();
    events.reserve(total);
    for (const auto& buffer : s.buffers) {
      events.insert(events.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  // Stable order for diffable output: by start time, then thread, then name.
  std::sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_seconds != b.start_seconds) return a.start_seconds < b.start_seconds;
    if (a.tid != b.tid) return a.tid < b.tid;
    return std::strcmp(a.name, b.name) < 0;
  });

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "\n {\"name\": \"";
    out += json_escape(e.name);
    out += "\", \"cat\": \"storsim\", \"ph\": \"X\", \"ts\": ";
    append_double(out, e.start_seconds * 1e6);  // microseconds
    out += ", \"dur\": ";
    append_double(out, e.dur_seconds * 1e6);
    out += ", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool write_trace_json(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << trace_json();
  return static_cast<bool>(out);
}

}  // namespace storsubsim::obs
