// Minimal JSON support for the observability layer: an escaping helper for
// the writers (trace exporter, manifest, metric snapshots) and a small DOM
// parser used to validate what they emit (tests, run_checks manifest checks).
//
// The parser accepts strict RFC 8259 JSON — objects, arrays, strings with the
// standard escapes, numbers, true/false/null — with a nesting-depth cap so
// corrupt input cannot overflow the stack. It is a validation tool, not a
// performance path.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace storsubsim::obs {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included): ", \, and control characters become their escape sequences.
std::string json_escape(std::string_view text);

struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const noexcept { return type == Type::kObject; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool is_string() const noexcept { return type == Type::kString; }
  bool is_number() const noexcept { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const noexcept;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). On failure returns nullopt and, if `error` is given,
/// a message with the byte offset.
std::optional<JsonValue> parse_json(std::string_view text, std::string* error = nullptr);

}  // namespace storsubsim::obs
