// Process-wide metric registry: counters, high-water gauges, and power-of-two
// histograms with a lock-free fast path.
//
// Design (docs/OBSERVABILITY.md):
//  - Handles (Counter/Gauge/Histogram) are cheap value types holding a slot
//    index into fixed-size per-thread shards. Registration takes a mutex once;
//    every subsequent add() is a relaxed atomic on the calling thread's own
//    shard — no contention, no allocation, no fences on the hot path.
//  - snapshot() merges shards deterministically: counters sum, gauges take the
//    max, histogram buckets sum. Addition over unsigned integers is
//    commutative, so the merged values are independent of thread count and
//    scheduling — which is what lets the obs determinism test pin snapshots
//    across --threads 1/4/8.
//  - Metrics whose *values* depend on scheduling (queue depths, shard counts)
//    are registered Stability::kSchedulingDependent so deterministic views can
//    exclude them. Gauges are always scheduling-dependent.
//
// The registry never publishes timing; spans (obs/span.h) own the clock.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace storsubsim::obs {

/// Scalar metric slots available per thread shard (counters + gauges).
inline constexpr std::uint32_t kMaxScalars = 192;
/// Histogram slots available per thread shard.
inline constexpr std::uint32_t kMaxHistograms = 32;
/// Power-of-two buckets per histogram: bucket b counts values in
/// [2^(b-1), 2^b), bucket 0 counts zero.
inline constexpr std::uint32_t kHistogramBuckets = 64;

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

enum class Stability : std::uint8_t {
  /// Value is a pure function of (seed, scale, inputs) — identical at any
  /// thread count. The obs determinism test covers exactly these.
  kDeterministic,
  /// Value depends on scheduling or thread count (queue depths, shard
  /// fan-out); excluded from deterministic views.
  kSchedulingDependent,
};

/// Monotone event counter. Default-constructed handles are inert no-ops.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) noexcept;

 private:
  friend class Registry;
  explicit Counter(std::uint32_t slot) noexcept : slot_(slot) {}
  std::uint32_t slot_ = UINT32_MAX;
};

/// High-water-mark gauge (e.g. max queue depth). Always scheduling-dependent.
class Gauge {
 public:
  Gauge() = default;
  void update_max(std::uint64_t value) noexcept;

 private:
  friend class Registry;
  explicit Gauge(std::uint32_t slot) noexcept : slot_(slot) {}
  std::uint32_t slot_ = UINT32_MAX;
};

/// Power-of-two histogram of non-negative integer samples (bytes, rows, ...).
class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t value) noexcept;

 private:
  friend class Registry;
  Histogram(std::uint32_t scalar_slot, std::uint32_t hist_slot) noexcept
      : scalar_slot_(scalar_slot), hist_slot_(hist_slot) {}
  std::uint32_t scalar_slot_ = UINT32_MAX;  ///< observation count lives here
  std::uint32_t hist_slot_ = UINT32_MAX;
};

/// One merged metric in a snapshot.
struct MetricValue {
  std::string name;
  Kind kind = Kind::kCounter;
  Stability stability = Stability::kDeterministic;
  std::uint64_t value = 0;  ///< counter sum / gauge max / histogram count
  std::uint64_t sum = 0;    ///< histogram only: sum of observed samples
  std::vector<std::uint64_t> buckets;  ///< histogram only: trailing zeros trimmed

  bool deterministic() const noexcept {
    return stability == Stability::kDeterministic;
  }
};

/// Point-in-time merge of all shards, sorted by metric name.
struct Snapshot {
  std::vector<MetricValue> metrics;

  /// Human-readable listing (one metric per line). With
  /// `deterministic_only`, scheduling-dependent metrics are skipped — this is
  /// the view the determinism test pins across thread counts.
  std::string to_text(bool deterministic_only = false) const;
  /// JSON array for embedding in run manifests.
  std::string to_json() const;
  const MetricValue* find(std::string_view name) const noexcept;
};

/// The process-wide registry. Obtain via obs::registry().
class Registry {
 public:
  /// Registers (or finds) a metric by name. Re-registering an existing name
  /// returns the original handle; names are process-global. When slots are
  /// exhausted the returned handle is an inert no-op.
  Counter counter(std::string_view name,
                  Stability stability = Stability::kDeterministic);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name,
                      Stability stability = Stability::kDeterministic);

  Snapshot snapshot() const;

  /// Zeroes every shard cell (registrations survive). Test isolation only —
  /// concurrent adds during reset() land in an unspecified epoch.
  void reset() noexcept;

 private:
  Registry() = default;
  friend Registry& registry() noexcept;
};

/// The singleton. Never destroyed (worker threads may outlive static
/// destruction order), so handles stay valid for the process lifetime.
Registry& registry() noexcept;

}  // namespace storsubsim::obs
