// RAID recovery replay: from failure streams to data-loss and availability.
//
// The paper motivates its study with exactly this question: "accurate
// estimation of storage failure rate can help system designers decide how
// many resources should be used to tolerate failures and to meet certain
// service-level agreement (SLA) metrics (e.g., data availability)". This
// module replays a simulated failure history through per-group RAID state
// machines under a configurable recovery policy and reports what actually
// matters downstream: data-loss incidents, degraded time, and exposure
// windows — so policies (RAID4 vs RAID6, hot-spare counts, rebuild speed)
// can be compared under *correlated* failures rather than the classical
// independence math.
//
// Model:
//  * A disk failure makes the member unavailable from its occurrence until
//    its rebuild completes. Rebuild starts when the failure is detected AND
//    a hot spare is free in the owning system's pool; consumed spares are
//    restocked after a replenishment delay.
//  * Non-disk subsystem failures (interconnect/protocol/performance) make
//    the member unavailable transiently (retries, path loss, resets).
//  * A RAID4 group loses data when 2 members are concurrently unavailable;
//    RAID6 at 3. After a loss the group is restored (from backup) and
//    continues — losses are counted as incidents.
#pragma once

#include <array>
#include <cstdint>

#include "model/fleet.h"
#include "sim/simulator.h"

namespace storsubsim::sim {

struct RecoveryPolicy {
  /// Time to reconstruct one disk onto a spare once the rebuild starts.
  double rebuild_hours = 12.0;
  /// Hot spares per system (0 = order on demand: every rebuild waits for
  /// the replenishment delay).
  std::size_t hot_spares_per_system = 2;
  /// Restocking delay for a consumed spare (also the wait when the pool is
  /// empty).
  double spare_replenish_days = 3.0;
  /// How long a non-disk subsystem failure keeps the member unavailable.
  double transient_outage_hours = 1.0;
  /// Whether non-disk failures count toward concurrent-unavailability (set
  /// false for the classical disk-only analysis).
  bool count_transient_failures = true;
};

struct RecoveryResult {
  RecoveryPolicy policy;

  std::size_t groups = 0;
  double group_years = 0.0;

  /// Parity-defeating concurrency incidents, by RAID type of the group.
  std::size_t data_loss_events_raid4 = 0;
  std::size_t data_loss_events_raid6 = 0;

  /// Time any member of a group was unavailable (union over members).
  double degraded_group_hours = 0.0;
  /// Time a group ran with zero remaining redundancy (RAID4: >=1
  /// unavailable; RAID6: >=2) without having lost data yet.
  double zero_redundancy_hours = 0.0;

  /// Count of rebuilds that had to wait for a spare.
  std::size_t rebuilds_stalled_on_spares = 0;
  std::size_t rebuilds_total = 0;

  double data_loss_events_total() const {
    return static_cast<double>(data_loss_events_raid4 + data_loss_events_raid6);
  }
  /// Data-loss incidents per 1000 group-years (the fleet-level SLA number).
  double loss_rate_per_kilo_group_year() const {
    return group_years > 0.0 ? 1000.0 * data_loss_events_total() / group_years : 0.0;
  }
  /// Fraction of group time spent degraded.
  double degraded_fraction() const {
    return group_years > 0.0 ? degraded_group_hours / (group_years * 8766.0) : 0.0;
  }
};

/// Replays the simulation's failures through every RAID group. Deterministic
/// and read-only with respect to the fleet.
RecoveryResult replay_raid_recovery(const model::Fleet& fleet, const SimResult& result,
                                    const RecoveryPolicy& policy);

}  // namespace storsubsim::sim
