// The fleet failure simulator.
//
// Generates the four storage-subsystem failure types over the study horizon
// for every disk in a Fleet, according to the causal model in SimParams:
//
//   disk failures        per-slot renewal chains (base hazard x shelf badness
//                        x environment episodes x infant mortality), plus
//                        Hawkes-triggered follow-on failures on shelf-mates;
//                        failed disks are replaced after a repair delay.
//   physical interconnect shelf-level fault events (backplane/intra-shelf)
//                        and path-level fault events (HBA/cable); each fault
//                        makes a random subset of reachable disks "missing".
//                        Dual-path systems mask a fraction of path faults.
//   protocol             per-system base hazard modulated by driver-bug
//                        windows; events land on random disks of the system.
//   performance          per-shelf base hazard modulated by congestion
//                        windows.
//
// Failures are *detected* up to one scrub period after they occur; analysis
// sees detection times, as in the paper.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "model/enums.h"
#include "model/fleet.h"
#include "sim/params.h"
#include "stats/rng.h"

namespace storsubsim::sim {

struct SimFailure {
  double occur_time = 0.0;
  double detect_time = 0.0;
  model::DiskId disk;
  model::SystemId system;
  model::FailureType type = model::FailureType::kDisk;
};

struct SimCounters {
  std::array<std::size_t, 4> events_by_type{};
  std::size_t replacements = 0;
  std::size_t triggered_disk_failures = 0;
  std::size_t shelf_faults = 0;
  std::size_t path_faults = 0;
  std::size_t masked_path_faults = 0;

  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto c : events_by_type) n += c;
    return n;
  }
};

struct SimResult {
  /// All failures, sorted by detection time.
  std::vector<SimFailure> failures;
  SimCounters counters;
};

/// Global index offsets for the per-shelf/per-system RNG substream keys.
/// A chunked build hands the simulator a fleet whose dense ids are local to
/// the chunk; supplying the chunk's global bases here makes every substream
/// key match the monolithic run's, so a chunk simulates bit-identically to
/// the same slice of the whole-fleet simulation. The default (all zeros) is
/// the monolithic case.
struct SimIndexBases {
  std::uint64_t system = 0;
  std::uint64_t shelf = 0;
};

class Simulator {
 public:
  /// The simulator mutates `fleet` (disk replacements); `fleet` must outlive
  /// the simulator.
  Simulator(model::Fleet& fleet, SimParams params, SimIndexBases bases = {});

  /// Runs the whole horizon, fanning shelf- and system-scope processes out
  /// across util::thread_count() workers. Deterministic for a given fleet
  /// config/seed and params, and bit-identical for any thread count: every
  /// shelf/system draws from its own named RNG substream, shelves simulate
  /// against shelf-local occupancy overlays, and disk replacements are
  /// replayed against the fleet serially in shelf order. Call at most once
  /// per Simulator instance.
  SimResult run();

 private:
  struct ShelfContext;

  /// A disk replacement recorded during the parallel shelf phase, applied
  /// to the fleet later by the serial replay.
  struct PendingReplacement {
    double remove_time = 0.0;
    double install_time = 0.0;
    std::uint32_t slot = 0;
  };

  /// Everything one shelf's simulation produces: its failures (replacement
  /// disks identified by provisional ids) and its replacement log.
  struct ShelfOutcome {
    SimResult result;
    std::vector<PendingReplacement> replacements;
  };

  void simulate_shelf(std::uint32_t shelf_index, ShelfOutcome& out);
  void simulate_disk_failures(std::uint32_t shelf_index, ShelfContext& ctx, SimResult& result);
  void simulate_performance_failures(std::uint32_t shelf_index, ShelfContext& ctx,
                                     SimResult& result);
  void simulate_shelf_interconnect_faults(std::uint32_t shelf_index, ShelfContext& ctx,
                                          SimResult& result);
  void simulate_system_processes(std::uint32_t system_index, SimResult& result);

  double detection_time(double occur, stats::Rng& rng) const;
  /// Per-disk annualized physical-interconnect rate (fraction per year).
  double pi_rate_per_disk_year(const model::System& system) const;

  model::Fleet* fleet_;
  SimParams params_;
  stats::Rng root_;
  SimIndexBases bases_;
  bool ran_ = false;
};

/// Convenience: build a fleet from `config`, simulate it, return both.
struct FleetSimulation {
  model::Fleet fleet;
  SimResult result;
};

FleetSimulation simulate_fleet(const model::FleetConfig& config,
                               const SimParams& params = SimParams::standard());

}  // namespace storsubsim::sim
