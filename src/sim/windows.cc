#include "sim/windows.h"

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"

namespace storsubsim::sim {

std::vector<Window> generate_windows(const WindowProcess& process, double horizon,
                                     stats::Rng& rng) {
  std::vector<Window> windows;
  if (process.per_year <= 0.0 || process.multiplier == 1.0 ||
      process.mean_duration_seconds <= 0.0) {
    return windows;
  }
  const double rate = process.per_year / model::kSecondsPerYear;  // arrivals per second
  // LogNormal with the requested arithmetic mean: mu = ln(mean) - sigma^2/2.
  const double sigma = process.sigma_log;
  const stats::LogNormal duration(std::log(process.mean_duration_seconds) - 0.5 * sigma * sigma,
                                  sigma);
  double t = 0.0;
  double active_until = 0.0;
  while (true) {
    t += -std::log(rng.uniform_pos()) / rate;
    if (t >= horizon) break;
    if (t < active_until) continue;  // arrival inside an active window: skip
    const double d = duration.sample(rng);
    const double end = std::min(horizon, t + d);
    windows.push_back(Window{t, end, process.multiplier});
    active_until = end;
  }
  return windows;
}

double multiplier_at(std::span<const Window> windows, double t) {
  // Binary search for the last window starting at or before t.
  const auto it = std::upper_bound(windows.begin(), windows.end(), t,
                                   [](double x, const Window& w) { return x < w.start; });
  if (it == windows.begin()) return 1.0;
  const Window& w = *(it - 1);
  return (t < w.end) ? w.multiplier : 1.0;
}

ModulatedPoissonSampler::ModulatedPoissonSampler(double base_rate_per_second,
                                                 std::span<const Window> windows,
                                                 double horizon)
    : base_rate_(base_rate_per_second), windows_(windows), horizon_(horizon) {}

std::optional<double> ModulatedPoissonSampler::sample_after(double t, stats::Rng& rng) {
  if (base_rate_ <= 0.0 || t >= horizon_) return std::nullopt;
  // Advance the cursor past windows that ended before t.
  while (cursor_ < windows_.size() && windows_[cursor_].end <= t) ++cursor_;

  double target = -std::log(rng.uniform_pos());  // Exp(1) in integrated-hazard time
  double now = t;
  std::size_t cur = cursor_;
  while (now < horizon_) {
    // Determine the rate and the end of the current constant-rate segment.
    double rate = base_rate_;
    double segment_end = horizon_;
    if (cur < windows_.size()) {
      const Window& w = windows_[cur];
      if (now < w.start) {
        segment_end = std::min(segment_end, w.start);
      } else if (now < w.end) {
        rate = base_rate_ * w.multiplier;
        segment_end = std::min(segment_end, w.end);
      } else {
        ++cur;
        continue;
      }
    }
    const double capacity = rate * (segment_end - now);
    if (target <= capacity) {
      const double event = now + target / rate;
      cursor_ = cur;
      return event;
    }
    target -= capacity;
    now = segment_end;
    if (cur < windows_.size() && now >= windows_[cur].end) ++cur;
  }
  cursor_ = cur;
  return std::nullopt;
}

}  // namespace storsubsim::sim
