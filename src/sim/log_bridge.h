// Bridges simulator output to the AutoSupport-style log pipeline: renders
// every simulated failure as its full propagation chain (and the fleet as a
// configuration snapshot), completing the end-to-end path
//   simulate -> emit text logs -> parse -> classify -> analyze
// that mirrors how the paper's data was produced and consumed.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "log/line_writer.h"
#include "log/record.h"
#include "model/fleet.h"
#include "sim/precursors.h"
#include "sim/simulator.h"

namespace storsubsim::sim {

/// Appends the propagation-chain log lines for all failures, in detection
/// order, to a reusable text buffer — the pipeline hot path; per-failure
/// device address and serial are formatted on the stack, so steady-state
/// emission performs no allocation. Returns the number of lines written.
std::size_t write_failure_logs(log::LineWriter& out, const model::Fleet& fleet,
                               std::span<const SimFailure> failures);

/// Stream adapter over the buffer fast path (identical bytes).
std::size_t write_failure_logs(std::ostream& out, const model::Fleet& fleet,
                               std::span<const SimFailure> failures);

/// Renders the "adapter.target" device address used in log prose.
std::string device_address(const model::Fleet& fleet, model::DiskId disk);

/// Log message code used for a precursor kind (non-terminal: the failure
/// classifier ignores these records).
std::string_view code_for(PrecursorKind kind);

/// Inverse of `code_for`; nullopt for non-precursor codes.
std::optional<PrecursorKind> precursor_kind_of_code(std::string_view code);

/// Writes one log line per precursor event. Returns lines written.
std::size_t write_precursor_logs(std::ostream& out, const model::Fleet& fleet,
                                 std::span<const PrecursorEvent> events);

/// Recovers precursor events from parsed log records (the read side of
/// `write_precursor_logs`). Non-precursor records are skipped.
std::vector<PrecursorEvent> extract_precursors(std::span<const log::LogRecord> records);

}  // namespace storsubsim::sim
