// Simulation parameters: the generative failure model.
//
// Every knob here maps to a causal mechanism the paper identifies
// (Section 5.2.3 "Causes of Correlation"):
//
//  * Shelf badness (static Gamma multiplier) — shared cooling/temperature
//    environment makes some shelves persistently worse for the disks they
//    host; this produces disk-failure self-correlation (Finding 11) without
//    strong time-burstiness.
//  * Hawkes triggering — a disk failure slightly raises the short-term
//    failure probability of its shelf-mates (shared stress), adding the mild
//    temporal locality the paper observes for disk failures (Figure 9).
//  * Interconnect fault clusters — one physical fault (cable/HBA/backplane)
//    makes several disks "missing" at once; this is why physical
//    interconnect failures are the burstiest type.
//  * Driver-bug windows (per system) — drivers are updated around the same
//    time; a buggy version elevates protocol failures for weeks.
//  * Congestion windows (per shelf) — partial failures and recovery load
//    elevate performance failures for hours.
//
// Rates are expressed as annualized percentages per disk-year to match the
// paper's figures; the simulator converts to per-second hazards internally.
#pragma once

#include <array>
#include <cstdint>

#include "model/enums.h"
#include "model/time.h"

namespace storsubsim::sim {

/// An episodic modulation process: windows arrive Poisson at `per_year`
/// (per scope-year), last LogNormal(mean_duration_seconds, sigma_log), and
/// multiply the affected hazard by `multiplier` while active.
struct WindowProcess {
  double per_year = 0.0;
  double mean_duration_seconds = 0.0;
  double sigma_log = 0.5;
  double multiplier = 1.0;

  /// Long-run fraction of time spent inside windows.
  double duty_cycle() const {
    return per_year * mean_duration_seconds / model::kSecondsPerYear;
  }
  /// Long-run average multiplier; base rates are divided by this so the
  /// calibrated AFR is preserved.
  double average_multiplier() const { return 1.0 + duty_cycle() * (multiplier - 1.0); }
};

/// Clustered "incident" process: a fraction of a failure type's events come
/// from incidents that hit several disks in quick succession (firmware roll-
/// outs gone wrong, shelf-wide congestion), rather than from the isolated
/// background process. Incident event times are spread LogNormal around the
/// incident start.
struct IncidentProcess {
  /// Fraction of the type's calibrated rate delivered through incidents.
  double clustered_fraction = 0.0;
  /// Per-disk hit probability within the incident's primary scope.
  double hit_prob = 0.3;
  /// Per-disk hit probability for the rest of the system (protocol
  /// incidents: the driver update touches every shelf, one interacts badly).
  double secondary_hit_prob = 0.0;
  /// LogNormal spread of individual failure times after the incident start.
  double spread_mean_seconds = 2.0 * model::kSecondsPerHour;
  double spread_sigma_log = 1.0;
};

struct SimParams {
  // --- disk failures -------------------------------------------------------
  /// Shape of the per-shelf static badness multiplier B ~ Gamma(shape,
  /// 1/shape) (mean 1). Smaller shape = heavier shelf-to-shelf heterogeneity
  /// = stronger disk-failure self-correlation. factor ~ 1 + 1/shape.
  double shelf_badness_shape = 0.35;
  /// Probability that a disk failure triggers one follow-on failure on a
  /// shelf-mate (non-cascading branching).
  double hawkes_branching = 0.03;
  /// LogNormal parameters of the trigger delay.
  double hawkes_delay_mean_seconds = 1.0 * model::kSecondsPerDay;
  double hawkes_delay_sigma_log = 1.8;
  /// Shelf environment episodes (cooling degradation): multiply disk-failure
  /// hazard of all disks in the shelf.
  WindowProcess environment{0.2, 2.0 * model::kSecondsPerDay, 0.7, 6.0};
  /// Infant mortality: hazard multiplier during the first
  /// `infant_period_seconds` of a disk's life (1.0 = disabled; the default
  /// keeps the disk hazard time-homogeneous, which is what produces the
  /// paper's Gamma-distributed interarrivals).
  double infant_multiplier = 1.0;
  double infant_period_seconds = 90.0 * model::kSecondsPerDay;

  // --- physical interconnect failures -------------------------------------
  /// Probability that a shelf-level interconnect fault makes any given disk
  /// in the shelf go missing.
  double pi_cluster_prob_shelf = 0.14;
  /// Probability that a path-level (HBA/cable) fault affects any given disk
  /// in the system.
  double pi_cluster_prob_path = 0.07;
  /// Fraction of path-level faults masked by an independent second path
  /// (active/passive multipathing). The shelf/backplane portion of the
  /// hazard (ShelfModelInfo::backplane_fraction) is never maskable.
  double dual_path_masking = 0.667;
  /// Per-system-class multiplier on the interconnect hazard (calibrated so
  /// single-path PI AFR matches Figures 4, 6, 7).
  std::array<double, 4> pi_class_multiplier = {0.62, 1.08, 0.827, 0.968};

  // --- protocol failures ----------------------------------------------------
  /// Base annualized protocol-failure rate (percent per disk-year) by class;
  /// multiplied by the disk model's protocol_hazard_multiplier.
  std::array<double, 4> protocol_base_afr_pct = {0.38, 0.34, 0.35, 0.31};
  /// Driver-bug windows, scoped per system; modulate the isolated portion.
  WindowProcess driver{0.12, 14.0 * model::kSecondsPerDay, 0.6, 40.0};
  /// Driver-rollout incidents, scoped per system with a primary shelf.
  IncidentProcess protocol_incidents{0.55, 0.20, 0.03,
                                     8.0 * model::kSecondsPerHour, 1.0};

  // --- performance failures -------------------------------------------------
  std::array<double, 4> performance_base_afr_pct = {0.22, 0.42, 0.32, 0.032};
  /// Congestion/recovery windows, scoped per shelf; modulate the isolated
  /// portion.
  WindowProcess congestion{0.5, 8.0 * model::kSecondsPerHour, 0.8, 60.0};
  /// Shelf-overload incidents (several disks miss deadlines together).
  IncidentProcess performance_incidents{0.50, 0.20, 0.0,
                                        4.0 * model::kSecondsPerHour, 1.0};

  // --- detection & repair ---------------------------------------------------
  /// Hourly proactive scrub: detection lags occurrence by U(0, scrub].
  double scrub_period_seconds = model::kScrubPeriodSeconds;
  /// Failed disks are replaced after a LogNormal delay (logistics).
  double repair_delay_mean_seconds = 1.0 * model::kSecondsPerDay;
  double repair_delay_sigma_log = 0.8;

  /// Calibrated default parameter set.
  static SimParams standard() { return SimParams{}; }
};

}  // namespace storsubsim::sim
