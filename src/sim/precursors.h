// Component-error precursor generation.
//
// The support logs carry far more than RAID-layer failures: disk medium
// errors, Fibre Channel link resets, command timeouts (paper §2.5 lists
// them). These *component errors* do not break the I/O path by themselves,
// but their rate rises before many failures — which is exactly what makes
// the paper's proposed future work ("design storage failure prediction
// algorithms based on component errors") possible.
//
// This module generates a precursor-event stream consistent with a simulated
// failure history: a baseline noise rate per disk, plus pre-failure bursts
// in a lead window before each failure of the matching type. The stream is
// rendered into the text logs as non-terminal records (the classifier
// ignores them), and `core/prediction` consumes them to build and evaluate
// predictors.
#pragma once

#include <cstdint>
#include <vector>

#include "model/fleet.h"
#include "sim/simulator.h"

namespace storsubsim::sim {

enum class PrecursorKind : std::uint8_t {
  kMediumError,  ///< disk media sector error (precedes disk failures)
  kLinkReset,    ///< FC link instability (precedes interconnect failures)
  kCmdTimeout,   ///< slow command completion (precedes performance failures)
};

std::string_view to_string(PrecursorKind kind);

struct PrecursorEvent {
  double time = 0.0;
  model::DiskId disk;
  model::SystemId system;
  PrecursorKind kind = PrecursorKind::kMediumError;
};

/// Rates and burst shapes of the precursor processes.
struct PrecursorParams {
  /// Baseline noise, events per disk-year (healthy disks also log errors —
  /// this is what makes prediction nontrivial).
  double medium_error_noise_per_disk_year = 1.2;
  double link_reset_noise_per_disk_year = 0.5;
  double cmd_timeout_noise_per_disk_year = 0.8;

  /// Expected number of burst events emitted in the lead window before a
  /// failure of the matching type (Poisson-distributed per failure).
  double medium_errors_before_disk_failure = 9.0;
  double link_resets_before_interconnect_failure = 6.0;
  double timeouts_before_performance_failure = 7.0;

  /// Mean lead-window length before the failure (LogNormal spread).
  double disk_lead_mean_seconds = 10.0 * model::kSecondsPerDay;
  double interconnect_lead_mean_seconds = 1.0 * model::kSecondsPerDay;
  double performance_lead_mean_seconds = 2.0 * model::kSecondsPerDay;
  double lead_sigma_log = 0.7;

  /// Fraction of failures that announce themselves at all. Field studies
  /// (Pinheiro et al., FAST'07) find roughly half of disk failures give no
  /// SMART warning; sudden electronics deaths and firmware lockups emit
  /// nothing. The remainder are bolt-from-the-blue failures no component-
  /// error predictor can catch.
  double disk_predictable_fraction = 0.55;
  double interconnect_predictable_fraction = 0.75;
  double performance_predictable_fraction = 0.70;

  /// Benign error bursts on healthy disks (media scrubs surfacing a batch of
  /// remappable sectors, transient link flaps): these produce false alarms
  /// at any threshold, bounding achievable precision.
  double benign_burst_per_disk_year = 0.05;
  double benign_burst_mean_events = 5.0;
  double benign_burst_spread_seconds = 3.0 * model::kSecondsPerDay;

  static PrecursorParams standard() { return PrecursorParams{}; }
};

/// Generates the precursor stream for a completed simulation. Deterministic
/// given (fleet seed, failures, params). Events are sorted by time and only
/// occur while their disk is installed.
std::vector<PrecursorEvent> generate_precursors(const model::Fleet& fleet,
                                                const SimResult& result,
                                                const PrecursorParams& params);

}  // namespace storsubsim::sim
