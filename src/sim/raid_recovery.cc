#include "sim/raid_recovery.h"

#include <algorithm>
#include <map>
#include <queue>
#include <vector>

namespace storsubsim::sim {

namespace {

using model::FailureType;
using model::RaidType;

constexpr double kSecondsPerHour = 3600.0;

struct TaggedInterval {
  std::uint32_t slot_key;  // (shelf, slot) packed: distinguishes members
  double start;
  double end;
};

}  // namespace

RecoveryResult replay_raid_recovery(const model::Fleet& fleet, const SimResult& result,
                                    const RecoveryPolicy& policy) {
  RecoveryResult out;
  out.policy = policy;
  const double horizon = fleet.horizon_seconds();
  const double rebuild_s = policy.rebuild_hours * kSecondsPerHour;
  const double replenish_s = policy.spare_replenish_days * 24.0 * kSecondsPerHour;
  const double transient_s = policy.transient_outage_hours * kSecondsPerHour;

  out.groups = fleet.raid_groups().size();
  for (const auto& group : fleet.raid_groups()) {
    const double observed = horizon - fleet.system(group.system).deploy_time;
    if (observed > 0.0) out.group_years += model::years(observed);
  }

  // --- spare pools (min-heap of spare-available times, per system) ----------
  using SpareHeap = std::priority_queue<double, std::vector<double>, std::greater<double>>;
  std::vector<SpareHeap> spares(fleet.systems().size());
  if (policy.hot_spares_per_system > 0) {
    for (const auto& system : fleet.systems()) {
      for (std::size_t i = 0; i < policy.hot_spares_per_system; ++i) {
        spares[system.id.value()].push(system.deploy_time);
      }
    }
  }

  // --- turn failures into member-unavailability intervals -------------------
  // result.failures is sorted by detection time, which is the order the
  // spare pool serves rebuilds.
  // Ordered: the sweep below accumulates floating-point hour totals across
  // groups, so group visit order must be canonical, not a hash-table artifact.
  std::map<std::uint32_t, std::vector<TaggedInterval>> per_group;
  for (const auto& f : result.failures) {
    const auto& disk = fleet.disk(f.disk);
    if (!disk.raid_group.valid()) continue;
    const std::uint32_t slot_key = disk.shelf.value() * model::kShelfSlots + disk.slot;

    double start = f.occur_time;
    double end;
    if (f.type == FailureType::kDisk) {
      ++out.rebuilds_total;
      double rebuild_start;
      if (policy.hot_spares_per_system == 0) {
        rebuild_start = f.detect_time + replenish_s;  // ordered on demand
        ++out.rebuilds_stalled_on_spares;
      } else {
        auto& pool = spares[disk.system.value()];
        const double available = pool.top();
        pool.pop();
        rebuild_start = std::max(f.detect_time, available);
        if (rebuild_start > f.detect_time) ++out.rebuilds_stalled_on_spares;
        // The consumed spare's slot in the pool is restocked.
        pool.push(rebuild_start + replenish_s);
      }
      end = rebuild_start + rebuild_s;
    } else {
      if (!policy.count_transient_failures) continue;
      end = f.occur_time + transient_s;
    }
    per_group[disk.raid_group.value()].push_back(
        TaggedInterval{slot_key, start, std::min(end, horizon)});
  }

  // --- sweep each group's concurrency profile -------------------------------
  for (auto& [group_id, intervals] : per_group) {
    const auto& group = fleet.raid_group(model::RaidGroupId(group_id));
    const std::size_t parity = group.type == RaidType::kRaid6 ? 2 : 1;

    // Merge per-member first so a member never counts twice in the depth.
    std::sort(intervals.begin(), intervals.end(), [](const auto& a, const auto& b) {
      if (a.slot_key != b.slot_key) return a.slot_key < b.slot_key;
      return a.start < b.start;
    });
    struct Edge {
      double time;
      int delta;
    };
    std::vector<Edge> edges;
    edges.reserve(2 * intervals.size());
    std::size_t i = 0;
    while (i < intervals.size()) {
      double start = intervals[i].start;
      double end = intervals[i].end;
      std::size_t j = i + 1;
      while (j < intervals.size() && intervals[j].slot_key == intervals[i].slot_key &&
             intervals[j].start <= end) {
        end = std::max(end, intervals[j].end);
        ++j;
      }
      if (end > start) {
        edges.push_back(Edge{start, +1});
        edges.push_back(Edge{end, -1});
      }
      // Next disjoint interval of the same member, or the next member.
      i = j;
    }
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.delta < b.delta;  // close before open at the same instant
    });

    int depth = 0;
    double prev_time = 0.0;
    std::size_t losses = 0;
    for (const auto& edge : edges) {
      if (depth >= 1) out.degraded_group_hours += (edge.time - prev_time) / kSecondsPerHour;
      if (depth >= static_cast<int>(parity)) {
        out.zero_redundancy_hours += (edge.time - prev_time) / kSecondsPerHour;
      }
      const int new_depth = depth + edge.delta;
      if (edge.delta > 0 && new_depth == static_cast<int>(parity) + 1) {
        ++losses;  // one incident per exceedance transition
      }
      depth = new_depth;
      prev_time = edge.time;
    }
    if (group.type == RaidType::kRaid6) {
      out.data_loss_events_raid6 += losses;
    } else {
      out.data_loss_events_raid4 += losses;
    }
  }
  return out;
}

}  // namespace storsubsim::sim
