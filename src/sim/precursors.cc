#include "sim/precursors.h"

#include <algorithm>
#include <cmath>

#include "stats/distributions.h"

namespace storsubsim::sim {

namespace {

using model::DiskRecord;
using model::FailureType;
using stats::Rng;

PrecursorKind kind_for(FailureType type) {
  switch (type) {
    case FailureType::kDisk: return PrecursorKind::kMediumError;
    case FailureType::kPhysicalInterconnect: return PrecursorKind::kLinkReset;
    case FailureType::kPerformance: return PrecursorKind::kCmdTimeout;
    case FailureType::kProtocol: return PrecursorKind::kCmdTimeout;
  }
  return PrecursorKind::kMediumError;
}

}  // namespace

std::string_view to_string(PrecursorKind kind) {
  switch (kind) {
    case PrecursorKind::kMediumError: return "medium-error";
    case PrecursorKind::kLinkReset: return "link-reset";
    case PrecursorKind::kCmdTimeout: return "cmd-timeout";
  }
  return "unknown";
}

std::vector<PrecursorEvent> generate_precursors(const model::Fleet& fleet,
                                                const SimResult& result,
                                                const PrecursorParams& params) {
  std::vector<PrecursorEvent> events;
  Rng root = stats::make_root_rng(fleet.config().seed).stream("precursors");
  const double horizon = fleet.horizon_seconds();

  // --- baseline noise: homogeneous per installed disk record ----------------
  struct Noise {
    PrecursorKind kind;
    double per_year;
  };
  const Noise noise[3] = {
      {PrecursorKind::kMediumError, params.medium_error_noise_per_disk_year},
      {PrecursorKind::kLinkReset, params.link_reset_noise_per_disk_year},
      {PrecursorKind::kCmdTimeout, params.cmd_timeout_noise_per_disk_year},
  };
  for (const DiskRecord& disk : fleet.disks()) {
    const double start = std::max(0.0, disk.install_time);
    const double end = std::min(horizon, disk.remove_time);
    if (end <= start) continue;
    Rng rng = root.stream("noise", disk.id.value());
    for (const auto& n : noise) {
      if (n.per_year <= 0.0) continue;
      const double rate = n.per_year / model::kSecondsPerYear;
      double t = start;
      while (true) {
        t += -std::log(rng.uniform_pos()) / rate;
        if (t >= end) break;
        events.push_back(PrecursorEvent{t, disk.id, disk.system, n.kind});
      }
    }
  }

  // --- pre-failure bursts ----------------------------------------------------
  struct Burst {
    double expected_count;
    double lead_mean;
    double predictable_fraction;
  };
  auto burst_for = [&](FailureType type) -> Burst {
    switch (type) {
      case FailureType::kDisk:
        return {params.medium_errors_before_disk_failure, params.disk_lead_mean_seconds,
                params.disk_predictable_fraction};
      case FailureType::kPhysicalInterconnect:
        return {params.link_resets_before_interconnect_failure,
                params.interconnect_lead_mean_seconds,
                params.interconnect_predictable_fraction};
      case FailureType::kPerformance:
        return {params.timeouts_before_performance_failure,
                params.performance_lead_mean_seconds,
                params.performance_predictable_fraction};
      case FailureType::kProtocol:
        // Protocol failures are software/firmware incompatibilities; the
        // paper gives no component-error precursor for them, and having one
        // unpredictable type keeps the evaluation honest.
        return {0.0, 1.0, 0.0};
    }
    return {0.0, 1.0, 0.0};
  };

  std::uint64_t failure_index = 0;
  for (const SimFailure& f : result.failures) {
    const Burst burst = burst_for(f.type);
    ++failure_index;
    if (burst.expected_count <= 0.0) continue;
    Rng rng = root.stream("burst", failure_index);
    // Bolt-from-the-blue failures emit no warning at all.
    if (!rng.bernoulli(burst.predictable_fraction)) continue;
    const double sigma = params.lead_sigma_log;
    const stats::LogNormal lead_dist(std::log(burst.lead_mean) - 0.5 * sigma * sigma, sigma);
    const double lead = lead_dist.sample(rng);
    const auto count = stats::Poisson(burst.expected_count).sample(rng);
    const auto& disk = fleet.disk(f.disk);
    for (std::uint64_t i = 0; i < count; ++i) {
      // Error density rises toward the failure: sample the offset as
      // lead * u^2 before the occurrence time.
      const double u = rng.uniform();
      const double t = f.occur_time - lead * u * u;
      if (t < 0.0 || t >= horizon) continue;
      if (!disk.installed_at(t)) continue;
      events.push_back(PrecursorEvent{t, f.disk, f.system, kind_for(f.type)});
    }
  }

  // --- benign bursts on healthy disks ----------------------------------------
  if (params.benign_burst_per_disk_year > 0.0) {
    const double burst_rate = params.benign_burst_per_disk_year / model::kSecondsPerYear;
    for (const DiskRecord& disk : fleet.disks()) {
      const double start = std::max(0.0, disk.install_time);
      const double end = std::min(horizon, disk.remove_time);
      if (end <= start) continue;
      Rng rng = root.stream("benign", disk.id.value());
      double t = start;
      while (true) {
        t += -std::log(rng.uniform_pos()) / burst_rate;
        if (t >= end) break;
        const auto count = stats::Poisson(params.benign_burst_mean_events).sample(rng);
        // Most benign bursts are media-scrub batches; the rest transient
        // link/latency flaps.
        const double kind_pick = rng.uniform();
        const PrecursorKind kind = kind_pick < 0.5   ? PrecursorKind::kMediumError
                                   : kind_pick < 0.75 ? PrecursorKind::kLinkReset
                                                      : PrecursorKind::kCmdTimeout;
        for (std::uint64_t i = 0; i < count; ++i) {
          const double when = t + rng.uniform() * params.benign_burst_spread_seconds;
          if (when >= end) continue;
          events.push_back(PrecursorEvent{when, disk.id, disk.system, kind});
        }
      }
    }
  }

  std::sort(events.begin(), events.end(), [](const PrecursorEvent& a, const PrecursorEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.disk < b.disk;
  });
  return events;
}

}  // namespace storsubsim::sim
