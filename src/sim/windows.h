// Episodic modulation windows and piecewise-constant-rate event sampling.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sim/params.h"
#include "stats/rng.h"

namespace storsubsim::sim {

/// A half-open interval [start, end) during which a hazard is multiplied.
struct Window {
  double start = 0.0;
  double end = 0.0;
  double multiplier = 1.0;
};

/// Generates non-overlapping windows over [0, horizon): arrivals Poisson at
/// process.per_year, durations LogNormal with the given mean; an arrival
/// inside an active window is skipped. Sorted by start.
std::vector<Window> generate_windows(const WindowProcess& process, double horizon,
                                     stats::Rng& rng);

/// The hazard multiplier active at time t (1.0 outside windows).
double multiplier_at(std::span<const Window> windows, double t);

/// Samples events of a Poisson process whose rate is
/// base_rate * multiplier(t), where multiplier comes from `windows`.
///
/// `sample_after(t)` returns the first event strictly after t, or nullopt if
/// none occurs before `horizon`. Calls must be made with non-decreasing `t`
/// (the sampler keeps a window cursor); construct a fresh sampler to rewind.
class ModulatedPoissonSampler {
 public:
  ModulatedPoissonSampler(double base_rate_per_second, std::span<const Window> windows,
                          double horizon);

  std::optional<double> sample_after(double t, stats::Rng& rng);

  double base_rate() const { return base_rate_; }

  /// Re-targets the base rate (e.g. when a scope's population changes).
  void set_base_rate(double base_rate_per_second) { base_rate_ = base_rate_per_second; }

 private:
  double base_rate_;
  std::span<const Window> windows_;
  double horizon_;
  std::size_t cursor_ = 0;
};

}  // namespace storsubsim::sim
