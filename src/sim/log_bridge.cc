#include "sim/log_bridge.h"

#include <charconv>
#include <ostream>
#include <string>

#include "log/codes.h"
#include "log/emitter.h"
#include "obs/obs.h"

namespace storsubsim::sim {

namespace {

/// Formats "adapter.target" into a caller-provided stack buffer and returns
/// the written view (two u32s and a dot always fit in 24 bytes).
std::string_view format_device_address(const model::Fleet& fleet, model::DiskId disk,
                                       std::span<char> buf) {
  const auto& record = fleet.disk(disk);
  const auto& shelf = fleet.shelf(record.shelf);
  // FC loop addressing flavor: adapter number from the shelf's position in
  // the system, target offset by 16 as in the paper's "8.24" example.
  char* p = buf.data();
  char* const end = buf.data() + buf.size();
  p = std::to_chars(p, end, shelf.index_in_system + 1).ptr;
  *p++ = '.';
  p = std::to_chars(p, end, record.slot + 16).ptr;
  return std::string_view(buf.data(), static_cast<std::size_t>(p - buf.data()));
}

}  // namespace

std::string device_address(const model::Fleet& fleet, model::DiskId disk) {
  char buf[24];
  return std::string(format_device_address(fleet, disk, buf));
}

std::size_t write_failure_logs(log::LineWriter& out, const model::Fleet& fleet,
                               std::span<const SimFailure> failures) {
  std::size_t lines = 0;
  char dev_buf[24];
  for (const auto& f : failures) {
    storsubsim::log::FailureLineInput input;
    input.detect_time = f.detect_time;
    input.type = f.type;
    input.disk = f.disk;
    input.system = f.system;
    input.device_address = format_device_address(fleet, f.disk, dev_buf);
    const auto serial = model::serial_chars(f.disk);
    input.serial = std::string_view(serial.data(), serial.size());
    lines += storsubsim::log::emit_chain(out, input);
  }
  STORSIM_OBS_COUNTER(c_chains, "log.emit.chains",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_chains, failures.size());
  STORSIM_OBS_COUNTER(c_lines, "log.emit.lines",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_lines, lines);
  return lines;
}

std::size_t write_failure_logs(std::ostream& out, const model::Fleet& fleet,
                               std::span<const SimFailure> failures) {
  log::LineWriter buf;
  const std::size_t lines = write_failure_logs(buf, fleet, failures);
  out << buf.view();
  return lines;
}

std::string_view code_for(PrecursorKind kind) {
  switch (kind) {
    case PrecursorKind::kMediumError:
      return storsubsim::log::code_name(storsubsim::log::EventCode::kDiskIoMediumError);
    case PrecursorKind::kLinkReset:
      return storsubsim::log::code_name(storsubsim::log::EventCode::kFciLinkReset);
    case PrecursorKind::kCmdTimeout:
      return storsubsim::log::code_name(storsubsim::log::EventCode::kScsiSlowCompletion);
  }
  return "unknown";
}

std::optional<PrecursorKind> precursor_kind_of_code(std::string_view code) {
  for (const auto kind : {PrecursorKind::kMediumError, PrecursorKind::kLinkReset,
                          PrecursorKind::kCmdTimeout}) {
    if (code == code_for(kind)) return kind;
  }
  return std::nullopt;
}

std::size_t write_precursor_logs(std::ostream& out, const model::Fleet& fleet,
                                 std::span<const PrecursorEvent> events) {
  storsubsim::log::LogEmitter emitter(out);
  for (const auto& e : events) {
    storsubsim::log::LogRecord record;
    record.time = e.time;
    record.code = std::string(code_for(e.kind));
    record.severity = e.kind == PrecursorKind::kCmdTimeout
                          ? storsubsim::log::Severity::kWarning
                          : storsubsim::log::Severity::kError;
    record.disk = e.disk;
    record.system = e.system;
    const std::string dev = device_address(fleet, e.disk);
    switch (e.kind) {
      case PrecursorKind::kMediumError:
        record.message = "Device " + dev + ": medium error, sector remapped.";
        break;
      case PrecursorKind::kLinkReset:
        record.message = "Device " + dev + ": Fibre Channel link reset.";
        break;
      case PrecursorKind::kCmdTimeout:
        record.message = "Device " + dev + ": command completion exceeded threshold.";
        break;
    }
    emitter.emit(record);
  }
  return emitter.lines_written();
}

std::vector<PrecursorEvent> extract_precursors(std::span<const log::LogRecord> records) {
  std::vector<PrecursorEvent> out;
  for (const auto& r : records) {
    const auto kind = precursor_kind_of_code(r.code);
    if (!kind || !r.disk.valid()) continue;
    out.push_back(PrecursorEvent{r.time, r.disk, r.system, *kind});
  }
  return out;
}

}  // namespace storsubsim::sim
