#include "sim/log_bridge.h"

#include <ostream>
#include <string>

#include "log/emitter.h"

namespace storsubsim::sim {

std::string device_address(const model::Fleet& fleet, model::DiskId disk) {
  const auto& record = fleet.disk(disk);
  const auto& shelf = fleet.shelf(record.shelf);
  // FC loop addressing flavor: adapter number from the shelf's position in
  // the system, target offset by 16 as in the paper's "8.24" example.
  return std::to_string(shelf.index_in_system + 1) + "." + std::to_string(record.slot + 16);
}

std::size_t write_failure_logs(std::ostream& out, const model::Fleet& fleet,
                               std::span<const SimFailure> failures) {
  storsubsim::log::LogEmitter emitter(out);
  for (const auto& f : failures) {
    storsubsim::log::EmittableFailure e;
    e.detect_time = f.detect_time;
    e.type = f.type;
    e.disk = f.disk;
    e.system = f.system;
    e.device_address = device_address(fleet, f.disk);
    e.serial = model::serial_for(f.disk);
    emitter.emit(e);
  }
  return emitter.lines_written();
}

std::string_view code_for(PrecursorKind kind) {
  switch (kind) {
    case PrecursorKind::kMediumError: return "disk.ioMediumError";
    case PrecursorKind::kLinkReset: return "fci.link.reset";
    case PrecursorKind::kCmdTimeout: return "scsi.cmd.slowCompletion";
  }
  return "unknown";
}

std::optional<PrecursorKind> precursor_kind_of_code(std::string_view code) {
  for (const auto kind : {PrecursorKind::kMediumError, PrecursorKind::kLinkReset,
                          PrecursorKind::kCmdTimeout}) {
    if (code == code_for(kind)) return kind;
  }
  return std::nullopt;
}

std::size_t write_precursor_logs(std::ostream& out, const model::Fleet& fleet,
                                 std::span<const PrecursorEvent> events) {
  storsubsim::log::LogEmitter emitter(out);
  for (const auto& e : events) {
    storsubsim::log::LogRecord record;
    record.time = e.time;
    record.code = std::string(code_for(e.kind));
    record.severity = e.kind == PrecursorKind::kCmdTimeout
                          ? storsubsim::log::Severity::kWarning
                          : storsubsim::log::Severity::kError;
    record.disk = e.disk;
    record.system = e.system;
    const std::string dev = device_address(fleet, e.disk);
    switch (e.kind) {
      case PrecursorKind::kMediumError:
        record.message = "Device " + dev + ": medium error, sector remapped.";
        break;
      case PrecursorKind::kLinkReset:
        record.message = "Device " + dev + ": Fibre Channel link reset.";
        break;
      case PrecursorKind::kCmdTimeout:
        record.message = "Device " + dev + ": command completion exceeded threshold.";
        break;
    }
    emitter.emit(record);
  }
  return emitter.lines_written();
}

std::vector<PrecursorEvent> extract_precursors(std::span<const log::LogRecord> records) {
  std::vector<PrecursorEvent> out;
  for (const auto& r : records) {
    const auto kind = precursor_kind_of_code(r.code);
    if (!kind || !r.disk.valid()) continue;
    out.push_back(PrecursorEvent{r.time, r.disk, r.system, *kind});
  }
  return out;
}

}  // namespace storsubsim::sim
