#include "sim/simulator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "obs/obs.h"
#include "sim/windows.h"
#include "stats/distributions.h"
#include "util/parallel.h"

namespace storsubsim::sim {

namespace {

using model::DiskId;
using model::DiskRecord;
using model::FailureType;
using model::Shelf;
using model::SlotRef;
using model::System;
using stats::Rng;

constexpr double kPctPerYearToPerSecond = 0.01 / model::kSecondsPerYear;

// Replacement disks created during the parallel shelf phase carry a
// provisional id (high bit set, low bits = index into the shelf's
// replacement log) until the serial replay assigns the real fleet-wide id.
constexpr std::uint32_t kProvisionalBit = 0x80000000u;

/// Samples a LogNormal with the given arithmetic mean and log-sigma.
double sample_lognormal_mean(double mean, double sigma, Rng& rng) {
  const stats::LogNormal d(std::log(mean) - 0.5 * sigma * sigma, sigma);
  return d.sample(rng);
}

void accumulate(SimCounters& into, const SimCounters& from) {
  for (std::size_t i = 0; i < into.events_by_type.size(); ++i) {
    into.events_by_type[i] += from.events_by_type[i];
  }
  into.replacements += from.replacements;
  into.triggered_disk_failures += from.triggered_disk_failures;
  into.shelf_faults += from.shelf_faults;
  into.path_faults += from.path_faults;
  into.masked_path_faults += from.masked_path_faults;
}

}  // namespace

// Per-shelf simulation state, including a shelf-local occupancy overlay so
// the shelf phase never mutates the shared Fleet. Each slot keeps its full
// tenure chain: the initial disk followed by provisional replacement disks.
struct Simulator::ShelfContext {
  struct SlotEntry {
    DiskId id;
    double install_time = 0.0;
    double remove_time = std::numeric_limits<double>::infinity();
  };

  Rng rng;
  double badness = 1.0;
  std::vector<Window> env_windows;
  std::vector<std::uint32_t> occupied_slots;  // slot indices with a disk
  std::array<std::vector<SlotEntry>, model::kShelfSlots> chains;
  std::vector<PendingReplacement>* replacements = nullptr;

  const SlotEntry& current(std::uint32_t slot) const { return chains[slot].back(); }

  /// Shelf-local mirror of Fleet::occupant_at.
  DiskId occupant_at(std::uint32_t slot, double t) const {
    const auto& chain = chains[slot];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (t >= it->install_time) return t < it->remove_time ? it->id : DiskId{};
    }
    return DiskId{};
  }

  /// Shelf-local mirror of Fleet::replace_disk: retires the slot's current
  /// occupant and installs a provisional fresh disk.
  DiskId replace(std::uint32_t slot, double remove_time, double install_time) {
    chains[slot].back().remove_time = remove_time;
    const DiskId id(kProvisionalBit | static_cast<std::uint32_t>(replacements->size()));
    replacements->push_back(PendingReplacement{remove_time, install_time, slot});
    chains[slot].push_back(SlotEntry{id, install_time,
                                     std::numeric_limits<double>::infinity()});
    return id;
  }
};

Simulator::Simulator(model::Fleet& fleet, SimParams params, SimIndexBases bases)
    : fleet_(&fleet),
      params_(params),
      root_(stats::make_root_rng(fleet.config().seed).stream("simulator")),
      bases_(bases) {}

double Simulator::detection_time(double occur, Rng& rng) const {
  return occur + rng.uniform_pos() * params_.scrub_period_seconds;
}

double Simulator::pi_rate_per_disk_year(const System& system) const {
  const auto& shelf_info = fleet_->shelf_models().at(system.shelf_model);
  const double quirk = shelf_info.quirk_multiplier(system.disk_model.family,
                                                   system.disk_model.capacity_index);
  const double class_mult = params_.pi_class_multiplier[model::index_of(system.cls)];
  return shelf_info.interconnect_afr_pct * 0.01 * quirk * class_mult;
}

void Simulator::simulate_disk_failures(std::uint32_t shelf_index, ShelfContext& ctx,
                                       SimResult& result) {
  const Shelf& shelf = fleet_->shelf(model::ShelfId(shelf_index));
  if (ctx.occupied_slots.empty()) return;
  const System& system = fleet_->system(shelf.system);
  const double horizon = fleet_->horizon_seconds();

  const auto& disk_info = fleet_->disk_models().at(system.disk_model);
  // Base natural-failure hazard: calibrated AFR, corrected for the Hawkes
  // branching fraction and the environment process's average multiplier so
  // the long-run rate matches the calibration.
  const double beta = params_.hawkes_branching;
  const double base_rate = disk_info.disk_afr_pct * kPctPerYearToPerSecond * ctx.badness /
                           ((1.0 + beta) * params_.environment.average_multiplier());
  const double max_mult = std::max(1.0, params_.environment.multiplier) *
                          std::max(1.0, params_.infant_multiplier);
  const double lambda_max = base_rate * max_mult;
  if (lambda_max <= 0.0) return;

  struct Event {
    double time;
    std::uint32_t slot;
    std::uint32_t generation;
    bool triggered;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const { return a.time > b.time; }
  };
  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  std::vector<std::uint32_t> slot_generation(model::kShelfSlots, 0);

  Rng rng = ctx.rng.stream("disk-chain", bases_.shelf + shelf_index);

  auto propose_next = [&](std::uint32_t slot, double after, std::uint32_t gen) {
    const double t = after - std::log(rng.uniform_pos()) / lambda_max;
    if (t < horizon) queue.push(Event{t, slot, gen, false});
  };

  for (const std::uint32_t slot : ctx.occupied_slots) {
    propose_next(slot, ctx.current(slot).install_time, 0);
  }

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    if (!ev.triggered && ev.generation != slot_generation[ev.slot]) continue;  // stale chain

    const ShelfContext::SlotEntry occupant = ctx.current(ev.slot);
    const bool occupant_installed =
        ev.time >= occupant.install_time && ev.time < occupant.remove_time;

    bool fails;
    if (ev.triggered) {
      // Triggered failures hit whichever disk is present; during a repair
      // gap the stress dissipates harmlessly.
      if (!occupant_installed) continue;
      fails = true;
      ++result.counters.triggered_disk_failures;
    } else {
      // Thinning acceptance for the natural chain.
      const double env_mult = multiplier_at(ctx.env_windows, ev.time);
      const double infant_mult =
          (ev.time - occupant.install_time < params_.infant_period_seconds)
              ? params_.infant_multiplier
              : 1.0;
      const double actual = base_rate * env_mult * infant_mult;
      fails = rng.uniform() < actual / lambda_max;
      if (!fails) {
        propose_next(ev.slot, ev.time, ev.generation);
        continue;
      }
    }

    if (fails) {
      const double detect = detection_time(ev.time, rng);
      result.failures.push_back(
          SimFailure{ev.time, detect, occupant.id, shelf.system, FailureType::kDisk});
      ++result.counters.events_by_type[model::index_of(FailureType::kDisk)];

      // Replacement: the admin pulls the disk at detection; a fresh disk
      // arrives after the repair delay.
      const double install = detect + sample_lognormal_mean(params_.repair_delay_mean_seconds,
                                                            params_.repair_delay_sigma_log, rng);
      ctx.replace(ev.slot, detect, install);
      ++result.counters.replacements;
      const std::uint32_t gen = ++slot_generation[ev.slot];
      propose_next(ev.slot, install, gen);

      // Hawkes branching: shared stress may claim a shelf-mate shortly.
      if (ctx.occupied_slots.size() > 1 && rng.bernoulli(beta)) {
        std::uint32_t target = ev.slot;
        while (target == ev.slot) {
          target = ctx.occupied_slots[static_cast<std::size_t>(
              rng.below(ctx.occupied_slots.size()))];
        }
        const double delay = sample_lognormal_mean(params_.hawkes_delay_mean_seconds,
                                                   params_.hawkes_delay_sigma_log, rng);
        if (ev.time + delay < horizon) {
          queue.push(Event{ev.time + delay, target, 0, true});
        }
      }
    }
  }
}

void Simulator::simulate_performance_failures(std::uint32_t shelf_index, ShelfContext& ctx,
                                              SimResult& result) {
  const Shelf& shelf = fleet_->shelf(model::ShelfId(shelf_index));
  if (ctx.occupied_slots.empty()) return;
  const System& system = fleet_->system(shelf.system);
  const double horizon = fleet_->horizon_seconds();

  const auto& disk_info = fleet_->disk_models().at(system.disk_model);
  const IncidentProcess& inc = params_.performance_incidents;
  const double per_disk = params_.performance_base_afr_pct[model::index_of(system.cls)] *
                          kPctPerYearToPerSecond * disk_info.performance_hazard_multiplier;
  const double isolated_rate =
      per_disk * (1.0 - inc.clustered_fraction) / params_.congestion.average_multiplier();

  Rng rng = ctx.rng.stream("perf", bases_.shelf + shelf_index);

  // Isolated background, modulated by congestion windows.
  const std::vector<Window> windows = generate_windows(params_.congestion, horizon, rng);
  ModulatedPoissonSampler sampler(
      isolated_rate * static_cast<double>(ctx.occupied_slots.size()), windows, horizon);
  double t = system.deploy_time;
  while (auto next = sampler.sample_after(t, rng)) {
    t = *next;
    const std::uint32_t slot = ctx.occupied_slots[static_cast<std::size_t>(
        rng.below(ctx.occupied_slots.size()))];
    const DiskId victim = ctx.occupant_at(slot, t);
    if (!victim.valid()) continue;  // repair gap
    result.failures.push_back(SimFailure{t, detection_time(t, rng), victim, shelf.system,
                                         FailureType::kPerformance});
    ++result.counters.events_by_type[model::index_of(FailureType::kPerformance)];
  }

  // Shelf-overload incidents: several disks of the shelf miss service
  // deadlines around the same time.
  if (inc.clustered_fraction > 0.0 && inc.hit_prob > 0.0) {
    const double incident_rate =
        per_disk * inc.clustered_fraction / inc.hit_prob;  // per shelf-second
    t = system.deploy_time;
    while (true) {
      t += -std::log(rng.uniform_pos()) / incident_rate;
      if (t >= horizon) break;
      for (const std::uint32_t slot : ctx.occupied_slots) {
        if (!rng.bernoulli(inc.hit_prob)) continue;
        const double when =
            t + sample_lognormal_mean(inc.spread_mean_seconds, inc.spread_sigma_log, rng);
        if (when >= horizon) continue;
        const DiskId victim = ctx.occupant_at(slot, when);
        if (!victim.valid()) continue;
        result.failures.push_back(SimFailure{when, detection_time(when, rng), victim,
                                             shelf.system, FailureType::kPerformance});
        ++result.counters.events_by_type[model::index_of(FailureType::kPerformance)];
      }
    }
  }
}

void Simulator::simulate_shelf_interconnect_faults(std::uint32_t shelf_index, ShelfContext& ctx,
                                                   SimResult& result) {
  const Shelf& shelf = fleet_->shelf(model::ShelfId(shelf_index));
  if (ctx.occupied_slots.empty()) return;
  const System& system = fleet_->system(shelf.system);
  const double horizon = fleet_->horizon_seconds();

  const auto& shelf_info = fleet_->shelf_models().at(system.shelf_model);
  const double r_pi = pi_rate_per_disk_year(system);  // fraction per disk-year
  const double q = params_.pi_cluster_prob_shelf;
  // Shelf-level (backplane/intra-shelf) fault rate, per shelf-second, chosen
  // so each hosted disk sees backplane_fraction * r_pi per year. With
  // clustering disabled (q == 0) each fault takes out exactly one disk.
  const double n_occ = static_cast<double>(ctx.occupied_slots.size());
  const double fault_rate = shelf_info.backplane_fraction * r_pi /
                            ((q > 0.0 ? q : 1.0 / n_occ) * model::kSecondsPerYear);
  if (fault_rate <= 0.0) return;

  Rng rng = ctx.rng.stream("pi-shelf", bases_.shelf + shelf_index);
  double t = system.deploy_time;
  while (true) {
    t += -std::log(rng.uniform_pos()) / fault_rate;
    if (t >= horizon) break;
    ++result.counters.shelf_faults;
    auto hit = [&](std::uint32_t slot) {
      const DiskId victim = ctx.occupant_at(slot, t);
      if (!victim.valid()) return;
      result.failures.push_back(SimFailure{t, detection_time(t, rng), victim, shelf.system,
                                           FailureType::kPhysicalInterconnect});
      ++result.counters.events_by_type[model::index_of(FailureType::kPhysicalInterconnect)];
    };
    if (q <= 0.0) {
      hit(ctx.occupied_slots[static_cast<std::size_t>(rng.below(ctx.occupied_slots.size()))]);
      continue;
    }
    for (const std::uint32_t slot : ctx.occupied_slots) {
      if (rng.bernoulli(q)) hit(slot);
    }
  }
}

void Simulator::simulate_shelf(std::uint32_t shelf_index, ShelfOutcome& out) {
  const Shelf& shelf = fleet_->shelf(model::ShelfId(shelf_index));
  const stats::Gamma badness_dist(params_.shelf_badness_shape,
                                  1.0 / params_.shelf_badness_shape);

  ShelfContext ctx;
  ctx.rng = root_.stream("shelf", bases_.shelf + shelf_index);
  ctx.badness = badness_dist.sample(ctx.rng);
  ctx.env_windows = generate_windows(params_.environment, fleet_->horizon_seconds(), ctx.rng);
  ctx.occupied_slots.reserve(shelf.occupied_slots);
  ctx.replacements = &out.replacements;
  for (std::uint32_t s = 0; s < shelf.occupied_slots; ++s) {
    ctx.occupied_slots.push_back(s);
    ctx.chains[s].push_back(ShelfContext::SlotEntry{
        shelf.slots[s], fleet_->disk(shelf.slots[s]).install_time,
        std::numeric_limits<double>::infinity()});
  }

  // Order matters only for determinism, not correctness: disk failures
  // first (they perform replacements), then the slot-assignment processes
  // which look occupants up by time.
  simulate_disk_failures(shelf_index, ctx, out.result);
  simulate_performance_failures(shelf_index, ctx, out.result);
  simulate_shelf_interconnect_faults(shelf_index, ctx, out.result);
}

void Simulator::simulate_system_processes(std::uint32_t system_index, SimResult& result) {
  const System& system = fleet_->system(model::SystemId(system_index));
  const double horizon = fleet_->horizon_seconds();

  // Collect the system's occupied slots once.
  std::vector<SlotRef> slots;
  for (const auto shelf_id : system.shelves) {
    const Shelf& shelf = fleet_->shelf(shelf_id);
    for (std::uint32_t s = 0; s < shelf.occupied_slots; ++s) {
      slots.push_back(SlotRef{shelf_id, s});
    }
  }
  if (slots.empty()) return;

  const auto& disk_info = fleet_->disk_models().at(system.disk_model);
  const auto& shelf_info = fleet_->shelf_models().at(system.shelf_model);

  // --- protocol failures ----------------------------------------------------
  {
    Rng rng = root_.stream("sys-proto", bases_.system + system_index);
    const IncidentProcess& inc = params_.protocol_incidents;
    const double per_disk = params_.protocol_base_afr_pct[model::index_of(system.cls)] *
                            kPctPerYearToPerSecond * disk_info.protocol_hazard_multiplier;

    // Isolated background, modulated by driver-bug windows.
    const std::vector<Window> windows = generate_windows(params_.driver, horizon, rng);
    const double isolated_rate =
        per_disk * (1.0 - inc.clustered_fraction) / params_.driver.average_multiplier();
    ModulatedPoissonSampler sampler(isolated_rate * static_cast<double>(slots.size()),
                                    windows, horizon);
    double t = system.deploy_time;
    while (auto next = sampler.sample_after(t, rng)) {
      t = *next;
      const SlotRef ref = slots[static_cast<std::size_t>(rng.below(slots.size()))];
      const DiskId victim = fleet_->occupant_at(ref, t);
      if (!victim.valid()) continue;
      result.failures.push_back(
          SimFailure{t, detection_time(t, rng), victim, system.id, FailureType::kProtocol});
      ++result.counters.events_by_type[model::index_of(FailureType::kProtocol)];
    }

    // Driver-rollout incidents: the update lands system-wide around the same
    // time; one primary shelf's disk/enclosure combination interacts badly
    // with it (high hit probability), the others only occasionally
    // (secondary probability).
    if (inc.clustered_fraction > 0.0 && inc.hit_prob > 0.0) {
      const std::size_t n_shelves = system.shelves.size();
      const double n = static_cast<double>(slots.size());
      const double per_shelf = n / static_cast<double>(n_shelves);  // avg disks per shelf
      // Expected hits per incident per disk: primary-shelf disks see
      // hit_prob, the rest secondary_hit_prob; the primary shelf is uniform.
      const double hits_per_disk =
          (per_shelf * inc.hit_prob + (n - per_shelf) * inc.secondary_hit_prob) / n;
      const double incident_rate = per_disk * inc.clustered_fraction / hits_per_disk;
      t = system.deploy_time;
      while (true) {
        t += -std::log(rng.uniform_pos()) / incident_rate;
        if (t >= horizon) break;
        const model::ShelfId primary =
            system.shelves[static_cast<std::size_t>(rng.below(n_shelves))];
        for (const SlotRef& ref : slots) {
          const double p = (ref.shelf == primary) ? inc.hit_prob : inc.secondary_hit_prob;
          if (p <= 0.0 || !rng.bernoulli(p)) continue;
          const double when =
              t + sample_lognormal_mean(inc.spread_mean_seconds, inc.spread_sigma_log, rng);
          if (when >= horizon) continue;
          const DiskId victim = fleet_->occupant_at(ref, when);
          if (!victim.valid()) continue;
          result.failures.push_back(SimFailure{when, detection_time(when, rng), victim,
                                               system.id, FailureType::kProtocol});
          ++result.counters.events_by_type[model::index_of(FailureType::kProtocol)];
        }
      }
    }
  }

  // --- path-level interconnect faults --------------------------------------
  {
    Rng rng = root_.stream("sys-path", bases_.system + system_index);
    const double r_pi = pi_rate_per_disk_year(system);
    const double q = params_.pi_cluster_prob_path;
    const double path_fraction = 1.0 - shelf_info.backplane_fraction;
    const double n = static_cast<double>(slots.size());
    const double fault_rate =
        path_fraction * r_pi / ((q > 0.0 ? q : 1.0 / n) * model::kSecondsPerYear);
    if (fault_rate <= 0.0) return;
    const bool dual = system.paths == model::PathConfig::kDualPath;

    double t = system.deploy_time;
    while (true) {
      t += -std::log(rng.uniform_pos()) / fault_rate;
      if (t >= horizon) break;
      if (dual && rng.bernoulli(params_.dual_path_masking)) {
        // The passive path takes over; the fault never surfaces as disk
        // unavailability.
        ++result.counters.masked_path_faults;
        continue;
      }
      ++result.counters.path_faults;
      auto hit = [&](const SlotRef& ref) {
        const DiskId victim = fleet_->occupant_at(ref, t);
        if (!victim.valid()) return;
        result.failures.push_back(SimFailure{t, detection_time(t, rng), victim, system.id,
                                             FailureType::kPhysicalInterconnect});
        ++result.counters.events_by_type[model::index_of(FailureType::kPhysicalInterconnect)];
      };
      if (q <= 0.0) {
        hit(slots[static_cast<std::size_t>(rng.below(slots.size()))]);
        continue;
      }
      for (const SlotRef& ref : slots) {
        if (rng.bernoulli(q)) hit(ref);
      }
    }
  }
}

SimResult Simulator::run() {
  if (ran_) throw std::logic_error("Simulator::run may be called only once");
  ran_ = true;

  SimResult result;
  const std::size_t n_shelves = fleet_->shelves().size();

  STORSIM_OBS_COUNTER(c_shelves, "sim.shelves",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_shelves, n_shelves);

  // Phase 1 (parallel): every shelf simulates against its own occupancy
  // overlay, drawing only from shelf-keyed RNG substreams. No shared state
  // is written, so the per-shelf event sequences are identical for any
  // thread count.
  obs::Span shelf_span("sim.shelf_phase");
  std::vector<ShelfOutcome> shelf_out(n_shelves);
  util::parallel_for(n_shelves, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      simulate_shelf(static_cast<std::uint32_t>(i), shelf_out[i]);
    }
  });
  shelf_span.stop();

  obs::Span replay_span("sim.replacement_replay");
  // Phase 2 (serial): replay the recorded replacements against the fleet in
  // shelf order — exactly the order the serial simulator performed them —
  // so fleet-wide disk ids are reproduced bit-identically; then resolve the
  // provisional ids in each shelf's failures and merge in shelf order.
  for (std::size_t i = 0; i < n_shelves; ++i) {
    ShelfOutcome& out = shelf_out[i];
    std::vector<DiskId> real_ids(out.replacements.size());
    for (std::size_t k = 0; k < out.replacements.size(); ++k) {
      const PendingReplacement& r = out.replacements[k];
      const DiskId failed = fleet_->disk_in(
          SlotRef{model::ShelfId(static_cast<std::uint32_t>(i)), r.slot});
      real_ids[k] = fleet_->replace_disk(failed, r.remove_time, r.install_time);
    }
    for (SimFailure& f : out.result.failures) {
      if ((f.disk.value() & kProvisionalBit) != 0) {
        f.disk = real_ids[f.disk.value() & ~kProvisionalBit];
      }
    }
    result.failures.insert(result.failures.end(), out.result.failures.begin(),
                           out.result.failures.end());
    accumulate(result.counters, out.result.counters);
    out = ShelfOutcome{};  // release per-shelf buffers eagerly
  }
  replay_span.stop();

  // Phase 3 (parallel): system-scope processes only read the fleet (the
  // replacement chains are final by now) and write per-system buffers,
  // merged in system order.
  obs::Span system_span("sim.system_phase");
  const std::size_t n_systems = fleet_->systems().size();
  STORSIM_OBS_COUNTER(c_systems, "sim.systems",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_systems, n_systems);
  std::vector<SimResult> sys_out(n_systems);
  util::parallel_for(n_systems, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      simulate_system_processes(static_cast<std::uint32_t>(i), sys_out[i]);
    }
  });
  for (std::size_t i = 0; i < n_systems; ++i) {
    result.failures.insert(result.failures.end(), sys_out[i].failures.begin(),
                           sys_out[i].failures.end());
    accumulate(result.counters, sys_out[i].counters);
  }
  system_span.stop();

  obs::Span sort_span("sim.sort");
  std::sort(result.failures.begin(), result.failures.end(),
            [](const SimFailure& a, const SimFailure& b) {
              if (a.detect_time != b.detect_time) return a.detect_time < b.detect_time;
              return a.disk < b.disk;
            });
  sort_span.stop();

  STORSIM_OBS_COUNTER(c_failures, "sim.failures",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_failures, result.failures.size());
  STORSIM_OBS_COUNTER(c_repl, "sim.replacements",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_repl, result.counters.replacements);
  return result;
}

FleetSimulation simulate_fleet(const model::FleetConfig& config, const SimParams& params) {
  FleetSimulation out{model::Fleet::build(config), SimResult{}};
  Simulator simulator(out.fleet, params);
  out.result = simulator.run();
  return out;
}

}  // namespace storsubsim::sim
