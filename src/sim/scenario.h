// Canned experiment scenarios.
//
// Each paper exhibit is regenerated from one of these entry points, which
// bundle a fleet configuration with simulation parameters. The ablation
// scenarios vary one design dimension (RAID-group shelf span, correlation
// mechanisms) while holding everything else fixed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/fleet_config.h"
#include "sim/params.h"
#include "sim/simulator.h"

namespace storsubsim::sim {

/// Runs the full calibrated 4-class fleet at the given scale.
FleetSimulation run_standard(double scale = 1.0, std::uint64_t seed = 20080226);

/// Builds a single-cohort fleet for controlled experiments.
model::FleetConfig cohort_fleet(const model::CohortSpec& cohort, double scale,
                                std::uint64_t seed);

/// Ablation: one near-line-like cohort with the RAID span forced to `span`
/// shelves. Used to show burstiness within RAID groups falling as span grows
/// (paper Finding 9 generalized).
FleetSimulation run_span_ablation(std::size_t span, double scale, std::uint64_t seed,
                                  const SimParams& params = SimParams::standard());

/// Which correlation mechanisms to keep in a knockout run.
struct MechanismToggles {
  bool shelf_badness = true;       // static shelf heterogeneity
  bool hawkes = true;              // disk-failure triggering
  bool environment_windows = true; // cooling episodes
  bool interconnect_clusters = true;  // multi-disk fault clusters
  bool driver_windows = true;      // protocol bug epochs
  bool congestion_windows = true;  // performance episodes

  std::string describe() const;
};

/// Applies knockouts to a parameter set, preserving calibrated mean rates:
/// disabling a mechanism redistributes its probability mass into the
/// homogeneous base rate rather than deleting it.
SimParams apply_toggles(SimParams params, const MechanismToggles& toggles);

/// Ablation: the standard fleet with selected mechanisms knocked out.
FleetSimulation run_mechanism_ablation(const MechanismToggles& toggles, double scale,
                                       std::uint64_t seed);

}  // namespace storsubsim::sim
