#include "sim/scenario.h"

#include <sstream>

namespace storsubsim::sim {

FleetSimulation run_standard(double scale, std::uint64_t seed) {
  return simulate_fleet(model::standard_fleet_config(scale, seed));
}

model::FleetConfig cohort_fleet(const model::CohortSpec& cohort, double scale,
                                std::uint64_t seed) {
  model::FleetConfig config;
  config.cohorts.push_back(cohort);
  config.scale = scale;
  config.seed = seed;
  model::validate(config);
  return config;
}

FleetSimulation run_span_ablation(std::size_t span, double scale, std::uint64_t seed,
                                  const SimParams& params) {
  model::CohortSpec cohort;
  cohort.label = "span-ablation/" + std::to_string(span);
  cohort.cls = model::SystemClass::kMidRange;
  cohort.shelf_model = model::ShelfModelName{'B'};
  cohort.disk_mix = {{{'D', 2}, 1.0}};
  cohort.num_systems = 3000;
  cohort.mean_shelves_per_system = 7.0;
  cohort.mean_disks_per_shelf = 12.0;
  cohort.raid_group_size = 8;
  cohort.raid6_fraction = 0.3;
  cohort.raid_span_shelves = span;
  cohort.dual_path_fraction = 0.0;
  return simulate_fleet(cohort_fleet(cohort, scale, seed), params);
}

std::string MechanismToggles::describe() const {
  std::ostringstream os;
  os << "badness=" << (shelf_badness ? "on" : "off") << " hawkes=" << (hawkes ? "on" : "off")
     << " env=" << (environment_windows ? "on" : "off")
     << " clusters=" << (interconnect_clusters ? "on" : "off")
     << " driver=" << (driver_windows ? "on" : "off")
     << " congestion=" << (congestion_windows ? "on" : "off");
  return os.str();
}

SimParams apply_toggles(SimParams params, const MechanismToggles& toggles) {
  if (!toggles.shelf_badness) {
    // Gamma(shape, 1/shape) concentrates at 1 as shape -> inf.
    params.shelf_badness_shape = 1e6;
  }
  if (!toggles.hawkes) {
    params.hawkes_branching = 0.0;
  }
  if (!toggles.environment_windows) {
    params.environment.multiplier = 1.0;
  }
  if (!toggles.interconnect_clusters) {
    // q == 0 switches the fault processes to exactly-one-disk semantics; the
    // per-disk rate calibration is preserved by the simulator's construction.
    params.pi_cluster_prob_shelf = 0.0;
    params.pi_cluster_prob_path = 0.0;
  }
  if (!toggles.driver_windows) {
    params.driver.multiplier = 1.0;
    params.protocol_incidents.clustered_fraction = 0.0;
  }
  if (!toggles.congestion_windows) {
    params.congestion.multiplier = 1.0;
    params.performance_incidents.clustered_fraction = 0.0;
  }
  return params;
}

FleetSimulation run_mechanism_ablation(const MechanismToggles& toggles, double scale,
                                       std::uint64_t seed) {
  return simulate_fleet(model::standard_fleet_config(scale, seed),
                        apply_toggles(SimParams::standard(), toggles));
}

}  // namespace storsubsim::sim
