#include "replicate/table.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace storsubsim::replicate {

namespace {

using store::append_f64;
using store::append_u16;
using store::append_u32;
using store::append_u64;
using store::append_u8;
using store::ErrorCode;
using store::make_error;
using store::read_f64;
using store::read_u16;
using store::read_u32;
using store::read_u64;
using store::read_u8;

/// Bounds-checked cursor over the mapped image; every read method fails
/// closed with kTruncated instead of walking past the end.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : p_(data), end_(data + size), base_(data) {}

  std::uint64_t offset() const { return static_cast<std::uint64_t>(p_ - base_); }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  bool take(std::size_t n, const char** out) {
    if (remaining() < n) return false;
    *out = p_;
    p_ += n;
    return true;
  }

  bool u8(std::uint8_t* out) { return scalar(out, read_u8); }
  bool u16(std::uint16_t* out) { return scalar(out, read_u16); }
  bool u32(std::uint32_t* out) { return scalar(out, read_u32); }
  bool u64(std::uint64_t* out) { return scalar(out, read_u64); }
  bool f64(double* out) { return scalar(out, read_f64); }

 private:
  template <typename T, typename Fn>
  bool scalar(T* out, Fn read) {
    const char* at = nullptr;
    if (!take(sizeof(T), &at)) return false;
    *out = read(at);
    return true;
  }

  const char* p_;
  const char* end_;
  const char* base_;
};

constexpr std::size_t kMaxStatName = 256;  ///< sanity bound on decoded names

}  // namespace

std::string encode_table(const ReplicateSummary& summary) {
  std::string out;
  out.reserve(512 + summary.stats.size() * (64 + summary.replicates * 8));

  out.append(kTableMagic.data(), kTableMagic.size());
  append_u32(out, kTableVersion);
  append_u32(out, static_cast<std::uint32_t>(summary.stats.size()));
  append_u64(out, summary.options.seed);
  append_f64(out, summary.options.scale);
  append_f64(out, summary.options.confidence);
  append_f64(out, summary.options.ci_rel);
  append_u64(out, summary.options.max_replicates);
  append_u64(out, summary.options.min_replicates);
  append_u64(out, summary.options.batch);
  append_u64(out, summary.replicates);
  append_u8(out, static_cast<std::uint8_t>(summary.stop_reason));
  for (int i = 0; i < 7; ++i) append_u8(out, 0);

  for (const auto& stat : summary.stats) {
    append_u16(out, static_cast<std::uint16_t>(stat.name.size()));
    out.append(stat.name);
    append_u8(out, static_cast<std::uint8_t>(stat.family));
    append_u64(out, stat.stopped_at);
    append_f64(out, stat.mean);
    append_f64(out, stat.stddev);
    append_f64(out, stat.ci.lower);
    append_f64(out, stat.ci.upper);
    append_f64(out, stat.p025);
    append_f64(out, stat.p500);
    append_f64(out, stat.p975);
  }

  for (const auto& column : summary.values) {
    for (const double v : column) append_f64(out, v);
  }

  append_u32(out, store::crc32(out.data(), out.size()));
  return out;
}

store::Error decode_table(std::string_view bytes, ReplicateSummary* out) {
  if (bytes.size() < kTableMagic.size() + 4) {
    return make_error(ErrorCode::kTruncated, "replicate table shorter than its magic");
  }
  if (std::memcmp(bytes.data(), kTableMagic.data(), kTableMagic.size()) != 0) {
    return make_error(ErrorCode::kBadMagic, "not a STORREP1 replicate table");
  }
  if (bytes.size() < 4) {
    return make_error(ErrorCode::kTruncated, "replicate table missing trailing crc");
  }
  const std::size_t body = bytes.size() - 4;
  const std::uint32_t want_crc = read_u32(bytes.data() + body);
  const std::uint32_t have_crc = store::crc32(bytes.data(), body);
  if (want_crc != have_crc) {
    return make_error(ErrorCode::kChecksum, "replicate table crc mismatch", body);
  }

  Cursor cur(bytes.data(), body);
  const char* skip = nullptr;
  (void)cur.take(kTableMagic.size(), &skip);

  std::uint32_t version = 0, stat_count = 0;
  if (!cur.u32(&version) || !cur.u32(&stat_count)) {
    return make_error(ErrorCode::kTruncated, "replicate table header truncated",
                      cur.offset());
  }
  if (version != kTableVersion) {
    return make_error(ErrorCode::kBadVersion,
                      "replicate table version " + std::to_string(version));
  }

  ReplicateSummary summary;
  std::uint64_t max_replicates = 0, min_replicates = 0, batch = 0, replicates = 0;
  std::uint8_t stop_reason = 0;
  if (!cur.u64(&summary.options.seed) || !cur.f64(&summary.options.scale) ||
      !cur.f64(&summary.options.confidence) || !cur.f64(&summary.options.ci_rel) ||
      !cur.u64(&max_replicates) || !cur.u64(&min_replicates) || !cur.u64(&batch) ||
      !cur.u64(&replicates) || !cur.u8(&stop_reason) || !cur.take(7, &skip)) {
    return make_error(ErrorCode::kTruncated, "replicate table header truncated",
                      cur.offset());
  }
  summary.options.max_replicates = max_replicates;
  summary.options.min_replicates = min_replicates;
  summary.options.batch = batch;
  summary.replicates = replicates;
  if (stop_reason > static_cast<std::uint8_t>(StopReason::kConverged)) {
    return make_error(ErrorCode::kBadValue,
                      "unknown stop reason " + std::to_string(stop_reason));
  }
  summary.stop_reason = static_cast<StopReason>(stop_reason);

  summary.stats.reserve(stat_count);
  for (std::uint32_t s = 0; s < stat_count; ++s) {
    StatSummary stat;
    std::uint16_t name_len = 0;
    if (!cur.u16(&name_len)) {
      return make_error(ErrorCode::kTruncated, "statistic name truncated", cur.offset());
    }
    if (name_len == 0 || name_len > kMaxStatName) {
      return make_error(ErrorCode::kBadValue,
                        "statistic name length " + std::to_string(name_len), cur.offset());
    }
    const char* name = nullptr;
    std::uint8_t family = 0;
    if (!cur.take(name_len, &name) || !cur.u8(&family) || !cur.u64(&stat.stopped_at) ||
        !cur.f64(&stat.mean) || !cur.f64(&stat.stddev) || !cur.f64(&stat.ci.lower) ||
        !cur.f64(&stat.ci.upper) || !cur.f64(&stat.p025) || !cur.f64(&stat.p500) ||
        !cur.f64(&stat.p975)) {
      return make_error(ErrorCode::kTruncated, "statistic record truncated", cur.offset());
    }
    stat.name.assign(name, name_len);
    bool known_family = false;
    for (const core::StatisticId id : core::kAllStatistics) {
      if (static_cast<std::uint8_t>(id) == family) known_family = true;
    }
    if (!known_family) {
      return make_error(ErrorCode::kBadValue,
                        "unknown statistic family " + std::to_string(family), cur.offset());
    }
    stat.family = static_cast<core::StatisticId>(family);
    stat.ci.point = stat.mean;
    summary.stats.push_back(std::move(stat));
  }

  // Check the matrix size without overflow: remaining() bounds the product.
  if (stat_count != 0 && replicates > cur.remaining() / 8 / stat_count) {
    return make_error(ErrorCode::kTruncated, "replicate values matrix size mismatch",
                      cur.offset());
  }
  if (cur.remaining() != static_cast<std::size_t>(stat_count) * replicates * 8) {
    return make_error(ErrorCode::kTruncated, "replicate values matrix size mismatch",
                      cur.offset());
  }
  summary.values.assign(stat_count, {});
  for (std::uint32_t s = 0; s < stat_count; ++s) {
    summary.values[s].resize(replicates);
    for (std::uint64_t r = 0; r < replicates; ++r) {
      (void)cur.f64(&summary.values[s][r]);
    }
  }

  *out = std::move(summary);
  return store::Error{};
}

store::Error write_table(const std::string& path, const ReplicateSummary& summary) {
  const std::string image = encode_table(summary);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return make_error(ErrorCode::kIo, "open for write failed: " + path);
  }
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), f);
  const int close_rc = std::fclose(f);
  if (written != image.size() || close_rc != 0) {
    return make_error(ErrorCode::kIo, "short write: " + path);
  }
  return store::Error{};
}

store::Error read_table(const std::string& path, ReplicateSummary* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return make_error(ErrorCode::kIo, "open failed: " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return make_error(ErrorCode::kIo, "read failed: " + path);
  }
  return decode_table(bytes, out);
}

}  // namespace storsubsim::replicate
