// STORREP1: the serialized form of one replication run.
//
// A replicate table is to the replication engine what a STORCOL1 store is to
// one simulation: the durable artifact that lets `analyze --replicates` and
// the daemon's replicate_summary endpoint answer without re-simulating. The
// layout follows the store conventions (docs/REPLICATION.md): little-endian
// scalars via store/format.h helpers, f64 as exact bit patterns, a trailing
// CRC32 over everything before it, and typed store::Error decoding failures.
//
//   [magic "STORREP1"] [u32 version] [u32 stat_count]
//   [u64 seed] [f64 scale] [f64 confidence] [f64 ci_rel]
//   [u64 max_replicates] [u64 min_replicates] [u64 batch] [u64 replicates]
//   [u8 stop_reason] [7 B zero pad]
//   per statistic: [u16 name_len][name bytes] [u8 family] [u64 stopped_at]
//                  [f64 mean stddev ci_lo ci_hi p025 p500 p975]
//   values matrix, stat-major: stat_count x replicates f64
//   [u32 crc32 of all preceding bytes]
//
// encode_table() is a pure function of the summary — bit-identical tables
// for bit-identical runs — which is what lets run_checks.sh cmp tables
// produced at different thread counts.
#pragma once

#include <string>
#include <string_view>

#include "replicate/replicate.h"
#include "store/format.h"

namespace storsubsim::replicate {

inline constexpr std::array<char, 8> kTableMagic = {'S', 'T', 'O', 'R', 'R', 'E', 'P', '1'};
inline constexpr std::uint32_t kTableVersion = 1;

/// Serializes a summary to the STORREP1 byte image.
std::string encode_table(const ReplicateSummary& summary);

/// Parses a STORREP1 image. Corruption and truncation come back as typed
/// store errors (kTruncated/kBadMagic/kBadVersion/kChecksum/kBadValue) —
/// never as undefined behavior or a partially-filled summary.
[[nodiscard]] store::Error decode_table(std::string_view bytes, ReplicateSummary* out);

/// Whole-file write/read wrappers (kIo on filesystem failure).
[[nodiscard]] store::Error write_table(const std::string& path,
                                       const ReplicateSummary& summary);
[[nodiscard]] store::Error read_table(const std::string& path, ReplicateSummary* out);

}  // namespace storsubsim::replicate
