#include "replicate/replicate.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "core/afr.h"
#include "core/burstiness.h"
#include "core/correlation.h"
#include "core/lifetime.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "model/fleet_config.h"
#include "model/time.h"
#include "sim/simulator.h"
#include "stats/rng.h"
#include "stats/summary.h"
#include "util/parallel.h"

namespace storsubsim::replicate {

namespace {

/// The burstiness threshold the paper quotes (~48% of shelf gaps fall within
/// 10,000 s); also the headline number the tbf statistics track.
constexpr double kGapThresholdSeconds = 1e4;

struct StatDef {
  const char* name;
  core::StatisticId family;
};

/// Fixed table order — part of the STORREP1 contract.
constexpr StatDef kStatDefs[] = {
    {"afr.total", core::StatisticId::kAfrTotal},
    {"afr.disk", core::StatisticId::kAfrTotal},
    {"afr.interconnect", core::StatisticId::kAfrTotal},
    {"afr.protocol", core::StatisticId::kAfrTotal},
    {"afr.performance", core::StatisticId::kAfrTotal},
    {"tbf.shelf.within_1e4", core::StatisticId::kTbf},
    {"tbf.raid.within_1e4", core::StatisticId::kTbf},
    {"corr.shelf.disk.p1", core::StatisticId::kCorrelation},
    {"corr.shelf.disk.p2", core::StatisticId::kCorrelation},
    {"corr.shelf.disk.factor", core::StatisticId::kCorrelation},
    {"corr.raid.disk.factor", core::StatisticId::kCorrelation},
    {"lifetime.survival_1y", core::StatisticId::kLifetime},
    {"lifetime.censored_fraction", core::StatisticId::kLifetime},
};

constexpr std::size_t kStatCount = sizeof(kStatDefs) / sizeof(kStatDefs[0]);

/// Percentile of a sorted sample, linearly interpolated between order
/// statistics — the same convention stats::bootstrap_ci uses.
double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

/// The convergence test: CI half-width within ci_rel of |mean|. A zero mean
/// only converges once the interval collapses entirely.
bool meets_target(const stats::Interval& ci, double mean, double ci_rel) {
  return ci.half_width() <= ci_rel * std::abs(mean);
}

}  // namespace

std::string_view to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kMaxReplicates: return "max-replicates";
    case StopReason::kConverged: return "converged";
  }
  return "unknown";
}

std::vector<std::string> statistic_names() {
  std::vector<std::string> names;
  names.reserve(kStatCount);
  for (const auto& def : kStatDefs) names.emplace_back(def.name);
  return names;
}

std::vector<double> headline_statistics(const core::Dataset& dataset) {
  std::vector<double> out;
  out.reserve(kStatCount);

  const auto afr = core::compute_afr(dataset);
  out.push_back(afr.total_afr_pct());
  out.push_back(afr.afr_pct(model::FailureType::kDisk));
  out.push_back(afr.afr_pct(model::FailureType::kPhysicalInterconnect));
  out.push_back(afr.afr_pct(model::FailureType::kProtocol));
  out.push_back(afr.afr_pct(model::FailureType::kPerformance));

  const auto tbf_shelf = core::time_between_failures(dataset, core::Scope::kShelf);
  const auto tbf_raid = core::time_between_failures(dataset, core::Scope::kRaidGroup);
  out.push_back(tbf_shelf.fraction_within(core::kOverallSeries, kGapThresholdSeconds));
  out.push_back(tbf_raid.fraction_within(core::kOverallSeries, kGapThresholdSeconds));

  const auto corr_shelf = core::failure_correlation(dataset, core::Scope::kShelf,
                                                    model::FailureType::kDisk);
  const auto corr_raid = core::failure_correlation(dataset, core::Scope::kRaidGroup,
                                                   model::FailureType::kDisk);
  out.push_back(corr_shelf.empirical_p1());
  out.push_back(corr_shelf.empirical_p2());
  out.push_back(corr_shelf.correlation_factor());
  out.push_back(corr_raid.correlation_factor());

  const auto life = core::disk_lifetime_report(dataset);
  out.push_back(life.survival.survival(model::from_years(1.0)));
  out.push_back(life.censored_fraction);

  return out;
}

ReplicateSummary run_replication(const ReplicateOptions& options) {
  ReplicateOptions opts = options;
  if (opts.max_replicates == 0) opts.max_replicates = 1;
  if (opts.batch == 0) opts.batch = 1;
  if (opts.min_replicates == 0) opts.min_replicates = 1;
  opts.min_replicates = std::min(opts.min_replicates, opts.max_replicates);

  const stats::Rng root = stats::make_root_rng(opts.seed);

  ReplicateSummary summary;
  summary.options = opts;
  summary.values.assign(kStatCount, {});
  for (auto& column : summary.values) column.reserve(opts.max_replicates);

  std::vector<std::size_t> stopped_at(kStatCount, 0);
  std::size_t done = 0;
  StopReason reason = StopReason::kMaxReplicates;

  while (done < opts.max_replicates) {
    const std::size_t batch_end = std::min(done + opts.batch, opts.max_replicates);
    const std::size_t batch_size = batch_end - done;

    // Fan the batch across the pool into pre-sized slots; replicate r's seed
    // comes from root.stream(kSeedStream, r) — independent of scheduling.
    std::vector<std::vector<double>> slots(batch_size);
    util::parallel_for(batch_size, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t r = done + i;
        stats::Rng rep = root.stream(kSeedStream, r);
        const std::uint64_t rep_seed = rep();
        const auto sim = sim::simulate_fleet(model::standard_fleet_config(opts.scale, rep_seed));
        const core::Dataset dataset = core::dataset_in_memory(sim.fleet, sim.result);
        slots[i] = headline_statistics(dataset);
      }
    });
    for (std::size_t i = 0; i < batch_size; ++i) {  // merge in index order
      for (std::size_t s = 0; s < kStatCount; ++s) {
        summary.values[s].push_back(slots[i][s]);
      }
    }
    done = batch_end;

    // Stopping rule: only at batch boundaries, only on the in-order prefix,
    // so the decision is a pure function of (seed, options).
    if (opts.ci_rel > 0.0 && done >= opts.min_replicates) {
      bool all_converged = true;
      for (std::size_t s = 0; s < kStatCount; ++s) {
        if (stopped_at[s] != 0) continue;
        stats::Accumulator acc;
        for (const double v : summary.values[s]) acc.add(v);
        const stats::Interval ci =
            stats::mean_ci(acc.mean(), acc.variance(), acc.count(), opts.confidence);
        if (meets_target(ci, acc.mean(), opts.ci_rel)) {
          stopped_at[s] = done;
        } else {
          all_converged = false;
        }
      }
      if (all_converged) {
        reason = StopReason::kConverged;
        break;
      }
    }
  }

  summary.replicates = done;
  summary.stop_reason = reason;

  summary.stats.reserve(kStatCount);
  for (std::size_t s = 0; s < kStatCount; ++s) {
    StatSummary stat;
    stat.name = kStatDefs[s].name;
    stat.family = kStatDefs[s].family;
    stat.stopped_at = stopped_at[s];
    stats::Accumulator acc;
    for (const double v : summary.values[s]) acc.add(v);
    stat.mean = acc.mean();
    stat.stddev = acc.stddev();
    stat.ci = stats::mean_ci(acc.mean(), acc.variance(), acc.count(), opts.confidence);
    std::vector<double> sorted = summary.values[s];
    std::sort(sorted.begin(), sorted.end());
    stat.p025 = percentile_sorted(sorted, 0.025);
    stat.p500 = percentile_sorted(sorted, 0.5);
    stat.p975 = percentile_sorted(sorted, 0.975);
    summary.stats.push_back(std::move(stat));
  }
  return summary;
}

std::string render_summary(const ReplicateSummary& summary, bool csv) {
  const auto& opts = summary.options;

  core::TextTable provenance({"field", "value"});
  provenance.add_row({"seed", std::to_string(opts.seed)});
  provenance.add_row({"scale", core::fmt(opts.scale, 4)});
  provenance.add_row({"seed stream", std::string(kSeedStream)});
  provenance.add_row({"replicates", std::to_string(summary.replicates)});
  provenance.add_row({"max replicates", std::to_string(opts.max_replicates)});
  provenance.add_row({"min replicates", std::to_string(opts.min_replicates)});
  provenance.add_row({"batch", std::to_string(opts.batch)});
  provenance.add_row({"ci rel target", core::fmt(opts.ci_rel, 4)});
  provenance.add_row({"confidence", core::fmt(opts.confidence, 2)});
  provenance.add_row({"stop reason", std::string(to_string(summary.stop_reason))});

  core::TextTable table({"statistic", "family", "n", "mean", "stddev", "ci lo", "ci hi",
                         "rel hw", "p2.5", "p50", "p97.5", "stopped at"});
  for (const auto& stat : summary.stats) {
    const double rel_hw =
        stat.mean == 0.0 ? 0.0 : stat.ci.half_width() / std::abs(stat.mean);
    table.add_row({stat.name, std::string(core::report_name(stat.family)),
                   std::to_string(summary.replicates), core::fmt(stat.mean, 4),
                   core::fmt(stat.stddev, 4), core::fmt(stat.ci.lower, 4),
                   core::fmt(stat.ci.upper, 4), core::fmt_pct(rel_hw, 1),
                   core::fmt(stat.p025, 4), core::fmt(stat.p500, 4),
                   core::fmt(stat.p975, 4),
                   stat.stopped_at == 0 ? "-" : std::to_string(stat.stopped_at)});
  }
  return (csv ? provenance.to_csv() : provenance.to_text()) +
         (csv ? table.to_csv() : table.to_text());
}

}  // namespace storsubsim::replicate
