// Monte Carlo replication engine: N keyed-substream replicates of the whole
// simulate -> classify pipeline, with per-statistic confidence intervals.
//
// One simulated fleet is a single draw from the generative model; any
// headline number it yields (total AFR, burstiness fraction, correlation
// factor, ...) is a point estimate with unquantified sampling error. The
// replication driver re-runs the pipeline under independent seed substreams
// and summarizes each headline statistic across replicates: mean, spread, a
// t-based CI on the mean, and empirical percentiles.
//
// Determinism contract: replicate r's seed is `root.stream("replicate", r)`,
// keyed off the root seed alone — never off thread count, scheduling, or how
// much randomness any other replicate consumed. Replicates are computed into
// pre-sized slots under util::parallel_for and appended in index order, so
// the summary (and its serialized STORREP1 table) is bit-identical at any
// thread count. Sequential stopping is evaluated only at batch boundaries on
// the in-order prefix, which keeps the early-stop decision deterministic too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/analysis_request.h"
#include "stats/intervals.h"

namespace storsubsim::replicate {

/// Seed-substream label for replicate seeds; recorded in run manifests as
/// provenance ("seed_stream") so a table can be tied back to its draws.
inline constexpr std::string_view kSeedStream = "replicate";

struct ReplicateOptions {
  double scale = 0.05;           ///< fleet scale per replicate
  std::uint64_t seed = 20080226; ///< root seed; replicate r uses stream(kSeedStream, r)
  std::size_t max_replicates = 64;
  std::size_t min_replicates = 8;  ///< no stopping checks before this many
  std::size_t batch = 8;           ///< replicates per round; stopping checked at batch ends
  double confidence = 0.95;
  /// Relative half-width target: stop once every statistic's CI half-width
  /// is <= ci_rel * |mean|. 0 disables early stopping (fixed-N run).
  double ci_rel = 0.0;
};

enum class StopReason : std::uint8_t {
  kMaxReplicates = 0,  ///< ran the full budget
  kConverged = 1,      ///< every statistic met the ci_rel target early
};

std::string_view to_string(StopReason reason) noexcept;

/// One headline statistic summarized across replicates.
struct StatSummary {
  std::string name;                  ///< e.g. "afr.total", "corr.shelf.disk.factor"
  core::StatisticId family = core::StatisticId::kAfrTotal;
  /// First replicate count at which this statistic's CI met the ci_rel
  /// target (0 = never met it). Only batch-boundary prefixes are eligible.
  std::size_t stopped_at = 0;
  double mean = 0.0;
  double stddev = 0.0;           ///< sample (n-1) standard deviation
  stats::Interval ci;            ///< t-based CI on the mean
  double p025 = 0.0, p500 = 0.0, p975 = 0.0;  ///< empirical percentiles
};

struct ReplicateSummary {
  ReplicateOptions options;
  std::size_t replicates = 0;  ///< replicates actually run
  StopReason stop_reason = StopReason::kMaxReplicates;
  std::vector<StatSummary> stats;
  /// Raw per-replicate values, stat-major: values[s][r] for stats[s],
  /// replicate r. Kept so downstream consumers can re-derive any summary.
  std::vector<std::vector<double>> values;
};

/// The fixed headline-statistic names, in table order. The list is part of
/// the STORREP1 contract: tables always carry exactly these statistics.
std::vector<std::string> statistic_names();

/// Extracts the headline-statistic vector (statistic_names() order) from one
/// simulated replicate's dataset.
std::vector<double> headline_statistics(const core::Dataset& dataset);

/// Runs the replication driver: simulates replicates under keyed substreams,
/// fanned across the process-wide thread pool, accumulating until every
/// statistic converges (ci_rel > 0) or the budget is exhausted.
ReplicateSummary run_replication(const ReplicateOptions& options);

/// Renders the summary as the provenance table followed by the per-statistic
/// table — the exact bytes `storsubsim replicate`, `analyze --replicates`
/// and the daemon's replicate_summary endpoint all emit.
std::string render_summary(const ReplicateSummary& summary, bool csv);

}  // namespace storsubsim::replicate
