// Bounded cache of open shards for the storsimd daemon.
//
// store::ShardStore's lazy-open cache is unsynchronized and unbounded —
// fine for the offline CLI (one thread, one pass), wrong for a daemon
// whose queries run concurrently and whose fleet may hold more shards
// than the mmap budget allows. ShardLru wraps the store with:
//
//  - pin/unpin reference counting: a query pins every shard it scans for
//    the duration of the scan, so an eviction can never unmap memory a
//    reader is walking;
//  - LRU eviction over *unpinned* shards once more than `max_open` are
//    mapped (0 = unbounded). Pinned shards are never evicted, so the
//    mapped count can transiently exceed the cap when concurrent queries
//    pin more than `max_open` shards at once — the cap is a budget, not
//    a hard ceiling. Both pin and unpin trim back to the budget, so the
//    steady state (nothing pinned) never exceeds it, and re-opening
//    revalidates the shard from scratch;
//  - a mutex making the underlying cache mutation thread-safe. The lock
//    is held only around open/release bookkeeping, never across a scan;
//    the release/acquire pairing on the mutex is what publishes a freshly
//    mapped shard to the pinning thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "store/shards.h"

namespace storsubsim::serve {

class ShardLru {
 public:
  /// `store` must be open()ed already and outlive the cache. `max_open` of 0
  /// means no cap (every shard stays mapped once touched).
  ShardLru(const store::ShardStore* store, std::size_t max_open);

  ShardLru(const ShardLru&) = delete;
  ShardLru& operator=(const ShardLru&) = delete;

  /// Maps + validates shard i if needed and pins it. While pinned,
  /// store->shard(i) is safe to read from the calling thread. On error the
  /// shard is not pinned and the typed error names the shard file.
  [[nodiscard]] store::Error pin(std::size_t i);

  /// Drops one pin; at zero pins the shard becomes evictable (it stays
  /// mapped until the cap forces it out).
  void unpin(std::size_t i) noexcept;

  /// Pins every shard (whole-fleet analysis endpoints). Already-pinned
  /// shards gain one more pin each; on error, pins taken so far are undone.
  [[nodiscard]] store::Error pin_all();
  void unpin_all() noexcept;

  /// Shards evicted so far (serve.shard_evictions mirrors this).
  std::uint64_t evictions() const noexcept;
  /// Currently mapped shards (pinned or cached).
  std::size_t open_count() const noexcept;

 private:
  /// Evicts least-recently-used unpinned shards until the cap holds.
  /// Caller holds mutex_.
  void evict_locked();

  const store::ShardStore* store_;
  std::size_t max_open_;
  mutable std::mutex mutex_;
  std::vector<std::uint32_t> pins_;      ///< per-shard live pin count
  std::vector<std::uint64_t> last_use_;  ///< tick of most recent pin; 0 = never
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace storsubsim::serve
