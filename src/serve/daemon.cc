#include "serve/daemon.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <fstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/analysis_render.h"
#include "core/analysis_request.h"
#include "core/source.h"
#include "obs/obs.h"
#include "replicate/table.h"

namespace storsubsim::serve {

namespace {

/// Seconds a blocked mid-frame read waits before the connection is treated
/// as dead (SO_RCVTIMEO backstop — the poll loop handles the idle case).
constexpr long kReadTimeoutSeconds = 30;

bool is_store_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::array<char, store::kMagic.size()> head{};
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  return in.gcount() == static_cast<std::streamsize>(head.size()) &&
         std::equal(head.begin(), head.end(), store::kMagic.begin());
}

bool is_shard_dir(const std::string& path) {
  std::string manifest_path(path);
  manifest_path.push_back('/');
  manifest_path.append(store::kManifestFileName);
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) return false;
  std::string head(store::kManifestMagic.size(), '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  return in.gcount() == static_cast<std::streamsize>(head.size()) &&
         head == store::kManifestMagic;
}

[[nodiscard]] store::Error errno_error(std::string_view what) {
  std::string detail(what);
  detail.append(": ").append(std::strerror(errno));
  return store::make_error(store::ErrorCode::kIo, detail, 0);
}

/// Best-effort error frame on a connection that closes right after; a
/// failed send means the peer is already gone, which the close handles.
void send_error(int fd, std::string_view code, std::string_view message) {
  if (!write_frame(fd, render_error_response(code, message))) {
    return;
  }
}

/// Unpins every shard on scope exit, exception-safe (an analysis endpoint
/// must never leave pins behind).
struct PinAllGuard {
  ShardLru* lru;
  ~PinAllGuard() {
    if (lru != nullptr) lru->unpin_all();
  }
};

}  // namespace

std::unique_ptr<store::ScanScratch> ScratchPool::acquire() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (!free_.empty()) {
      auto scratch = std::move(free_.back());
      free_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<store::ScanScratch>();  // cold path only
}

void ScratchPool::release(std::unique_ptr<store::ScanScratch> scratch) {
  std::lock_guard<std::mutex> guard(mutex_);
  free_.push_back(std::move(scratch));
}

Daemon::~Daemon() {
  request_drain();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> guard(connections_mutex_);
    conns.swap(connections_);
  }
  for (auto& t : conns) t.join();
  close_fds();
}

void Daemon::close_fds() noexcept {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  if (drain_read_fd_ >= 0) {
    ::close(drain_read_fd_);
    drain_read_fd_ = -1;
  }
  if (drain_write_fd_ >= 0) {
    ::close(drain_write_fd_);
    drain_write_fd_ = -1;
  }
}

store::Error Daemon::start(const ServeOptions& options) {
  options_ = options;

  if (is_shard_dir(options.input)) {
    sharded_ = true;
    if (store::Error err = shard_store_.open(options.input); !err.ok()) return err;
    lru_ = std::make_unique<ShardLru>(&shard_store_, options.max_open_shards);
    // Validate every shard up front — a corrupt shard must fail start(),
    // not some query hours later. The LRU evicts as it goes, so peak
    // memory during validation respects the cap.
    for (std::size_t i = 0; i < shard_store_.shard_count(); ++i) {
      if (store::Error err = lru_->pin(i); !err.ok()) return err;
      lru_->unpin(i);
    }
  } else if (is_store_file(options.input)) {
    if (store::Error err = event_store_.open(options.input); !err.ok()) return err;
  } else {
    std::string detail("input ");
    detail.append(options.input)
        .append(" is neither a STORCOL1 store nor a shard directory");
    return store::make_error(store::ErrorCode::kBadMagic, detail, 0);
  }

  if (!options.replicates.empty()) {
    if (store::Error err = replicate::read_table(options.replicates, &replicate_summary_);
        !err.ok()) {
      return err;
    }
    have_replicates_ = true;
    // Provenance onto the stats endpoint: which substream seeded the
    // replicates, how many ran, and why the run stopped. Deterministic —
    // they describe the loaded table, not request scheduling.
    obs::registry().counter("serve.replicate.replicates")
        .add(replicate_summary_.replicates);
    obs::registry().counter("serve.replicate.seed")
        .add(replicate_summary_.options.seed);
    std::string stream_counter("serve.replicate.seed_stream.");
    stream_counter.append(replicate::kSeedStream);
    obs::registry().counter(stream_counter).add(1);
    std::string reason_counter("serve.replicate.stop_reason.");
    reason_counter.append(replicate::to_string(replicate_summary_.stop_reason));
    obs::registry().counter(reason_counter).add(1);
  }

  pool_ = std::make_unique<util::ThreadPool>(
      options.threads != 0 ? options.threads : util::thread_count());

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) return errno_error("cannot create drain pipe");
  drain_read_fd_ = pipe_fds[0];
  drain_write_fd_ = pipe_fds[1];

  sockaddr_un addr{};
  if (options.socket_path.empty() ||
      options.socket_path.size() >= sizeof(addr.sun_path)) {
    std::string detail("socket path unusable (empty or too long): ");
    detail.append(options.socket_path);
    return store::make_error(store::ErrorCode::kBadValue, detail, 0);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return errno_error("cannot create socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  ::unlink(options.socket_path.c_str());  // replace a stale socket
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string what("cannot bind ");
    what.append(options.socket_path);
    return errno_error(what);
  }
  if (::listen(listen_fd_, 128) != 0) return errno_error("cannot listen");
  return store::Error{};
}

store::Error Daemon::serve() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {drain_read_fd_, POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      draining_.store(true);
      return errno_error("poll on listen socket");
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // drain requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;  // EINTR / peer vanished between poll and accept
    timeval tv{};
    tv.tv_sec = kReadTimeoutSeconds;
    (void)::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::lock_guard<std::mutex> guard(connections_mutex_);
    connections_.emplace_back([this, conn] { connection_loop(conn); });
  }
  draining_.store(true);
  // Stop accepting first (close + unlink), then let in-flight requests
  // finish: the drain pipe stays readable, so every idle connection's poll
  // wakes; busy connections complete their current request before looking.
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> guard(connections_mutex_);
    conns.swap(connections_);
  }
  for (auto& t : conns) t.join();
  return store::Error{};
}

void Daemon::request_drain() noexcept {
  draining_.store(true);
  if (drain_write_fd_ >= 0) {
    const char byte = 'd';
    const ssize_t rc = ::write(drain_write_fd_, &byte, 1);
    static_cast<void>(rc);  // pipe full means a drain is already signaled
  }
}

void Daemon::connection_loop(int fd) {
  std::string body;
  for (;;) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {drain_read_fd_, POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const bool frame_ready = (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (!frame_ready) {
      if ((fds[1].revents & POLLIN) != 0) break;  // draining and idle: close
      continue;
    }
    const FrameStatus status = read_frame(fd, &body);
    if (status == FrameStatus::kClosed || status == FrameStatus::kIoError) break;
    if (status == FrameStatus::kTruncated) {
      send_error(fd, "bad-frame", "truncated frame");
      break;
    }
    if (status == FrameStatus::kOversized) {
      // The oversized body was never read, so the stream cannot be
      // resynchronized — answer typed and close.
      send_error(fd, "oversized", "frame length exceeds the 1 MiB cap");
      break;
    }

    // Execute on the pool; this connection thread just frames and waits.
    std::mutex done_mutex;
    std::condition_variable done_cv;
    bool done = false;
    std::string response;
    pool_->submit([this, &body, &done_mutex, &done_cv, &done, &response] {
      response = handle_request(body);  // never throws
      // Notify under the mutex: the waiter owns these stack objects and may
      // destroy them the moment it can re-acquire the lock and see `done`,
      // so the signal must complete before the lock is released.
      std::lock_guard<std::mutex> guard(done_mutex);
      done = true;
      done_cv.notify_one();
    });
    {
      std::unique_lock<std::mutex> lock(done_mutex);
      done_cv.wait(lock, [&done] { return done; });
    }
    if (!write_frame(fd, response)) break;
  }
  ::close(fd);
}

std::string Daemon::handle_request(std::string_view body) {
  try {
    Request request;
    if (RequestError err = parse_request(body, &request); !err.ok()) {
      return render_error_response(err.code, err.message);
    }
    return dispatch(request);
  } catch (const std::exception& e) {
    return render_error_response("internal", e.what());
  } catch (...) {
    return render_error_response("internal", "unknown error");
  }
}

std::string Daemon::dispatch(const Request& request) {
  // Accept "/stats" as an alias so `storsubsim client --endpoint /stats`
  // reads naturally; the canonical name is "stats".
  const std::string endpoint =
      request.endpoint == "/stats" ? std::string("stats") : request.endpoint;
  const bool is_analysis = endpoint == "afr" || endpoint == "afr_by_class" ||
                           endpoint == "correlation" || endpoint == "tbf" ||
                           endpoint == "lifetime";
  if (!is_analysis && endpoint != "query" && endpoint != "stats" &&
      endpoint != "replicate_summary") {
    std::string message("unknown endpoint '");
    message.append(request.endpoint).append("'");
    return render_error_response("unknown-endpoint", message);
  }
  if (!request.params.empty() && endpoint != "query") {
    return render_error_response("bad-request",
                                 "params are only valid for the query endpoint");
  }
  if (draining_.load()) {
    return render_error_response("draining", "daemon is draining");
  }

  obs::Span span("serve.request");
  STORSIM_OBS_COUNTER(c_requests, "serve.requests",
                      ::storsubsim::obs::Stability::kSchedulingDependent);
  STORSIM_OBS_ADD(c_requests, 1);
  std::string counter_name("serve.endpoint.");
  counter_name.append(endpoint);
  obs::registry()
      .counter(counter_name, obs::Stability::kSchedulingDependent)
      .add(1);

  std::string response;
  if (endpoint == "stats") {
    response = render_ok_response(endpoint, obs::registry().snapshot().to_text());
  } else if (endpoint == "query") {
    response = run_store_query(request);
  } else if (endpoint == "replicate_summary") {
    Request canonical = request;
    canonical.endpoint = endpoint;
    response = run_replicate_summary(canonical);
  } else {
    Request canonical = request;
    canonical.endpoint = endpoint;
    response = run_analysis(canonical);
  }

  const double seconds = span.stop();
  std::string hist_name("serve.latency_us.");
  hist_name.append(endpoint);
  obs::registry()
      .histogram(hist_name, obs::Stability::kSchedulingDependent)
      .observe(static_cast<std::uint64_t>(seconds * 1e6));
  return response;
}

std::string Daemon::run_analysis(const Request& request) {
  // dispatch() vetted the endpoint name, so the lookup cannot fail; the
  // typed request then renders through core::render_statistic — the same
  // entry point `storsubsim analyze` uses, which is the byte-identity
  // guarantee by construction.
  const auto statistic = core::statistic_from_endpoint(request.endpoint);
  if (!statistic.has_value()) {
    std::string message("unknown endpoint '");
    message.append(request.endpoint).append("'");
    return render_error_response("unknown-endpoint", message);
  }
  core::AnalysisRequest analysis;
  if (RequestError err = core::AnalysisRequest::from_params(*statistic, request.params,
                                                            request.csv, &analysis);
      !err.ok()) {
    return render_error_response(err.code, err.message);
  }

  if (!sharded_) {
    const core::Source source(event_store_);
    return render_ok_response(request.endpoint, core::render_statistic(source, analysis));
  }
  // Whole-fleet analyses touch every shard; pin them all so the analysis
  // code's lazy shard access can never race an eviction.
  if (store::Error err = lru_->pin_all(); !err.ok()) {
    return render_error_response("store-error", err.describe());
  }
  PinAllGuard guard{lru_.get()};
  const core::Source source(shard_store_);
  return render_ok_response(request.endpoint, core::render_statistic(source, analysis));
}

std::string Daemon::run_replicate_summary(const Request& request) {
  if (!have_replicates_) {
    return render_error_response("bad-request",
                                 "daemon was started without --replicates");
  }
  return render_ok_response(
      request.endpoint, replicate::render_summary(replicate_summary_, request.csv));
}

std::string Daemon::run_store_query(const Request& request) {
  store::Query query;
  if (RequestError err = make_query(request.params, &query); !err.ok()) {
    return render_error_response(err.code, err.message);
  }
  auto scratch = scratch_pool_.acquire();
  store::QueryRun run(query, scratch.get());
  store::QueryResult result;
  if (sharded_) {
    // Shard-at-a-time, pinned only while scanned: a query over a huge
    // fleet stays inside the --max-open-shards budget.
    for (std::size_t i = 0; i < shard_store_.shard_count(); ++i) {
      if (store::Error err = lru_->pin(i); !err.ok()) {
        scratch_pool_.release(std::move(scratch));
        return render_error_response("store-error", err.describe());
      }
      run.scan(shard_store_.shard(i));
      lru_->unpin(i);
    }
    result = run.finish(shard_store_.manifest().exposure);
  } else {
    run.scan(event_store_);
    result = run.finish(event_store_.exposure());
  }
  scratch_pool_.release(std::move(scratch));
  return render_ok_response(request.endpoint,
                            core::render_query_result(result, request.csv));
}

}  // namespace storsubsim::serve
