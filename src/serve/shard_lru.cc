#include "serve/shard_lru.h"

#include "obs/obs.h"

namespace storsubsim::serve {

ShardLru::ShardLru(const store::ShardStore* store, std::size_t max_open)
    : store_(store),
      max_open_(max_open),
      pins_(store->shard_count(), 0),
      last_use_(store->shard_count(), 0) {}

store::Error ShardLru::pin(std::size_t i) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!store_->is_open(i)) {
    if (store::Error err = store_->open_shard(i); !err.ok()) return err;
  }
  ++pins_[i];
  last_use_[i] = ++tick_;
  evict_locked();
  return store::Error{};
}

void ShardLru::unpin(std::size_t i) noexcept {
  std::lock_guard<std::mutex> guard(mutex_);
  --pins_[i];
  // Shards at or under the cap stay warm for the next query; but an
  // analysis that pinned the whole directory over the budget must hand the
  // memory back as it releases, not hold it until the next pin.
  evict_locked();
}

store::Error ShardLru::pin_all() {
  for (std::size_t i = 0; i < pins_.size(); ++i) {
    if (store::Error err = pin(i); !err.ok()) {
      for (std::size_t j = 0; j < i; ++j) unpin(j);
      return err;
    }
  }
  return store::Error{};
}

void ShardLru::unpin_all() noexcept {
  for (std::size_t i = 0; i < pins_.size(); ++i) unpin(i);
}

std::uint64_t ShardLru::evictions() const noexcept {
  std::lock_guard<std::mutex> guard(mutex_);
  return evictions_;
}

std::size_t ShardLru::open_count() const noexcept {
  std::lock_guard<std::mutex> guard(mutex_);
  return store_->open_count();
}

void ShardLru::evict_locked() {
  if (max_open_ == 0) return;
  STORSIM_OBS_COUNTER(c_evictions, "serve.shard_evictions",
                      ::storsubsim::obs::Stability::kSchedulingDependent);
  while (store_->open_count() > max_open_) {
    // Oldest unpinned mapped shard; pinned shards are immune, so with every
    // mapped shard pinned there is nothing to evict and the cap yields.
    std::size_t victim = pins_.size();
    std::uint64_t oldest = 0;
    for (std::size_t i = 0; i < pins_.size(); ++i) {
      if (!store_->is_open(i) || pins_[i] != 0) continue;
      if (victim == pins_.size() || last_use_[i] < oldest) {
        victim = i;
        oldest = last_use_[i];
      }
    }
    if (victim == pins_.size()) return;
    store_->release_shard(victim);
    ++evictions_;
    STORSIM_OBS_ADD(c_evictions, 1);
  }
}

}  // namespace storsubsim::serve
