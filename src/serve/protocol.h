// The storsimd wire protocol: length-prefixed JSON frames over a unix
// socket (docs/SERVE.md).
//
// A frame is a 4-byte little-endian body length followed by that many bytes
// of strict RFC-8259 JSON (obs::parse_json — the same parser that validates
// run manifests). Bodies are capped at kMaxFrameBytes; a peer announcing a
// larger frame gets a typed `oversized` error and the connection is closed
// (the unread body makes resynchronization impossible).
//
// Request body:
//   {"endpoint": "afr" | "afr_by_class" | "correlation" | "tbf" |
//                "lifetime" | "query" | "stats",
//    "csv": bool,                     // optional, default false
//    "params": {                      // optional, `query` endpoint only
//      "type": "...", "class": "...", "family": "F",
//      "from_days": N, "to_days": N, "group_by": "class"|"type"|"family"}}
//
// Response body:
//   {"ok": true,  "endpoint": "...", "table": "..."}   // the report bytes
//   {"ok": false, "error": "<code>", "message": "..."}
//
// Error codes: `bad-frame`, `oversized`, `bad-json`, `bad-request`,
// `bad-param`, `unknown-endpoint`, `store-error`, `draining`, `internal`.
// Unknown top-level or param keys are rejected (`bad-request`/`bad-param`)
// so a fuzzer cannot smuggle state the handler ignores.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/analysis_request.h"
#include "store/query.h"

namespace storsubsim::serve {

/// Frame body cap. Every legitimate request/response is far below this; the
/// cap bounds what a hostile peer can make the daemon buffer.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Bytes of the little-endian length prefix.
inline constexpr std::size_t kFramePrefixBytes = 4;

/// Outcome of reading one frame off a blocking fd.
enum class FrameStatus : std::uint8_t {
  kOk,         ///< body filled in
  kClosed,     ///< clean EOF on a frame boundary
  kTruncated,  ///< EOF (or read timeout) inside a frame
  kOversized,  ///< announced length exceeds `max_bytes`; body unread
  kIoError,    ///< hard read error
};

/// Reads one length-prefixed frame. Retries EINTR; a recv timeout counts as
/// kTruncated. `body` is reused (resized, not reallocated once warm).
FrameStatus read_frame(int fd, std::string* body,
                       std::uint32_t max_bytes = kMaxFrameBytes);

/// Writes prefix + body, handling partial writes and EINTR. False on error
/// (peer gone). Bodies above kMaxFrameBytes are never produced by this
/// codebase; callers must keep it that way.
[[nodiscard]] bool write_frame(int fd, std::string_view body);

/// Raw query-endpoint parameters as they travel on the wire — the typed
/// core::RequestParams, aliased. Strings stay unparsed here so the client
/// renders exactly what the user typed; semantic validation is
/// core::AnalysisRequest::from_params, the same code the offline CLI runs.
using QueryParams = core::RequestParams;

struct Request {
  std::string endpoint;
  bool csv = false;
  QueryParams params;
};

/// Typed outcome of parsing/validating a request body — core::RequestError,
/// aliased. `code` is one of the wire error codes above; empty code means
/// success.
using RequestError = core::RequestError;

/// Parses and strictly validates a request body (syntax + types + key set).
/// Semantic validation of the params (unknown class name, ...) happens in
/// make_query so the error can carry the offline CLI's wording.
[[nodiscard]] RequestError parse_request(std::string_view body, Request* out);

/// Converts validated QueryParams into a store::Query via
/// core::AnalysisRequest::from_params — literally the code path that parses
/// `storsubsim store query` flags, which is the root of the "daemon rejects
/// exactly what the CLI rejects, same wording" guarantee.
[[nodiscard]] RequestError make_query(const QueryParams& params, store::Query* out);

/// Renders the request body JSON a Request describes (client side; also the
/// well-formed corpus seed for the protocol fuzz tests).
std::string render_request(const Request& request);

/// A parsed response body.
struct Response {
  bool ok = false;
  std::string endpoint;
  std::string table;       ///< report bytes when ok
  std::string error_code;  ///< wire error code when !ok
  std::string message;
};

std::string render_ok_response(std::string_view endpoint, std::string_view table);
std::string render_error_response(std::string_view code, std::string_view message);

/// Parses a response body; false when it is not valid response JSON.
[[nodiscard]] bool parse_response(std::string_view body, Response* out);

}  // namespace storsubsim::serve
