#include "serve/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace storsubsim::serve {

namespace {

[[nodiscard]] store::Error errno_error(std::string_view what) {
  std::string detail(what);
  detail.append(": ").append(std::strerror(errno));
  return store::make_error(store::ErrorCode::kIo, detail, 0);
}

}  // namespace

store::Error Client::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    std::string detail("socket path unusable (empty or too long): ");
    detail.append(socket_path);
    return store::make_error(store::ErrorCode::kBadValue, detail, 0);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return errno_error("cannot create socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string what("cannot connect to ");
    what.append(socket_path);
    store::Error err = errno_error(what);
    close();
    return err;
  }
  return store::Error{};
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

store::Error Client::call(std::string_view request_body, std::string* response_body) {
  if (fd_ < 0) {
    return store::make_error(store::ErrorCode::kIo, "client is not connected", 0);
  }
  if (!write_frame(fd_, request_body)) {
    close();
    return errno_error("cannot write request frame");
  }
  switch (read_frame(fd_, response_body)) {
    case FrameStatus::kOk:
      return store::Error{};
    case FrameStatus::kClosed:
      close();
      return store::make_error(store::ErrorCode::kIo,
                               "daemon closed the connection", 0);
    case FrameStatus::kTruncated:
      close();
      return store::make_error(store::ErrorCode::kTruncated,
                               "truncated response frame", 0);
    case FrameStatus::kOversized:
      close();
      return store::make_error(store::ErrorCode::kBadValue,
                               "oversized response frame", 0);
    case FrameStatus::kIoError:
    default: {
      store::Error err = errno_error("cannot read response frame");
      close();
      return err;
    }
  }
}

store::Error Client::request(const Request& request, Response* response) {
  std::string body;
  if (store::Error err = call(render_request(request), &body); !err.ok()) {
    return err;
  }
  if (!parse_response(body, response)) {
    close();
    return store::make_error(store::ErrorCode::kBadValue,
                             "malformed response body", 0);
  }
  return store::Error{};
}

}  // namespace storsubsim::serve
