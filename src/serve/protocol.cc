#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "obs/json.h"

namespace storsubsim::serve {

namespace {

// serve sits on the query hot path, so strings are built by appending into
// one buffer — no stream objects, no std::to_string, no literal
// concatenation (the same discipline storsim_lint enforces in src/store).

void append_f64(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  out.append(obs::json_escape(text));
  out.push_back('"');
}

[[nodiscard]] bool read_exact(int fd, char* buf, std::size_t n, bool* saw_eof) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      *saw_eof = true;
      return got == 0;  // "clean" only when nothing of this read arrived
    }
    if (errno == EINTR) continue;
    // A SO_RCVTIMEO expiry lands here as EAGAIN: treat like a vanished peer.
    *saw_eof = true;
    return false;
  }
  return true;
}

RequestError request_error(std::string_view code, std::string_view message) {
  RequestError err;
  err.code.assign(code);
  err.message.assign(message);
  return err;
}

[[nodiscard]] bool json_bool(const obs::JsonValue& value, bool* out) {
  if (value.type != obs::JsonValue::Type::kBool) return false;
  *out = value.boolean;
  return true;
}

}  // namespace

FrameStatus read_frame(int fd, std::string* body, std::uint32_t max_bytes) {
  char prefix[kFramePrefixBytes];
  bool saw_eof = false;
  if (!read_exact(fd, prefix, sizeof(prefix), &saw_eof)) {
    return saw_eof ? FrameStatus::kTruncated : FrameStatus::kIoError;
  }
  if (saw_eof) return FrameStatus::kClosed;
  std::uint32_t length = 0;
  std::memcpy(&length, prefix, sizeof(length));  // wire format is little-endian
  if (length > max_bytes) return FrameStatus::kOversized;
  body->resize(length);
  if (length == 0) return FrameStatus::kOk;
  saw_eof = false;
  if (!read_exact(fd, body->data(), length, &saw_eof)) {
    return saw_eof ? FrameStatus::kTruncated : FrameStatus::kIoError;
  }
  return FrameStatus::kOk;
}

bool write_frame(int fd, std::string_view body) {
  const auto length = static_cast<std::uint32_t>(body.size());
  char prefix[kFramePrefixBytes];
  std::memcpy(prefix, &length, sizeof(length));
  const auto write_all = [fd](const char* data, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
      // MSG_NOSIGNAL: a peer that closed mid-response must yield EPIPE, not
      // a process-killing SIGPIPE (the daemon outlives rude clients).
      const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
      if (w >= 0) {
        sent += static_cast<std::size_t>(w);
        continue;
      }
      if (errno == EINTR) continue;
      return false;
    }
    return true;
  };
  return write_all(prefix, sizeof(prefix)) && write_all(body.data(), body.size());
}

RequestError parse_request(std::string_view body, Request* out) {
  std::string parse_message;
  const auto doc = obs::parse_json(body, &parse_message);
  if (!doc.has_value()) return request_error("bad-json", parse_message);
  if (!doc->is_object()) {
    return request_error("bad-request", "request body must be a JSON object");
  }

  Request request;
  bool have_endpoint = false;
  for (const auto& [key, value] : doc->object) {
    if (key == "endpoint") {
      if (!value.is_string()) {
        return request_error("bad-request", "'endpoint' must be a string");
      }
      request.endpoint = value.string;
      have_endpoint = true;
    } else if (key == "csv") {
      if (!json_bool(value, &request.csv)) {
        return request_error("bad-request", "'csv' must be a boolean");
      }
    } else if (key == "params") {
      if (!value.is_object()) {
        return request_error("bad-request", "'params' must be an object");
      }
      for (const auto& [pkey, pvalue] : value.object) {
        if (pkey == "type" || pkey == "class" || pkey == "family" ||
            pkey == "group_by") {
          if (!pvalue.is_string()) {
            std::string message("param '");
            message.append(pkey).append("' must be a string");
            return request_error("bad-param", message);
          }
          if (pkey == "type") request.params.type = pvalue.string;
          if (pkey == "class") request.params.cls = pvalue.string;
          if (pkey == "family") request.params.family = pvalue.string;
          if (pkey == "group_by") request.params.group_by = pvalue.string;
        } else if (pkey == "from_days" || pkey == "to_days") {
          if (!pvalue.is_number()) {
            std::string message("param '");
            message.append(pkey).append("' must be a number");
            return request_error("bad-param", message);
          }
          if (pkey == "from_days") request.params.from_days = pvalue.number;
          if (pkey == "to_days") request.params.to_days = pvalue.number;
        } else {
          std::string message("unknown param '");
          message.append(pkey).append("'");
          return request_error("bad-param", message);
        }
      }
    } else {
      std::string message("unknown request key '");
      message.append(key).append("'");
      return request_error("bad-request", message);
    }
  }
  if (!have_endpoint) {
    return request_error("bad-request", "missing 'endpoint'");
  }
  *out = std::move(request);
  return RequestError{};
}

RequestError make_query(const QueryParams& params, store::Query* out) {
  // One validator for every front end: the daemon rejects exactly what the
  // offline CLI rejects, same wording, because they run the same code.
  core::AnalysisRequest request;
  if (RequestError err = core::AnalysisRequest::from_params(
          core::StatisticId::kQuery, params, false, &request);
      !err.ok()) {
    return err;
  }
  *out = request.query;
  return RequestError{};
}

std::string render_request(const Request& request) {
  std::string out;
  out.reserve(128);
  out.append("{\"endpoint\":");
  append_json_string(out, request.endpoint);
  if (request.csv) out.append(",\"csv\":true");
  if (!request.params.empty()) {
    out.append(",\"params\":{");
    bool first = true;
    const auto comma = [&first, &out] {
      if (!first) out.push_back(',');
      first = false;
    };
    if (!request.params.type.empty()) {
      comma();
      out.append("\"type\":");
      append_json_string(out, request.params.type);
    }
    if (!request.params.cls.empty()) {
      comma();
      out.append("\"class\":");
      append_json_string(out, request.params.cls);
    }
    if (!request.params.family.empty()) {
      comma();
      out.append("\"family\":");
      append_json_string(out, request.params.family);
    }
    if (request.params.from_days.has_value()) {
      comma();
      out.append("\"from_days\":");
      append_f64(out, *request.params.from_days);
    }
    if (request.params.to_days.has_value()) {
      comma();
      out.append("\"to_days\":");
      append_f64(out, *request.params.to_days);
    }
    if (!request.params.group_by.empty()) {
      comma();
      out.append("\"group_by\":");
      append_json_string(out, request.params.group_by);
    }
    out.push_back('}');
  }
  out.push_back('}');
  return out;
}

std::string render_ok_response(std::string_view endpoint, std::string_view table) {
  std::string out;
  out.reserve(table.size() + 64);
  out.append("{\"ok\":true,\"endpoint\":");
  append_json_string(out, endpoint);
  out.append(",\"table\":");
  append_json_string(out, table);
  out.push_back('}');
  return out;
}

std::string render_error_response(std::string_view code, std::string_view message) {
  std::string out;
  out.reserve(message.size() + 48);
  out.append("{\"ok\":false,\"error\":");
  append_json_string(out, code);
  out.append(",\"message\":");
  append_json_string(out, message);
  out.push_back('}');
  return out;
}

bool parse_response(std::string_view body, Response* out) {
  const auto doc = obs::parse_json(body);
  if (!doc.has_value() || !doc->is_object()) return false;
  const auto* ok = doc->find("ok");
  if (ok == nullptr || ok->type != obs::JsonValue::Type::kBool) return false;
  Response response;
  response.ok = ok->boolean;
  if (response.ok) {
    const auto* endpoint = doc->find("endpoint");
    const auto* table = doc->find("table");
    if (endpoint == nullptr || !endpoint->is_string() || table == nullptr ||
        !table->is_string()) {
      return false;
    }
    response.endpoint = endpoint->string;
    response.table = table->string;
  } else {
    const auto* code = doc->find("error");
    const auto* message = doc->find("message");
    if (code == nullptr || !code->is_string() || message == nullptr ||
        !message->is_string()) {
      return false;
    }
    response.error_code = code->string;
    response.message = message->string;
  }
  *out = std::move(response);
  return true;
}

}  // namespace storsubsim::serve
