// Blocking storsimd client: one unix-socket connection, framed
// request/response calls. Used by `storsubsim client`, the serve tests,
// and bench/serve_bench. Transport and protocol failures surface as typed
// store::Error (kIo = transport, kBadValue = malformed peer); daemon-side
// errors arrive as a parsed Response with ok == false.
#pragma once

#include <string>
#include <string_view>

#include "serve/protocol.h"
#include "store/format.h"

namespace storsubsim::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a listening daemon. Reconnecting an already-connected
  /// client closes the old connection first.
  [[nodiscard]] store::Error connect(const std::string& socket_path);
  void close() noexcept;
  bool connected() const noexcept { return fd_ >= 0; }

  /// One raw framed round trip: writes `request_body`, reads the response
  /// frame into `response_body`. The connection is closed on any transport
  /// error (the stream is unusable after one).
  [[nodiscard]] store::Error call(std::string_view request_body,
                                  std::string* response_body);

  /// Typed round trip: renders the request, calls, parses the response.
  /// A response that is not valid response JSON yields kBadValue.
  [[nodiscard]] store::Error request(const Request& request, Response* response);

 private:
  int fd_ = -1;
};

}  // namespace storsubsim::serve
