// storsimd: the long-lived query daemon behind `storsubsim serve`.
//
// One Daemon owns one read-only input — a monolithic STORCOL1 store or a
// STORSHARD1 shard directory — mapped and validated once at start(), and a
// unix-domain stream socket accepting any number of concurrent clients.
// Each connection gets a thread that reads length-prefixed frames
// (serve/protocol.h); request bodies execute on the daemon's util
// thread pool and render through core/analysis_render.h, so every answer
// is byte-identical to the offline `storsubsim analyze` / `store query`
// output for the same input. Shard mappings are managed by a ShardLru
// (--max-open-shards); query scans draw ScanScratch arenas from a reuse
// pool, so the steady-state query path allocates nothing but the response
// string.
//
// Shutdown is a drain: request_drain() (async-signal-safe — one byte down
// a self-pipe) stops the accept loop, lets in-flight requests finish, and
// serve() returns so the caller can flush manifests/traces. Connections
// idle at a frame boundary are closed; a connection mid-request completes
// that request first.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "replicate/replicate.h"
#include "serve/protocol.h"
#include "serve/shard_lru.h"
#include "store/reader.h"
#include "store/shards.h"
#include "util/parallel.h"

namespace storsubsim::serve {

struct ServeOptions {
  std::string input;        ///< store file or shard directory
  std::string socket_path;  ///< unix socket to bind (replaced if stale)
  std::size_t max_open_shards = 0;  ///< LRU cap; 0 = keep all shards mapped
  unsigned threads = 0;             ///< pool size; 0 = util::thread_count()
  /// Optional STORREP1 replicate table (storsubsim replicate --out). When
  /// set, the replicate_summary endpoint serves its rendered summary and
  /// the stats endpoint carries its provenance counters.
  std::string replicates;
};

/// Reusable pool of query-scan arenas. Warm requests pop an existing
/// scratch instead of allocating 12 KiB of bitmaps per query.
class ScratchPool {
 public:
  std::unique_ptr<store::ScanScratch> acquire();
  void release(std::unique_ptr<store::ScanScratch> scratch);

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<store::ScanScratch>> free_;
};

class Daemon {
 public:
  Daemon() = default;
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Opens and validates the input (every shard is validated up front, then
  /// the LRU trims to the cap), builds the thread pool, binds the socket.
  [[nodiscard]] store::Error start(const ServeOptions& options);

  /// Accepts connections until request_drain(); returns after every
  /// connection thread has been joined and the socket unlinked. Call after
  /// a successful start().
  [[nodiscard]] store::Error serve();

  /// Initiates a graceful drain. Async-signal-safe; callable from any
  /// thread or from a signal handler (directly or via drain_signal_fd()).
  void request_drain() noexcept;

  /// The write end of the drain self-pipe: a signal handler writing one
  /// byte here is equivalent to request_drain().
  int drain_signal_fd() const noexcept { return drain_write_fd_; }

  bool sharded() const noexcept { return sharded_; }
  /// Non-null after start() on a shard directory (test introspection).
  const ShardLru* lru() const noexcept { return lru_.get(); }

  /// Computes the response body for one request body (exposed for the
  /// in-process protocol tests; never throws).
  std::string handle_request(std::string_view body);

 private:
  void close_fds() noexcept;
  void connection_loop(int fd);
  std::string dispatch(const Request& request);
  std::string run_analysis(const Request& request);
  std::string run_store_query(const Request& request);
  std::string run_replicate_summary(const Request& request);

  ServeOptions options_;
  bool sharded_ = false;
  store::EventStore event_store_;
  store::ShardStore shard_store_;
  replicate::ReplicateSummary replicate_summary_;
  bool have_replicates_ = false;
  std::unique_ptr<ShardLru> lru_;
  std::unique_ptr<util::ThreadPool> pool_;
  ScratchPool scratch_pool_;

  int listen_fd_ = -1;
  int drain_read_fd_ = -1;
  int drain_write_fd_ = -1;
  std::atomic<bool> draining_{false};

  std::mutex connections_mutex_;
  std::vector<std::thread> connections_;
};

}  // namespace storsubsim::serve
