// Process peak-RSS probe.
//
// The sharded build path (docs/STORE.md) promises bounded peak memory; this
// reads the number that proves it. Linux exposes the high-water mark as
// VmHWM in /proc/self/status; elsewhere the probe degrades gracefully to 0
// ("unknown") rather than guessing, so callers record it unconditionally and
// consumers treat 0 as "not measured on this platform".
#pragma once

#include <cstdint>

namespace storsubsim::util {

/// Peak resident set size of this process in bytes (VmHWM), or 0 when the
/// platform does not expose it. Monotone non-decreasing over a process
/// lifetime — read it after the phase you want to bound.
std::uint64_t peak_rss_bytes() noexcept;

}  // namespace storsubsim::util
