#include "util/rss.h"

#include <cstdio>
#include <cstring>

namespace storsubsim::util {

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    // "VmHWM:     123456 kB" — the peak resident set size.
    if (std::strncmp(line, "VmHWM:", 6) != 0) continue;
    const char* p = line + 6;
    while (*p == ' ' || *p == '\t') ++p;
    while (*p >= '0' && *p <= '9') {
      kib = kib * 10 + static_cast<std::uint64_t>(*p - '0');
      ++p;
    }
    break;
  }
  std::fclose(f);
  return kib * 1024;
#else
  return 0;  // not exposed on this platform
#endif
}

}  // namespace storsubsim::util
