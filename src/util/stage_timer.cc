#include "util/stage_timer.h"

#include <chrono>

namespace storsubsim::util {

double monotonic_seconds() noexcept {
  // The project's only wall-clock read: keeping it in one function makes the
  // "timings are outputs, never inputs" rule auditable at a single site.
  // storsim-lint: allow(nondeterminism) reason=observability-only stage timing; values are reported, never fed back into simulation or analysis
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace storsubsim::util
