#include "util/stage_timer.h"

#include "obs/span.h"

namespace storsubsim::util {

double monotonic_seconds() noexcept {
  // Delegates to the observability layer's single wall-clock site
  // (src/obs/span.cc) so every timer in the tree shares one epoch — spans,
  // StageTimer laps, and bench deltas all line up on the same axis.
  return obs::now_seconds();
}

}  // namespace storsubsim::util
