// StageTimer — lightweight wall-clock lap timer for pipeline observability.
//
// The dataset pipeline reports how long each stage (simulate, emit, parse,
// classify, sort) took so the benches can attribute regressions to a stage
// instead of re-bisecting the whole run. Timings are observability only:
// they are additive outputs (never inputs), so they do not violate the
// determinism contract — the classified dataset is byte-identical whether
// or not anyone reads the timer.
#pragma once

namespace storsubsim::util {

/// Seconds on a monotonic clock with an arbitrary epoch. Differences are
/// meaningful; absolute values are not.
double monotonic_seconds() noexcept;

/// Measures consecutive stages: construct, run stage, call `lap()`, repeat.
class StageTimer {
 public:
  StageTimer() noexcept : start_(monotonic_seconds()), last_(start_) {}

  /// Seconds since the previous lap (or construction), and starts the next.
  double lap() noexcept {
    const double now = monotonic_seconds();
    const double elapsed = now - last_;
    last_ = now;
    return elapsed;
  }

  /// Seconds since construction; does not affect laps.
  double total() const noexcept { return monotonic_seconds() - start_; }

 private:
  double start_;
  double last_;
};

}  // namespace storsubsim::util
