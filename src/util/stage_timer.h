// StageTimer — lightweight wall-clock lap timer for pipeline observability.
//
// \deprecated Superseded by obs::Span (src/obs/span.h), which measures the
// same wall-clock deltas off the same epoch *and* feeds the Chrome trace
// exporter. New code in instrumented directories (src/sim, src/log,
// src/store) must use obs::Span — storsim-lint's timer-discipline rule
// enforces this. StageTimer remains for existing out-of-tree callers; its
// clock now delegates to obs::now_seconds(), so laps and spans share one
// epoch. Timings are observability only: they are additive outputs (never
// inputs), so they do not violate the determinism contract — the classified
// dataset is byte-identical whether or not anyone reads the timer.
#pragma once

namespace storsubsim::util {

/// Seconds on a monotonic clock with an arbitrary epoch. Differences are
/// meaningful; absolute values are not.
double monotonic_seconds() noexcept;

/// Measures consecutive stages: construct, run stage, call `lap()`, repeat.
class StageTimer {
 public:
  StageTimer() noexcept : start_(monotonic_seconds()), last_(start_) {}

  /// Seconds since the previous lap (or construction), and starts the next.
  double lap() noexcept {
    const double now = monotonic_seconds();
    const double elapsed = now - last_;
    last_ = now;
    return elapsed;
  }

  /// Seconds since construction; does not affect laps.
  double total() const noexcept { return monotonic_seconds() - start_; }

 private:
  double start_;
  double last_;
};

}  // namespace storsubsim::util
