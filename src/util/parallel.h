// Deterministic work-scheduling layer: a fixed thread pool plus a
// statically-chunked parallel_for.
//
// Design rules that keep parallel runs bit-identical to serial runs:
//   * Work is partitioned into contiguous index ranges with a fixed rule
//     (static chunking), so the assignment of items to chunks never depends
//     on timing.
//   * Callers write into pre-sized per-item (or per-chunk) buffers and merge
//     them in index order afterward; nothing is appended to shared state
//     from inside worker threads.
//   * Randomness must come from named RNG substreams keyed by item index
//     (see stats::Rng::stream), never from a shared sequential stream.
//
// The effective worker count is resolved from, in priority order: an
// explicit per-call override, the process-wide set_thread_count() value
// (wired to --threads flags), the STORSIM_THREADS environment variable, and
// finally std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace storsubsim::util {

/// A fixed-size pool of worker threads consuming a FIFO task queue.
/// Destruction drains outstanding tasks, then joins. Tasks must not throw;
/// parallel_for wraps user bodies to capture exceptions instead.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Safe to call from any thread, including pool workers.
  void submit(std::function<void()> task);

  /// True when called from one of this pool's worker threads.
  bool on_worker_thread() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// max(1, std::thread::hardware_concurrency()).
unsigned hardware_threads();

/// Sets the process-wide thread count; 0 restores the default (env var /
/// hardware concurrency). The shared pool is resized lazily on next use.
void set_thread_count(unsigned n);

/// The resolved process-wide thread count: set_thread_count() override,
/// else STORSIM_THREADS, else hardware_threads().
unsigned thread_count();

/// Runs body(begin, end) over disjoint contiguous chunks covering [0, n),
/// using up to `threads` workers (0 = resolved thread_count()). Chunk
/// boundaries depend only on (n, effective worker count), never on timing.
/// Blocks until every chunk finished; the first exception thrown by a body
/// is rethrown in the caller. Runs inline when the effective worker count
/// is 1, when n < 2, or when called from inside a pool worker (no nested
/// parallelism — the partitioning of the *outer* loop stays fixed).
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
                  unsigned threads = 0);

}  // namespace storsubsim::util
