#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "obs/registry.h"

namespace storsubsim::util {

namespace {

// Pool telemetry. Everything here is a property of one particular
// interleaving (queue depths, how many chunks a given fan-out produced), so
// it is registered scheduling-dependent and excluded from deterministic
// snapshot views.
obs::Counter& tasks_submitted_counter() {
  static obs::Counter c = obs::registry().counter(
      "pool.tasks_submitted", obs::Stability::kSchedulingDependent);
  return c;
}

obs::Counter& chunks_inline_counter() {
  static obs::Counter c = obs::registry().counter(
      "pool.parallel_for_inline", obs::Stability::kSchedulingDependent);
  return c;
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge g = obs::registry().gauge("pool.queue_depth_max");
  return g;
}

thread_local const ThreadPool* tl_current_pool = nullptr;

std::atomic<unsigned> g_thread_override{0};

unsigned env_threads() {
  const char* raw = std::getenv("STORSIM_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || v <= 0) return 0;
  return static_cast<unsigned>(v);
}

/// The shared pool, rebuilt when the resolved thread count changes. Guarded
/// by its own mutex; parallel_for holds no lock while work is running.
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

ThreadPool& shared_pool(unsigned threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool || g_pool->size() != threads) {
    g_pool.reset();  // join the old workers before spawning new ones
    g_pool = std::make_unique<ThreadPool>(threads);
  }
  return *g_pool;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads == 0 ? 1 : threads);
  for (unsigned i = 0; i < (threads == 0 ? 1 : threads); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  cv_.notify_one();
  tasks_submitted_counter().add(1);
  queue_depth_gauge().update_max(depth);
}

bool ThreadPool::on_worker_thread() const { return tl_current_pool == this; }

void ThreadPool::worker_loop() {
  tl_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

void set_thread_count(unsigned n) { g_thread_override.store(n, std::memory_order_relaxed); }

unsigned thread_count() {
  const unsigned o = g_thread_override.load(std::memory_order_relaxed);
  if (o != 0) return o;
  const unsigned e = env_threads();
  return e != 0 ? e : hardware_threads();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
                  unsigned threads) {
  if (n == 0) return;
  unsigned effective = threads != 0 ? threads : thread_count();
  if (effective > n) effective = static_cast<unsigned>(n);

  // Inline fast path: serial request, trivial loop, or nested call from a
  // worker (nesting would deadlock a fixed pool and change nothing about
  // the outer loop's fixed partitioning).
  if (effective <= 1 || n < 2 || tl_current_pool != nullptr) {
    chunks_inline_counter().add(1);
    body(0, n);
    return;
  }

  struct Shared {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::exception_ptr error;
  };
  Shared shared;
  shared.remaining = effective;

  ThreadPool& pool = shared_pool(thread_count());

  auto run_chunk = [&body, &shared](std::size_t begin, std::size_t end) {
    try {
      body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(shared.mutex);
      if (!shared.error) shared.error = std::current_exception();
    }
    // Notify while holding the mutex: the waiting caller destroys `shared`
    // as soon as it observes remaining == 0, and it can only observe that
    // after this unlock — so the condition variable outlives the signal.
    std::lock_guard<std::mutex> lock(shared.mutex);
    --shared.remaining;
    shared.done_cv.notify_one();
  };

  // Static chunking: chunk c owns [c*n/e, (c+1)*n/e). The caller executes
  // the last chunk itself instead of idling.
  for (unsigned c = 0; c + 1 < effective; ++c) {
    const std::size_t begin = n * c / effective;
    const std::size_t end = n * (c + 1) / effective;
    pool.submit([run_chunk, begin, end] { run_chunk(begin, end); });
  }
  run_chunk(n * (effective - 1) / effective, n);

  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.done_cv.wait(lock, [&shared] { return shared.remaining == 0; });
  if (shared.error) std::rethrow_exception(shared.error);
}

}  // namespace storsubsim::util
