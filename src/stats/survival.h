// Survival analysis with right-censoring.
//
// Disk lifetime data is censored: most disks outlive the study window, so
// naive lifetime averages are biased. The Kaplan-Meier estimator handles
// censoring exactly; the actuarial age-binned hazard estimator is what the
// age-dependence analyses use (is the hazard constant? is there infant
// mortality?).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace storsubsim::stats {

/// One observation: how long the subject was watched, and whether the watch
/// ended in the event (true) or in censoring (false).
struct SurvivalObservation {
  double duration = 0.0;
  bool event = false;
};

struct SurvivalPoint {
  double time = 0.0;        ///< event time
  double survival = 1.0;    ///< S(t) just after this event time
  std::size_t at_risk = 0;  ///< subjects at risk just before
  std::size_t events = 0;   ///< events at exactly this time
};

/// Product-limit (Kaplan-Meier) survival curve.
class KaplanMeier {
 public:
  static KaplanMeier fit(std::span<const SurvivalObservation> observations);

  /// S(t): probability of surviving beyond t.
  double survival(double t) const;

  /// Smallest t with S(t) <= 0.5; +inf when the curve never reaches it
  /// (heavy censoring — the common case for disks).
  double median() const;

  /// Greenwood variance of S(t) (for confidence bands).
  double greenwood_variance(double t) const;

  const std::vector<SurvivalPoint>& curve() const { return points_; }
  std::size_t subjects() const { return n_; }
  std::size_t total_events() const { return events_; }

 private:
  std::vector<SurvivalPoint> points_;
  std::vector<double> greenwood_;  // cumulative sum d/(n(n-d)) per point
  std::size_t n_ = 0;
  std::size_t events_ = 0;
};

struct HazardBin {
  double age_lo = 0.0;
  double age_hi = 0.0;
  std::size_t events = 0;
  double exposure = 0.0;  ///< subject-time spent inside this age band
  /// Events per unit exposure (e.g. per subject-second if durations are in
  /// seconds).
  double rate() const { return exposure > 0.0 ? static_cast<double>(events) / exposure : 0.0; }
};

/// Actuarial piecewise-constant hazard: for each [edge_i, edge_{i+1}) age
/// band, events landing in the band divided by the exposure every subject
/// contributed to the band.
std::vector<HazardBin> hazard_by_age(std::span<const SurvivalObservation> observations,
                                     std::span<const double> edges);

}  // namespace storsubsim::stats
