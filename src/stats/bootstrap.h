// Percentile bootstrap for arbitrary statistics — used where no closed-form
// interval exists (e.g. the empirical-vs-theoretical P(2) correlation factor).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "stats/intervals.h"
#include "stats/rng.h"

namespace storsubsim::stats {

/// Draws `replicates` bootstrap resamples of `sample`, applies `statistic`
/// to each, and returns the percentile CI plus the point estimate on the
/// original sample.
///
/// Replicates are split across util::thread_count() workers; each replicate
/// draws from its own substream of a fork of `rng`, so results are
/// deterministic given `rng` and bit-identical for any thread count.
/// `statistic` may be called concurrently and must be thread-safe.
Interval bootstrap_ci(std::span<const double> sample,
                      const std::function<double(std::span<const double>)>& statistic,
                      double confidence, std::size_t replicates, Rng& rng);

/// Raw bootstrap distribution of a statistic (sorted ascending).
std::vector<double> bootstrap_distribution(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, std::size_t replicates,
    Rng& rng);

}  // namespace storsubsim::stats
