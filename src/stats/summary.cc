#include "stats/summary.h"

#include <cmath>
#include <limits>

namespace storsubsim::stats {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::population_variance() const {
  return n_ < 1 ? 0.0 : m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::std_error() const {
  return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double Accumulator::sum() const { return mean_ * static_cast<double>(n_); }

double Accumulator::coefficient_of_variation() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

void WeightedAccumulator::add(double x, double weight) {
  if (weight <= 0.0) return;
  ++n_;
  w_ += weight;
  const double delta = x - mean_;
  mean_ += delta * weight / w_;
  m2_ += weight * delta * (x - mean_);
}

double WeightedAccumulator::mean() const { return w_ == 0.0 ? 0.0 : mean_; }

double WeightedAccumulator::variance() const { return w_ == 0.0 ? 0.0 : m2_ / w_; }

double WeightedAccumulator::stddev() const { return std::sqrt(variance()); }

double mean_of(std::span<const double> xs) {
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  return acc.mean();
}

double variance_of(std::span<const double> xs) {
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  return acc.variance();
}

double stddev_of(std::span<const double> xs) { return std::sqrt(variance_of(xs)); }

}  // namespace storsubsim::stats
