// Special mathematical functions used by the distribution and inference code.
//
// All functions are pure, thread-safe, and defined for the real domains the
// statistics layer needs. Accuracy targets ~1e-10 relative error on the
// interior of each domain, which is ample for failure-rate inference.
#pragma once

namespace storsubsim::stats {

/// Natural log of the gamma function, x > 0. (Lanczos approximation.)
double lgamma_fn(double x);

/// Gamma function, x > 0. Overflows to +inf for x > ~171.
double gamma_fn(double x);

/// Digamma (psi) function, x > 0: d/dx ln Gamma(x).
double digamma(double x);

/// Trigamma function, x > 0: d^2/dx^2 ln Gamma(x).
double trigamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a),
/// a > 0, x >= 0. Monotone from 0 to 1 in x.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Inverse of gamma_p in x for fixed a: returns x with P(a, x) = p.
double gamma_p_inv(double a, double p);

/// Error function.
double erf_fn(double x);

/// Complementary error function, accurate for large |x|.
double erfc_fn(double x);

/// Standard normal CDF.
double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation + one
/// Halley refinement). p in (0, 1).
double normal_quantile(double p);

/// Regularized incomplete beta I_x(a, b); a, b > 0; x in [0, 1].
double beta_inc(double a, double b, double x);

/// Log of the beta function B(a, b).
double lbeta(double a, double b);

/// Student-t CDF with `nu` degrees of freedom.
double student_t_cdf(double t, double nu);

/// Two-sided p-value for a Student-t statistic.
double student_t_two_sided_p(double t, double nu);

/// Student-t quantile (inverse CDF), p in (0, 1).
double student_t_quantile(double p, double nu);

/// Chi-square upper tail probability with k degrees of freedom.
double chi_square_sf(double x, double k);

/// Chi-square quantile: x with CDF(x; k) = p.
double chi_square_quantile(double p, double k);

}  // namespace storsubsim::stats
