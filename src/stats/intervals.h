// Confidence intervals for proportions, rates and means. The paper reports
// 99.5% and 99.9% confidence intervals on per-cohort AFR estimates
// (Figures 6, 7, 10); these helpers produce the matching error bars.
#pragma once

#include <cstddef>

namespace storsubsim::stats {

struct Interval {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;

  double half_width() const { return 0.5 * (upper - lower); }
  bool contains(double x) const { return x >= lower && x <= upper; }
  bool overlaps(const Interval& other) const {
    return lower <= other.upper && other.lower <= upper;
  }
};

/// Normal-approximation (Wald) CI for a binomial proportion.
Interval proportion_ci_wald(std::size_t successes, std::size_t total, double confidence);

/// Wilson score interval — well-behaved for small counts and extreme p.
Interval proportion_ci_wilson(std::size_t successes, std::size_t total, double confidence);

/// CI for a Poisson rate given `events` over `exposure` (e.g. device-years):
/// exact Garwood interval via chi-square quantiles. Returns the rate, i.e.
/// events per unit exposure.
Interval rate_ci_garwood(std::size_t events, double exposure, double confidence);

/// Normal-approximation CI for a Poisson rate (events / exposure).
Interval rate_ci_normal(std::size_t events, double exposure, double confidence);

/// t-based CI for a mean from summary statistics.
Interval mean_ci(double mean, double sample_variance, std::size_t n, double confidence);

}  // namespace storsubsim::stats
