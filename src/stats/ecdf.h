// Empirical cumulative distribution functions.
//
// Figure 9 of the paper plots empirical CDFs of time-between-failures on a
// log-spaced time axis from 1 second to 1e8 seconds; `log_grid` produces the
// matching evaluation grid.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace storsubsim::stats {

/// Immutable empirical CDF over a sample. Construction sorts a copy of the
/// data; evaluation is O(log n).
class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> sample);

  /// Fraction of observations <= x.
  double operator()(double x) const;

  /// p-th sample quantile (type-7 / linear interpolation), p in [0, 1].
  double quantile(double p) const;

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  double min() const;
  double max() const;
  const std::vector<double>& sorted_sample() const { return sorted_; }

  /// Evaluates the CDF at each grid point.
  std::vector<double> evaluate(std::span<const double> grid) const;

 private:
  std::vector<double> sorted_;
};

/// Log-spaced grid of `points` values spanning [lo, hi] inclusive (lo > 0).
std::vector<double> log_grid(double lo, double hi, std::size_t points);

/// Kolmogorov–Smirnov distance between an ECDF and a model CDF evaluated as
/// a callable double(double).
template <typename Cdf>
double ks_distance(const Ecdf& ecdf, Cdf&& model) {
  double d = 0.0;
  const auto& xs = ecdf.sorted_sample();
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double f = model(xs[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    const double gap = std::max(f - lo, hi - f);
    if (gap > d) d = gap;
  }
  return d;
}

}  // namespace storsubsim::stats
