#include "stats/special_functions.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace storsubsim::stats {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kEps = 2.220446049250313e-16;

// Lanczos coefficients (g = 7, n = 9), standard set.
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
    771.32342877765313,   -176.61502916214059,   12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

}  // namespace

double lgamma_fn(double x) {
  if (!(x > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  if (x < 0.5) {
    // Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x).
    return std::log(kPi / std::sin(kPi * x)) - lgamma_fn(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kLanczos[0];
  for (int i = 1; i < 9; ++i) sum += kLanczos[i] / (z + static_cast<double>(i));
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * kPi) + (z + 0.5) * std::log(t) - t + std::log(sum);
}

double gamma_fn(double x) { return std::exp(lgamma_fn(x)); }

double digamma(double x) {
  if (!(x > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  double result = 0.0;
  // Shift x upward until the asymptotic series is accurate (error
  // ~1/(132 x^10), so x >= 10 gives ~7e-13).
  while (x < 10.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic expansion: ln x - 1/(2x) - sum B_{2n} / (2n x^{2n}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv;
  result -= inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

double trigamma(double x) {
  if (!(x > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  double result = 0.0;
  while (x < 10.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0))));
  return result;
}

namespace {

// Series expansion for P(a, x), effective for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 1000; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - lgamma_fn(a));
}

// Continued fraction for Q(a, x), effective for x >= a + 1. (Lentz.)
double gamma_q_cf(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - lgamma_fn(a)) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (!(a > 0.0) || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double gamma_p_inv(double a, double p) {
  if (!(a > 0.0) || !(p >= 0.0) || !(p <= 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (p == 0.0) return 0.0;
  if (p == 1.0) return std::numeric_limits<double>::infinity();
  // Initial guess (Wilson–Hilferty), then Newton with analytic derivative.
  double x;
  const double g = lgamma_fn(a);
  if (a > 1.0) {
    const double z = normal_quantile(p);
    const double t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * std::sqrt(a));
    x = a * t * t * t;
    if (x <= 0.0) x = 1e-8;
  } else {
    const double t = 1.0 - a * (0.253 + a * 0.12);
    x = (p < t) ? std::pow(p / t, 1.0 / a) : 1.0 - std::log((1.0 - p) / (1.0 - t));
  }
  for (int iter = 0; iter < 60; ++iter) {
    const double err = gamma_p(a, x) - p;
    const double dpdx = std::exp(-x + (a - 1.0) * std::log(x) - g);
    if (dpdx == 0.0) break;
    double dx = err / dpdx;
    // Halley-style damping to stay in the domain.
    double x_new = x - dx;
    if (x_new <= 0.0) x_new = 0.5 * x;
    if (std::fabs(x_new - x) < 1e-12 * std::fabs(x) + 1e-300) {
      x = x_new;
      break;
    }
    x = x_new;
  }
  return x;
}

double erf_fn(double x) { return std::erf(x); }

double erfc_fn(double x) { return std::erfc(x); }

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Acklam's rational approximation.
  static constexpr double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                  -2.759285104469687e+02, 1.383577518672690e+02,
                                  -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                  -2.400758277161838e+00, -2.549732539343734e+00,
                                  4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                                  2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement against the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double lbeta(double a, double b) { return lgamma_fn(a) + lgamma_fn(b) - lgamma_fn(a + b); }

namespace {

// Continued fraction for the incomplete beta function (Lentz).
double beta_cf(double a, double b, double x) {
  const double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 1000; ++m) {
    const double md = static_cast<double>(m);
    const double m2 = 2.0 * md;
    double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double beta_inc(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0) || x < 0.0 || x > 1.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = a * std::log(x) + b * std::log(1.0 - x) - lbeta(a, b);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double nu) {
  if (!(nu > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  const double x = nu / (nu + t * t);
  const double p_half = 0.5 * beta_inc(0.5 * nu, 0.5, x);
  return (t >= 0.0) ? 1.0 - p_half : p_half;
}

double student_t_two_sided_p(double t, double nu) {
  if (!(nu > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  const double x = nu / (nu + t * t);
  return beta_inc(0.5 * nu, 0.5, x);
}

double student_t_quantile(double p, double nu) {
  if (!(p > 0.0) || !(p < 1.0) || !(nu > 0.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Bisection on the CDF: robust and fast enough for inference-time use.
  double lo = -1.0, hi = 1.0;
  while (student_t_cdf(lo, nu) > p) lo *= 2.0;
  while (student_t_cdf(hi, nu) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, nu) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + std::fabs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

double chi_square_sf(double x, double k) {
  if (!(k > 0.0) || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  return gamma_q(0.5 * k, 0.5 * x);
}

double chi_square_quantile(double p, double k) {
  if (!(k > 0.0) || !(p >= 0.0) || !(p < 1.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return 2.0 * gamma_p_inv(0.5 * k, p);
}

}  // namespace storsubsim::stats
