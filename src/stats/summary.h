// Streaming summary statistics (Welford accumulators) and small helpers.
#pragma once

#include <cstddef>
#include <span>

namespace storsubsim::stats {

/// Numerically stable streaming accumulator for mean/variance/extremes.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  /// Population variance (n denominator); 0 for n < 1.
  double population_variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double std_error() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const;
  /// Coefficient of variation stddev/mean; 0 when mean == 0.
  double coefficient_of_variation() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Weighted variant: each observation carries a nonnegative weight
/// (e.g. exposure time in device-years).
class WeightedAccumulator {
 public:
  void add(double x, double weight);

  double total_weight() const { return w_; }
  double mean() const;
  /// Frequency-weighted population variance.
  double variance() const;
  double stddev() const;
  std::size_t count() const { return n_; }

 private:
  std::size_t n_ = 0;
  double w_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// One-shot helpers over a span.
double mean_of(std::span<const double> xs);
double variance_of(std::span<const double> xs);  // sample variance (n-1)
double stddev_of(std::span<const double> xs);

}  // namespace storsubsim::stats
