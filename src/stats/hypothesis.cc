#include "stats/hypothesis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special_functions.h"
#include "stats/summary.h"

namespace storsubsim::stats {

TTestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  Accumulator aa, ab;
  for (const double x : a) aa.add(x);
  for (const double x : b) ab.add(x);
  return welch_t_test_summary(aa.mean(), aa.variance(), aa.count(), ab.mean(), ab.variance(),
                              ab.count());
}

TTestResult welch_t_test_summary(double mean_a, double var_a, std::size_t n_a, double mean_b,
                                 double var_b, std::size_t n_b) {
  if (n_a < 2 || n_b < 2) throw std::invalid_argument("welch_t_test: need n >= 2 per group");
  TTestResult r;
  r.mean_a = mean_a;
  r.mean_b = mean_b;
  r.difference = mean_a - mean_b;
  const double na = static_cast<double>(n_a);
  const double nb = static_cast<double>(n_b);
  const double sa = var_a / na;
  const double sb = var_b / nb;
  const double se2 = sa + sb;
  if (se2 <= 0.0) {
    // Identical, dispersion-free groups: no evidence either way.
    r.t_statistic = 0.0;
    r.degrees_of_freedom = na + nb - 2.0;
    r.p_value_two_sided = (mean_a == mean_b) ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = (mean_a - mean_b) / std::sqrt(se2);
  // Welch–Satterthwaite degrees of freedom.
  r.degrees_of_freedom =
      se2 * se2 / (sa * sa / (na - 1.0) + sb * sb / (nb - 1.0));
  r.p_value_two_sided = student_t_two_sided_p(r.t_statistic, r.degrees_of_freedom);
  return r;
}

TTestResult two_proportion_test(std::size_t successes_a, std::size_t total_a,
                                std::size_t successes_b, std::size_t total_b) {
  if (total_a == 0 || total_b == 0) {
    throw std::invalid_argument("two_proportion_test: empty cohort");
  }
  const double na = static_cast<double>(total_a);
  const double nb = static_cast<double>(total_b);
  const double pa = static_cast<double>(successes_a) / na;
  const double pb = static_cast<double>(successes_b) / nb;
  TTestResult r;
  r.mean_a = pa;
  r.mean_b = pb;
  r.difference = pa - pb;
  const double pooled = (static_cast<double>(successes_a) + static_cast<double>(successes_b)) /
                        (na + nb);
  const double se = std::sqrt(pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb));
  if (se == 0.0) {
    r.t_statistic = 0.0;
    r.degrees_of_freedom = na + nb - 2.0;
    r.p_value_two_sided = (pa == pb) ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = (pa - pb) / se;
  r.degrees_of_freedom = na + nb - 2.0;
  // Large-sample z: normal tail doubles.
  r.p_value_two_sided = 2.0 * (1.0 - normal_cdf(std::fabs(r.t_statistic)));
  return r;
}

ChiSquareResult chi_square_gof(std::span<const double> xs,
                               const std::function<double(double)>& model_cdf,
                               const std::function<double(double)>& model_quantile,
                               std::size_t fitted_params, std::size_t bins) {
  if (xs.empty()) throw std::invalid_argument("chi_square_gof: empty sample");
  const std::size_t n = xs.size();
  // Enforce a minimum expected count of ~5 per bin.
  std::size_t b = std::min(bins, std::max<std::size_t>(2, n / 5));
  if (b < 2) b = 2;

  std::vector<double> edges;
  edges.reserve(b - 1);
  for (std::size_t i = 1; i < b; ++i) {
    edges.push_back(model_quantile(static_cast<double>(i) / static_cast<double>(b)));
  }
  std::vector<double> observed(b, 0.0);
  for (const double x : xs) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), x);
    observed[static_cast<std::size_t>(it - edges.begin())] += 1.0;
  }
  // Expected counts are exactly n/b by equal-probability construction, but
  // compute from the CDF so a mismatched (cdf, quantile) pair is detected by
  // tests rather than hidden.
  std::vector<double> expected(b, 0.0);
  double prev = 0.0;
  for (std::size_t i = 0; i + 1 < b; ++i) {
    const double c = model_cdf(edges[i]);
    expected[i] = (c - prev) * static_cast<double>(n);
    prev = c;
  }
  expected[b - 1] = (1.0 - prev) * static_cast<double>(n);
  return chi_square_from_counts(observed, expected, fitted_params);
}

ChiSquareResult chi_square_from_counts(std::span<const double> observed,
                                       std::span<const double> expected,
                                       std::size_t fitted_params) {
  if (observed.size() != expected.size() || observed.empty()) {
    throw std::invalid_argument("chi_square_from_counts: size mismatch");
  }
  ChiSquareResult r;
  double stat = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) continue;
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
    ++used;
  }
  if (used <= fitted_params + 1) {
    throw std::invalid_argument("chi_square_from_counts: not enough usable bins");
  }
  r.statistic = stat;
  r.bins_used = used;
  r.degrees_of_freedom = static_cast<double>(used - 1 - fitted_params);
  r.p_value = chi_square_sf(stat, r.degrees_of_freedom);
  return r;
}

double kolmogorov_sf(double x) {
  if (x <= 0.0) return 1.0;
  // Q(x) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2); converges fast for the
  // x range of interest. For tiny x use the complementary (theta-function)
  // expansion to avoid catastrophic cancellation.
  if (x < 0.4) {
    // P(x) = sqrt(2 pi)/x * sum exp(-(2k-1)^2 pi^2 / (8 x^2)); Q = 1 - P.
    const double pi = 3.14159265358979323846;
    double p = 0.0;
    for (int k = 1; k <= 5; ++k) {
      const double m = (2.0 * k - 1.0) * pi / x;
      p += std::exp(-m * m / 8.0);
    }
    p *= std::sqrt(2.0 * pi) / x;
    return std::max(0.0, 1.0 - p);
  }
  double q = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    q += sign * term;
    sign = -sign;
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * q, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> xs,
                 const std::function<double(double)>& model_cdf) {
  if (xs.empty()) throw std::invalid_argument("ks_test: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = model_cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(f - lo, hi - f));
  }
  KsResult r;
  r.statistic = d;
  r.n = sorted.size();
  // Asymptotic with the Stephens small-sample correction.
  const double sqrt_n = std::sqrt(n);
  r.p_value = kolmogorov_sf((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return r;
}

}  // namespace storsubsim::stats
