// Deterministic, splittable random number generation.
//
// Every stochastic object in the simulator draws from its own `Rng` stream,
// derived from a root seed plus a structured key (e.g. "disk-hazard",
// system id, shelf id). Streams derived from distinct keys are statistically
// independent, and a given (seed, key) pair always yields the same sequence,
// which makes whole-fleet simulations bit-reproducible regardless of the
// order in which subsystems consume randomness.
#pragma once

#include <cstdint>
#include <string_view>

namespace storsubsim::stats {

/// PCG64 (XSL-RR variant) — O'Neill's permuted congruential generator.
/// 128-bit state, 64-bit output. Small, fast, and passes BigCrush; we use it
/// instead of std::mt19937_64 because its state is trivially seedable from a
/// hash without warm-up bias and it supports cheap distinct streams.
class Pcg64 {
 public:
  using result_type = std::uint64_t;

  /// Seeds state and stream selector. Any values are acceptable; the
  /// constructor scrambles them through the output function before first use.
  explicit Pcg64(std::uint64_t seed_hi = 0x853c49e6748fea9bULL,
                 std::uint64_t seed_lo = 0xda3e39cb94b95bdbULL,
                 std::uint64_t stream = 0x5851f42d4c957f2dULL) noexcept {
    state_hi_ = 0;
    state_lo_ = 0;
    // Stream selector must be odd; fold the requested stream into it.
    inc_hi_ = stream;
    inc_lo_ = (stream << 1u) | 1u;
    step();
    add128(state_hi_, state_lo_, seed_hi, seed_lo);
    step();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    step();
    return output();
  }

  /// Advances the generator by one step without producing output.
  void discard(std::uint64_t n) noexcept {
    for (std::uint64_t i = 0; i < n; ++i) step();
  }

 private:
  static void add128(std::uint64_t& hi, std::uint64_t& lo, std::uint64_t add_hi,
                     std::uint64_t add_lo) noexcept {
    const std::uint64_t old_lo = lo;
    lo += add_lo;
    hi += add_hi + (lo < old_lo ? 1u : 0u);
  }

  static void mul128(std::uint64_t& hi, std::uint64_t& lo, std::uint64_t m_hi,
                     std::uint64_t m_lo) noexcept {
    // 128x128 -> low 128 bits.
    const std::uint64_t a = lo >> 32u, b = lo & 0xffffffffULL;
    const std::uint64_t c = m_lo >> 32u, d = m_lo & 0xffffffffULL;
    const std::uint64_t bd = b * d;
    const std::uint64_t ad = a * d, bc = b * c;
    std::uint64_t mid = (bd >> 32u) + (ad & 0xffffffffULL) + (bc & 0xffffffffULL);
    const std::uint64_t new_lo = (mid << 32u) | (bd & 0xffffffffULL);
    std::uint64_t new_hi = a * c + (ad >> 32u) + (bc >> 32u) + (mid >> 32u);
    new_hi += hi * m_lo + lo * m_hi;
    hi = new_hi;
    lo = new_lo;
  }

  void step() noexcept {
    // Multiplier from the PCG reference implementation.
    mul128(state_hi_, state_lo_, 0x2360ed051fc65da4ULL, 0x4385df649fccf645ULL);
    add128(state_hi_, state_lo_, inc_hi_, inc_lo_);
  }

  result_type output() const noexcept {
    // XSL-RR: xor-fold the state and rotate by the top 6 bits.
    const std::uint64_t xored = state_hi_ ^ state_lo_;
    const unsigned rot = static_cast<unsigned>(state_hi_ >> 58u);
    return (xored >> rot) | (xored << ((64u - rot) & 63u));
  }

  std::uint64_t state_hi_, state_lo_;
  std::uint64_t inc_hi_, inc_lo_;
};

/// 64-bit mixing (splitmix64 finalizer). Used to derive stream keys.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30u)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27u)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31u);
}

/// FNV-1a over a string, then finalized with mix64. Constexpr so stream
/// labels can be hashed at compile time.
constexpr std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

/// A keyed random stream. `Rng` is cheap to construct and copy; treat it as a
/// value. Derive child streams with `fork` rather than sharing one stream
/// between components.
class Rng {
 public:
  using result_type = Pcg64::result_type;

  explicit Rng(std::uint64_t seed = 0) noexcept
      : engine_(mix64(seed), mix64(seed ^ 0x6a09e667f3bcc909ULL),
                mix64(seed ^ 0xbb67ae8584caa73bULL)),
        root_(seed) {}

  Rng(std::uint64_t seed, std::uint64_t key) noexcept
      : engine_(mix64(seed ^ mix64(key)), mix64(seed + 0x9e3779b97f4a7c15ULL * key),
                mix64(key) | 1u),
        root_(seed) {}

  static constexpr result_type min() noexcept { return Pcg64::min(); }
  static constexpr result_type max() noexcept { return Pcg64::max(); }

  result_type operator()() noexcept { return engine_(); }

  /// Derives an independent child stream identified by `key`.
  [[nodiscard]] Rng fork(std::uint64_t key) noexcept {
    const std::uint64_t a = engine_();
    const std::uint64_t b = engine_();
    return Rng(mix64(a ^ mix64(key)), mix64(b + key));
  }

  /// Derives an independent child stream identified by a label and index,
  /// independent of how much randomness this stream has already consumed.
  [[nodiscard]] Rng stream(std::string_view label, std::uint64_t index = 0) const noexcept {
    return Rng(root_, mix64(hash_label(label) ^ mix64(index ^ 0xa5a5a5a5a5a5a5a5ULL)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(engine_() >> 11u) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe to pass to log().
  double uniform_pos() noexcept {
    return (static_cast<double>(engine_() >> 11u) + 1.0) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    std::uint64_t x = engine_();
    // Rejection to remove modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    while (x < threshold) x = engine_();
    return x % n;
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  Pcg64 engine_;
  std::uint64_t root_ = 0;

 public:
  /// Remembers the root seed so `stream` derivations are consumption-
  /// independent. Set automatically by the seeding constructors.
  [[nodiscard]] std::uint64_t root_seed() const noexcept { return root_; }
  void set_root_seed(std::uint64_t s) noexcept { root_ = s; }
};

/// Builds the canonical root stream for a simulation run.
inline Rng make_root_rng(std::uint64_t seed) noexcept {
  Rng rng(seed);
  rng.set_root_seed(seed);
  return rng;
}

}  // namespace storsubsim::stats
