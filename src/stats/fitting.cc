#include "stats/fitting.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/special_functions.h"
#include "stats/summary.h"

namespace storsubsim::stats {

namespace {

void require_positive_sample(std::span<const double> xs, const char* who) {
  if (xs.empty()) throw std::invalid_argument(std::string(who) + ": empty sample");
  for (const double x : xs) {
    if (!(x > 0.0) || !std::isfinite(x)) {
      throw std::invalid_argument(std::string(who) + ": sample must be positive and finite");
    }
  }
}

}  // namespace

FitResult fit_exponential_mle(std::span<const double> xs) {
  require_positive_sample(xs, "fit_exponential_mle");
  const double m = mean_of(xs);
  FitResult fit;
  fit.param1 = 1.0 / m;
  fit.converged = true;
  fit.iterations = 0;
  fit.log_likelihood = log_likelihood(Exponential(fit.param1), xs);
  return fit;
}

FitResult fit_gamma_moments(std::span<const double> xs) {
  require_positive_sample(xs, "fit_gamma_moments");
  const double m = mean_of(xs);
  const double v = variance_of(xs);
  FitResult fit;
  if (v <= 0.0) {
    // Degenerate sample: all values equal; approximate with a very peaked fit.
    fit.param1 = 1e6;
    fit.param2 = m / fit.param1;
  } else {
    fit.param1 = m * m / v;
    fit.param2 = v / m;
  }
  fit.converged = true;
  fit.log_likelihood = log_likelihood(Gamma(fit.param1, fit.param2), xs);
  return fit;
}

FitResult fit_gamma_mle(std::span<const double> xs) {
  require_positive_sample(xs, "fit_gamma_mle");
  const double m = mean_of(xs);
  double mean_log = 0.0;
  for (const double x : xs) mean_log += std::log(x);
  mean_log /= static_cast<double>(xs.size());

  // s = ln(mean) - mean(ln x) >= 0 by Jensen; solve ln(k) - digamma(k) = s.
  const double s = std::log(m) - mean_log;
  FitResult fit;
  if (s <= 1e-12) {
    // Nearly degenerate sample (no dispersion): cap the shape.
    fit.param1 = 1e6;
    fit.param2 = m / fit.param1;
    fit.converged = true;
    fit.log_likelihood = log_likelihood(Gamma(fit.param1, fit.param2), xs);
    return fit;
  }
  // Standard starting point (Minka 2002).
  double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) / (12.0 * s);
  int iter = 0;
  for (; iter < 100; ++iter) {
    const double f = std::log(k) - digamma(k) - s;
    const double fp = 1.0 / k - trigamma(k);
    const double step = f / fp;
    double k_new = k - step;
    if (k_new <= 0.0) k_new = 0.5 * k;
    if (std::fabs(k_new - k) < 1e-12 * (1.0 + k)) {
      k = k_new;
      ++iter;
      break;
    }
    k = k_new;
  }
  fit.param1 = k;
  fit.param2 = m / k;
  fit.converged = iter < 100;
  fit.iterations = iter;
  fit.log_likelihood = log_likelihood(Gamma(fit.param1, fit.param2), xs);
  return fit;
}

FitResult fit_weibull_mle(std::span<const double> xs) {
  require_positive_sample(xs, "fit_weibull_mle");
  const double n = static_cast<double>(xs.size());
  double mean_log = 0.0;
  for (const double x : xs) mean_log += std::log(x);
  mean_log /= n;

  // Profile-likelihood equation in the shape k:
  //   g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0.
  auto g_and_gprime = [&](double k, double& g, double& gp) {
    double sk = 0.0, skl = 0.0, skl2 = 0.0;
    for (const double x : xs) {
      const double lx = std::log(x);
      const double xk = std::pow(x, k);
      sk += xk;
      skl += xk * lx;
      skl2 += xk * lx * lx;
    }
    const double r = skl / sk;
    g = r - 1.0 / k - mean_log;
    gp = (skl2 / sk) - r * r + 1.0 / (k * k);
  };

  // Start from the moment-style guess via the coefficient of variation of
  // ln x: k0 ~ 1.2 / stddev(ln x).
  Accumulator log_acc;
  for (const double x : xs) log_acc.add(std::log(x));
  double k = log_acc.stddev() > 0.0 ? 1.2 / log_acc.stddev() : 1.0;
  if (!(k > 0.0) || !std::isfinite(k)) k = 1.0;

  FitResult fit;
  int iter = 0;
  for (; iter < 200; ++iter) {
    double g, gp;
    g_and_gprime(k, g, gp);
    if (!(gp > 0.0) || !std::isfinite(g)) break;
    double k_new = k - g / gp;
    if (k_new <= 0.0) k_new = 0.5 * k;
    if (std::fabs(k_new - k) < 1e-12 * (1.0 + k)) {
      k = k_new;
      ++iter;
      break;
    }
    k = k_new;
  }
  double sk = 0.0;
  for (const double x : xs) sk += std::pow(x, k);
  const double lambda = std::pow(sk / n, 1.0 / k);
  fit.param1 = k;
  fit.param2 = lambda;
  fit.converged = iter < 200;
  fit.iterations = iter;
  fit.log_likelihood = log_likelihood(Weibull(k, lambda), xs);
  return fit;
}

Exponential to_exponential(const FitResult& fit) { return Exponential(fit.param1); }

Gamma to_gamma(const FitResult& fit) { return Gamma(fit.param1, fit.param2); }

Weibull to_weibull(const FitResult& fit) { return Weibull(fit.param1, fit.param2); }

double log_likelihood(const Exponential& d, std::span<const double> xs) {
  double ll = 0.0;
  for (const double x : xs) ll += d.log_pdf(x);
  return ll;
}

double log_likelihood(const Gamma& d, std::span<const double> xs) {
  double ll = 0.0;
  for (const double x : xs) ll += d.log_pdf(x);
  return ll;
}

double log_likelihood(const Weibull& d, std::span<const double> xs) {
  double ll = 0.0;
  for (const double x : xs) ll += d.log_pdf(x);
  return ll;
}

}  // namespace storsubsim::stats
