#include "stats/distributions.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "stats/special_functions.h"

namespace storsubsim::stats {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

}  // namespace

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

Exponential::Exponential(double rate) : rate_(rate) {
  require(rate > 0.0 && std::isfinite(rate), "Exponential: rate must be positive and finite");
}

double Exponential::pdf(double x) const { return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x); }

double Exponential::log_pdf(double x) const {
  return x < 0.0 ? -kInf : std::log(rate_) - rate_ * x;
}

double Exponential::cdf(double x) const { return x < 0.0 ? 0.0 : -std::expm1(-rate_ * x); }

double Exponential::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "Exponential::quantile: p must be in [0,1)");
  return -std::log1p(-p) / rate_;
}

double Exponential::sample(Rng& rng) const { return -std::log(rng.uniform_pos()) / rate_; }

double Exponential::mean() const { return 1.0 / rate_; }

double Exponential::variance() const { return 1.0 / (rate_ * rate_); }

std::string Exponential::describe() const {
  std::ostringstream os;
  os << "Exponential(rate=" << rate_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Gamma
// ---------------------------------------------------------------------------

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  require(shape > 0.0 && std::isfinite(shape), "Gamma: shape must be positive and finite");
  require(scale > 0.0 && std::isfinite(scale), "Gamma: scale must be positive and finite");
}

double Gamma::pdf(double x) const { return x < 0.0 ? 0.0 : std::exp(log_pdf(x)); }

double Gamma::log_pdf(double x) const {
  if (x < 0.0) return -kInf;
  if (x == 0.0) {
    if (shape_ < 1.0) return kInf;
    if (shape_ == 1.0) return -std::log(scale_);
    return -kInf;
  }
  return (shape_ - 1.0) * std::log(x) - x / scale_ - lgamma_fn(shape_) -
         shape_ * std::log(scale_);
}

double Gamma::cdf(double x) const { return x <= 0.0 ? 0.0 : gamma_p(shape_, x / scale_); }

double Gamma::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "Gamma::quantile: p must be in [0,1)");
  return scale_ * gamma_p_inv(shape_, p);
}

double Gamma::sample(Rng& rng) const { return scale_ * sample_standard_gamma(rng, shape_); }

double Gamma::mean() const { return shape_ * scale_; }

double Gamma::variance() const { return shape_ * scale_ * scale_; }

std::string Gamma::describe() const {
  std::ostringstream os;
  os << "Gamma(shape=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Weibull
// ---------------------------------------------------------------------------

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  require(shape > 0.0 && std::isfinite(shape), "Weibull: shape must be positive and finite");
  require(scale > 0.0 && std::isfinite(scale), "Weibull: scale must be positive and finite");
}

double Weibull::pdf(double x) const { return x < 0.0 ? 0.0 : std::exp(log_pdf(x)); }

double Weibull::log_pdf(double x) const {
  if (x < 0.0) return -kInf;
  if (x == 0.0) {
    if (shape_ < 1.0) return kInf;
    if (shape_ == 1.0) return -std::log(scale_);
    return -kInf;
  }
  const double z = x / scale_;
  return std::log(shape_ / scale_) + (shape_ - 1.0) * std::log(z) - std::pow(z, shape_);
}

double Weibull::cdf(double x) const {
  return x <= 0.0 ? 0.0 : -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "Weibull::quantile: p must be in [0,1)");
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::sample(Rng& rng) const {
  return scale_ * std::pow(-std::log(rng.uniform_pos()), 1.0 / shape_);
}

double Weibull::hazard(double x) const {
  if (x <= 0.0) {
    if (shape_ < 1.0) return kInf;
    if (shape_ == 1.0) return 1.0 / scale_;
    return 0.0;
  }
  return (shape_ / scale_) * std::pow(x / scale_, shape_ - 1.0);
}

double Weibull::mean() const { return scale_ * gamma_fn(1.0 + 1.0 / shape_); }

double Weibull::variance() const {
  const double g1 = gamma_fn(1.0 + 1.0 / shape_);
  const double g2 = gamma_fn(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

std::string Weibull::describe() const {
  std::ostringstream os;
  os << "Weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// LogNormal
// ---------------------------------------------------------------------------

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(std::isfinite(mu), "LogNormal: mu must be finite");
  require(sigma > 0.0 && std::isfinite(sigma), "LogNormal: sigma must be positive and finite");
}

double LogNormal::pdf(double x) const { return x <= 0.0 ? 0.0 : std::exp(log_pdf(x)); }

double LogNormal::log_pdf(double x) const {
  if (x <= 0.0) return -kInf;
  const double z = (std::log(x) - mu_) / sigma_;
  return -0.5 * z * z - std::log(x * sigma_ * std::sqrt(2.0 * 3.14159265358979323846));
}

double LogNormal::cdf(double x) const {
  return x <= 0.0 ? 0.0 : normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  require(p > 0.0 && p < 1.0, "LogNormal::quantile: p must be in (0,1)");
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * sample_standard_normal(rng));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::string LogNormal::describe() const {
  std::ostringstream os;
  os << "LogNormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Pareto
// ---------------------------------------------------------------------------

Pareto::Pareto(double scale, double shape) : scale_(scale), shape_(shape) {
  require(scale > 0.0 && std::isfinite(scale), "Pareto: scale must be positive and finite");
  require(shape > 0.0 && std::isfinite(shape), "Pareto: shape must be positive and finite");
}

double Pareto::pdf(double x) const {
  if (x < scale_) return 0.0;
  return shape_ * std::pow(scale_, shape_) / std::pow(x, shape_ + 1.0);
}

double Pareto::cdf(double x) const {
  return x < scale_ ? 0.0 : 1.0 - std::pow(scale_ / x, shape_);
}

double Pareto::quantile(double p) const {
  require(p >= 0.0 && p < 1.0, "Pareto::quantile: p must be in [0,1)");
  return scale_ / std::pow(1.0 - p, 1.0 / shape_);
}

double Pareto::sample(Rng& rng) const {
  return scale_ / std::pow(rng.uniform_pos(), 1.0 / shape_);
}

double Pareto::mean() const {
  return shape_ <= 1.0 ? kInf : shape_ * scale_ / (shape_ - 1.0);
}

std::string Pareto::describe() const {
  std::ostringstream os;
  os << "Pareto(scale=" << scale_ << ", shape=" << shape_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Poisson
// ---------------------------------------------------------------------------

Poisson::Poisson(double mean) : mean_(mean) {
  require(mean >= 0.0 && std::isfinite(mean), "Poisson: mean must be nonnegative and finite");
}

double Poisson::pmf(std::uint64_t k) const { return std::exp(log_pmf(k)); }

double Poisson::log_pmf(std::uint64_t k) const {
  if (mean_ == 0.0) return k == 0 ? 0.0 : -kInf;
  const double kd = static_cast<double>(k);
  return kd * std::log(mean_) - mean_ - lgamma_fn(kd + 1.0);
}

double Poisson::cdf(std::uint64_t k) const {
  if (mean_ == 0.0) return 1.0;
  // P(X <= k) = Q(k+1, mean).
  return gamma_q(static_cast<double>(k) + 1.0, mean_);
}

std::uint64_t Poisson::sample(Rng& rng) const {
  if (mean_ == 0.0) return 0;
  if (mean_ < 30.0) {
    // Knuth inversion by multiplication.
    const double limit = std::exp(-mean_);
    double prod = rng.uniform_pos();
    std::uint64_t k = 0;
    while (prod > limit) {
      prod *= rng.uniform_pos();
      ++k;
    }
    return k;
  }
  // Exact gamma-splitting recursion (Ahrens–Dieter): let m = floor(7u/8 * mean)
  // and X ~ Gamma(m, 1) be the arrival time of the m-th event of a unit-rate
  // Poisson process. If X <= mean, m events happened by X and the remainder of
  // the window contributes Poisson(mean - X); otherwise exactly the events
  // strictly before the m-th fall in the window, thinned Binomial(m-1, mean/X)
  // by the conditional uniformity of arrival times.
  const double m = std::floor(mean_ * 0.875);
  const double x = sample_standard_gamma(rng, m);
  if (x <= mean_) {
    return static_cast<std::uint64_t>(m) + Poisson(mean_ - x).sample(rng);
  }
  // Binomial(m - 1, mean / x) by direct Bernoulli summation; m is O(mean) but
  // this branch is rare and our simulator means are modest.
  const double p = mean_ / x;
  const std::uint64_t n = static_cast<std::uint64_t>(m) - 1;
  std::uint64_t k = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (rng.uniform() < p) ++k;
  }
  return k;
}

std::string Poisson::describe() const {
  std::ostringstream os;
  os << "Poisson(mean=" << mean_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Samplers
// ---------------------------------------------------------------------------

double sample_standard_normal(Rng& rng) {
  // Box–Muller, one deviate per call (deterministic draw count).
  const double u1 = rng.uniform_pos();
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double sample_standard_gamma(Rng& rng, double shape) {
  if (!(shape > 0.0)) throw std::invalid_argument("sample_standard_gamma: shape must be > 0");
  if (shape < 1.0) {
    // Boost shape by 1 and scale back (Marsaglia–Tsang augmentation).
    const double u = rng.uniform_pos();
    return sample_standard_gamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = sample_standard_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform_pos();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

}  // namespace storsubsim::stats
