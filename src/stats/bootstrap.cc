#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/parallel.h"

namespace storsubsim::stats {

std::vector<double> bootstrap_distribution(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic, std::size_t replicates,
    Rng& rng) {
  if (sample.empty()) throw std::invalid_argument("bootstrap: empty sample");

  // Fork once so successive calls on the same rng see fresh randomness, then
  // key every replicate off the fork with its own named substream: replicate
  // r draws the same resample no matter how replicates are split across
  // workers, making the distribution thread-count-invariant.
  const Rng base = rng.fork(hash_label("bootstrap"));

  std::vector<double> stats(replicates);
  util::parallel_for(replicates, [&](std::size_t begin, std::size_t end) {
    std::vector<double> resample(sample.size());
    for (std::size_t r = begin; r < end; ++r) {
      Rng rep = base.stream("bootstrap-rep", r);
      for (auto& x : resample) {
        x = sample[static_cast<std::size_t>(rep.below(sample.size()))];
      }
      stats[r] = statistic(resample);
    }
  });
  std::sort(stats.begin(), stats.end());
  return stats;
}

Interval bootstrap_ci(std::span<const double> sample,
                      const std::function<double(std::span<const double>)>& statistic,
                      double confidence, std::size_t replicates, Rng& rng) {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument("bootstrap: confidence must be in (0,1)");
  }
  const auto dist = bootstrap_distribution(sample, statistic, replicates, rng);
  const double alpha = 1.0 - confidence;
  auto pick = [&](double p) {
    const double h = p * (static_cast<double>(dist.size()) - 1.0);
    const std::size_t lo = static_cast<std::size_t>(std::floor(h));
    const double frac = h - static_cast<double>(lo);
    if (lo + 1 >= dist.size()) return dist.back();
    return dist[lo] + frac * (dist[lo + 1] - dist[lo]);
  };
  Interval ci;
  ci.lower = pick(alpha / 2.0);
  ci.upper = pick(1.0 - alpha / 2.0);
  ci.point = statistic(sample);
  return ci;
}

}  // namespace storsubsim::stats
