#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace storsubsim::stats {

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  if (sorted_.empty()) throw std::logic_error("Ecdf::quantile on empty sample");
  if (p <= 0.0) return sorted_.front();
  if (p >= 1.0) return sorted_.back();
  const double h = p * (static_cast<double>(sorted_.size()) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

double Ecdf::min() const {
  return sorted_.empty() ? std::numeric_limits<double>::quiet_NaN() : sorted_.front();
}

double Ecdf::max() const {
  return sorted_.empty() ? std::numeric_limits<double>::quiet_NaN() : sorted_.back();
}

std::vector<double> Ecdf::evaluate(std::span<const double> grid) const {
  std::vector<double> out;
  out.reserve(grid.size());
  for (const double x : grid) out.push_back((*this)(x));
  return out;
}

std::vector<double> log_grid(double lo, double hi, std::size_t points) {
  if (!(lo > 0.0) || !(hi > lo) || points < 2) {
    throw std::invalid_argument("log_grid: need 0 < lo < hi and points >= 2");
  }
  std::vector<double> grid;
  grid.reserve(points);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    grid.push_back(std::pow(10.0, llo + t * (lhi - llo)));
  }
  return grid;
}

}  // namespace storsubsim::stats
