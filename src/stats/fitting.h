// Maximum-likelihood and method-of-moments fitters for the distributions the
// paper fits to time-between-failure samples (Figure 9): Exponential, Gamma,
// and Weibull.
#pragma once

#include <span>

#include "stats/distributions.h"

namespace storsubsim::stats {

/// Result of a distribution fit: parameters plus the attained log-likelihood
/// (for model comparison) and convergence status.
struct FitResult {
  double param1 = 0.0;       // rate (exp) / shape (gamma, weibull)
  double param2 = 0.0;       // unused (exp) / scale (gamma, weibull)
  double log_likelihood = 0.0;
  bool converged = false;
  int iterations = 0;
};

/// MLE for Exponential: rate = n / sum(x). Requires all x >= 0, at least one
/// x > 0.
FitResult fit_exponential_mle(std::span<const double> xs);

/// MLE for Gamma(shape, scale) by Newton iteration on the digamma equation
/// ln(shape) - digamma(shape) = ln(mean) - mean(ln x). Requires x > 0.
FitResult fit_gamma_mle(std::span<const double> xs);

/// Method-of-moments Gamma fit: shape = mean^2/var, scale = var/mean.
FitResult fit_gamma_moments(std::span<const double> xs);

/// MLE for Weibull(shape, scale) by Newton iteration on the profile
/// likelihood in the shape parameter. Requires x > 0.
FitResult fit_weibull_mle(std::span<const double> xs);

/// Convenience constructors from fit results.
Exponential to_exponential(const FitResult& fit);
Gamma to_gamma(const FitResult& fit);
Weibull to_weibull(const FitResult& fit);

/// Log-likelihood of a sample under each distribution (for reporting).
double log_likelihood(const Exponential& d, std::span<const double> xs);
double log_likelihood(const Gamma& d, std::span<const double> xs);
double log_likelihood(const Weibull& d, std::span<const double> xs);

}  // namespace storsubsim::stats
