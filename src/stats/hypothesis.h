// Hypothesis tests used by the paper's analysis:
//   * two-sample t-tests for cohort comparisons (Figures 6, 7, 10),
//   * chi-square goodness-of-fit for distribution fits (Figure 9).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace storsubsim::stats {

struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value_two_sided = 1.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  double difference = 0.0;

  /// True when the two-sided p-value is below 1 - confidence
  /// (e.g. confidence 0.995 for the paper's "99.5% confidence interval").
  bool significant_at(double confidence) const { return p_value_two_sided < 1.0 - confidence; }
};

/// Welch's unequal-variance two-sample t-test on raw samples.
TTestResult welch_t_test(std::span<const double> a, std::span<const double> b);

/// Welch's t-test from sufficient statistics (mean, sample variance, n).
TTestResult welch_t_test_summary(double mean_a, double var_a, std::size_t n_a, double mean_b,
                                 double var_b, std::size_t n_b);

/// Two-proportion z-test expressed as a t-test result (large-sample), used
/// for comparing failure fractions between cohorts.
TTestResult two_proportion_test(std::size_t successes_a, std::size_t total_a,
                                std::size_t successes_b, std::size_t total_b);

struct ChiSquareResult {
  double statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;
  std::size_t bins_used = 0;

  /// Null hypothesis "sample follows the model" is rejected at level alpha.
  bool rejected_at(double alpha) const { return p_value < alpha; }
};

/// Chi-square goodness-of-fit of a positive sample against a model CDF.
///
/// Bins are chosen as equal-probability intervals under the model (so the
/// expected count per bin is n / bins). `fitted_params` is subtracted from
/// the degrees of freedom. A minimum expected count of 5 is enforced by
/// reducing the bin count when the sample is small.
ChiSquareResult chi_square_gof(std::span<const double> xs,
                               const std::function<double(double)>& model_cdf,
                               const std::function<double(double)>& model_quantile,
                               std::size_t fitted_params, std::size_t bins = 20);

/// Chi-square test from pre-binned observed/expected counts.
ChiSquareResult chi_square_from_counts(std::span<const double> observed,
                                       std::span<const double> expected,
                                       std::size_t fitted_params);

struct KsResult {
  double statistic = 0.0;  ///< sup |F_n - F|
  double p_value = 1.0;    ///< asymptotic Kolmogorov tail
  std::size_t n = 0;

  bool rejected_at(double alpha) const { return p_value < alpha; }
};

/// Survival function of the Kolmogorov distribution:
/// P(sqrt(n) D_n > x) for large n.
double kolmogorov_sf(double x);

/// One-sample Kolmogorov-Smirnov test of a sample against a fully-specified
/// model CDF. (With fitted parameters the p-value is anti-conservative, as
/// for any plug-in GoF test — prefer chi_square_gof with its df correction
/// when parameters were estimated from the same data.)
KsResult ks_test(std::span<const double> xs,
                 const std::function<double(double)>& model_cdf);

}  // namespace storsubsim::stats
