// Probability distributions used by the failure simulator and the
// distribution-fitting analysis (paper Figure 9: Exponential, Gamma, Weibull
// fits to time-between-failure data).
//
// Each distribution is a small value type with pdf/cdf/quantile/sample
// members. Parameters are validated at construction; invalid parameters
// throw std::invalid_argument (configuration error, not a hot path).
#pragma once

#include <cstdint>
#include <string>

#include "stats/rng.h"

namespace storsubsim::stats {

/// Exponential(rate). Mean = 1/rate. The memoryless baseline used by
/// classical RAID reliability models (the assumption the paper refutes).
class Exponential {
 public:
  explicit Exponential(double rate);

  double pdf(double x) const;
  double log_pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;
  double sample(Rng& rng) const;

  double mean() const;
  double variance() const;
  double rate() const { return rate_; }

  std::string describe() const;

 private:
  double rate_;
};

/// Gamma(shape k, scale theta). Mean = k*theta. The paper finds Gamma is the
/// best (and only non-rejected) fit for disk-failure interarrivals.
class Gamma {
 public:
  Gamma(double shape, double scale);

  double pdf(double x) const;
  double log_pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;
  double sample(Rng& rng) const;

  double mean() const;
  double variance() const;
  double shape() const { return shape_; }
  double scale() const { return scale_; }

  std::string describe() const;

 private:
  double shape_;
  double scale_;
};

/// Weibull(shape k, scale lambda). shape < 1 models infant mortality,
/// shape > 1 models wear-out; shape == 1 degenerates to Exponential.
class Weibull {
 public:
  Weibull(double shape, double scale);

  double pdf(double x) const;
  double log_pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;
  double sample(Rng& rng) const;

  /// Hazard rate h(x) = pdf / (1 - cdf); used by the hazard-process layer.
  double hazard(double x) const;

  double mean() const;
  double variance() const;
  double shape() const { return shape_; }
  double scale() const { return scale_; }

  std::string describe() const;

 private:
  double shape_;
  double scale_;
};

/// LogNormal(mu, sigma) of the underlying normal. Used for repair/replacement
/// delays, which are right-skewed in practice.
class LogNormal {
 public:
  LogNormal(double mu, double sigma);

  double pdf(double x) const;
  double log_pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;
  double sample(Rng& rng) const;

  double mean() const;
  double variance() const;
  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  std::string describe() const;

 private:
  double mu_;
  double sigma_;
};

/// Pareto(scale x_m, shape alpha): heavy-tailed durations (burst windows).
class Pareto {
 public:
  Pareto(double scale, double shape);

  double pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;
  double sample(Rng& rng) const;

  double mean() const;  // +inf when shape <= 1
  double scale() const { return scale_; }
  double shape() const { return shape_; }

  std::string describe() const;

 private:
  double scale_;
  double shape_;
};

/// Poisson(mean). Counting distribution for event counts in fixed windows.
class Poisson {
 public:
  explicit Poisson(double mean);

  double pmf(std::uint64_t k) const;
  double log_pmf(std::uint64_t k) const;
  double cdf(std::uint64_t k) const;
  std::uint64_t sample(Rng& rng) const;

  double mean() const { return mean_; }
  double variance() const { return mean_; }

  std::string describe() const;

 private:
  double mean_;
};

/// Samples a standard normal via Box–Muller (single draw, no caching so the
/// generator state advance is deterministic per call).
double sample_standard_normal(Rng& rng);

/// Samples Gamma(shape, 1) via Marsaglia–Tsang; valid for any shape > 0.
double sample_standard_gamma(Rng& rng, double shape);

}  // namespace storsubsim::stats
