#include "stats/survival.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace storsubsim::stats {

KaplanMeier KaplanMeier::fit(std::span<const SurvivalObservation> observations) {
  KaplanMeier km;
  km.n_ = observations.size();
  if (observations.empty()) return km;

  std::vector<SurvivalObservation> sorted(observations.begin(), observations.end());
  for (const auto& o : sorted) {
    if (!(o.duration >= 0.0)) {
      throw std::invalid_argument("KaplanMeier: durations must be nonnegative");
    }
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              return a.duration < b.duration;
            });

  double survival = 1.0;
  double greenwood = 0.0;
  std::size_t i = 0;
  std::size_t at_risk = sorted.size();
  while (i < sorted.size()) {
    const double t = sorted[i].duration;
    std::size_t events = 0;
    std::size_t leaving = 0;
    while (i < sorted.size() && sorted[i].duration == t) {
      if (sorted[i].event) ++events;
      ++leaving;
      ++i;
    }
    if (events > 0) {
      const double n = static_cast<double>(at_risk);
      const double d = static_cast<double>(events);
      survival *= (n - d) / n;
      if (n > d) greenwood += d / (n * (n - d));
      km.points_.push_back(SurvivalPoint{t, survival, at_risk, events});
      km.greenwood_.push_back(greenwood);
      km.events_ += events;
    }
    at_risk -= leaving;
  }
  return km;
}

double KaplanMeier::survival(double t) const {
  // Last point with time <= t.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double x, const SurvivalPoint& p) { return x < p.time; });
  if (it == points_.begin()) return 1.0;
  return (it - 1)->survival;
}

double KaplanMeier::median() const {
  for (const auto& p : points_) {
    if (p.survival <= 0.5) return p.time;
  }
  return std::numeric_limits<double>::infinity();
}

double KaplanMeier::greenwood_variance(double t) const {
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double x, const SurvivalPoint& p) { return x < p.time; });
  if (it == points_.begin()) return 0.0;
  const auto idx = static_cast<std::size_t>(it - points_.begin()) - 1;
  const double s = points_[idx].survival;
  return s * s * greenwood_[idx];
}

std::vector<HazardBin> hazard_by_age(std::span<const SurvivalObservation> observations,
                                     std::span<const double> edges) {
  if (edges.size() < 2) throw std::invalid_argument("hazard_by_age: need >= 2 edges");
  for (std::size_t i = 1; i < edges.size(); ++i) {
    if (!(edges[i] > edges[i - 1])) {
      throw std::invalid_argument("hazard_by_age: edges must be increasing");
    }
  }
  std::vector<HazardBin> bins(edges.size() - 1);
  for (std::size_t b = 0; b < bins.size(); ++b) {
    bins[b].age_lo = edges[b];
    bins[b].age_hi = edges[b + 1];
  }
  for (const auto& o : observations) {
    for (auto& bin : bins) {
      const double lo = bin.age_lo;
      const double hi = std::min(bin.age_hi, o.duration);
      if (hi > lo) bin.exposure += hi - lo;
      if (o.event && o.duration >= bin.age_lo && o.duration < bin.age_hi) ++bin.events;
    }
  }
  return bins;
}

}  // namespace storsubsim::stats
