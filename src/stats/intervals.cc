#include "stats/intervals.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special_functions.h"

namespace storsubsim::stats {

namespace {

double z_for(double confidence) {
  if (!(confidence > 0.0) || !(confidence < 1.0)) {
    throw std::invalid_argument("confidence must be in (0,1)");
  }
  return normal_quantile(0.5 + 0.5 * confidence);
}

}  // namespace

Interval proportion_ci_wald(std::size_t successes, std::size_t total, double confidence) {
  if (total == 0) throw std::invalid_argument("proportion_ci: total == 0");
  const double n = static_cast<double>(total);
  const double p = static_cast<double>(successes) / n;
  const double z = z_for(confidence);
  const double hw = z * std::sqrt(p * (1.0 - p) / n);
  return {std::max(0.0, p - hw), std::min(1.0, p + hw), p};
}

Interval proportion_ci_wilson(std::size_t successes, std::size_t total, double confidence) {
  if (total == 0) throw std::invalid_argument("proportion_ci: total == 0");
  const double n = static_cast<double>(total);
  const double p = static_cast<double>(successes) / n;
  const double z = z_for(confidence);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double hw = (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, center - hw), std::min(1.0, center + hw), p};
}

Interval rate_ci_garwood(std::size_t events, double exposure, double confidence) {
  if (!(exposure > 0.0)) throw std::invalid_argument("rate_ci: exposure must be > 0");
  const double alpha = 1.0 - confidence;
  const double k = static_cast<double>(events);
  const double lower =
      events == 0 ? 0.0 : 0.5 * chi_square_quantile(alpha / 2.0, 2.0 * k) / exposure;
  const double upper = 0.5 * chi_square_quantile(1.0 - alpha / 2.0, 2.0 * (k + 1.0)) / exposure;
  return {lower, upper, k / exposure};
}

Interval rate_ci_normal(std::size_t events, double exposure, double confidence) {
  if (!(exposure > 0.0)) throw std::invalid_argument("rate_ci: exposure must be > 0");
  const double k = static_cast<double>(events);
  const double rate = k / exposure;
  const double z = z_for(confidence);
  const double hw = z * std::sqrt(k) / exposure;
  return {std::max(0.0, rate - hw), rate + hw, rate};
}

Interval mean_ci(double mean, double sample_variance, std::size_t n, double confidence) {
  if (n < 2) throw std::invalid_argument("mean_ci: need n >= 2");
  const double nu = static_cast<double>(n) - 1.0;
  const double t = student_t_quantile(0.5 + 0.5 * confidence, nu);
  const double hw = t * std::sqrt(sample_variance / static_cast<double>(n));
  return {mean - hw, mean + hw, mean};
}

}  // namespace storsubsim::stats
