#include "model/shelf_model.h"

#include <algorithm>
#include <stdexcept>

namespace storsubsim::model {

std::string to_string(const ShelfModelName& name) { return std::string(1, name.letter); }

std::optional<ShelfModelName> parse_shelf_model_name(std::string_view s) {
  if (s.size() != 1 || s[0] < 'A' || s[0] > 'Z') return std::nullopt;
  return ShelfModelName{s[0]};
}

double ShelfModelInfo::quirk_multiplier(char disk_family, int capacity_index) const {
  // Exact-model quirk wins; otherwise fall back to a family-wide quirk.
  double family_wide = 1.0;
  for (const auto& q : quirks) {
    if (q.disk_family != disk_family) continue;
    if (q.capacity_index == capacity_index) return q.interconnect_multiplier;
    if (q.capacity_index == 0) family_wide = q.interconnect_multiplier;
  }
  return family_wide;
}

ShelfModelRegistry::ShelfModelRegistry(std::vector<ShelfModelInfo> models)
    : models_(std::move(models)) {
  std::sort(models_.begin(), models_.end(),
            [](const ShelfModelInfo& a, const ShelfModelInfo& b) { return a.name < b.name; });
  for (std::size_t i = 1; i < models_.size(); ++i) {
    if (models_[i].name == models_[i - 1].name) {
      throw std::invalid_argument("ShelfModelRegistry: duplicate model " +
                                  to_string(models_[i].name));
    }
  }
  for (const auto& m : models_) {
    if (m.slots == 0 || m.slots > kShelfSlots) {
      throw std::invalid_argument("ShelfModelRegistry: shelf models host at most 14 disks");
    }
  }
}

const ShelfModelInfo* ShelfModelRegistry::find(const ShelfModelName& name) const {
  const auto it = std::lower_bound(
      models_.begin(), models_.end(), name,
      [](const ShelfModelInfo& info, const ShelfModelName& n) { return info.name < n; });
  if (it == models_.end() || !(it->name == name)) return nullptr;
  return &*it;
}

const ShelfModelInfo& ShelfModelRegistry::at(const ShelfModelName& name) const {
  const ShelfModelInfo* info = find(name);
  if (info == nullptr) {
    throw std::out_of_range("ShelfModelRegistry: unknown model " + to_string(name));
  }
  return *info;
}

const ShelfModelRegistry& ShelfModelRegistry::standard() {
  // Calibration notes (targets from paper Figures 4, 6, 7):
  //  * Low-end physical-interconnect AFR sits at 2.0-2.7% per disk-year; the
  //    quirk table reproduces Figure 6's flips: shelf B is better for A-2
  //    (2.18 vs 2.66) while shelf A is better for A-3, D-2 and D-3.
  //  * Shelf C hosts near-line SATA shelves (PI ~0.9% after the near-line
  //    class adjustment) and some mid-range FC shelves.
  //  * backplane_fraction bounds how much multipathing can mask; calibrated
  //    so dual paths cut interconnect AFR by 50-60% (Figure 7), not the
  //    idealized ~99%.
  static const ShelfModelRegistry registry{std::vector<ShelfModelInfo>{
      {ShelfModelName{'A'},
       kShelfSlots,
       2.20,
       0.25,
       {
           {'A', 2, 1.21},  // A-2 interacts poorly with shelf A -> 2.66%
           {'A', 3, 0.95},  // A-3 prefers shelf A               -> 2.09%
           {'D', 2, 0.92},  // D-2 prefers shelf A               -> 2.02%
           {'D', 3, 0.95},  //                                    -> 2.09%
       }},
      {ShelfModelName{'B'},
       kShelfSlots,
       2.20,
       0.25,
       {
           {'A', 2, 0.99},  // A-2 prefers shelf B -> 2.18%
           {'A', 3, 1.18},  //                      -> 2.60%
           {'D', 2, 1.15},  //                      -> 2.53%
           {'D', 3, 1.20},  //                      -> 2.64%
       }},
      {ShelfModelName{'C'}, kShelfSlots, 1.50, 0.30, {}},
  }};
  return registry;
}

}  // namespace storsubsim::model
