// Fleet blueprints.
//
// A FleetConfig declares cohorts — groups of systems sharing a system class,
// shelf enclosure model and disk-model mix — plus global knobs (study
// horizon, scale, seed). `standard_fleet_config()` is calibrated to the
// paper's Table 1 populations and Figure 5 class x shelf x disk-model
// combinations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "model/disk_model.h"
#include "model/enums.h"
#include "model/shelf_model.h"
#include "model/time.h"

namespace storsubsim::model {

/// One entry of a cohort's disk-model mix: systems in the cohort adopt
/// `model` with probability proportional to `weight`.
struct DiskMixEntry {
  DiskModelName model;
  double weight = 1.0;
};

/// Blueprint for one cohort of similar systems.
struct CohortSpec {
  std::string label;  ///< e.g. "low-end/shelf-A"
  SystemClass cls = SystemClass::kLowEnd;
  ShelfModelName shelf_model{'A'};
  std::vector<DiskMixEntry> disk_mix;

  std::size_t num_systems = 100;
  /// Mean shelf count per system; actual counts are sampled around this with
  /// a minimum of 1 shelf.
  double mean_shelves_per_system = 2.0;
  /// Mean occupied slots per shelf (out of 14).
  double mean_disks_per_shelf = 11.0;

  RaidType raid_type = RaidType::kRaid4;
  /// Fraction of RAID groups built as RAID6 instead of `raid_type`.
  double raid6_fraction = 0.3;
  std::size_t raid_group_size = 8;
  /// Target number of shelves a RAID group spans (paper average: ~3).
  std::size_t raid_span_shelves = 3;

  /// Fraction of systems configured with dual independent interconnects.
  double dual_path_fraction = 0.0;
};

struct FleetConfig {
  std::vector<CohortSpec> cohorts;
  double horizon_seconds = kStudyHorizonSeconds;
  /// Multiplier on every cohort's num_systems (e.g. 0.1 for a quick run).
  /// Statistical shapes are scale-invariant; absolute event counts scale.
  double scale = 1.0;
  std::uint64_t seed = 20080226;  // FAST'08 opening day

  /// Latest deployment time as a fraction of the horizon. Systems deploy
  /// in [0, deploy_window_fraction * horizon]; exposure is accounted from
  /// deployment.
  double deploy_window_fraction = 0.5;
  /// Shape of the deployment-time distribution inside the window:
  /// deploy = window * u^(1/skew). 1.0 = uniform; > 1 back-loads deployments
  /// (a growing installed base — use ~2.7 with window 1.0 to reproduce the
  /// ~1 disk-year average exposure implied by the paper's Table 1 counts);
  /// < 1 front-loads them.
  double deploy_skew = 1.0;

  std::size_t scaled_systems(const CohortSpec& cohort) const;
  std::size_t total_systems() const;
};

/// The full 4-class fleet calibrated to Table 1 of the paper (≈39k systems,
/// ≈155k shelves, ≈1.8M disks at scale = 1).
FleetConfig standard_fleet_config(double scale = 1.0, std::uint64_t seed = 20080226);

/// Smaller convenience fleets for examples and tests.
FleetConfig single_cohort_config(const CohortSpec& cohort, double horizon_seconds,
                                 std::uint64_t seed);

/// Validates invariants (nonempty mixes, sane sizes); throws
/// std::invalid_argument with a descriptive message on violation.
void validate(const FleetConfig& config);

}  // namespace storsubsim::model
