// Simulated-time conventions shared by the model, simulator and analysis.
//
// Simulation time is measured in seconds as a double, with 0 = the start of
// the study window (January 2004 in the paper). The study horizon is 44
// months (through August 2007).
#pragma once

namespace storsubsim::model {

inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kSecondsPerYear = 365.25 * kSecondsPerDay;
inline constexpr double kSecondsPerMonth = kSecondsPerYear / 12.0;

/// Study window length: 44 months (1/2004 - 8/2007).
inline constexpr double kStudyMonths = 44.0;
inline constexpr double kStudyHorizonSeconds = kStudyMonths * kSecondsPerMonth;

/// Proactive data-verification scrub period: the storage layer probes every
/// disk hourly, so detection lags occurrence by at most one hour (paper §2.5).
inline constexpr double kScrubPeriodSeconds = kSecondsPerHour;

inline constexpr double years(double seconds) { return seconds / kSecondsPerYear; }
inline constexpr double from_years(double y) { return y * kSecondsPerYear; }

}  // namespace storsubsim::model
