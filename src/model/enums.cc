#include "model/enums.h"

namespace storsubsim::model {

std::string_view to_string(SystemClass c) {
  switch (c) {
    case SystemClass::kNearLine: return "near-line";
    case SystemClass::kLowEnd: return "low-end";
    case SystemClass::kMidRange: return "mid-range";
    case SystemClass::kHighEnd: return "high-end";
  }
  return "unknown";
}

std::string_view to_string(DiskType t) {
  switch (t) {
    case DiskType::kSata: return "SATA";
    case DiskType::kFc: return "FC";
  }
  return "unknown";
}

std::string_view to_string(RaidType t) {
  switch (t) {
    case RaidType::kRaid4: return "RAID4";
    case RaidType::kRaid6: return "RAID6";
  }
  return "unknown";
}

std::string_view to_string(FailureType t) {
  switch (t) {
    case FailureType::kDisk: return "disk";
    case FailureType::kPhysicalInterconnect: return "physical-interconnect";
    case FailureType::kProtocol: return "protocol";
    case FailureType::kPerformance: return "performance";
  }
  return "unknown";
}

std::string_view to_string(PathConfig p) {
  switch (p) {
    case PathConfig::kSinglePath: return "single-path";
    case PathConfig::kDualPath: return "dual-path";
  }
  return "unknown";
}

std::optional<SystemClass> parse_system_class(std::string_view s) {
  for (const auto c : kAllSystemClasses) {
    if (s == to_string(c)) return c;
  }
  return std::nullopt;
}

std::optional<DiskType> parse_disk_type(std::string_view s) {
  if (s == "SATA") return DiskType::kSata;
  if (s == "FC") return DiskType::kFc;
  return std::nullopt;
}

std::optional<RaidType> parse_raid_type(std::string_view s) {
  if (s == "RAID4") return RaidType::kRaid4;
  if (s == "RAID6") return RaidType::kRaid6;
  return std::nullopt;
}

std::optional<FailureType> parse_failure_type(std::string_view s) {
  for (const auto t : kAllFailureTypes) {
    if (s == to_string(t)) return t;
  }
  return std::nullopt;
}

std::optional<PathConfig> parse_path_config(std::string_view s) {
  if (s == to_string(PathConfig::kSinglePath)) return PathConfig::kSinglePath;
  if (s == to_string(PathConfig::kDualPath)) return PathConfig::kDualPath;
  return std::nullopt;
}

}  // namespace storsubsim::model
