// Strong ID types for fleet entities.
//
// All IDs are dense indices into the owning Fleet's vectors, wrapped so a
// DiskId cannot be passed where a ShelfId is expected.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace storsubsim::model {

template <typename Tag>
class Id {
 public:
  using underlying = std::uint32_t;
  static constexpr underlying kInvalid = std::numeric_limits<underlying>::max();

  constexpr Id() noexcept : value_(kInvalid) {}
  constexpr explicit Id(underlying v) noexcept : value_(v) {}

  constexpr underlying value() const noexcept { return value_; }
  constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) noexcept { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) noexcept { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) noexcept { return a.value_ < b.value_; }

 private:
  underlying value_;
};

struct SystemTag {};
struct ShelfTag {};
struct DiskTag {};
struct RaidGroupTag {};
struct PathTag {};

using SystemId = Id<SystemTag>;
using ShelfId = Id<ShelfTag>;
using DiskId = Id<DiskTag>;
using RaidGroupId = Id<RaidGroupTag>;
using PathId = Id<PathTag>;

}  // namespace storsubsim::model

namespace std {
template <typename Tag>
struct hash<storsubsim::model::Id<Tag>> {
  size_t operator()(storsubsim::model::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std
