// Shelf enclosure model registry.
//
// All shelf enclosure models studied in the paper host at most 14 disks.
// A shelf provides power, cooling, and the prewired backplane; its model
// primarily determines the *physical interconnect* hazard of the disks it
// hosts (paper Section 4.2), with per-disk-family interoperability quirks
// (Finding 6: different shelf models work better with different disk models).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace storsubsim::model {

inline constexpr std::uint32_t kShelfSlots = 14;

struct ShelfModelName {
  char letter = '?';

  friend bool operator==(const ShelfModelName&, const ShelfModelName&) = default;
  friend auto operator<=>(const ShelfModelName&, const ShelfModelName&) = default;
};

std::string to_string(const ShelfModelName& name);
std::optional<ShelfModelName> parse_shelf_model_name(std::string_view s);

/// Interoperability quirk: a multiplier on the physical-interconnect hazard
/// when this shelf model hosts a particular disk model. `capacity_index == 0`
/// matches every model in the family; a nonzero index matches exactly one
/// model (Figure 6 shows the shelf preference flipping *within* family A
/// between A-2 and A-3, so quirks must resolve at model granularity).
struct InteropQuirk {
  char disk_family = '?';
  int capacity_index = 0;  // 0 = any model in the family
  double interconnect_multiplier = 1.0;
};

struct ShelfModelInfo {
  ShelfModelName name;
  std::uint32_t slots = kShelfSlots;
  /// Baseline annualized physical-interconnect failure rate contributed to
  /// each hosted disk, percent per disk-year, before class/path adjustments.
  double interconnect_afr_pct = 2.0;
  /// Fraction of the interconnect hazard attributable to the shelf backplane
  /// and intra-shelf wiring. Multipathing cannot mask this portion (paper
  /// Section 4.3 explains why dual paths fall short of the idealized rate).
  double backplane_fraction = 0.25;
  std::vector<InteropQuirk> quirks;

  /// Combined quirk multiplier for a specific disk model; exact-model quirks
  /// take precedence over family-wide quirks.
  double quirk_multiplier(char disk_family, int capacity_index) const;
};

class ShelfModelRegistry {
 public:
  /// Calibrated default registry: shelf models A, B (primary systems) and C
  /// (near-line / mid-range).
  static const ShelfModelRegistry& standard();

  explicit ShelfModelRegistry(std::vector<ShelfModelInfo> models);

  const ShelfModelInfo* find(const ShelfModelName& name) const;
  const ShelfModelInfo& at(const ShelfModelName& name) const;
  std::span<const ShelfModelInfo> all() const { return models_; }

 private:
  std::vector<ShelfModelInfo> models_;
};

}  // namespace storsubsim::model
