// Disk family/model registry.
//
// The paper anonymizes disk products as family letters (A..K) with a capacity
// index within the family ("Disk A-2"); families A..H are FC enterprise
// disks, I..K are SATA near-line disks, and family H is the known-problematic
// family reported in the latent-sector-error study (paper Section 4.1).
//
// Each model carries the calibrated per-component hazard parameters used by
// the simulator. Rates are expressed as annualized failure rates in percent
// per disk-year, matching the units of the paper's figures.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "model/enums.h"

namespace storsubsim::model {

/// Identifies a disk model as family letter + capacity index, e.g. {'A', 2}.
struct DiskModelName {
  char family = '?';
  int capacity_index = 0;

  friend bool operator==(const DiskModelName&, const DiskModelName&) = default;
  friend auto operator<=>(const DiskModelName&, const DiskModelName&) = default;
};

/// Renders "A-2" style names; parses them back.
std::string to_string(const DiskModelName& name);
std::optional<DiskModelName> parse_disk_model_name(std::string_view s);

/// Static attributes and calibrated hazard parameters of one disk model.
struct DiskModelInfo {
  DiskModelName name;
  DiskType type = DiskType::kFc;
  /// Nominal capacity in GB; within a family, capacity grows with the index.
  std::uint32_t capacity_gb = 0;
  /// Calibrated annualized disk-failure rate, percent per disk-year.
  double disk_afr_pct = 1.0;
  /// Multiplier applied to the host system's protocol-failure hazard.
  /// > 1 for problematic families whose failures tickle corner-case driver
  /// bugs (paper Finding 3 observed this coupling for family H).
  double protocol_hazard_multiplier = 1.0;
  /// Multiplier applied to the host system's performance-failure hazard.
  double performance_hazard_multiplier = 1.0;

  bool is_problematic() const { return name.family == 'H'; }
};

/// Immutable registry of the 20 disk models used across the studied fleet.
class DiskModelRegistry {
 public:
  /// Builds the calibrated default registry matching the paper's fleet.
  static const DiskModelRegistry& standard();

  /// Builds a registry from explicit entries (for tests and what-if studies).
  explicit DiskModelRegistry(std::vector<DiskModelInfo> models);

  const DiskModelInfo* find(const DiskModelName& name) const;
  const DiskModelInfo& at(const DiskModelName& name) const;
  std::span<const DiskModelInfo> all() const { return models_; }
  std::size_t size() const { return models_.size(); }

  /// All models of the given interface type.
  std::vector<DiskModelName> models_of_type(DiskType type) const;

 private:
  std::vector<DiskModelInfo> models_;
};

}  // namespace storsubsim::model
