// Materialized fleet topology: systems, shelves, slots, disks, RAID groups.
//
// Mirrors the paper's Figure 1 (storage system architecture) and Figure 8
// (disk layout in shelves and RAID groups). RAID group membership is
// positional — a group owns (shelf, slot) positions, so a replacement disk
// installed into a slot joins the group that owns the slot.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "model/disk_model.h"
#include "model/enums.h"
#include "model/ids.h"
#include "model/shelf_model.h"

namespace storsubsim::model {

/// A slot position within a shelf; the unit of RAID group membership.
struct SlotRef {
  ShelfId shelf;
  std::uint32_t slot = 0;

  friend bool operator==(const SlotRef&, const SlotRef&) = default;
};

/// One physical disk's tenure in a slot. Replacements create new records;
/// the exposure time of a record is [install_time, remove_time) clipped to
/// the study window.
struct DiskRecord {
  DiskId id;
  DiskModelName model;
  SystemId system;
  ShelfId shelf;
  RaidGroupId raid_group;
  /// Previous occupant of the same slot (invalid for the initial disk).
  DiskId predecessor;
  std::uint32_t slot = 0;
  double install_time = 0.0;
  double remove_time = std::numeric_limits<double>::infinity();

  bool installed_at(double t) const { return t >= install_time && t < remove_time; }
};

struct Shelf {
  ShelfId id;
  SystemId system;
  ShelfModelName model;
  std::uint32_t index_in_system = 0;
  /// Current occupant per slot (invalid id = empty slot).
  std::array<DiskId, kShelfSlots> slots{};
  std::uint32_t occupied_slots = 0;
};

struct RaidGroup {
  RaidGroupId id;
  SystemId system;
  RaidType type = RaidType::kRaid4;
  std::vector<SlotRef> members;

  /// Number of distinct shelves the group spans.
  std::uint32_t shelf_span() const;
};

struct System {
  SystemId id;
  SystemClass cls = SystemClass::kNearLine;
  PathConfig paths = PathConfig::kSinglePath;
  DiskModelName disk_model;  ///< the (homogeneous) disk model of this system
  ShelfModelName shelf_model;
  double deploy_time = 0.0;
  std::vector<ShelfId> shelves;
  std::vector<RaidGroupId> raid_groups;
  /// Index of the cohort in the FleetConfig this system was built from.
  std::uint32_t cohort = 0;
};

}  // namespace storsubsim::model
