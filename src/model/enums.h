// Enumerations mirroring the paper's taxonomy (Section 2.2):
// system classes, disk/RAID types, failure types, path configurations.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace storsubsim::model {

/// Capability/usage tier of a storage system (paper Table 1).
enum class SystemClass : std::uint8_t { kNearLine, kLowEnd, kMidRange, kHighEnd };

inline constexpr std::array<SystemClass, 4> kAllSystemClasses = {
    SystemClass::kNearLine, SystemClass::kLowEnd, SystemClass::kMidRange,
    SystemClass::kHighEnd};

/// Disk interface technology. Near-line systems use SATA, primary systems FC.
enum class DiskType : std::uint8_t { kSata, kFc };

/// RAID resiliency level of a group.
enum class RaidType : std::uint8_t { kRaid4, kRaid6 };

/// The paper's four storage subsystem failure categories (Section 2.3).
enum class FailureType : std::uint8_t {
  kDisk,                  ///< internal disk mechanisms / proactive fail-out
  kPhysicalInterconnect,  ///< HBA, cable, shelf power/backplane, FC driver
  kProtocol,              ///< driver/firmware incompatibility, software bugs
  kPerformance,           ///< timely-service failure with no other cause found
};

inline constexpr std::array<FailureType, 4> kAllFailureTypes = {
    FailureType::kDisk, FailureType::kPhysicalInterconnect, FailureType::kProtocol,
    FailureType::kPerformance};

/// Network redundancy configuration (Section 4.3 multipathing).
enum class PathConfig : std::uint8_t { kSinglePath, kDualPath };

std::string_view to_string(SystemClass c);
std::string_view to_string(DiskType t);
std::string_view to_string(RaidType t);
std::string_view to_string(FailureType t);
std::string_view to_string(PathConfig p);

std::optional<SystemClass> parse_system_class(std::string_view s);
std::optional<DiskType> parse_disk_type(std::string_view s);
std::optional<RaidType> parse_raid_type(std::string_view s);
std::optional<FailureType> parse_failure_type(std::string_view s);
std::optional<PathConfig> parse_path_config(std::string_view s);

constexpr std::size_t index_of(FailureType t) { return static_cast<std::size_t>(t); }
constexpr std::size_t index_of(SystemClass c) { return static_cast<std::size_t>(c); }

}  // namespace storsubsim::model
