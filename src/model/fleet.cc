#include "model/fleet.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "stats/distributions.h"
#include "stats/rng.h"

namespace storsubsim::model {

namespace {

using stats::Rng;

DiskModelName pick_from_mix(const std::vector<DiskMixEntry>& mix, Rng& rng) {
  double total = 0.0;
  for (const auto& e : mix) total += e.weight;
  double u = rng.uniform() * total;
  for (const auto& e : mix) {
    u -= e.weight;
    if (u <= 0.0) return e.model;
  }
  return mix.back().model;
}

}  // namespace

std::uint32_t RaidGroup::shelf_span() const {
  std::set<std::uint32_t> distinct;
  for (const auto& m : members) distinct.insert(m.shelf.value());
  return static_cast<std::uint32_t>(distinct.size());
}

Fleet::Fleet(const FleetConfig& config, const DiskModelRegistry& disk_models,
             const ShelfModelRegistry& shelf_models)
    : config_(config), disk_models_(&disk_models), shelf_models_(&shelf_models) {}

Fleet Fleet::build(const FleetConfig& config) {
  return build(config, DiskModelRegistry::standard(), ShelfModelRegistry::standard());
}

void Fleet::append_system(const CohortSpec& cohort, std::uint32_t cohort_idx,
                          const ShelfModelInfo& shelf_info, stats::Rng rng) {
  const FleetConfig& config = config_;

  System system;
  system.id = SystemId(static_cast<std::uint32_t>(systems_.size()));
  system.cls = cohort.cls;
  system.cohort = cohort_idx;
  system.shelf_model = cohort.shelf_model;
  system.disk_model = pick_from_mix(cohort.disk_mix, rng);
  system.paths = rng.bernoulli(cohort.dual_path_fraction) ? PathConfig::kDualPath
                                                          : PathConfig::kSinglePath;
  // Back-loadable deployment curve: u^(1/skew) biases toward the window
  // end for skew > 1 (a growing installed base).
  system.deploy_time = config.deploy_window_fraction * config.horizon_seconds *
                       std::pow(rng.uniform(), 1.0 / config.deploy_skew);

  // Shelf count: 1 + Poisson(mean - 1) keeps the mean while guaranteeing
  // at least one shelf.
  const double extra_mean = std::max(0.0, cohort.mean_shelves_per_system - 1.0);
  const std::uint64_t n_shelves =
      1 + (extra_mean > 0.0 ? stats::Poisson(extra_mean).sample(rng) : 0);

  // Build shelves and install initial disks.
  for (std::uint64_t sh = 0; sh < n_shelves; ++sh) {
    Shelf shelf;
    shelf.id = ShelfId(static_cast<std::uint32_t>(shelves_.size()));
    shelf.system = system.id;
    shelf.model = cohort.shelf_model;
    shelf.index_in_system = static_cast<std::uint32_t>(sh);
    shelf.slots.fill(DiskId{});

    const double jitter = stats::sample_standard_normal(rng) * 1.5;
    const double target = cohort.mean_disks_per_shelf + jitter;
    const auto max_slots = shelf_info.slots;
    std::uint32_t n_disks = static_cast<std::uint32_t>(
        std::clamp(std::lround(target), 1L, static_cast<long>(max_slots)));

    for (std::uint32_t slot = 0; slot < n_disks; ++slot) {
      DiskRecord disk;
      disk.id = DiskId(static_cast<std::uint32_t>(disks_.size()));
      disk.model = system.disk_model;
      disk.system = system.id;
      disk.shelf = shelf.id;
      disk.slot = slot;
      disk.install_time = system.deploy_time;
      shelf.slots[slot] = disk.id;
      ++shelf.occupied_slots;
      disks_.push_back(disk);
    }
    system.shelves.push_back(shelf.id);
    shelves_.push_back(shelf);
  }

  // Assemble RAID groups: partition the system's shelves into span sets
  // of `raid_span_shelves` consecutive shelves, interleave each set's
  // slots round-robin across its shelves, then chunk into groups — so a
  // group of size G spans min(G, span, shelves-in-set) shelves, matching
  // the paper's "a RAID group on average spans about 3 shelves".
  const std::size_t span = std::max<std::size_t>(1, cohort.raid_span_shelves);
  for (std::size_t set_start = 0; set_start < system.shelves.size(); set_start += span) {
    const std::size_t set_end = std::min(set_start + span, system.shelves.size());
    std::vector<SlotRef> interleaved;
    for (std::uint32_t slot = 0; slot < kShelfSlots; ++slot) {
      for (std::size_t i = set_start; i < set_end; ++i) {
        const Shelf& shelf = shelves_[system.shelves[i].value()];
        if (slot < shelf.occupied_slots) {
          interleaved.push_back(SlotRef{shelf.id, slot});
        }
      }
    }
    for (std::size_t start = 0; start < interleaved.size();
         start += cohort.raid_group_size) {
      const std::size_t end = std::min(start + cohort.raid_group_size, interleaved.size());
      std::vector<SlotRef> members(interleaved.begin() + static_cast<std::ptrdiff_t>(start),
                                   interleaved.begin() + static_cast<std::ptrdiff_t>(end));
      if (members.size() < 2 && !raid_groups_.empty() &&
          raid_groups_.back().system == system.id) {
        // A 1-disk remainder is not a RAID group; merge it into the
        // previous group of the same system.
        for (const auto& m : members) {
          raid_groups_.back().members.push_back(m);
        }
        continue;
      }
      RaidGroup group;
      group.id = RaidGroupId(static_cast<std::uint32_t>(raid_groups_.size()));
      group.system = system.id;
      group.type =
          rng.bernoulli(cohort.raid6_fraction) ? RaidType::kRaid6 : cohort.raid_type;
      group.members = std::move(members);
      system.raid_groups.push_back(group.id);
      raid_groups_.push_back(std::move(group));
    }
  }

  systems_.push_back(std::move(system));
}

void Fleet::finish_build() {
  // Back-fill RAID group membership onto the initial disk records.
  for (const RaidGroup& group : raid_groups_) {
    for (const SlotRef& ref : group.members) {
      const DiskId occupant = shelves_[ref.shelf.value()].slots[ref.slot];
      if (occupant.valid()) disks_[occupant.value()].raid_group = group.id;
    }
  }
  initial_disk_count_ = disks_.size();
}

Fleet Fleet::build(const FleetConfig& config, const DiskModelRegistry& disk_models,
                   const ShelfModelRegistry& shelf_models) {
  return build_chunk(config, disk_models, shelf_models, 0, config.total_systems());
}

Fleet Fleet::build_chunk(const FleetConfig& config, std::size_t sys_begin,
                         std::size_t sys_end) {
  return build_chunk(config, DiskModelRegistry::standard(), ShelfModelRegistry::standard(),
                     sys_begin, sys_end);
}

Fleet Fleet::build_chunk(const FleetConfig& config, const DiskModelRegistry& disk_models,
                         const ShelfModelRegistry& shelf_models, std::size_t sys_begin,
                         std::size_t sys_end) {
  validate(config);
  Fleet fleet(config, disk_models, shelf_models);

  Rng root = stats::make_root_rng(config.seed);
  Rng build_rng = root.stream("fleet-build");

  // Walk every global system index up to sys_end. Forks before sys_begin
  // are replayed and discarded: fork() consumes a fixed amount of parent
  // entropy regardless of key, so this positions build_rng exactly where
  // the monolithic build would have it — each built system then samples
  // from the identical per-system stream.
  std::size_t g = 0;
  for (std::uint32_t cohort_idx = 0; cohort_idx < config.cohorts.size() && g < sys_end;
       ++cohort_idx) {
    const CohortSpec& cohort = config.cohorts[cohort_idx];
    const std::size_t n_systems = config.scaled_systems(cohort);
    const ShelfModelInfo& shelf_info = shelf_models.at(cohort.shelf_model);

    for (std::size_t s = 0; s < n_systems && g < sys_end; ++s, ++g) {
      Rng rng = build_rng.fork(static_cast<std::uint64_t>(cohort_idx) << 32u |
                               static_cast<std::uint64_t>(s));
      if (g < sys_begin) continue;
      fleet.append_system(cohort, cohort_idx, shelf_info, rng);
    }
  }

  fleet.finish_build();
  return fleet;
}

FleetPlan Fleet::plan(const FleetConfig& config) {
  return plan(config, DiskModelRegistry::standard(), ShelfModelRegistry::standard());
}

FleetPlan Fleet::plan(const FleetConfig& config, const DiskModelRegistry& disk_models,
                      const ShelfModelRegistry& shelf_models) {
  validate(config);
  Fleet scratch(config, disk_models, shelf_models);

  Rng root = stats::make_root_rng(config.seed);
  Rng build_rng = root.stream("fleet-build");

  FleetPlan out;
  const std::size_t total = config.total_systems();
  out.shelves.reserve(total + 1);
  out.disks.reserve(total + 1);
  out.raid_groups.reserve(total + 1);
  out.shelves.push_back(0);
  out.disks.push_back(0);
  out.raid_groups.push_back(0);

  std::uint64_t shelves = 0;
  std::uint64_t disks = 0;
  std::uint64_t raid_groups = 0;
  for (std::uint32_t cohort_idx = 0; cohort_idx < config.cohorts.size(); ++cohort_idx) {
    const CohortSpec& cohort = config.cohorts[cohort_idx];
    const std::size_t n_systems = config.scaled_systems(cohort);
    const ShelfModelInfo& shelf_info = shelf_models.at(cohort.shelf_model);

    for (std::size_t s = 0; s < n_systems; ++s) {
      // Reset the scratch topology so only one system is ever materialized.
      // Local ids restart at 0 each iteration; ids never influence sampling
      // or counts, and the RAID remainder-merge guard only ever merges
      // within one system, so the counts match the monolithic build.
      scratch.systems_.clear();
      scratch.shelves_.clear();
      scratch.disks_.clear();
      scratch.raid_groups_.clear();
      scratch.append_system(cohort, cohort_idx, shelf_info,
                            build_rng.fork(static_cast<std::uint64_t>(cohort_idx) << 32u |
                                           static_cast<std::uint64_t>(s)));
      shelves += scratch.shelves_.size();
      disks += scratch.disks_.size();
      raid_groups += scratch.raid_groups_.size();
      out.shelves.push_back(shelves);
      out.disks.push_back(disks);
      out.raid_groups.push_back(raid_groups);
    }
  }
  return out;
}

DiskId Fleet::disk_in(const SlotRef& ref) const {
  return shelves_[ref.shelf.value()].slots[ref.slot];
}

DiskId Fleet::occupant_at(const SlotRef& ref, double t) const {
  DiskId current = disk_in(ref);
  while (current.valid()) {
    const DiskRecord& rec = disks_[current.value()];
    if (t >= rec.install_time) {
      return t < rec.remove_time ? current : DiskId{};
    }
    current = rec.predecessor;
  }
  return DiskId{};
}

DiskId Fleet::replace_disk(DiskId failed, double remove_time, double install_time) {
  if (!failed.valid() || failed.value() >= disks_.size()) {
    throw std::out_of_range("Fleet::replace_disk: bad disk id");
  }
  DiskRecord& old = disks_[failed.value()];
  if (remove_time < old.install_time) {
    throw std::invalid_argument("Fleet::replace_disk: removal precedes install");
  }
  if (install_time < remove_time) {
    throw std::invalid_argument("Fleet::replace_disk: replacement precedes removal");
  }
  old.remove_time = remove_time;

  DiskRecord fresh = old;  // same model / slot / group / system
  fresh.id = DiskId(static_cast<std::uint32_t>(disks_.size()));
  fresh.predecessor = old.id;
  fresh.install_time = install_time;
  fresh.remove_time = std::numeric_limits<double>::infinity();
  shelves_[old.shelf.value()].slots[old.slot] = fresh.id;
  disks_.push_back(fresh);
  return fresh.id;
}

double Fleet::disk_exposure_years(const DiskRecord& disk) const {
  const double start = std::max(0.0, disk.install_time);
  const double end = std::min(config_.horizon_seconds, disk.remove_time);
  return end > start ? years(end - start) : 0.0;
}

double Fleet::total_disk_exposure_years() const {
  double total = 0.0;
  for (const auto& d : disks_) total += disk_exposure_years(d);
  return total;
}

std::array<char, 12> serial_chars(DiskId id) {
  // Base-36 rendering of the id, embedded in a plausible-looking serial.
  static constexpr char kAlphabet[] = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::uint64_t v = stats::mix64(id.value() + 0x5EED);
  std::array<char, 12> out{'S', 'N'};
  for (std::size_t i = 2; i < out.size(); ++i) {
    out[i] = kAlphabet[v % 36];
    v /= 36;
  }
  return out;
}

std::string serial_for(DiskId id) {
  const auto chars = serial_chars(id);
  return std::string(chars.data(), chars.size());
}

}  // namespace storsubsim::model
