// The materialized fleet: every system, shelf, disk and RAID group, plus
// disk install/replace records for exposure accounting.
//
// A Fleet is built deterministically from a FleetConfig (same config + seed
// => identical fleet). The simulator mutates it only through `replace_disk`.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/fleet_config.h"
#include "model/topology.h"

namespace storsubsim::model {

class Fleet {
 public:
  /// Builds a fleet from `config` using the standard model registries.
  static Fleet build(const FleetConfig& config);

  static Fleet build(const FleetConfig& config, const DiskModelRegistry& disk_models,
                     const ShelfModelRegistry& shelf_models);

  // --- accessors ----------------------------------------------------------

  const FleetConfig& config() const { return config_; }
  double horizon_seconds() const { return config_.horizon_seconds; }

  std::span<const System> systems() const { return systems_; }
  std::span<const Shelf> shelves() const { return shelves_; }
  std::span<const RaidGroup> raid_groups() const { return raid_groups_; }
  /// Every disk record ever installed (includes replaced disks).
  std::span<const DiskRecord> disks() const { return disks_; }

  const System& system(SystemId id) const { return systems_[id.value()]; }
  const Shelf& shelf(ShelfId id) const { return shelves_[id.value()]; }
  const RaidGroup& raid_group(RaidGroupId id) const { return raid_groups_[id.value()]; }
  const DiskRecord& disk(DiskId id) const { return disks_[id.value()]; }

  const DiskModelRegistry& disk_models() const { return *disk_models_; }
  const ShelfModelRegistry& shelf_models() const { return *shelf_models_; }

  /// Current occupant of a slot (invalid id if empty).
  DiskId disk_in(const SlotRef& ref) const;

  /// Occupant of a slot at time `t`, walking the replacement chain backwards
  /// from the current occupant. Invalid id if the slot was empty (repair
  /// gap) or not yet populated at `t`.
  DiskId occupant_at(const SlotRef& ref, double t) const;

  // --- mutation (simulator only) ------------------------------------------

  /// Retires `failed` at `remove_time` and installs a fresh disk of the same
  /// model into the same slot at `install_time`. Returns the new disk's id.
  DiskId replace_disk(DiskId failed, double remove_time, double install_time);

  // --- derived quantities ---------------------------------------------------

  /// Exposure of one disk record in years, clipped to [0, horizon].
  double disk_exposure_years(const DiskRecord& disk) const;

  /// Total disk exposure of the whole fleet in disk-years.
  double total_disk_exposure_years() const;

  std::size_t initial_disk_count() const { return initial_disk_count_; }

 private:
  Fleet(const FleetConfig& config, const DiskModelRegistry& disk_models,
        const ShelfModelRegistry& shelf_models);

  FleetConfig config_;
  const DiskModelRegistry* disk_models_;
  const ShelfModelRegistry* shelf_models_;

  std::vector<System> systems_;
  std::vector<Shelf> shelves_;
  std::vector<RaidGroup> raid_groups_;
  std::vector<DiskRecord> disks_;
  std::size_t initial_disk_count_ = 0;
};

/// Pseudo serial number for log lines, stable per disk id (the paper's logs
/// identify disks as "S/N [3EL03PAV00007111LR8W]"). The character-array
/// form is the allocation-free flavor the log emitter's hot path uses
/// (fixed width, not NUL-terminated); `serial_for` wraps it in a string.
std::array<char, 12> serial_chars(DiskId id);
std::string serial_for(DiskId id);

}  // namespace storsubsim::model
