// The materialized fleet: every system, shelf, disk and RAID group, plus
// disk install/replace records for exposure accounting.
//
// A Fleet is built deterministically from a FleetConfig (same config + seed
// => identical fleet). The simulator mutates it only through `replace_disk`.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/fleet_config.h"
#include "model/topology.h"

namespace storsubsim::stats {
class Rng;
}

namespace storsubsim::model {

/// Cumulative topology totals at every system boundary, produced by
/// Fleet::plan in bounded memory (one system materialized at a time).
/// Each prefix vector has total_systems() + 1 entries: entry g holds the
/// totals over global systems [0, g), so the last entry is the whole-fleet
/// total. Chunked builds use these to place a chunk's shelves, disks and
/// RAID groups at their global offsets without building preceding chunks.
struct FleetPlan {
  std::vector<std::uint64_t> shelves;      ///< cumulative shelf count
  std::vector<std::uint64_t> disks;        ///< cumulative *initial* disk count
  std::vector<std::uint64_t> raid_groups;  ///< cumulative RAID group count

  std::size_t system_count() const {
    return shelves.empty() ? 0 : shelves.size() - 1;
  }
};

class Fleet {
 public:
  /// Builds a fleet from `config` using the standard model registries.
  static Fleet build(const FleetConfig& config);

  static Fleet build(const FleetConfig& config, const DiskModelRegistry& disk_models,
                     const ShelfModelRegistry& shelf_models);

  /// Builds only the contiguous global system range [sys_begin, sys_end),
  /// with chunk-local dense ids starting at 0. Every sampled value matches
  /// the corresponding system of the monolithic build bit for bit: the
  /// per-system RNG is positioned by replaying the preceding forks (a fork
  /// consumes a fixed amount of parent entropy, independent of its key).
  static Fleet build_chunk(const FleetConfig& config, std::size_t sys_begin,
                           std::size_t sys_end);

  static Fleet build_chunk(const FleetConfig& config, const DiskModelRegistry& disk_models,
                           const ShelfModelRegistry& shelf_models, std::size_t sys_begin,
                           std::size_t sys_end);

  /// Sweeps every system through the shared per-system builder — resetting
  /// the scratch topology between systems, so peak memory stays at one
  /// system — and records the cumulative counts chunked builds need.
  static FleetPlan plan(const FleetConfig& config);

  static FleetPlan plan(const FleetConfig& config, const DiskModelRegistry& disk_models,
                        const ShelfModelRegistry& shelf_models);

  // --- accessors ----------------------------------------------------------

  const FleetConfig& config() const { return config_; }
  double horizon_seconds() const { return config_.horizon_seconds; }

  std::span<const System> systems() const { return systems_; }
  std::span<const Shelf> shelves() const { return shelves_; }
  std::span<const RaidGroup> raid_groups() const { return raid_groups_; }
  /// Every disk record ever installed (includes replaced disks).
  std::span<const DiskRecord> disks() const { return disks_; }

  const System& system(SystemId id) const { return systems_[id.value()]; }
  const Shelf& shelf(ShelfId id) const { return shelves_[id.value()]; }
  const RaidGroup& raid_group(RaidGroupId id) const { return raid_groups_[id.value()]; }
  const DiskRecord& disk(DiskId id) const { return disks_[id.value()]; }

  const DiskModelRegistry& disk_models() const { return *disk_models_; }
  const ShelfModelRegistry& shelf_models() const { return *shelf_models_; }

  /// Current occupant of a slot (invalid id if empty).
  DiskId disk_in(const SlotRef& ref) const;

  /// Occupant of a slot at time `t`, walking the replacement chain backwards
  /// from the current occupant. Invalid id if the slot was empty (repair
  /// gap) or not yet populated at `t`.
  DiskId occupant_at(const SlotRef& ref, double t) const;

  // --- mutation (simulator only) ------------------------------------------

  /// Retires `failed` at `remove_time` and installs a fresh disk of the same
  /// model into the same slot at `install_time`. Returns the new disk's id.
  DiskId replace_disk(DiskId failed, double remove_time, double install_time);

  // --- derived quantities ---------------------------------------------------

  /// Exposure of one disk record in years, clipped to [0, horizon].
  double disk_exposure_years(const DiskRecord& disk) const;

  /// Total disk exposure of the whole fleet in disk-years.
  double total_disk_exposure_years() const;

  std::size_t initial_disk_count() const { return initial_disk_count_; }

 private:
  Fleet(const FleetConfig& config, const DiskModelRegistry& disk_models,
        const ShelfModelRegistry& shelf_models);

  /// Appends one fully-sampled system (shelves, disks, RAID groups) using
  /// the current vector sizes as ids. The single source of truth for
  /// per-system construction — build, build_chunk and plan all call it, so
  /// the sampled topology can never diverge between the three paths.
  void append_system(const CohortSpec& cohort, std::uint32_t cohort_idx,
                     const ShelfModelInfo& shelf_info, stats::Rng rng);

  /// Back-fills RAID-group membership onto the disk records and seals
  /// initial_disk_count_. Called once after the last append_system.
  void finish_build();

  FleetConfig config_;
  const DiskModelRegistry* disk_models_;
  const ShelfModelRegistry* shelf_models_;

  std::vector<System> systems_;
  std::vector<Shelf> shelves_;
  std::vector<RaidGroup> raid_groups_;
  std::vector<DiskRecord> disks_;
  std::size_t initial_disk_count_ = 0;
};

/// Pseudo serial number for log lines, stable per disk id (the paper's logs
/// identify disks as "S/N [3EL03PAV00007111LR8W]"). The character-array
/// form is the allocation-free flavor the log emitter's hot path uses
/// (fixed width, not NUL-terminated); `serial_for` wraps it in a string.
std::array<char, 12> serial_chars(DiskId id);
std::string serial_for(DiskId id);

}  // namespace storsubsim::model
