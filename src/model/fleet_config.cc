#include "model/fleet_config.h"

#include <cmath>
#include <stdexcept>

namespace storsubsim::model {

std::size_t FleetConfig::scaled_systems(const CohortSpec& cohort) const {
  const double n = std::max(1.0, std::round(static_cast<double>(cohort.num_systems) * scale));
  return static_cast<std::size_t>(n);
}

std::size_t FleetConfig::total_systems() const {
  std::size_t total = 0;
  for (const auto& c : cohorts) total += scaled_systems(c);
  return total;
}

void validate(const FleetConfig& config) {
  if (config.cohorts.empty()) throw std::invalid_argument("FleetConfig: no cohorts");
  if (!(config.horizon_seconds > 0.0)) {
    throw std::invalid_argument("FleetConfig: horizon must be positive");
  }
  if (!(config.scale > 0.0)) throw std::invalid_argument("FleetConfig: scale must be positive");
  if (config.deploy_window_fraction < 0.0 || config.deploy_window_fraction > 1.0) {
    throw std::invalid_argument("FleetConfig: deploy window fraction must be in [0, 1]");
  }
  if (!(config.deploy_skew > 0.0)) {
    throw std::invalid_argument("FleetConfig: deploy skew must be positive");
  }
  const auto& disks = DiskModelRegistry::standard();
  const auto& shelves = ShelfModelRegistry::standard();
  for (const auto& c : config.cohorts) {
    if (c.disk_mix.empty()) {
      throw std::invalid_argument("FleetConfig: cohort '" + c.label + "' has empty disk mix");
    }
    double weight = 0.0;
    for (const auto& entry : c.disk_mix) {
      if (disks.find(entry.model) == nullptr) {
        throw std::invalid_argument("FleetConfig: cohort '" + c.label +
                                    "' references unknown disk model " +
                                    to_string(entry.model));
      }
      if (!(entry.weight >= 0.0)) {
        throw std::invalid_argument("FleetConfig: negative disk mix weight in '" + c.label +
                                    "'");
      }
      weight += entry.weight;
    }
    if (!(weight > 0.0)) {
      throw std::invalid_argument("FleetConfig: zero total mix weight in '" + c.label + "'");
    }
    if (shelves.find(c.shelf_model) == nullptr) {
      throw std::invalid_argument("FleetConfig: cohort '" + c.label +
                                  "' references unknown shelf model " +
                                  to_string(c.shelf_model));
    }
    if (c.num_systems == 0) {
      throw std::invalid_argument("FleetConfig: cohort '" + c.label + "' has zero systems");
    }
    if (!(c.mean_shelves_per_system >= 1.0)) {
      throw std::invalid_argument("FleetConfig: cohort '" + c.label +
                                  "' needs >= 1 shelf per system");
    }
    if (!(c.mean_disks_per_shelf > 0.0) ||
        c.mean_disks_per_shelf > static_cast<double>(kShelfSlots)) {
      throw std::invalid_argument("FleetConfig: cohort '" + c.label +
                                  "' disks per shelf must be in (0, 14]");
    }
    if (c.raid_group_size < 2) {
      throw std::invalid_argument("FleetConfig: cohort '" + c.label +
                                  "' RAID groups need >= 2 disks");
    }
    if (c.raid_span_shelves == 0) {
      throw std::invalid_argument("FleetConfig: cohort '" + c.label +
                                  "' RAID span must be >= 1 shelf");
    }
    if (c.raid6_fraction < 0.0 || c.raid6_fraction > 1.0 || c.dual_path_fraction < 0.0 ||
        c.dual_path_fraction > 1.0) {
      throw std::invalid_argument("FleetConfig: cohort '" + c.label +
                                  "' fractions must be in [0, 1]");
    }
  }
}

FleetConfig standard_fleet_config(double scale, std::uint64_t seed) {
  // Populations and structure ratios from Table 1 of the paper:
  //   near-line: 4,927 systems / 33,681 shelves / 520,776 SATA disks
  //   low-end:  22,031 systems / 37,260 shelves / 264,983 FC disks
  //   mid-range: 7,154 systems / 52,621 shelves / 578,980 FC disks
  //   high-end:  5,003 systems / 33,428 shelves / 454,684 FC disks
  // Disk-model-per-cohort sets follow Figure 5(a)-(f); about 1/3 of
  // mid-range and high-end systems run dual paths (Section 4.3).
  FleetConfig config;
  config.scale = scale;
  config.seed = seed;

  CohortSpec nearline;
  nearline.label = "near-line/shelf-C";
  nearline.cls = SystemClass::kNearLine;
  nearline.shelf_model = ShelfModelName{'C'};
  nearline.disk_mix = {{{'I', 1}, 0.25}, {{'J', 1}, 0.22}, {{'J', 2}, 0.20},
                       {{'K', 1}, 0.18}, {{'I', 2}, 0.15}};
  nearline.num_systems = 4927;
  nearline.mean_shelves_per_system = 6.84;
  nearline.mean_disks_per_shelf = 14.0;  // backup shelves run fully populated
  nearline.raid_group_size = 8;
  nearline.raid6_fraction = 0.35;
  nearline.raid_span_shelves = 3;
  nearline.dual_path_fraction = 0.0;
  config.cohorts.push_back(nearline);

  CohortSpec lowend_a;
  lowend_a.label = "low-end/shelf-A";
  lowend_a.cls = SystemClass::kLowEnd;
  lowend_a.shelf_model = ShelfModelName{'A'};
  lowend_a.disk_mix = {{{'A', 2}, 0.26}, {{'A', 3}, 0.22}, {{'D', 2}, 0.22},
                       {{'D', 3}, 0.18}, {{'H', 2}, 0.12}};
  lowend_a.num_systems = 11000;
  lowend_a.mean_shelves_per_system = 1.69;
  lowend_a.mean_disks_per_shelf = 7.1;
  lowend_a.raid_group_size = 6;
  lowend_a.raid6_fraction = 0.30;
  lowend_a.raid_span_shelves = 2;
  lowend_a.dual_path_fraction = 0.0;
  config.cohorts.push_back(lowend_a);

  CohortSpec lowend_b = lowend_a;
  lowend_b.label = "low-end/shelf-B";
  lowend_b.shelf_model = ShelfModelName{'B'};
  lowend_b.num_systems = 11031;
  config.cohorts.push_back(lowend_b);

  CohortSpec mid_c;
  mid_c.label = "mid-range/shelf-C";
  mid_c.cls = SystemClass::kMidRange;
  mid_c.shelf_model = ShelfModelName{'C'};
  mid_c.disk_mix = {{{'B', 1}, 0.30}, {{'C', 1}, 0.30}, {{'G', 1}, 0.26}, {{'H', 1}, 0.14}};
  mid_c.num_systems = 2000;
  mid_c.mean_shelves_per_system = 7.36;
  mid_c.mean_disks_per_shelf = 11.0;
  mid_c.raid_group_size = 8;
  mid_c.raid6_fraction = 0.30;
  mid_c.raid_span_shelves = 3;
  mid_c.dual_path_fraction = 1.0 / 3.0;
  config.cohorts.push_back(mid_c);

  CohortSpec mid_b;
  mid_b.label = "mid-range/shelf-B";
  mid_b.cls = SystemClass::kMidRange;
  mid_b.shelf_model = ShelfModelName{'B'};
  mid_b.disk_mix = {{{'A', 1}, 0.09}, {{'A', 2}, 0.13}, {{'C', 1}, 0.10}, {{'C', 2}, 0.12},
                    {{'D', 1}, 0.08}, {{'D', 2}, 0.13}, {{'D', 3}, 0.11}, {{'E', 1}, 0.10},
                    {{'H', 1}, 0.07}, {{'H', 2}, 0.07}};
  mid_b.num_systems = 5154;
  mid_b.mean_shelves_per_system = 7.36;
  mid_b.mean_disks_per_shelf = 11.0;
  mid_b.raid_group_size = 8;
  mid_b.raid6_fraction = 0.30;
  mid_b.raid_span_shelves = 3;
  mid_b.dual_path_fraction = 1.0 / 3.0;
  config.cohorts.push_back(mid_b);

  CohortSpec high_b;
  high_b.label = "high-end/shelf-B";
  high_b.cls = SystemClass::kHighEnd;
  high_b.shelf_model = ShelfModelName{'B'};
  high_b.disk_mix = {{{'A', 2}, 0.11}, {{'A', 3}, 0.12}, {{'C', 2}, 0.11}, {{'D', 2}, 0.12},
                     {{'D', 3}, 0.11}, {{'E', 1}, 0.10}, {{'F', 1}, 0.10}, {{'F', 2}, 0.09},
                     {{'H', 1}, 0.07}, {{'H', 2}, 0.07}};
  high_b.num_systems = 5003;
  high_b.mean_shelves_per_system = 6.68;
  high_b.mean_disks_per_shelf = 13.6;
  high_b.raid_group_size = 9;
  high_b.raid6_fraction = 0.30;
  high_b.raid_span_shelves = 3;
  high_b.dual_path_fraction = 1.0 / 3.0;
  config.cohorts.push_back(high_b);

  validate(config);
  return config;
}

FleetConfig single_cohort_config(const CohortSpec& cohort, double horizon_seconds,
                                 std::uint64_t seed) {
  FleetConfig config;
  config.cohorts.push_back(cohort);
  config.horizon_seconds = horizon_seconds;
  config.seed = seed;
  validate(config);
  return config;
}

}  // namespace storsubsim::model
