#include "model/disk_model.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace storsubsim::model {

std::string to_string(const DiskModelName& name) {
  return std::string(1, name.family) + "-" + std::to_string(name.capacity_index);
}

std::optional<DiskModelName> parse_disk_model_name(std::string_view s) {
  if (s.size() < 3 || s[1] != '-') return std::nullopt;
  const char family = s[0];
  if (family < 'A' || family > 'Z') return std::nullopt;
  int index = 0;
  const auto [ptr, ec] = std::from_chars(s.data() + 2, s.data() + s.size(), index);
  if (ec != std::errc{} || ptr != s.data() + s.size() || index <= 0) return std::nullopt;
  return DiskModelName{family, index};
}

DiskModelRegistry::DiskModelRegistry(std::vector<DiskModelInfo> models)
    : models_(std::move(models)) {
  std::sort(models_.begin(), models_.end(),
            [](const DiskModelInfo& a, const DiskModelInfo& b) { return a.name < b.name; });
  for (std::size_t i = 1; i < models_.size(); ++i) {
    if (models_[i].name == models_[i - 1].name) {
      throw std::invalid_argument("DiskModelRegistry: duplicate model " +
                                  to_string(models_[i].name));
    }
  }
}

const DiskModelInfo* DiskModelRegistry::find(const DiskModelName& name) const {
  const auto it = std::lower_bound(
      models_.begin(), models_.end(), name,
      [](const DiskModelInfo& info, const DiskModelName& n) { return info.name < n; });
  if (it == models_.end() || !(it->name == name)) return nullptr;
  return &*it;
}

const DiskModelInfo& DiskModelRegistry::at(const DiskModelName& name) const {
  const DiskModelInfo* info = find(name);
  if (info == nullptr) {
    throw std::out_of_range("DiskModelRegistry: unknown model " + to_string(name));
  }
  return *info;
}

std::vector<DiskModelName> DiskModelRegistry::models_of_type(DiskType type) const {
  std::vector<DiskModelName> out;
  for (const auto& m : models_) {
    if (m.type == type) out.push_back(m.name);
  }
  return out;
}

const DiskModelRegistry& DiskModelRegistry::standard() {
  // Calibration notes:
  //  * FC disk AFRs sit in the 0.6-0.9% band the paper reports ("consistently
  //    below 1%, as published by manufacturers"), SATA families around 1.7-2.1%
  //    so the near-line aggregate lands at ~1.9% (Finding 2).
  //  * Family H is the problematic family: elevated disk AFR plus protocol /
  //    performance hazard coupling, driving subsystem AFR to ~2x the 2-4%
  //    norm (Finding 3, Figure 5).
  //  * Within a family, capacity index orders capacity but NOT failure rate
  //    (Finding 5: no AFR growth with disk size; D-2 is in fact better than
  //    D-1 in Figure 5(e)).
  static const DiskModelRegistry registry{std::vector<DiskModelInfo>{
      // FC enterprise families.
      {{'A', 1}, DiskType::kFc, 72, 0.92, 1.0, 1.0},
      {{'A', 2}, DiskType::kFc, 144, 0.90, 1.0, 1.0},
      {{'A', 3}, DiskType::kFc, 300, 0.88, 1.0, 1.0},
      {{'B', 1}, DiskType::kFc, 72, 0.92, 1.0, 1.0},
      {{'C', 1}, DiskType::kFc, 72, 0.85, 1.0, 1.0},
      {{'C', 2}, DiskType::kFc, 144, 0.82, 1.0, 1.0},
      {{'D', 1}, DiskType::kFc, 72, 0.95, 1.0, 1.0},
      {{'D', 2}, DiskType::kFc, 144, 0.85, 1.0, 1.0},
      {{'D', 3}, DiskType::kFc, 300, 0.88, 1.0, 1.0},
      {{'E', 1}, DiskType::kFc, 144, 0.87, 1.0, 1.0},
      {{'F', 1}, DiskType::kFc, 144, 0.83, 1.0, 1.0},
      {{'F', 2}, DiskType::kFc, 300, 0.80, 1.0, 1.0},
      {{'G', 1}, DiskType::kFc, 144, 0.90, 1.0, 1.0},
      // Problematic family H: high intrinsic failure rate and cross-coupling
      // into protocol and performance failures.
      {{'H', 1}, DiskType::kFc, 144, 1.90, 2.4, 2.8},
      {{'H', 2}, DiskType::kFc, 300, 2.30, 2.8, 3.2},
      // SATA near-line families.
      {{'I', 1}, DiskType::kSata, 250, 1.75, 1.0, 1.0},
      {{'I', 2}, DiskType::kSata, 500, 1.70, 1.0, 1.0},
      {{'J', 1}, DiskType::kSata, 250, 2.05, 1.0, 1.0},
      {{'J', 2}, DiskType::kSata, 320, 1.95, 1.0, 1.0},
      {{'K', 1}, DiskType::kSata, 400, 1.85, 1.0, 1.0},
  }};
  return registry;
}

}  // namespace storsubsim::model
