#include "store/writer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/parallel.h"

namespace storsubsim::store {

namespace {

/// Column bookkeeping while the image is under construction. Offsets are
/// relative to the enclosing buffer until final assembly.
struct ColumnRecord {
  std::uint8_t shard = 0;
  ColumnId id = ColumnId::kEventTime;
  Encoding encoding = Encoding::kRaw;
  std::uint64_t rows = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
};

/// One footer block-index entry; `row_begin` is relative to the shard.
struct BlockRecord {
  std::uint8_t shard = 0;
  std::uint64_t row_begin = 0;
  std::uint64_t rows = 0;
  double time_min = 0.0;
  double time_max = 0.0;
};

void pad_to_alignment(std::string& out) {
  while (out.size() % kColumnAlignment != 0) out.push_back('\0');
}

/// Seals the column that started at `begin`: computes its CRC and records it.
void finish_column(std::string& buf, std::size_t begin, std::uint8_t shard,
                   ColumnId id, Encoding encoding, std::uint64_t rows,
                   std::vector<ColumnRecord>& columns) {
  ColumnRecord rec;
  rec.shard = shard;
  rec.id = id;
  rec.encoding = encoding;
  rec.rows = rows;
  rec.offset = begin;
  rec.size = buf.size() - begin;
  rec.crc = crc32(buf.data() + begin, buf.size() - begin);
  columns.push_back(rec);
}

/// Encoded bytes + directory entries of one event shard (one system class).
struct ShardEncoding {
  std::string bytes;
  std::vector<ColumnRecord> columns;  ///< offsets relative to `bytes`
  std::vector<BlockRecord> blocks;
};

char system_family(const log::Inventory& inv, model::SystemId system) {
  return inv.systems[system.value()].disk_model.family;
}

/// Encodes the seven event columns of one class shard. Events are already in
/// canonical (time, disk, type) order.
ShardEncoding encode_event_shard(const log::Inventory& inv, std::uint8_t shard,
                                 std::span<const log::ClassifiedFailure> events) {
  ShardEncoding out;
  const auto rows = static_cast<std::uint64_t>(events.size());
  // time/varint is ~4 B per row at full scale; the six raw columns are 18 B.
  out.bytes.reserve(events.size() * 24 + 64);

  // kEventTime: delta of consecutive f64 bit patterns, zigzag + varint.
  // Times are sorted non-negative doubles, whose bit patterns sort the same
  // way, so deltas are small non-negative integers.
  std::size_t begin = out.bytes.size();
  std::int64_t prev = 0;
  for (const auto& e : events) {
    std::int64_t bits = 0;
    std::memcpy(&bits, &e.time, sizeof(bits));
    append_varint(out.bytes, zigzag_encode(bits - prev));
    prev = bits;
  }
  finish_column(out.bytes, begin, shard, ColumnId::kEventTime,
                Encoding::kDeltaVarint, rows, out.columns);

  pad_to_alignment(out.bytes);
  begin = out.bytes.size();
  for (const auto& e : events) append_u8(out.bytes, static_cast<std::uint8_t>(e.type));
  finish_column(out.bytes, begin, shard, ColumnId::kEventType, Encoding::kRaw, rows,
                out.columns);

  pad_to_alignment(out.bytes);
  begin = out.bytes.size();
  for (const auto& e : events) {
    append_u8(out.bytes, static_cast<std::uint8_t>(system_family(inv, e.system)));
  }
  finish_column(out.bytes, begin, shard, ColumnId::kEventFamily, Encoding::kRaw, rows,
                out.columns);

  pad_to_alignment(out.bytes);
  begin = out.bytes.size();
  for (const auto& e : events) append_u32(out.bytes, e.disk.value());
  finish_column(out.bytes, begin, shard, ColumnId::kEventDisk, Encoding::kRaw, rows,
                out.columns);

  pad_to_alignment(out.bytes);
  begin = out.bytes.size();
  for (const auto& e : events) append_u32(out.bytes, e.system.value());
  finish_column(out.bytes, begin, shard, ColumnId::kEventSystem, Encoding::kRaw, rows,
                out.columns);

  pad_to_alignment(out.bytes);
  begin = out.bytes.size();
  for (const auto& e : events) {
    append_u32(out.bytes, inv.disks[e.disk.value()].shelf.value());
  }
  finish_column(out.bytes, begin, shard, ColumnId::kEventShelf, Encoding::kRaw, rows,
                out.columns);

  pad_to_alignment(out.bytes);
  begin = out.bytes.size();
  for (const auto& e : events) {
    append_u32(out.bytes, inv.disks[e.disk.value()].raid_group.value());
  }
  finish_column(out.bytes, begin, shard, ColumnId::kEventRaidGroup, Encoding::kRaw,
                rows, out.columns);
  pad_to_alignment(out.bytes);

  // Time-window block index over this shard's canonical order.
  for (std::uint64_t row = 0; row < rows; row += kBlockRows) {
    BlockRecord block;
    block.shard = shard;
    block.row_begin = row;
    block.rows = std::min<std::uint64_t>(kBlockRows, rows - row);
    block.time_min = events[row].time;
    block.time_max = events[row + block.rows - 1].time;
    out.blocks.push_back(block);
  }
  return out;
}

/// Appends one topology column: `value(i)` yields row i's value.
template <typename AppendFn>
void topology_column(std::string& image, ColumnId id, std::uint64_t rows,
                     std::vector<ColumnRecord>& columns, const AppendFn& append_row) {
  pad_to_alignment(image);
  const std::size_t begin = image.size();
  for (std::uint64_t i = 0; i < rows; ++i) append_row(image, i);
  finish_column(image, begin, kTopologyShard, id, Encoding::kRaw, rows, columns);
}

void append_topology(std::string& image, const log::Inventory& inv,
                     std::vector<ColumnRecord>& columns) {
  const auto& systems = inv.systems;
  const auto n_sys = static_cast<std::uint64_t>(systems.size());
  topology_column(image, ColumnId::kSysClass, n_sys, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u8(out, static_cast<std::uint8_t>(systems[i].cls));
                  });
  topology_column(image, ColumnId::kSysPaths, n_sys, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u8(out, static_cast<std::uint8_t>(systems[i].paths));
                  });
  topology_column(image, ColumnId::kSysDiskFamily, n_sys, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u8(out, static_cast<std::uint8_t>(systems[i].disk_model.family));
                  });
  topology_column(image, ColumnId::kSysDiskCap, n_sys, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u32(out, static_cast<std::uint32_t>(systems[i].disk_model.capacity_index));
                  });
  topology_column(image, ColumnId::kSysShelfModel, n_sys, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u8(out, static_cast<std::uint8_t>(systems[i].shelf_model.letter));
                  });
  topology_column(image, ColumnId::kSysDeploy, n_sys, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_f64(out, systems[i].deploy_time);
                  });
  topology_column(image, ColumnId::kSysCohort, n_sys, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u32(out, systems[i].cohort);
                  });

  const auto& shelves = inv.shelves;
  const auto n_shelf = static_cast<std::uint64_t>(shelves.size());
  topology_column(image, ColumnId::kShelfSystem, n_shelf, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u32(out, shelves[i].system.value());
                  });
  topology_column(image, ColumnId::kShelfModel, n_shelf, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u8(out, static_cast<std::uint8_t>(shelves[i].model.letter));
                  });

  const auto& disks = inv.disks;
  const auto n_disk = static_cast<std::uint64_t>(disks.size());
  topology_column(image, ColumnId::kDiskFamily, n_disk, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u8(out, static_cast<std::uint8_t>(disks[i].model.family));
                  });
  topology_column(image, ColumnId::kDiskCap, n_disk, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u32(out, static_cast<std::uint32_t>(disks[i].model.capacity_index));
                  });
  topology_column(image, ColumnId::kDiskSystem, n_disk, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u32(out, disks[i].system.value());
                  });
  topology_column(image, ColumnId::kDiskShelf, n_disk, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u32(out, disks[i].shelf.value());
                  });
  topology_column(image, ColumnId::kDiskRaidGroup, n_disk, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u32(out, disks[i].raid_group.value());
                  });
  topology_column(image, ColumnId::kDiskSlot, n_disk, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u32(out, disks[i].slot);
                  });
  topology_column(image, ColumnId::kDiskInstall, n_disk, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_f64(out, disks[i].install_time);
                  });
  topology_column(image, ColumnId::kDiskRemove, n_disk, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_f64(out, disks[i].remove_time);
                  });

  const auto& groups = inv.raid_groups;
  const auto n_rg = static_cast<std::uint64_t>(groups.size());
  topology_column(image, ColumnId::kRgSystem, n_rg, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u32(out, groups[i].system.value());
                  });
  topology_column(image, ColumnId::kRgType, n_rg, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u8(out, static_cast<std::uint8_t>(groups[i].type));
                  });
  topology_column(image, ColumnId::kRgMembers, n_rg, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u32(out, groups[i].member_count);
                  });
  topology_column(image, ColumnId::kRgSpan, n_rg, columns,
                  [&](std::string& out, std::uint64_t i) {
                    append_u32(out, groups[i].shelf_span);
                  });
}

void append_meta(std::string& out, const StoreMeta& meta) {
  for (const auto v : meta.sim_events_by_type) append_u64(out, v);
  append_u64(out, meta.sim_replacements);
  append_u64(out, meta.sim_triggered_disk_failures);
  append_u64(out, meta.sim_shelf_faults);
  append_u64(out, meta.sim_path_faults);
  append_u64(out, meta.sim_masked_path_faults);
  append_u64(out, meta.log_lines_written);
  append_u64(out, meta.log_lines_parsed);
  append_u64(out, meta.raid_records);
  append_u64(out, meta.failures_classified);
  append_u64(out, meta.duplicates_dropped);
  append_u64(out, meta.missing_disk_dropped);
}

/// Exposure table. Every aggregate is its own sweep over disks in id order —
/// the same iteration (and therefore FP rounding) as
/// Dataset::disk_exposure_years over the matching cohort.
void append_exposure(std::string& out, const log::Inventory& inv) {
  double total = 0.0;
  for (const auto& d : inv.disks) total += inv.disk_exposure_years(d);
  append_f64(out, total);

  for (std::size_t c = 0; c < kClassCount; ++c) {
    double years = 0.0;
    for (const auto& d : inv.disks) {
      if (model::index_of(inv.systems[d.system.value()].cls) == c) {
        years += inv.disk_exposure_years(d);
      }
    }
    append_f64(out, years);
  }

  for (std::size_t c = 0; c < kClassCount; ++c) {
    std::uint64_t n = 0;
    for (const auto& sys : inv.systems) {
      if (model::index_of(sys.cls) == c) ++n;
    }
    append_u64(out, n);
  }

  // Family cohorts match Filter::disk_family: the *system's* disk family
  // selects the cohort, and every disk of a selected system accrues.
  std::map<char, bool> families;
  std::map<std::pair<std::uint8_t, char>, bool> class_families;
  for (const auto& sys : inv.systems) {
    families[sys.disk_model.family] = true;
    class_families[{static_cast<std::uint8_t>(model::index_of(sys.cls)),
                    sys.disk_model.family}] = true;
  }

  append_u32(out, static_cast<std::uint32_t>(families.size()));
  for (const auto& [family, _] : families) {
    double years = 0.0;
    for (const auto& d : inv.disks) {
      if (inv.systems[d.system.value()].disk_model.family == family) {
        years += inv.disk_exposure_years(d);
      }
    }
    append_u8(out, static_cast<std::uint8_t>(family));
    append_f64(out, years);
  }

  append_u32(out, static_cast<std::uint32_t>(class_families.size()));
  for (const auto& [key, _] : class_families) {
    const auto [cls, family] = key;
    double years = 0.0;
    for (const auto& d : inv.disks) {
      const auto& sys = inv.systems[d.system.value()];
      if (model::index_of(sys.cls) == cls && sys.disk_model.family == family) {
        years += inv.disk_exposure_years(d);
      }
    }
    append_u8(out, cls);
    append_u8(out, static_cast<std::uint8_t>(family));
    append_f64(out, years);
  }
}

void append_directory(std::string& out, const std::vector<ColumnRecord>& columns) {
  append_u32(out, static_cast<std::uint32_t>(columns.size()));
  for (const auto& col : columns) {
    append_u8(out, col.shard);
    append_u16(out, static_cast<std::uint16_t>(col.id));
    append_u8(out, static_cast<std::uint8_t>(col.encoding));
    append_u64(out, col.rows);
    append_u64(out, col.offset);
    append_u64(out, col.size);
    append_u32(out, col.crc);
  }
}

void append_block_index(std::string& out, const std::vector<BlockRecord>& blocks) {
  append_u32(out, static_cast<std::uint32_t>(blocks.size()));
  for (const auto& block : blocks) {
    append_u8(out, block.shard);
    append_u64(out, block.row_begin);
    append_u64(out, block.rows);
    append_f64(out, block.time_min);
    append_f64(out, block.time_max);
  }
}

}  // namespace

Error build_store_image(const StoreContents& contents, std::string* image) {
  obs::Span span("store.build_image");
  if (contents.inventory == nullptr) {
    return make_error(ErrorCode::kBadValue, "writer: null inventory");
  }
  const log::Inventory& inv = *contents.inventory;

  // Validate references up front so encoding can index without checks.
  for (const auto& e : contents.events) {
    if (e.disk.value() >= inv.disks.size()) {
      return make_error(ErrorCode::kBadValue, "writer: event references unknown disk");
    }
    if (e.system.value() >= inv.systems.size()) {
      return make_error(ErrorCode::kBadValue, "writer: event references unknown system");
    }
  }

  // Canonical order: the classifier's global (time, disk, type) order. The
  // writer re-sorts unconditionally so the image is a pure function of the
  // event *set*, not of the order the caller happened to hold it in.
  std::vector<log::ClassifiedFailure> sorted(contents.events.begin(),
                                             contents.events.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const log::ClassifiedFailure& a, const log::ClassifiedFailure& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.disk != b.disk) return a.disk < b.disk;
              return static_cast<int>(a.type) < static_cast<int>(b.type);
            });

  // Stable partition into one span per system class (partition preserves the
  // canonical order within each class).
  std::array<std::vector<log::ClassifiedFailure>, kClassCount> per_class;
  for (const auto& e : sorted) {
    per_class[model::index_of(inv.systems[e.system.value()].cls)].push_back(e);
  }

  // Encode the four class shards through the shared pool. Workers touch
  // disjoint slots of `shards`; the merge below walks class order, so the
  // image is independent of scheduling.
  std::array<ShardEncoding, kClassCount> shards;
  util::parallel_for(kClassCount, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      shards[s] = encode_event_shard(inv, static_cast<std::uint8_t>(s), per_class[s]);
    }
  });

  std::string out;
  out.append(kHeaderSize, '\0');  // patched last

  std::vector<ColumnRecord> columns;
  append_topology(out, inv, columns);

  std::vector<BlockRecord> blocks;
  for (std::size_t s = 0; s < kClassCount; ++s) {
    pad_to_alignment(out);
    const std::uint64_t base = out.size();
    out.append(shards[s].bytes);
    for (ColumnRecord col : shards[s].columns) {
      col.offset += base;
      columns.push_back(col);
    }
    blocks.insert(blocks.end(), shards[s].blocks.begin(), shards[s].blocks.end());
  }

  pad_to_alignment(out);
  const std::uint64_t footer_offset = out.size();
  append_meta(out, contents.meta);
  append_exposure(out, inv);
  append_directory(out, columns);
  append_block_index(out, blocks);
  append_u32(out, crc32(out.data() + footer_offset, out.size() - footer_offset));
  const std::uint64_t footer_size = out.size() - footer_offset;

  Header header;
  header.file_size = out.size();
  header.footer_offset = footer_offset;
  header.footer_size = footer_size;
  header.seed = contents.seed;
  header.scale = contents.scale;
  header.horizon_seconds = inv.horizon_seconds;
  header.event_count = sorted.size();
  header.system_count = inv.systems.size();
  header.shelf_count = inv.shelves.size();
  header.disk_count = inv.disks.size();
  header.raid_group_count = inv.raid_groups.size();
  std::string head;
  head.reserve(kHeaderSize);
  append_header(head, header);
  out.replace(0, kHeaderSize, head);

  STORSIM_OBS_COUNTER(c_bytes, "store.write.bytes",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_bytes, out.size());
  STORSIM_OBS_COUNTER(c_cols, "store.write.columns",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_cols, columns.size());

  *image = std::move(out);
  return Error{};
}

Error write_store_file(const std::string& path, const StoreContents& contents) {
  std::string image;
  if (Error err = build_store_image(contents, &image); !err.ok()) return err;

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return make_error(ErrorCode::kIo, std::string("cannot create ").append(path));
  }
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != image.size() || !close_ok) {
    return make_error(ErrorCode::kIo, std::string("short write to ").append(path));
  }
  return Error{};
}

}  // namespace storsubsim::store
