// Declarative queries over an opened EventStore.
//
// A Query is the store-side analogue of core::Filter plus a group-by: select
// events by failure type / system class / disk family / detection-time
// window, then aggregate counts (and AFR-style rates where a disk-year
// denominator is defined) per group. Time-window predicates prune whole
// blocks through the footer's block index before any row is touched.
//
// Rates use the footer's pre-computed exposure table, so a rate produced
// here is bit-identical to the matching in-memory Dataset computation.
// Queries with a time-window predicate report counts only (`disk_years`
// stays 0 — exposure within an arbitrary window is not stored).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/enums.h"
#include "store/reader.h"
#include "store/shards.h"

namespace storsubsim::store {

struct Query {
  enum class GroupBy : std::uint8_t {
    kNone,         ///< one aggregate over everything selected
    kSystemClass,  ///< one group per system class
    kFailureType,  ///< one group per failure type
    kDiskFamily,   ///< one group per (system) disk family
  };

  std::optional<model::SystemClass> system_class;
  std::optional<model::FailureType> failure_type;
  std::optional<char> disk_family;  ///< owning system's family (Filter semantics)
  std::optional<double> time_begin; ///< inclusive lower bound on detection time
  std::optional<double> time_end;   ///< exclusive upper bound
  GroupBy group_by = GroupBy::kNone;
};

struct QueryGroup {
  std::string label;
  std::array<std::uint64_t, kFailureTypeCount> events_by_type{};
  std::uint64_t events = 0;
  /// Cohort denominator; 0 when undefined (time-window queries).
  double disk_years = 0.0;
  /// 100 * events / disk_years when disk_years > 0, else 0.
  double afr_pct = 0.0;
};

/// Scan accounting: how much work the block index saved.
struct QueryStats {
  std::uint64_t rows_scanned = 0;
  std::uint64_t rows_matched = 0;
  std::uint64_t blocks_scanned = 0;
  std::uint64_t blocks_pruned = 0;
};

struct QueryResult {
  std::vector<QueryGroup> groups;
  QueryStats stats;
};

/// Fixed-size selection-bitmap scratch, reused across every block of a scan.
/// open() rejects blocks larger than kBlockRows, so kWords words always
/// suffice — no per-block allocation on the hot path. The arena shape a
/// long-lived request handler wants: allocate once, run any number of
/// queries through it (storsimd keeps a pool of these; docs/SERVE.md).
struct ScanScratch {
  /// bitmap_words(kBlockRows); spelled out so this header needs no decode.h.
  static constexpr std::size_t kWords = (kBlockRows + 63) / 64;
  std::array<std::uint64_t, kWords> select;  ///< rows passing every predicate
  std::array<std::uint64_t, kWords> mask;    ///< per-predicate temporary
  std::array<std::array<std::uint64_t, kWords>, kFailureTypeCount> type_masks;
};

/// Counts accumulated for one group before labels/rates are attached.
struct QueryGroupCounts {
  std::array<std::uint64_t, kFailureTypeCount> events_by_type{};
  std::uint64_t events = 0;
};

/// Group accumulators shared by the single-store and sharded scans. All
/// fields are integer counts, so accumulating several stores into one set
/// of accumulators is exact and order-independent.
struct QueryAccumulators {
  QueryGroupCounts all;                                       // GroupBy::kNone
  std::array<QueryGroupCounts, kClassCount> by_class{};       // GroupBy::kSystemClass
  std::array<QueryGroupCounts, kFailureTypeCount> by_type{};  // GroupBy::kFailureType
  std::map<char, QueryGroupCounts> by_family;                 // GroupBy::kDiskFamily
};

/// One query's incremental execution: scan any number of stores (shards),
/// then finish against the merged exposure table. Both run_query overloads
/// are thin wrappers around this; storsimd drives it directly so the LRU
/// can pin/scan/release one shard at a time. The scratch is borrowed, not
/// owned — the caller controls its lifetime (and reuse across requests).
class QueryRun {
 public:
  /// `scratch` must outlive the run.
  QueryRun(const Query& query, ScanScratch* scratch) noexcept
      : query_(query), scratch_(scratch) {}

  /// Accumulates one store's matching rows. Callable repeatedly; shard
  /// order cannot affect the totals (integer sums).
  void scan(const EventStore& store);

  /// Labels the accumulated counts, attaches rates from `exposure`, and
  /// records the scan counters. Call once, after the last scan().
  [[nodiscard]] QueryResult finish(const ExposureTable& exposure);

 private:
  Query query_;
  ScanScratch* scratch_;
  QueryAccumulators acc_;
  QueryStats stats_;
};

QueryResult run_query(const EventStore& store, const Query& query);

/// The same query over a shard directory. Shards are opened lazily, one at
/// a time, and scanned with the same block-pruned loop; the per-group
/// counts are integer sums over shards (exact regardless of order) and the
/// rates come from the MANIFEST's merged exposure table, so the result is
/// byte-identical to running the query against the equivalent single-file
/// store. Non-const because shards may need to be opened; a shard that
/// fails validation on first touch surfaces as the returned Error.
[[nodiscard]] Error run_query(ShardStore& store, const Query& query, QueryResult* result);

}  // namespace storsubsim::store
