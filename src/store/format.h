// On-disk layout of the columnar event store (docs/STORE.md).
//
// A store file is the durable form of one completed pipeline run — the
// classified failure events plus the fleet topology needed to interpret
// them — laid out as struct-of-arrays column blocks so analyses can re-read
// one simulation many times at memory-map speed instead of re-running the
// simulate -> emit -> parse -> classify pipeline (the paper's own workflow:
// one AutoSupport database, many queries).
//
//   [Header (fixed 128 B, CRC32-protected)]
//   [topology columns]          one shard, raw fixed-width, 8-byte aligned
//   [event shard: near-line]    columns partitioned by system class,
//   [event shard: low-end]      time-sorted within each shard
//   [event shard: mid-range]
//   [event shard: high-end]
//   [Footer: meta block, exposure table, column directory,
//            time-window block index, CRC32]
//
// Integers are little-endian; the header carries an endianness tag and the
// reader refuses foreign byte orders rather than converting. Every column
// and both header and footer carry CRC32 checksums so corruption is detected
// as a typed error, never undefined behavior.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace storsubsim::store {

inline constexpr std::array<char, 8> kMagic = {'S', 'T', 'O', 'R', 'C', 'O', 'L', '1'};
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderSize = 128;
inline constexpr std::size_t kColumnAlignment = 8;
/// Rows per time-window block in the footer's block index.
inline constexpr std::uint64_t kBlockRows = 16384;
inline constexpr std::uint8_t kTopologyShard = 0xff;
inline constexpr std::size_t kClassCount = 4;
inline constexpr std::size_t kFailureTypeCount = 4;

/// Column identifiers. Event columns repeat once per system-class shard;
/// topology columns appear once under kTopologyShard.
enum class ColumnId : std::uint16_t {
  // --- event columns (per class shard) --------------------------------------
  kEventTime = 0,       ///< f64 bit patterns, delta-zigzag-varint encoded
  kEventType = 1,       ///< u8  model::FailureType
  kEventFamily = 2,     ///< u8  disk family of the owning *system* (Filter semantics)
  kEventDisk = 3,       ///< u32 model::DiskId
  kEventSystem = 4,     ///< u32 model::SystemId
  kEventShelf = 5,      ///< u32 model::ShelfId of the failed disk
  kEventRaidGroup = 6,  ///< u32 model::RaidGroupId (kInvalid for spares)

  // --- topology columns (one shard) -----------------------------------------
  kSysClass = 16,       ///< u8  model::SystemClass
  kSysPaths = 17,       ///< u8  model::PathConfig
  kSysDiskFamily = 18,  ///< u8  family letter of the system's disk model
  kSysDiskCap = 19,     ///< u32 capacity index of the system's disk model
  kSysShelfModel = 20,  ///< u8  shelf model letter
  kSysDeploy = 21,      ///< f64 deployment time, seconds
  kSysCohort = 22,      ///< u32 cohort tag
  kShelfSystem = 23,    ///< u32 owning system
  kShelfModel = 24,     ///< u8  shelf model letter
  kDiskFamily = 25,     ///< u8  disk model family letter
  kDiskCap = 26,        ///< u32 disk model capacity index
  kDiskSystem = 27,     ///< u32 owning system
  kDiskShelf = 28,      ///< u32 hosting shelf
  kDiskRaidGroup = 29,  ///< u32 RAID group (kInvalid for spares)
  kDiskSlot = 30,       ///< u32 shelf slot
  kDiskInstall = 31,    ///< f64 install time, seconds
  kDiskRemove = 32,     ///< f64 remove time, seconds (+inf while installed)
  kRgSystem = 33,       ///< u32 owning system
  kRgType = 34,         ///< u8  model::RaidType
  kRgMembers = 35,      ///< u32 member count
  kRgSpan = 36,         ///< u32 shelf span
};

enum class Encoding : std::uint8_t {
  kRaw = 0,          ///< fixed-width values, directly mappable
  kDeltaVarint = 1,  ///< i64 deltas of consecutive values, zigzag + LEB128
};

/// Fixed element width in bytes of a raw column; 0 for variable (varint).
std::size_t element_size(ColumnId id) noexcept;
std::string_view column_name(ColumnId id) noexcept;

// --- typed errors -----------------------------------------------------------

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kIo,           ///< open/stat/map/write failed
  kTruncated,    ///< file shorter than a declared structure
  kBadMagic,     ///< not a store file
  kBadEndianness,///< written on a foreign-endian host
  kBadVersion,   ///< format_version this reader does not speak
  kBadHeader,    ///< header fields inconsistent or CRC mismatch
  kBadFooter,    ///< footer unparsable or CRC mismatch
  kChecksum,     ///< a column's CRC32 does not match its bytes
  kBadColumn,    ///< column directory inconsistent (bounds, rows, alignment)
  kBadValue,     ///< a decoded value is out of domain (enum, id, varint)
};

std::string_view error_code_name(ErrorCode code) noexcept;

struct Error {
  ErrorCode code = ErrorCode::kOk;
  std::string detail;       ///< human-readable context
  std::uint64_t offset = 0; ///< file offset the error anchors to, when known

  bool ok() const noexcept { return code == ErrorCode::kOk; }
  /// "error-code-name: detail (offset N)".
  std::string describe() const;
};

[[nodiscard]] Error make_error(ErrorCode code, std::string_view detail, std::uint64_t offset = 0);

// --- CRC32 (IEEE 802.3, polynomial 0xEDB88320) ------------------------------

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0) noexcept;

// --- little-endian scalar append/read helpers -------------------------------
// The writer builds the whole file image in one std::string; the reader
// memcpy's scalars out of the mapping (alignment-safe).

inline void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
inline void append_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}
inline void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}
inline void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}
inline void append_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}

inline std::uint8_t read_u8(const char* p) noexcept {
  return static_cast<std::uint8_t>(*p);
}
inline std::uint16_t read_u16(const char* p) noexcept {
  std::uint16_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline std::uint32_t read_u32(const char* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline std::uint64_t read_u64(const char* p) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline double read_f64(const char* p) noexcept {
  double v = 0.0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// --- varint (LEB128) + zigzag ----------------------------------------------

inline std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1u) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1u) ^ (~(v & 1u) + 1u));
}

inline void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<char>((v & 0x7fu) | 0x80u));
    v >>= 7u;
  }
  out.push_back(static_cast<char>(v));
}

/// Decodes one varint from [p, end); returns bytes consumed, 0 on overrun or
/// overlong (> 10 byte) input.
std::size_t decode_varint(const char* p, const char* end, std::uint64_t* out) noexcept;

// --- header -----------------------------------------------------------------

/// Decoded fixed-size header. Field order on disk matches declaration order;
/// the trailing CRC32 covers bytes [0, kHeaderSize - 4).
struct Header {
  std::uint32_t format_version = kFormatVersion;
  std::uint64_t file_size = 0;
  std::uint64_t footer_offset = 0;
  std::uint64_t footer_size = 0;
  std::uint64_t seed = 0;
  double scale = 0.0;
  double horizon_seconds = 0.0;
  std::uint64_t event_count = 0;
  std::uint64_t system_count = 0;
  std::uint64_t shelf_count = 0;
  std::uint64_t disk_count = 0;
  std::uint64_t raid_group_count = 0;
};

/// Serializes exactly kHeaderSize bytes (magic + endian tag + fields + zero
/// padding + CRC32) and appends them to `out`.
void append_header(std::string& out, const Header& header);

/// Parses and validates a header from `data` (>= kHeaderSize bytes must be
/// readable; the caller checks the file length first).
[[nodiscard]] Error parse_header(const char* data, std::size_t size, Header* out);

}  // namespace storsubsim::store
