#include "store/query.h"

#include <map>

#include "obs/obs.h"
#include "store/decode.h"

namespace storsubsim::store {

namespace {

/// The header spells kWords without decode.h; pin it to the kernel layer's
/// own arithmetic.
static_assert(ScanScratch::kWords == bitmap_words(kBlockRows));

using GroupCounts = QueryGroupCounts;

/// Disk-year denominator of a (class?, family?) cohort, from the exposure
/// table. Missing combinations (no such cohort in the fleet) yield 0.
double cohort_disk_years(const ExposureTable& exposure,
                         std::optional<std::size_t> cls, std::optional<char> family) {
  if (cls.has_value() && family.has_value()) {
    const auto it = exposure.class_family_disk_years.find(
        {static_cast<std::uint8_t>(*cls), *family});
    return it == exposure.class_family_disk_years.end() ? 0.0 : it->second;
  }
  if (cls.has_value()) return exposure.class_disk_years[*cls];
  if (family.has_value()) {
    const auto it = exposure.family_disk_years.find(*family);
    return it == exposure.family_disk_years.end() ? 0.0 : it->second;
  }
  return exposure.total_disk_years;
}

QueryGroup finalize(std::string label, const GroupCounts& counts, double disk_years,
                    bool rates_defined) {
  QueryGroup g;
  g.label = std::move(label);
  g.events_by_type = counts.events_by_type;
  g.events = counts.events;
  if (rates_defined && disk_years > 0.0) {
    g.disk_years = disk_years;
    g.afr_pct = 100.0 * static_cast<double>(counts.events) / disk_years;
  }
  return g;
}

/// The block-pruned scan of one store: prune via the time-window index,
/// build the block's selection bitmap with the decode.h predicate kernels,
/// then aggregate group counts straight from bitmap popcounts — no row is
/// ever materialized.
void scan_store(const EventStore& store, const Query& query, QueryAccumulators& acc,
                QueryStats& stats, ScanScratch& scratch) {
  const bool have_begin = query.time_begin.has_value();
  const bool have_end = query.time_end.has_value();
  const double time_begin = have_begin ? *query.time_begin : 0.0;
  const double time_end = have_end ? *query.time_end : 0.0;
  const std::uint8_t type_values[kFailureTypeCount] = {0, 1, 2, 3};
  // Family group-by candidates: exposure-table families are the only groups
  // emit_groups ever reports, and every legitimately written event family
  // appears there (events reference inventory disks). A hostile family byte
  // outside the table was never emitted by the row loop either.
  const auto& family_years = store.exposure().family_disk_years;

  for (const auto cls : model::kAllSystemClasses) {
    if (query.system_class.has_value() && *query.system_class != cls) continue;
    const EventView& view = store.events(cls);
    GroupCounts& class_group = acc.by_class[model::index_of(cls)];

    for (const auto& block : store.blocks(cls)) {
      if ((have_begin && block.time_max < time_begin) ||
          (have_end && block.time_min >= time_end)) {
        ++stats.blocks_pruned;
        continue;
      }
      ++stats.blocks_scanned;
      stats.rows_scanned += block.rows;

      const std::size_t begin = static_cast<std::size_t>(block.row_begin);
      const std::size_t rows = static_cast<std::size_t>(block.rows);
      const std::size_t words = bitmap_words(rows);
      std::uint64_t* select = scratch.select.data();
      std::uint64_t* mask = scratch.mask.data();

      if (have_begin || have_end) {
        bitmap_time_window(view.time.data() + begin, rows, have_begin, time_begin,
                           have_end, time_end, select);
      } else {
        bitmap_fill(select, rows);
      }
      if (query.failure_type.has_value()) {
        bitmap_eq_u8(view.type.data() + begin, rows,
                     static_cast<std::uint8_t>(*query.failure_type), mask);
        bitmap_and(select, mask, words);
      }
      if (query.disk_family.has_value()) {
        bitmap_eq_u8(view.family.data() + begin, rows,
                     static_cast<std::uint8_t>(*query.disk_family), mask);
        bitmap_and(select, mask, words);
      }

      // One pass over the type column yields all four per-type masks; the
      // masks partition the block (open() validated type < kFailureTypeCount),
      // so the per-type popcounts sum to the block's match count.
      bitmap_eq4_u8(view.type.data() + begin, rows, type_values,
                    scratch.type_masks[0].data(), scratch.type_masks[1].data(),
                    scratch.type_masks[2].data(), scratch.type_masks[3].data());
      std::array<std::uint64_t, kFailureTypeCount> counts{};
      std::uint64_t matched = 0;
      for (std::size_t t = 0; t < kFailureTypeCount; ++t) {
        counts[t] = popcount_and(select, scratch.type_masks[t].data(), words);
        matched += counts[t];
      }
      stats.rows_matched += matched;
      if (matched == 0) continue;

      switch (query.group_by) {
        case Query::GroupBy::kNone:
          for (std::size_t t = 0; t < kFailureTypeCount; ++t) {
            acc.all.events_by_type[t] += counts[t];
          }
          acc.all.events += matched;
          break;
        case Query::GroupBy::kSystemClass:
          for (std::size_t t = 0; t < kFailureTypeCount; ++t) {
            class_group.events_by_type[t] += counts[t];
          }
          class_group.events += matched;
          break;
        case Query::GroupBy::kFailureType:
          for (std::size_t t = 0; t < kFailureTypeCount; ++t) {
            acc.by_type[t].events_by_type[t] += counts[t];
            acc.by_type[t].events += counts[t];
          }
          break;
        case Query::GroupBy::kDiskFamily:
          for (const auto& [family, years] : family_years) {
            if (query.disk_family.has_value() && *query.disk_family != family) {
              continue;
            }
            bitmap_eq_u8(view.family.data() + begin, rows,
                         static_cast<std::uint8_t>(family), mask);
            bitmap_and(mask, select, words);
            std::uint64_t family_total = 0;
            std::array<std::uint64_t, kFailureTypeCount> family_counts{};
            for (std::size_t t = 0; t < kFailureTypeCount; ++t) {
              family_counts[t] =
                  popcount_and(mask, scratch.type_masks[t].data(), words);
              family_total += family_counts[t];
            }
            if (family_total == 0) continue;
            GroupCounts& group = acc.by_family[family];
            for (std::size_t t = 0; t < kFailureTypeCount; ++t) {
              group.events_by_type[t] += family_counts[t];
            }
            group.events += family_total;
            (void)years;
          }
          break;
      }
    }
  }
}

void emit_query_counters(const QueryStats& stats) {
  STORSIM_OBS_COUNTER(c_rows_scanned, "store.query.rows_scanned",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_rows_scanned, stats.rows_scanned);
  STORSIM_OBS_COUNTER(c_rows_matched, "store.query.rows_matched",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_rows_matched, stats.rows_matched);
  STORSIM_OBS_COUNTER(c_blocks_scanned, "store.query.blocks_scanned",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_blocks_scanned, stats.blocks_scanned);
  STORSIM_OBS_COUNTER(c_blocks_pruned, "store.query.blocks_pruned",
                      ::storsubsim::obs::Stability::kDeterministic);
  STORSIM_OBS_ADD(c_blocks_pruned, stats.blocks_pruned);
}

/// Turns accumulated counts into labeled groups using `exposure` for the
/// denominators. Group identity and order depend only on the query and the
/// exposure table, so a merged exposure table yields the same groups as
/// the monolithic one.
void emit_groups(const ExposureTable& exposure, const Query& query,
                 const QueryAccumulators& acc, QueryResult& result) {
  const bool has_window = query.time_begin.has_value() || query.time_end.has_value();
  // Rates come from stored cohort exposure; a time window has no stored
  // denominator, so windowed queries report counts only.
  const bool rates = !has_window;
  const auto filter_class =
      query.system_class.has_value()
          ? std::optional<std::size_t>(model::index_of(*query.system_class))
          : std::nullopt;
  const GroupCounts& all = acc.all;
  const auto& by_class = acc.by_class;
  const auto& by_type = acc.by_type;
  const auto& by_family = acc.by_family;

  switch (query.group_by) {
    case Query::GroupBy::kNone:
      result.groups.push_back(
          finalize("all", all,
                   cohort_disk_years(exposure, filter_class, query.disk_family), rates));
      break;
    case Query::GroupBy::kSystemClass:
      for (const auto cls : model::kAllSystemClasses) {
        const std::size_t c = model::index_of(cls);
        if (exposure.class_system_count[c] == 0) continue;  // cohort absent
        if (filter_class.has_value() && *filter_class != c) continue;
        result.groups.push_back(
            finalize(std::string(model::to_string(cls)), by_class[c],
                     cohort_disk_years(exposure, c, query.disk_family), rates));
      }
      break;
    case Query::GroupBy::kFailureType:
      for (const auto type : model::kAllFailureTypes) {
        if (query.failure_type.has_value() && *query.failure_type != type) continue;
        // Shared cohort denominator: each group's rate is that type's AFR
        // contribution, exactly as AfrBreakdown::afr_pct slices one cohort.
        result.groups.push_back(finalize(
            std::string(model::to_string(type)), by_type[model::index_of(type)],
            cohort_disk_years(exposure, filter_class, query.disk_family), rates));
      }
      break;
    case Query::GroupBy::kDiskFamily:
      for (const auto& [family, years] : exposure.family_disk_years) {
        if (query.disk_family.has_value() && *query.disk_family != family) continue;
        const auto it = by_family.find(family);
        const GroupCounts counts = it == by_family.end() ? GroupCounts{} : it->second;
        std::string label("family ");
        label.append(1, family);
        result.groups.push_back(finalize(
            std::move(label), counts,
            cohort_disk_years(exposure, filter_class, family), rates));
        (void)years;
      }
      break;
  }
}

}  // namespace

void QueryRun::scan(const EventStore& store) {
  scan_store(store, query_, acc_, stats_, *scratch_);
}

QueryResult QueryRun::finish(const ExposureTable& exposure) {
  QueryResult result;
  result.stats = stats_;
  emit_groups(exposure, query_, acc_, result);
  emit_query_counters(result.stats);
  return result;
}

QueryResult run_query(const EventStore& store, const Query& query) {
  obs::Span span("store.query");
  ScanScratch scratch;
  QueryRun run(query, &scratch);
  run.scan(store);
  return run.finish(store.exposure());
}

Error run_query(ShardStore& store, const Query& query, QueryResult* result) {
  obs::Span span("store.query_shards");
  ScanScratch scratch;
  QueryRun run(query, &scratch);
  // One shard at a time: lazy open (mmap + validation on first touch), then
  // the identical block-pruned scan. Counts are integers, so shard order
  // cannot affect the totals.
  for (std::size_t i = 0; i < store.shard_count(); ++i) {
    if (Error err = store.ensure_open(i); !err.ok()) return err;
    run.scan(store.shard(i));
  }
  *result = run.finish(store.manifest().exposure);
  return Error{};
}

}  // namespace storsubsim::store
