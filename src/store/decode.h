// Batch column-decode and predicate kernels for the store scan hot path.
//
// The per-value loops the reader and query engine started with (one
// decode_varint call per time value, one branch per row per predicate) leave
// cold-query latency bounded by instruction overhead, not memory bandwidth
// (docs/performance.md). This layer replaces them with block-granular
// kernels that each process a whole kBlockRows-row block into a
// caller-provided arena:
//
//   * decode_varint_batch  — unrolled, length-dispatched LEB128 decode
//   * delta_zigzag_prefix  — fused zigzag + prefix-sum of time deltas into
//                            f64 bit patterns
//   * decode_time_block    — the composition of the two, the unit the
//                            reader runs per block
//   * bitmap_* kernels     — wide equality / time-window predicates over
//                            the u8 enum and f64 time columns, producing
//                            64-row-per-word selection bitmaps that
//                            store::Query intersects instead of branching
//                            per row
//   * all_lt_u8 / all_ids_in_domain_u32 — the open()-time domain sweeps
//
// Every kernel has a scalar implementation that is ALWAYS compiled and a
// wide (SSE2 or NEON) implementation selected at build time by the
// STORSUBSIM_SIMD CMake option and at run time by set_simd_enabled(). The
// two produce bit-identical output for every input — integer extraction and
// IEEE comparisons only, no reassociation — and the differential tests
// (tests/store/decode_test.cc) plus the run_checks.sh SIMD-off cmp gate
// hold them to that.
//
// Arena/lifetime contract: kernels never allocate. Output buffers are owned
// by the caller and must hold the declared capacity (`count` values, or
// bitmap_words(n) words). Bitmap kernels write whole words; bits at
// positions >= n are zero on output, so intersections and popcounts can run
// word-at-a-time without masking. Input pointers need no alignment.
#pragma once

#include <cstddef>
#include <cstdint>

namespace storsubsim::store {

/// True when a wide (SSE2/NEON) code path was compiled into this binary.
bool simd_compiled() noexcept;

/// Whether dispatching kernels take the wide path right now. Defaults to
/// simd_compiled(); tests force the scalar path to prove equivalence.
bool simd_enabled() noexcept;
void set_simd_enabled(bool enabled) noexcept;

/// Short name of the kernel path currently dispatched ("sse2", "neon",
/// "scalar") — recorded in benchmark output.
const char* kernel_path_name() noexcept;

// --- batch varint + fused delta decode --------------------------------------

/// Decodes exactly `count` LEB128 varints from [p, end) into `out`. Returns
/// the bytes consumed, or 0 if the stream is truncated mid-varint or a
/// varint runs longer than 10 bytes — the exact accept/reject semantics of
/// the per-value decode_varint (format.h), including silent truncation of
/// bits past 63 in a maximum-length varint.
std::size_t decode_varint_batch(const char* p, const char* end, std::uint64_t* out,
                                std::size_t count) noexcept;

/// Fused zigzag + prefix-sum: for each of `n` zigzag-encoded deltas,
/// accumulates `*prev_bits += zigzag_decode(delta)` (unsigned wraparound —
/// defined for hostile input) and stores the running bit pattern as a
/// double in `out`. `prev_bits` carries across blocks of one column.
void delta_zigzag_prefix(const std::uint64_t* deltas, std::size_t n,
                         std::uint64_t* prev_bits, double* out) noexcept;

/// One block of the time column: decode_varint_batch into `delta_scratch`
/// (caller-provided, >= rows entries) then delta_zigzag_prefix into `out`.
/// Returns bytes consumed, 0 on a malformed stream.
std::size_t decode_time_block(const char* p, const char* end, std::size_t rows,
                              std::uint64_t* delta_scratch, std::uint64_t* prev_bits,
                              double* out) noexcept;

// --- selection bitmaps -------------------------------------------------------

/// Words needed for an n-row bitmap (64 rows per word).
constexpr std::size_t bitmap_words(std::size_t n) noexcept { return (n + 63) / 64; }

/// Sets bits [0, n) and clears the tail of the last word.
void bitmap_fill(std::uint64_t* bm, std::size_t n) noexcept;

/// bm bit i = (data[i] == value).
void bitmap_eq_u8(const std::uint8_t* data, std::size_t n, std::uint8_t value,
                  std::uint64_t* bm) noexcept;

/// Four equality bitmaps in one pass over the column: out[k] bit i =
/// (data[i] == values[k]). The shape of the group-by aggregation — one scan
/// of the type column yields all four per-type masks.
void bitmap_eq4_u8(const std::uint8_t* data, std::size_t n,
                   const std::uint8_t values[4], std::uint64_t* out0,
                   std::uint64_t* out1, std::uint64_t* out2,
                   std::uint64_t* out3) noexcept;

/// bm bit i = (!have_begin || time[i] >= begin) && (!have_end || time[i] < end).
/// IEEE semantics: a NaN time fails both predicates on both paths.
void bitmap_time_window(const double* time, std::size_t n, bool have_begin,
                        double begin, bool have_end, double end,
                        std::uint64_t* bm) noexcept;

/// dst &= src over `words` words.
void bitmap_and(std::uint64_t* dst, const std::uint64_t* src,
                std::size_t words) noexcept;

/// Population count of `words` words.
std::uint64_t popcount_words(const std::uint64_t* bm, std::size_t words) noexcept;

/// popcount(a & b) without materializing the intersection.
std::uint64_t popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) noexcept;

// --- open()-time domain sweeps ----------------------------------------------

/// True iff every value is < limit.
bool all_lt_u8(const std::uint8_t* data, std::size_t n, std::uint8_t limit) noexcept;

/// True iff every value is < limit, or equals 0xffffffff when allow_invalid
/// (spares without a RAID group) — vectorized id_in_domain over a column.
bool all_ids_in_domain_u32(const std::uint32_t* data, std::size_t n,
                           std::uint32_t limit, bool allow_invalid) noexcept;

}  // namespace storsubsim::store
