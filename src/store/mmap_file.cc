#include "store/mmap_file.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define STORSUBSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define STORSUBSIM_HAVE_MMAP 0
#include <cstdio>
#endif

namespace storsubsim::store {

MmapFile::~MmapFile() { reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  reset();
  fallback_ = std::move(other.fallback_);
  is_mmap_ = other.is_mmap_;
  size_ = other.size_;
  data_ = is_mmap_ ? other.data_ : fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.is_mmap_ = false;
  return *this;
}

void MmapFile::reset() noexcept {
#if STORSUBSIM_HAVE_MMAP
  if (is_mmap_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  is_mmap_ = false;
  fallback_.clear();
}

Error MmapFile::open(const std::string& path) {
  reset();
#if STORSUBSIM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return make_error(ErrorCode::kIo, std::string("cannot open ").append(path));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return make_error(ErrorCode::kIo, std::string("cannot stat ").append(path));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // mmap rejects zero-length mappings; an empty buffer is a valid (and
    // correctly rejected-as-truncated) input for the reader.
    ::close(fd);
    data_ = fallback_.data();
    size_ = 0;
    return Error{};
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return make_error(ErrorCode::kIo, std::string("mmap failed for ").append(path));
  }
  data_ = static_cast<const char*>(mapping);
  size_ = size;
  is_mmap_ = true;
  return Error{};
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return make_error(ErrorCode::kIo, std::string("cannot open ").append(path));
  }
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    fallback_.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return make_error(ErrorCode::kIo, std::string("read failed for ").append(path));
  }
  data_ = fallback_.data();
  size_ = fallback_.size();
  return Error{};
#endif
}

}  // namespace storsubsim::store
