#include "store/reader.h"

#include <algorithm>
#include <cstring>

#include "obs/obs.h"
#include "store/decode.h"

namespace storsubsim::store {

namespace {

/// Bounds-checked forward reader over the footer bytes. Any overrun latches
/// `ok() == false` and subsequent reads return zeros — callers check once.
class Cursor {
 public:
  Cursor(const char* p, const char* end) : p_(p), end_(end) {}

  bool ok() const noexcept { return ok_; }
  std::size_t remaining() const noexcept {
    return ok_ ? static_cast<std::size_t>(end_ - p_) : 0;
  }

  std::uint8_t u8() { return take(1) ? read_u8(p_ - 1) : 0; }
  std::uint16_t u16() { return take(2) ? read_u16(p_ - 2) : 0; }
  std::uint32_t u32() { return take(4) ? read_u32(p_ - 4) : 0; }
  std::uint64_t u64() { return take(8) ? read_u64(p_ - 8) : 0; }
  double f64() { return take(8) ? read_f64(p_ - 8) : 0.0; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    p_ += n;
    return true;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

/// Topology columns and the header count each must agree with.
struct TopologySpec {
  ColumnId id;
  std::uint64_t Header::* rows;
};

constexpr TopologySpec kTopologySpec[] = {
    {ColumnId::kSysClass, &Header::system_count},
    {ColumnId::kSysPaths, &Header::system_count},
    {ColumnId::kSysDiskFamily, &Header::system_count},
    {ColumnId::kSysDiskCap, &Header::system_count},
    {ColumnId::kSysShelfModel, &Header::system_count},
    {ColumnId::kSysDeploy, &Header::system_count},
    {ColumnId::kSysCohort, &Header::system_count},
    {ColumnId::kShelfSystem, &Header::shelf_count},
    {ColumnId::kShelfModel, &Header::shelf_count},
    {ColumnId::kDiskFamily, &Header::disk_count},
    {ColumnId::kDiskCap, &Header::disk_count},
    {ColumnId::kDiskSystem, &Header::disk_count},
    {ColumnId::kDiskShelf, &Header::disk_count},
    {ColumnId::kDiskRaidGroup, &Header::disk_count},
    {ColumnId::kDiskSlot, &Header::disk_count},
    {ColumnId::kDiskInstall, &Header::disk_count},
    {ColumnId::kDiskRemove, &Header::disk_count},
    {ColumnId::kRgSystem, &Header::raid_group_count},
    {ColumnId::kRgType, &Header::raid_group_count},
    {ColumnId::kRgMembers, &Header::raid_group_count},
    {ColumnId::kRgSpan, &Header::raid_group_count},
};

constexpr ColumnId kEventColumns[] = {
    ColumnId::kEventTime, ColumnId::kEventType,   ColumnId::kEventFamily,
    ColumnId::kEventDisk, ColumnId::kEventSystem, ColumnId::kEventShelf,
    ColumnId::kEventRaidGroup,
};

[[nodiscard]] Error column_error(ErrorCode code, std::string_view what, ColumnId id,
                   std::uint64_t offset = 0) {
  std::string detail(what);
  detail.append(" (column ").append(column_name(id)).append(")");
  return make_error(code, detail, offset);
}

}  // namespace

Error EventStore::open(const std::string& path) {
  if (Error err = file_.open(path); !err.ok()) return err;
  data_ = file_.data();
  size_ = file_.size();
  return load();
}

Error EventStore::open_image(std::string image) {
  owned_image_ = std::move(image);
  data_ = owned_image_.data();
  size_ = owned_image_.size();
  if (reinterpret_cast<std::uintptr_t>(data_) % kColumnAlignment != 0) {
    // The zero-copy accessors need an 8-aligned base; realign into u64
    // storage (heap strings are rarely misaligned, but never guaranteed).
    aligned_.assign((size_ + kColumnAlignment - 1) / kColumnAlignment, 0);
    if (size_ > 0) std::memcpy(aligned_.data(), owned_image_.data(), size_);
    data_ = reinterpret_cast<const char*>(aligned_.data());
  }
  return load();
}

Error EventStore::load() {
  obs::Span span("store.open");
  columns_.clear();
  blocks_.clear();

  if (data_ == nullptr || size_ < kHeaderSize) {
    return make_error(ErrorCode::kTruncated, "file shorter than the fixed header");
  }
  if (Error err = parse_header(data_, size_, &header_); !err.ok()) return err;
  if (header_.file_size != size_) {
    return make_error(ErrorCode::kTruncated, "file length differs from header",
                      16);
  }

  // --- footer bounds + CRC ---------------------------------------------------
  const std::uint64_t fo = header_.footer_offset;
  const std::uint64_t fs = header_.footer_size;
  if (fo < kHeaderSize || fs < 4 || fo > size_ || fs > size_ - fo ||
      fo + fs != size_) {
    return make_error(ErrorCode::kBadFooter, "footer bounds inconsistent", 24);
  }
  const std::uint32_t footer_crc = read_u32(data_ + size_ - 4);
  if (footer_crc != crc32(data_ + fo, static_cast<std::size_t>(fs - 4))) {
    return make_error(ErrorCode::kBadFooter, "footer CRC32 mismatch", size_ - 4);
  }

  // --- footer payload --------------------------------------------------------
  Cursor cur(data_ + fo, data_ + size_ - 4);

  for (auto& v : meta_.sim_events_by_type) v = cur.u64();
  meta_.sim_replacements = cur.u64();
  meta_.sim_triggered_disk_failures = cur.u64();
  meta_.sim_shelf_faults = cur.u64();
  meta_.sim_path_faults = cur.u64();
  meta_.sim_masked_path_faults = cur.u64();
  meta_.log_lines_written = cur.u64();
  meta_.log_lines_parsed = cur.u64();
  meta_.raid_records = cur.u64();
  meta_.failures_classified = cur.u64();
  meta_.duplicates_dropped = cur.u64();
  meta_.missing_disk_dropped = cur.u64();

  exposure_ = ExposureTable{};
  exposure_.total_disk_years = cur.f64();
  for (auto& v : exposure_.class_disk_years) v = cur.f64();
  for (auto& v : exposure_.class_system_count) v = cur.u64();
  const std::uint32_t n_family = cur.u32();
  if (!cur.ok() || n_family > cur.remaining() / 9) {
    return make_error(ErrorCode::kBadFooter, "exposure family table overruns footer");
  }
  for (std::uint32_t i = 0; i < n_family; ++i) {
    const char family = static_cast<char>(cur.u8());
    exposure_.family_disk_years[family] = cur.f64();
  }
  const std::uint32_t n_class_family = cur.u32();
  if (!cur.ok() || n_class_family > cur.remaining() / 10) {
    return make_error(ErrorCode::kBadFooter, "exposure class table overruns footer");
  }
  for (std::uint32_t i = 0; i < n_class_family; ++i) {
    const std::uint8_t cls = cur.u8();
    const char family = static_cast<char>(cur.u8());
    const double years = cur.f64();
    if (cls >= kClassCount) {
      return make_error(ErrorCode::kBadValue, "exposure entry with bad class");
    }
    exposure_.class_family_disk_years[{cls, family}] = years;
  }

  // --- column directory ------------------------------------------------------
  const std::uint32_t n_columns = cur.u32();
  if (!cur.ok() || n_columns > cur.remaining() / 32) {
    return make_error(ErrorCode::kBadFooter, "column directory overruns footer");
  }
  for (std::uint32_t i = 0; i < n_columns; ++i) {
    ColumnView col;
    const std::uint8_t shard = cur.u8();
    const std::uint16_t raw_id = cur.u16();
    const std::uint8_t encoding = cur.u8();
    col.rows = cur.u64();
    const std::uint64_t offset = cur.u64();
    const std::uint64_t bytes = cur.u64();
    const std::uint32_t crc = cur.u32();
    if (!cur.ok()) break;

    col.id = static_cast<ColumnId>(raw_id);
    col.encoding = static_cast<Encoding>(encoding);
    const bool event_column = raw_id < 16;
    if ((shard >= kClassCount && shard != kTopologyShard) ||
        (event_column != (shard != kTopologyShard))) {
      return column_error(ErrorCode::kBadColumn, "column in wrong shard", col.id);
    }
    const Encoding expected = col.id == ColumnId::kEventTime
                                  ? Encoding::kDeltaVarint
                                  : Encoding::kRaw;
    if (col.encoding != expected) {
      return column_error(ErrorCode::kBadColumn, "unexpected encoding", col.id);
    }
    if (offset < kHeaderSize || offset % kColumnAlignment != 0 || offset > fo ||
        bytes > fo - offset) {
      return column_error(ErrorCode::kBadColumn, "column bounds inconsistent",
                          col.id, offset);
    }
    const std::size_t width = element_size(col.id);
    if (width != 0 && (col.rows > bytes / width || col.rows * width != bytes)) {
      return column_error(ErrorCode::kBadColumn, "row count disagrees with size",
                          col.id, offset);
    }
    if (width == 0 && col.rows > bytes) {
      return column_error(ErrorCode::kBadColumn, "more rows than encoded bytes",
                          col.id, offset);
    }
    col.data = data_ + offset;
    col.size = static_cast<std::size_t>(bytes);
    obs::Span crc_span("store.open.crc");
    const bool crc_ok = crc == crc32(col.data, col.size);
    crc_span.stop();
    STORSIM_OBS_COUNTER(c_cols, "store.open.columns_validated",
                        ::storsubsim::obs::Stability::kDeterministic);
    STORSIM_OBS_ADD(c_cols, 1);
    STORSIM_OBS_COUNTER(c_crc_bytes, "store.open.crc_bytes",
                        ::storsubsim::obs::Stability::kDeterministic);
    STORSIM_OBS_ADD(c_crc_bytes, col.size);
    if (!crc_ok) {
      return column_error(ErrorCode::kChecksum, "column CRC32 mismatch", col.id,
                          offset);
    }
    if (!columns_.emplace(std::make_pair(shard, raw_id), col).second) {
      return column_error(ErrorCode::kBadColumn, "duplicate column", col.id);
    }
  }

  // --- block index -----------------------------------------------------------
  const std::uint32_t n_blocks = cur.u32();
  if (!cur.ok() || n_blocks > cur.remaining() / 33) {
    return make_error(ErrorCode::kBadFooter, "block index overruns footer");
  }
  blocks_.reserve(n_blocks);
  for (std::uint32_t i = 0; i < n_blocks; ++i) {
    BlockEntry block;
    block.shard = cur.u8();
    block.row_begin = cur.u64();
    block.rows = cur.u64();
    block.time_min = cur.f64();
    block.time_max = cur.f64();
    blocks_.push_back(block);
  }
  if (!cur.ok() || cur.remaining() != 0) {
    return make_error(ErrorCode::kBadFooter, "footer payload truncated");
  }

  // --- presence + cross-column consistency -----------------------------------
  for (const auto& spec : kTopologySpec) {
    const auto it = columns_.find({kTopologyShard, static_cast<std::uint16_t>(spec.id)});
    if (it == columns_.end()) {
      return column_error(ErrorCode::kBadColumn, "missing topology column", spec.id);
    }
    if (it->second.rows != header_.*spec.rows) {
      return column_error(ErrorCode::kBadColumn,
                          "topology rows disagree with header", spec.id);
    }
  }

  std::array<std::uint64_t, kClassCount> shard_rows{};
  std::uint64_t total_rows = 0;
  for (std::uint8_t s = 0; s < kClassCount; ++s) {
    std::uint64_t rows = 0;
    bool first = true;
    for (const ColumnId id : kEventColumns) {
      const auto it = columns_.find({s, static_cast<std::uint16_t>(id)});
      if (it == columns_.end()) {
        return column_error(ErrorCode::kBadColumn, "missing event column", id);
      }
      if (first) {
        rows = it->second.rows;
        first = false;
      } else if (it->second.rows != rows) {
        return column_error(ErrorCode::kBadColumn, "shard rows disagree", id);
      }
    }
    shard_rows[s] = rows;
    total_rows += rows;
  }
  if (total_rows != header_.event_count) {
    return make_error(ErrorCode::kBadColumn,
                      "shard rows do not sum to header event count");
  }

  // --- time decode (delta-zigzag-varint over f64 bit patterns) ---------------
  // Block-granular: decode_time_block processes kBlockRows values per call
  // (batch varint + fused zigzag prefix-sum) straight into the times_ arena
  // through one reusable delta scratch buffer — no per-block allocation.
  {
    obs::Span decode_span("store.open.decode");
    std::vector<std::uint64_t> delta_scratch(kBlockRows);
    for (std::size_t s = 0; s < kClassCount; ++s) {
      const ColumnView& col =
          columns_.at({static_cast<std::uint8_t>(s),
                       static_cast<std::uint16_t>(ColumnId::kEventTime)});
      auto& times = times_[s];
      times.assign(static_cast<std::size_t>(col.rows), 0.0);
      const char* p = col.data;
      const char* end = col.data + col.size;
      std::uint64_t prev_bits = 0;  // unsigned: wraparound on hostile input is defined
      std::uint64_t row = 0;
      std::uint64_t blocks_decoded = 0;
      while (row < col.rows) {
        const std::size_t rows = static_cast<std::size_t>(
            std::min<std::uint64_t>(kBlockRows, col.rows - row));
        const std::size_t consumed = decode_time_block(
            p, end, rows, delta_scratch.data(), &prev_bits,
            times.data() + static_cast<std::size_t>(row));
        if (consumed == 0) {
          return column_error(ErrorCode::kBadValue, "varint decode overran column",
                              ColumnId::kEventTime);
        }
        p += consumed;
        row += rows;
        ++blocks_decoded;
      }
      if (p != end) {
        return column_error(ErrorCode::kBadValue, "trailing bytes after varints",
                            ColumnId::kEventTime);
      }
      STORSIM_OBS_COUNTER(c_blocks, "store.decode.blocks",
                          ::storsubsim::obs::Stability::kDeterministic);
      STORSIM_OBS_ADD(c_blocks, blocks_decoded);
      STORSIM_OBS_COUNTER(c_rows, "store.decode.rows",
                          ::storsubsim::obs::Stability::kDeterministic);
      STORSIM_OBS_ADD(c_rows, col.rows);
    }
  }

  // --- value domain checks ---------------------------------------------------
  // After these, analyses may index inventory vectors with column values
  // without bounds checks. Whole-column kernel sweeps (decode.h): an id
  // column is in domain iff every value is < the entity count (u32 ids may
  // additionally be Id::kInvalid where spares are legal).
  auto event_col = [&](std::size_t s, ColumnId id) -> const ColumnView& {
    return columns_.at({static_cast<std::uint8_t>(s), static_cast<std::uint16_t>(id)});
  };
  auto u8_in_domain = [](const ColumnView& col, std::uint8_t limit) {
    const auto vals = col.as_u8();
    return all_lt_u8(vals.data(), vals.size(), limit);
  };
  auto u32_col_in_domain = [](const ColumnView& col, std::uint64_t limit,
                              bool allow_invalid) {
    const auto vals = col.as_u32();
    // Entity counts were validated against real column sizes above, so they
    // fit u32 (ids are u32); clamp defensively for hostile headers.
    const std::uint32_t lim = limit > 0xffffffffull
                                  ? 0xffffffffu
                                  : static_cast<std::uint32_t>(limit);
    return all_ids_in_domain_u32(vals.data(), vals.size(), lim, allow_invalid);
  };
  for (std::size_t s = 0; s < kClassCount; ++s) {
    if (!u8_in_domain(event_col(s, ColumnId::kEventType), kFailureTypeCount)) {
      return column_error(ErrorCode::kBadValue, "failure type out of domain",
                          ColumnId::kEventType);
    }
    if (!u32_col_in_domain(event_col(s, ColumnId::kEventDisk), header_.disk_count,
                           false)) {
      return column_error(ErrorCode::kBadValue, "disk id out of domain",
                          ColumnId::kEventDisk);
    }
    if (!u32_col_in_domain(event_col(s, ColumnId::kEventSystem),
                           header_.system_count, false)) {
      return column_error(ErrorCode::kBadValue, "system id out of domain",
                          ColumnId::kEventSystem);
    }
    if (!u32_col_in_domain(event_col(s, ColumnId::kEventShelf), header_.shelf_count,
                           false)) {
      return column_error(ErrorCode::kBadValue, "shelf id out of domain",
                          ColumnId::kEventShelf);
    }
    if (!u32_col_in_domain(event_col(s, ColumnId::kEventRaidGroup),
                           header_.raid_group_count, true)) {
      return column_error(ErrorCode::kBadValue, "raid group id out of domain",
                          ColumnId::kEventRaidGroup);
    }
  }
  auto topo = [&](ColumnId id) -> const ColumnView& {
    return columns_.at({kTopologyShard, static_cast<std::uint16_t>(id)});
  };
  if (!u8_in_domain(topo(ColumnId::kSysClass), kClassCount)) {
    return column_error(ErrorCode::kBadValue, "system class out of domain",
                        ColumnId::kSysClass);
  }
  if (!u8_in_domain(topo(ColumnId::kSysPaths), 2)) {
    return column_error(ErrorCode::kBadValue, "path config out of domain",
                        ColumnId::kSysPaths);
  }
  if (!u32_col_in_domain(topo(ColumnId::kShelfSystem), header_.system_count, false)) {
    return column_error(ErrorCode::kBadValue, "shelf system out of domain",
                        ColumnId::kShelfSystem);
  }
  if (!u32_col_in_domain(topo(ColumnId::kDiskSystem), header_.system_count, false)) {
    return column_error(ErrorCode::kBadValue, "disk system out of domain",
                        ColumnId::kDiskSystem);
  }
  if (!u32_col_in_domain(topo(ColumnId::kDiskShelf), header_.shelf_count, false)) {
    return column_error(ErrorCode::kBadValue, "disk shelf out of domain",
                        ColumnId::kDiskShelf);
  }
  if (!u32_col_in_domain(topo(ColumnId::kDiskRaidGroup), header_.raid_group_count,
                         true)) {
    return column_error(ErrorCode::kBadValue, "disk raid group out of domain",
                        ColumnId::kDiskRaidGroup);
  }
  if (!u32_col_in_domain(topo(ColumnId::kRgSystem), header_.system_count, false)) {
    return column_error(ErrorCode::kBadValue, "raid group system out of domain",
                        ColumnId::kRgSystem);
  }
  if (!u8_in_domain(topo(ColumnId::kRgType), 2)) {
    return column_error(ErrorCode::kBadValue, "raid type out of domain",
                        ColumnId::kRgType);
  }

  // --- block index consistency -----------------------------------------------
  // Writer emits blocks grouped by shard in class order; reject anything else
  // so blocks(cls) can slice contiguously.
  std::size_t cursor = 0;
  for (std::uint8_t s = 0; s < kClassCount; ++s) {
    const std::size_t begin = cursor;
    while (cursor < blocks_.size() && blocks_[cursor].shard == s) ++cursor;
    shard_blocks_[s] = {begin, cursor - begin};
  }
  if (cursor != blocks_.size()) {
    return make_error(ErrorCode::kBadFooter, "block index not grouped by shard");
  }
  for (const auto& block : blocks_) {
    const std::uint64_t rows = shard_rows[block.shard];
    if (block.rows == 0 || block.rows > rows || block.row_begin > rows - block.rows) {
      return make_error(ErrorCode::kBadFooter, "block range exceeds shard rows");
    }
    // Writer invariant: blocks never exceed the format block size. Enforcing
    // it here lets the query engine size its selection-bitmap scratch at a
    // fixed bitmap_words(kBlockRows) words.
    if (block.rows > kBlockRows) {
      return make_error(ErrorCode::kBadFooter, "block larger than format block size");
    }
  }

  // --- cached per-shard views ------------------------------------------------
  for (std::size_t s = 0; s < kClassCount; ++s) {
    EventView& view = views_[s];
    view.time = times_[s];
    view.type = event_col(s, ColumnId::kEventType).as_u8();
    view.family = event_col(s, ColumnId::kEventFamily).as_u8();
    view.disk = event_col(s, ColumnId::kEventDisk).as_u32();
    view.system = event_col(s, ColumnId::kEventSystem).as_u32();
    view.shelf = event_col(s, ColumnId::kEventShelf).as_u32();
    view.raid_group = event_col(s, ColumnId::kEventRaidGroup).as_u32();
  }
  return Error{};
}

log::Inventory EventStore::rebuild_inventory() const {
  auto topo = [&](ColumnId id) -> const ColumnView& {
    return columns_.at({kTopologyShard, static_cast<std::uint16_t>(id)});
  };
  log::Inventory inv;
  inv.horizon_seconds = header_.horizon_seconds;

  const auto sys_cls = topo(ColumnId::kSysClass).as_u8();
  const auto sys_paths = topo(ColumnId::kSysPaths).as_u8();
  const auto sys_family = topo(ColumnId::kSysDiskFamily).as_u8();
  const auto sys_cap = topo(ColumnId::kSysDiskCap).as_u32();
  const auto sys_shelf_model = topo(ColumnId::kSysShelfModel).as_u8();
  const auto sys_deploy = topo(ColumnId::kSysDeploy).as_f64();
  const auto sys_cohort = topo(ColumnId::kSysCohort).as_u32();
  inv.systems.reserve(sys_cls.size());
  for (std::size_t i = 0; i < sys_cls.size(); ++i) {
    log::InventorySystem sys;
    sys.id = model::SystemId(static_cast<std::uint32_t>(i));
    sys.cls = static_cast<model::SystemClass>(sys_cls[i]);
    sys.paths = static_cast<model::PathConfig>(sys_paths[i]);
    sys.disk_model = {static_cast<char>(sys_family[i]), static_cast<int>(sys_cap[i])};
    sys.shelf_model = {static_cast<char>(sys_shelf_model[i])};
    sys.deploy_time = sys_deploy[i];
    sys.cohort = sys_cohort[i];
    inv.systems.push_back(sys);
  }

  const auto shelf_system = topo(ColumnId::kShelfSystem).as_u32();
  const auto shelf_model = topo(ColumnId::kShelfModel).as_u8();
  inv.shelves.reserve(shelf_system.size());
  for (std::size_t i = 0; i < shelf_system.size(); ++i) {
    log::InventoryShelf shelf;
    shelf.id = model::ShelfId(static_cast<std::uint32_t>(i));
    shelf.system = model::SystemId(shelf_system[i]);
    shelf.model = {static_cast<char>(shelf_model[i])};
    inv.shelves.push_back(shelf);
  }

  const auto disk_family = topo(ColumnId::kDiskFamily).as_u8();
  const auto disk_cap = topo(ColumnId::kDiskCap).as_u32();
  const auto disk_system = topo(ColumnId::kDiskSystem).as_u32();
  const auto disk_shelf = topo(ColumnId::kDiskShelf).as_u32();
  const auto disk_rg = topo(ColumnId::kDiskRaidGroup).as_u32();
  const auto disk_slot = topo(ColumnId::kDiskSlot).as_u32();
  const auto disk_install = topo(ColumnId::kDiskInstall).as_f64();
  const auto disk_remove = topo(ColumnId::kDiskRemove).as_f64();
  inv.disks.reserve(disk_family.size());
  for (std::size_t i = 0; i < disk_family.size(); ++i) {
    log::InventoryDisk disk;
    disk.id = model::DiskId(static_cast<std::uint32_t>(i));
    disk.model = {static_cast<char>(disk_family[i]), static_cast<int>(disk_cap[i])};
    disk.system = model::SystemId(disk_system[i]);
    disk.shelf = model::ShelfId(disk_shelf[i]);
    disk.raid_group = model::RaidGroupId(disk_rg[i]);
    disk.slot = disk_slot[i];
    disk.install_time = disk_install[i];
    disk.remove_time = disk_remove[i];
    inv.disks.push_back(disk);
  }

  const auto rg_system = topo(ColumnId::kRgSystem).as_u32();
  const auto rg_type = topo(ColumnId::kRgType).as_u8();
  const auto rg_members = topo(ColumnId::kRgMembers).as_u32();
  const auto rg_span = topo(ColumnId::kRgSpan).as_u32();
  inv.raid_groups.reserve(rg_system.size());
  for (std::size_t i = 0; i < rg_system.size(); ++i) {
    log::InventoryRaidGroup rg;
    rg.id = model::RaidGroupId(static_cast<std::uint32_t>(i));
    rg.system = model::SystemId(rg_system[i]);
    rg.type = static_cast<model::RaidType>(rg_type[i]);
    rg.member_count = rg_members[i];
    rg.shelf_span = rg_span[i];
    inv.raid_groups.push_back(rg);
  }
  return inv;
}

}  // namespace storsubsim::store
