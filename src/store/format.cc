#include "store/format.h"

#include <charconv>

namespace storsubsim::store {

namespace {

/// Slice-by-8 CRC32 lookup tables (deterministic constants). Table 0 is the
/// classic bytewise table; table k folds k extra zero bytes into the
/// remainder, letting the hot loop consume 8 input bytes per iteration with
/// the exact same polynomial arithmetic (bit-identical to bytewise).
struct Crc32Table {
  std::array<std::array<std::uint32_t, 256>, 8> entries{};

  constexpr Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1u) : c >> 1u;
      }
      entries[0][i] = c;
    }
    for (std::size_t t = 1; t < 8; ++t) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        const std::uint32_t prev = entries[t - 1][i];
        entries[t][i] = entries[0][prev & 0xffu] ^ (prev >> 8u);
      }
    }
  }
};

constexpr Crc32Table kCrcTable;

/// Assembles a little-endian u32 from raw bytes (host-order independent;
/// folds to one load on little-endian targets).
inline std::uint32_t load_le32(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8u) |
         (static_cast<std::uint32_t>(p[2]) << 16u) |
         (static_cast<std::uint32_t>(p[3]) << 24u);
}

void append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc{}) out.append(buf, ptr);
}

}  // namespace

std::size_t element_size(ColumnId id) noexcept {
  switch (id) {
    case ColumnId::kEventTime:
      return 0;  // delta-varint encoded
    case ColumnId::kEventType:
    case ColumnId::kEventFamily:
    case ColumnId::kSysClass:
    case ColumnId::kSysPaths:
    case ColumnId::kSysDiskFamily:
    case ColumnId::kSysShelfModel:
    case ColumnId::kShelfModel:
    case ColumnId::kDiskFamily:
    case ColumnId::kRgType:
      return 1;
    case ColumnId::kEventDisk:
    case ColumnId::kEventSystem:
    case ColumnId::kEventShelf:
    case ColumnId::kEventRaidGroup:
    case ColumnId::kSysDiskCap:
    case ColumnId::kSysCohort:
    case ColumnId::kShelfSystem:
    case ColumnId::kDiskCap:
    case ColumnId::kDiskSystem:
    case ColumnId::kDiskShelf:
    case ColumnId::kDiskRaidGroup:
    case ColumnId::kDiskSlot:
    case ColumnId::kRgSystem:
    case ColumnId::kRgMembers:
    case ColumnId::kRgSpan:
      return 4;
    case ColumnId::kSysDeploy:
    case ColumnId::kDiskInstall:
    case ColumnId::kDiskRemove:
      return 8;
  }
  return 0;
}

std::string_view column_name(ColumnId id) noexcept {
  switch (id) {
    case ColumnId::kEventTime: return "event.time";
    case ColumnId::kEventType: return "event.type";
    case ColumnId::kEventFamily: return "event.family";
    case ColumnId::kEventDisk: return "event.disk";
    case ColumnId::kEventSystem: return "event.system";
    case ColumnId::kEventShelf: return "event.shelf";
    case ColumnId::kEventRaidGroup: return "event.raid_group";
    case ColumnId::kSysClass: return "system.class";
    case ColumnId::kSysPaths: return "system.paths";
    case ColumnId::kSysDiskFamily: return "system.disk_family";
    case ColumnId::kSysDiskCap: return "system.disk_cap";
    case ColumnId::kSysShelfModel: return "system.shelf_model";
    case ColumnId::kSysDeploy: return "system.deploy";
    case ColumnId::kSysCohort: return "system.cohort";
    case ColumnId::kShelfSystem: return "shelf.system";
    case ColumnId::kShelfModel: return "shelf.model";
    case ColumnId::kDiskFamily: return "disk.family";
    case ColumnId::kDiskCap: return "disk.cap";
    case ColumnId::kDiskSystem: return "disk.system";
    case ColumnId::kDiskShelf: return "disk.shelf";
    case ColumnId::kDiskRaidGroup: return "disk.raid_group";
    case ColumnId::kDiskSlot: return "disk.slot";
    case ColumnId::kDiskInstall: return "disk.install";
    case ColumnId::kDiskRemove: return "disk.remove";
    case ColumnId::kRgSystem: return "raid_group.system";
    case ColumnId::kRgType: return "raid_group.type";
    case ColumnId::kRgMembers: return "raid_group.members";
    case ColumnId::kRgSpan: return "raid_group.span";
  }
  return "unknown";
}

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kIo: return "io-error";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kBadMagic: return "bad-magic";
    case ErrorCode::kBadEndianness: return "bad-endianness";
    case ErrorCode::kBadVersion: return "bad-version";
    case ErrorCode::kBadHeader: return "bad-header";
    case ErrorCode::kBadFooter: return "bad-footer";
    case ErrorCode::kChecksum: return "checksum-mismatch";
    case ErrorCode::kBadColumn: return "bad-column";
    case ErrorCode::kBadValue: return "bad-value";
  }
  return "unknown";
}

std::string Error::describe() const {
  std::string out(error_code_name(code));
  if (!detail.empty()) {
    out.append(": ").append(detail);
  }
  if (offset != 0) {
    out.append(" (offset ");
    append_number(out, offset);
    out.append(")");
  }
  return out;
}

Error make_error(ErrorCode code, std::string_view detail, std::uint64_t offset) {
  Error e;
  e.code = code;
  e.detail = std::string(detail);
  e.offset = offset;
  return e;
}

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  const auto& t = kCrcTable.entries;
  while (size >= 8) {
    const std::uint32_t lo = c ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    c = t[7][lo & 0xffu] ^ t[6][(lo >> 8u) & 0xffu] ^ t[5][(lo >> 16u) & 0xffu] ^
        t[4][lo >> 24u] ^ t[3][hi & 0xffu] ^ t[2][(hi >> 8u) & 0xffu] ^
        t[1][(hi >> 16u) & 0xffu] ^ t[0][hi >> 24u];
    p += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ p[i]) & 0xffu] ^ (c >> 8u);
  }
  return c ^ 0xffffffffu;
}

std::size_t decode_varint(const char* p, const char* end, std::uint64_t* out) noexcept {
  std::uint64_t value = 0;
  unsigned shift = 0;
  const char* cursor = p;
  while (cursor < end && shift < 64) {
    const auto byte = static_cast<std::uint8_t>(*cursor);
    ++cursor;
    value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      *out = value;
      return static_cast<std::size_t>(cursor - p);
    }
    shift += 7;
  }
  return 0;  // ran off the end or overlong encoding
}

void append_header(std::string& out, const Header& header) {
  const std::size_t base = out.size();
  out.append(kMagic.data(), kMagic.size());
  append_u32(out, kEndianTag);
  append_u32(out, header.format_version);
  append_u64(out, header.file_size);
  append_u64(out, header.footer_offset);
  append_u64(out, header.footer_size);
  append_u64(out, header.seed);
  append_f64(out, header.scale);
  append_f64(out, header.horizon_seconds);
  append_u64(out, header.event_count);
  append_u64(out, header.system_count);
  append_u64(out, header.shelf_count);
  append_u64(out, header.disk_count);
  append_u64(out, header.raid_group_count);
  while (out.size() - base < kHeaderSize - 4) out.push_back('\0');
  append_u32(out, crc32(out.data() + base, kHeaderSize - 4));
}

Error parse_header(const char* data, std::size_t size, Header* out) {
  if (size < kHeaderSize) {
    return make_error(ErrorCode::kTruncated, "file shorter than the fixed header");
  }
  if (std::memcmp(data, kMagic.data(), kMagic.size()) != 0) {
    return make_error(ErrorCode::kBadMagic, "not a storsubsim column store file");
  }
  if (read_u32(data + 8) != kEndianTag) {
    return make_error(ErrorCode::kBadEndianness,
                      "store written on a foreign-endian host", 8);
  }
  const std::uint32_t stored_crc = read_u32(data + kHeaderSize - 4);
  if (stored_crc != crc32(data, kHeaderSize - 4)) {
    return make_error(ErrorCode::kBadHeader, "header CRC32 mismatch",
                      kHeaderSize - 4);
  }
  Header h;
  h.format_version = read_u32(data + 12);
  if (h.format_version != kFormatVersion) {
    std::string detail("unsupported format version ");
    char buf[16];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), h.format_version);
    if (ec == std::errc{}) detail.append(buf, ptr);
    return Error{ErrorCode::kBadVersion, std::move(detail), 12};
  }
  h.file_size = read_u64(data + 16);
  h.footer_offset = read_u64(data + 24);
  h.footer_size = read_u64(data + 32);
  h.seed = read_u64(data + 40);
  h.scale = read_f64(data + 48);
  h.horizon_seconds = read_f64(data + 56);
  h.event_count = read_u64(data + 64);
  h.system_count = read_u64(data + 72);
  h.shelf_count = read_u64(data + 80);
  h.disk_count = read_u64(data + 88);
  h.raid_group_count = read_u64(data + 96);
  *out = h;
  return Error{};
}

}  // namespace storsubsim::store
