#include "store/decode.h"

#include <atomic>
#include <bit>
#include <cstring>

#include "store/format.h"

// The CMake option STORSUBSIM_SIMD decides whether the wide paths are
// compiled at all; the target architecture decides which one. The scalar
// path is always compiled and always reachable via set_simd_enabled(false).
#ifndef STORSUBSIM_SIMD_ENABLED
#define STORSUBSIM_SIMD_ENABLED 1
#endif

#if STORSUBSIM_SIMD_ENABLED && defined(__SSE2__)
#define STORSUBSIM_HAVE_SSE2 1
#include <emmintrin.h>
#elif STORSUBSIM_SIMD_ENABLED && defined(__ARM_NEON)
#define STORSUBSIM_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace storsubsim::store {

namespace {

constexpr bool kSimdCompiled =
#if defined(STORSUBSIM_HAVE_SSE2) || defined(STORSUBSIM_HAVE_NEON)
    true;
#else
    false;
#endif

std::atomic<bool> g_simd_enabled{kSimdCompiled};

inline bool use_simd() noexcept {
  return kSimdCompiled && g_simd_enabled.load(std::memory_order_relaxed);
}

// --- varint extraction -------------------------------------------------------

constexpr std::uint64_t kContinuationMask = 0x8080808080808080ull;

/// Gathers the 7-bit groups of a `len`-byte varint (1..8) out of a 64-bit
/// little-endian chunk. The length dispatch compiles to a jump table; each
/// case is a straight-line OR chain, so there is no per-byte loop.
inline std::uint64_t gather7(std::uint64_t c, unsigned len) noexcept {
  const std::uint64_t b0 = c & 0x7fu;
  switch (len) {
    case 1:
      return b0;
    case 2:
      return b0 | ((c >> 8) & 0x7fu) << 7;
    case 3:
      return b0 | ((c >> 8) & 0x7fu) << 7 | ((c >> 16) & 0x7fu) << 14;
    case 4:
      return b0 | ((c >> 8) & 0x7fu) << 7 | ((c >> 16) & 0x7fu) << 14 |
             ((c >> 24) & 0x7fu) << 21;
    case 5:
      return b0 | ((c >> 8) & 0x7fu) << 7 | ((c >> 16) & 0x7fu) << 14 |
             ((c >> 24) & 0x7fu) << 21 | ((c >> 32) & 0x7fu) << 28;
    case 6:
      return b0 | ((c >> 8) & 0x7fu) << 7 | ((c >> 16) & 0x7fu) << 14 |
             ((c >> 24) & 0x7fu) << 21 | ((c >> 32) & 0x7fu) << 28 |
             ((c >> 40) & 0x7fu) << 35;
    case 7:
      return b0 | ((c >> 8) & 0x7fu) << 7 | ((c >> 16) & 0x7fu) << 14 |
             ((c >> 24) & 0x7fu) << 21 | ((c >> 32) & 0x7fu) << 28 |
             ((c >> 40) & 0x7fu) << 35 | ((c >> 48) & 0x7fu) << 42;
    default:
      return b0 | ((c >> 8) & 0x7fu) << 7 | ((c >> 16) & 0x7fu) << 14 |
             ((c >> 24) & 0x7fu) << 21 | ((c >> 32) & 0x7fu) << 28 |
             ((c >> 40) & 0x7fu) << 35 | ((c >> 48) & 0x7fu) << 42 |
             ((c >> 56) & 0x7fu) << 49;
  }
}

/// Assembles a 64-bit little-endian value from 8 bytes without assuming host
/// byte order (folds to a single load on little-endian targets).
inline std::uint64_t load_le64(const char* p) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap64(v);
#endif
  return v;
}

}  // namespace

bool simd_compiled() noexcept { return kSimdCompiled; }

bool simd_enabled() noexcept { return use_simd(); }

void set_simd_enabled(bool enabled) noexcept {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

const char* kernel_path_name() noexcept {
#if defined(STORSUBSIM_HAVE_SSE2)
  if (use_simd()) return "sse2";
#elif defined(STORSUBSIM_HAVE_NEON)
  if (use_simd()) return "neon";
#endif
  return "scalar";
}

std::size_t decode_varint_batch(const char* p, const char* end, std::uint64_t* out,
                                std::size_t count) noexcept {
  const char* cursor = p;
  std::size_t i = 0;
  // Fast path: one unaligned 8-byte load finds the terminator byte (first
  // clear continuation bit) and the length dispatch extracts the value in
  // straight-line code. Varints of 9-10 bytes (every continuation bit of the
  // chunk set) fall back to the bounds-checked per-byte reference, which is
  // also the arbiter of accept/reject semantics.
  while (i < count && end - cursor >= 8) {
    const std::uint64_t chunk = load_le64(cursor);
    const std::uint64_t stop = ~chunk & kContinuationMask;
    if (stop == 0) {
      std::uint64_t v = 0;
      const std::size_t consumed = decode_varint(cursor, end, &v);
      if (consumed == 0) return 0;
      out[i++] = v;
      cursor += consumed;
      continue;
    }
    const unsigned len =
        (static_cast<unsigned>(std::countr_zero(stop)) >> 3u) + 1u;
    out[i++] = gather7(chunk, len);
    cursor += len;
  }
  // Tail: fewer than 8 readable bytes left — never read past `end`.
  for (; i < count; ++i) {
    std::uint64_t v = 0;
    const std::size_t consumed = decode_varint(cursor, end, &v);
    if (consumed == 0) return 0;
    out[i] = v;
    cursor += consumed;
  }
  return static_cast<std::size_t>(cursor - p);
}

void delta_zigzag_prefix(const std::uint64_t* deltas, std::size_t n,
                         std::uint64_t* prev_bits, double* out) noexcept {
  // The prefix sum is a serial dependence chain, but each step is two ALU
  // ops; unsigned accumulation keeps hostile input defined (the reader's
  // original contract). The bit pattern is the value: times were encoded as
  // deltas of consecutive f64 bit patterns.
  std::uint64_t prev = *prev_bits;
  for (std::size_t i = 0; i < n; ++i) {
    prev += static_cast<std::uint64_t>(zigzag_decode(deltas[i]));
    double t = 0.0;
    std::memcpy(&t, &prev, sizeof(t));
    out[i] = t;
  }
  *prev_bits = prev;
}

std::size_t decode_time_block(const char* p, const char* end, std::size_t rows,
                              std::uint64_t* delta_scratch, std::uint64_t* prev_bits,
                              double* out) noexcept {
  const std::size_t consumed = decode_varint_batch(p, end, delta_scratch, rows);
  if (consumed == 0 && rows > 0) return 0;
  delta_zigzag_prefix(delta_scratch, rows, prev_bits, out);
  return consumed;
}

// --- selection bitmaps -------------------------------------------------------

void bitmap_fill(std::uint64_t* bm, std::size_t n) noexcept {
  const std::size_t full = n / 64;
  for (std::size_t w = 0; w < full; ++w) bm[w] = ~0ull;
  if (n % 64 != 0) bm[full] = ~0ull >> (64 - n % 64);
}

namespace {

/// Scalar tail shared by every u8 bitmap kernel: rows [i, n) into the word
/// at bm[i / 64] (i is a multiple of 64).
inline void eq_u8_tail(const std::uint8_t* data, std::size_t i, std::size_t n,
                       std::uint8_t value, std::uint64_t* bm) noexcept {
  std::uint64_t word = 0;
  for (std::size_t j = i; j < n; ++j) {
    word |= static_cast<std::uint64_t>(data[j] == value ? 1u : 0u) << (j - i);
  }
  bm[i / 64] = word;
}

void bitmap_eq_u8_scalar(const std::uint8_t* data, std::size_t n, std::uint8_t value,
                         std::uint64_t* bm) noexcept {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < 64; ++j) {
      word |= static_cast<std::uint64_t>(data[i + j] == value ? 1u : 0u) << j;
    }
    bm[i / 64] = word;
  }
  if (i < n) eq_u8_tail(data, i, n, value, bm);
}

#if defined(STORSUBSIM_HAVE_SSE2)

void bitmap_eq_u8_sse2(const std::uint8_t* data, std::size_t n, std::uint8_t value,
                       std::uint64_t* bm) noexcept {
  const __m128i needle = _mm_set1_epi8(static_cast<char>(value));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t word = 0;
    for (unsigned k = 0; k < 4; ++k) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i + 16 * k));
      const auto bits = static_cast<std::uint32_t>(
          static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(x, needle))));
      word |= static_cast<std::uint64_t>(bits) << (16 * k);
    }
    bm[i / 64] = word;
  }
  if (i < n) eq_u8_tail(data, i, n, value, bm);
}

#elif defined(STORSUBSIM_HAVE_NEON)

/// 16 comparison lanes (0xff / 0x00) -> a 16-bit mask, least-significant
/// lane first, matching SSE2's movemask bit order.
inline std::uint32_t neon_mask16(uint8x16_t eq) noexcept {
  const uint8x16_t bits = {1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t masked = vandq_u8(eq, bits);
  const uint8x8_t lo = vget_low_u8(masked);
  const uint8x8_t hi = vget_high_u8(masked);
  const std::uint32_t lo_bits = vaddv_u8(lo);
  const std::uint32_t hi_bits = vaddv_u8(hi);
  return lo_bits | (hi_bits << 8);
}

void bitmap_eq_u8_neon(const std::uint8_t* data, std::size_t n, std::uint8_t value,
                       std::uint64_t* bm) noexcept {
  const uint8x16_t needle = vdupq_n_u8(value);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t word = 0;
    for (unsigned k = 0; k < 4; ++k) {
      const uint8x16_t x = vld1q_u8(data + i + 16 * k);
      word |= static_cast<std::uint64_t>(neon_mask16(vceqq_u8(x, needle)))
              << (16 * k);
    }
    bm[i / 64] = word;
  }
  if (i < n) eq_u8_tail(data, i, n, value, bm);
}

#endif

}  // namespace

void bitmap_eq_u8(const std::uint8_t* data, std::size_t n, std::uint8_t value,
                  std::uint64_t* bm) noexcept {
#if defined(STORSUBSIM_HAVE_SSE2)
  if (use_simd()) {
    bitmap_eq_u8_sse2(data, n, value, bm);
    return;
  }
#elif defined(STORSUBSIM_HAVE_NEON)
  if (use_simd()) {
    bitmap_eq_u8_neon(data, n, value, bm);
    return;
  }
#endif
  bitmap_eq_u8_scalar(data, n, value, bm);
}

void bitmap_eq4_u8(const std::uint8_t* data, std::size_t n,
                   const std::uint8_t values[4], std::uint64_t* out0,
                   std::uint64_t* out1, std::uint64_t* out2,
                   std::uint64_t* out3) noexcept {
  std::uint64_t* outs[4] = {out0, out1, out2, out3};
#if defined(STORSUBSIM_HAVE_SSE2)
  if (use_simd()) {
    __m128i needles[4];
    for (unsigned v = 0; v < 4; ++v) {
      needles[v] = _mm_set1_epi8(static_cast<char>(values[v]));
    }
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
      std::uint64_t words[4] = {0, 0, 0, 0};
      for (unsigned k = 0; k < 4; ++k) {
        const __m128i x =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i + 16 * k));
        for (unsigned v = 0; v < 4; ++v) {
          const auto bits = static_cast<std::uint32_t>(static_cast<unsigned>(
              _mm_movemask_epi8(_mm_cmpeq_epi8(x, needles[v]))));
          words[v] |= static_cast<std::uint64_t>(bits) << (16 * k);
        }
      }
      for (unsigned v = 0; v < 4; ++v) outs[v][i / 64] = words[v];
    }
    if (i < n) {
      for (unsigned v = 0; v < 4; ++v) eq_u8_tail(data, i, n, values[v], outs[v]);
    }
    return;
  }
#elif defined(STORSUBSIM_HAVE_NEON)
  if (use_simd()) {
    for (unsigned v = 0; v < 4; ++v) bitmap_eq_u8_neon(data, n, values[v], outs[v]);
    return;
  }
#endif
  for (unsigned v = 0; v < 4; ++v) bitmap_eq_u8_scalar(data, n, values[v], outs[v]);
}

namespace {

enum class WindowKind { kBoth, kBeginOnly, kEndOnly };

/// One row's window predicate — the single definition both paths implement.
inline bool window_bit(double t, WindowKind kind, double begin, double end) noexcept {
  switch (kind) {
    case WindowKind::kBoth:
      return t >= begin && t < end;
    case WindowKind::kBeginOnly:
      return t >= begin;
    case WindowKind::kEndOnly:
      return t < end;
  }
  return false;
}

void bitmap_time_window_scalar(const double* time, std::size_t n, WindowKind kind,
                               double begin, double end, std::uint64_t* bm) noexcept {
  const std::size_t words = bitmap_words(n);
  for (std::size_t w = 0; w < words; ++w) bm[w] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bm[i / 64] |= static_cast<std::uint64_t>(window_bit(time[i], kind, begin, end) ? 1u : 0u)
                  << (i % 64);
  }
}

#if defined(STORSUBSIM_HAVE_SSE2)

void bitmap_time_window_sse2(const double* time, std::size_t n, WindowKind kind,
                             double begin, double end, std::uint64_t* bm) noexcept {
  const __m128d lo = _mm_set1_pd(begin);
  const __m128d hi = _mm_set1_pd(end);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t word = 0;
    for (unsigned k = 0; k < 32; ++k) {
      const __m128d t = _mm_loadu_pd(time + i + 2 * k);
      __m128d ok;
      switch (kind) {
        case WindowKind::kBoth:
          ok = _mm_and_pd(_mm_cmpge_pd(t, lo), _mm_cmplt_pd(t, hi));
          break;
        case WindowKind::kBeginOnly:
          ok = _mm_cmpge_pd(t, lo);
          break;
        default:
          ok = _mm_cmplt_pd(t, hi);
          break;
      }
      const auto bits =
          static_cast<std::uint32_t>(static_cast<unsigned>(_mm_movemask_pd(ok)));
      word |= static_cast<std::uint64_t>(bits) << (2 * k);
    }
    bm[i / 64] = word;
  }
  if (i < n) {
    std::uint64_t word = 0;
    for (std::size_t j = i; j < n; ++j) {
      word |= static_cast<std::uint64_t>(window_bit(time[j], kind, begin, end) ? 1u : 0u)
              << (j - i);
    }
    bm[i / 64] = word;
  }
}

#elif defined(STORSUBSIM_HAVE_NEON)

void bitmap_time_window_neon(const double* time, std::size_t n, WindowKind kind,
                             double begin, double end, std::uint64_t* bm) noexcept {
  const float64x2_t lo = vdupq_n_f64(begin);
  const float64x2_t hi = vdupq_n_f64(end);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    std::uint64_t word = 0;
    for (unsigned k = 0; k < 32; ++k) {
      const float64x2_t t = vld1q_f64(time + i + 2 * k);
      uint64x2_t ok;
      switch (kind) {
        case WindowKind::kBoth:
          ok = vandq_u64(vcgeq_f64(t, lo), vcltq_f64(t, hi));
          break;
        case WindowKind::kBeginOnly:
          ok = vcgeq_f64(t, lo);
          break;
        default:
          ok = vcltq_f64(t, hi);
          break;
      }
      const std::uint64_t bits =
          (vgetq_lane_u64(ok, 0) & 1u) | ((vgetq_lane_u64(ok, 1) & 1u) << 1u);
      word |= bits << (2 * k);
    }
    bm[i / 64] = word;
  }
  if (i < n) {
    std::uint64_t word = 0;
    for (std::size_t j = i; j < n; ++j) {
      word |= static_cast<std::uint64_t>(window_bit(time[j], kind, begin, end) ? 1u : 0u)
              << (j - i);
    }
    bm[i / 64] = word;
  }
}

#endif

}  // namespace

void bitmap_time_window(const double* time, std::size_t n, bool have_begin,
                        double begin, bool have_end, double end,
                        std::uint64_t* bm) noexcept {
  if (!have_begin && !have_end) {
    // No predicate selects everything — including NaN times, exactly like
    // the row loop this kernel replaced.
    bitmap_fill(bm, n);
    return;
  }
  const WindowKind kind = have_begin && have_end ? WindowKind::kBoth
                          : have_begin          ? WindowKind::kBeginOnly
                                                : WindowKind::kEndOnly;
#if defined(STORSUBSIM_HAVE_SSE2)
  if (use_simd()) {
    bitmap_time_window_sse2(time, n, kind, begin, end, bm);
    return;
  }
#elif defined(STORSUBSIM_HAVE_NEON)
  if (use_simd()) {
    bitmap_time_window_neon(time, n, kind, begin, end, bm);
    return;
  }
#endif
  bitmap_time_window_scalar(time, n, kind, begin, end, bm);
}

void bitmap_and(std::uint64_t* dst, const std::uint64_t* src,
                std::size_t words) noexcept {
  for (std::size_t w = 0; w < words; ++w) dst[w] &= src[w];
}

std::uint64_t popcount_words(const std::uint64_t* bm, std::size_t words) noexcept {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(bm[w]));
  }
  return total;
}

std::uint64_t popcount_and(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) noexcept {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  }
  return total;
}

// --- open()-time domain sweeps ----------------------------------------------

namespace {

bool all_lt_u8_scalar(const std::uint8_t* data, std::size_t n,
                      std::uint8_t limit) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] >= limit) return false;
  }
  return true;
}

bool all_ids_in_domain_u32_scalar(const std::uint32_t* data, std::size_t n,
                                  std::uint32_t limit, bool allow_invalid) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = data[i];
    if (v < limit) continue;
    if (allow_invalid && v == 0xffffffffu) continue;
    return false;
  }
  return true;
}

#if defined(STORSUBSIM_HAVE_SSE2)

bool all_lt_u8_sse2(const std::uint8_t* data, std::size_t n,
                    std::uint8_t limit) noexcept {
  if (limit == 0) return n == 0;
  // sat_sub(v, limit - 1) is nonzero exactly when v >= limit.
  const __m128i thresh = _mm_set1_epi8(static_cast<char>(limit - 1));
  __m128i violations = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    violations = _mm_or_si128(violations, _mm_subs_epu8(x, thresh));
  }
  const int all_zero = _mm_movemask_epi8(
      _mm_cmpeq_epi8(violations, _mm_setzero_si128()));
  if (all_zero != 0xffff) return false;
  return all_lt_u8_scalar(data + i, n - i, limit);
}

bool all_ids_in_domain_u32_sse2(const std::uint32_t* data, std::size_t n,
                                std::uint32_t limit, bool allow_invalid) noexcept {
  // Unsigned < via the sign-flip trick: a <u b  <=>  (a ^ MIN) <s (b ^ MIN).
  const __m128i flip = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i lim = _mm_set1_epi32(static_cast<int>(limit ^ 0x80000000u));
  const __m128i inv = _mm_set1_epi32(-1);
  __m128i all_ok = _mm_set1_epi32(-1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    __m128i ok = _mm_cmplt_epi32(_mm_xor_si128(x, flip), lim);
    if (allow_invalid) ok = _mm_or_si128(ok, _mm_cmpeq_epi32(x, inv));
    all_ok = _mm_and_si128(all_ok, ok);
  }
  if (_mm_movemask_epi8(all_ok) != 0xffff) return false;
  return all_ids_in_domain_u32_scalar(data + i, n - i, limit, allow_invalid);
}

#elif defined(STORSUBSIM_HAVE_NEON)

bool all_lt_u8_neon(const std::uint8_t* data, std::size_t n,
                    std::uint8_t limit) noexcept {
  const uint8x16_t lim = vdupq_n_u8(limit);
  uint8x16_t all_ok = vdupq_n_u8(0xff);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    all_ok = vandq_u8(all_ok, vcltq_u8(vld1q_u8(data + i), lim));
  }
  if (vminvq_u8(all_ok) != 0xff) return false;
  return all_lt_u8_scalar(data + i, n - i, limit);
}

bool all_ids_in_domain_u32_neon(const std::uint32_t* data, std::size_t n,
                                std::uint32_t limit, bool allow_invalid) noexcept {
  const uint32x4_t lim = vdupq_n_u32(limit);
  const uint32x4_t inv = vdupq_n_u32(0xffffffffu);
  uint32x4_t all_ok = vdupq_n_u32(0xffffffffu);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t x = vld1q_u32(data + i);
    uint32x4_t ok = vcltq_u32(x, lim);
    if (allow_invalid) ok = vorrq_u32(ok, vceqq_u32(x, inv));
    all_ok = vandq_u32(all_ok, ok);
  }
  if (vminvq_u32(all_ok) != 0xffffffffu) return false;
  return all_ids_in_domain_u32_scalar(data + i, n - i, limit, allow_invalid);
}

#endif

}  // namespace

bool all_lt_u8(const std::uint8_t* data, std::size_t n, std::uint8_t limit) noexcept {
#if defined(STORSUBSIM_HAVE_SSE2)
  if (use_simd()) return all_lt_u8_sse2(data, n, limit);
#elif defined(STORSUBSIM_HAVE_NEON)
  if (use_simd()) return all_lt_u8_neon(data, n, limit);
#endif
  return all_lt_u8_scalar(data, n, limit);
}

bool all_ids_in_domain_u32(const std::uint32_t* data, std::size_t n,
                           std::uint32_t limit, bool allow_invalid) noexcept {
#if defined(STORSUBSIM_HAVE_SSE2)
  if (use_simd()) return all_ids_in_domain_u32_sse2(data, n, limit, allow_invalid);
#elif defined(STORSUBSIM_HAVE_NEON)
  if (use_simd()) return all_ids_in_domain_u32_neon(data, n, limit, allow_invalid);
#endif
  return all_ids_in_domain_u32_scalar(data, n, limit, allow_invalid);
}

}  // namespace storsubsim::store
