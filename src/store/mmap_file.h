// Read-only memory-mapped file with a heap fallback.
//
// On POSIX hosts the file is mapped MAP_PRIVATE/PROT_READ so column readers
// alias the page cache directly (the zero-copy contract of docs/STORE.md).
// Hosts without mmap — or zero-length files, which mmap rejects — fall back
// to reading the bytes into an owned buffer; callers cannot tell the
// difference and the corruption checks behave identically.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "store/format.h"

namespace storsubsim::store {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  /// Maps (or reads) `path`. On failure returns a kIo error and leaves the
  /// object empty.
  [[nodiscard]] Error open(const std::string& path);

  const char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  std::string_view view() const noexcept { return {data_, size_}; }
  bool mapped() const noexcept { return data_ != nullptr; }

 private:
  void reset() noexcept;

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool is_mmap_ = false;
  std::string fallback_;  ///< owns the bytes when mmap is unavailable
};

}  // namespace storsubsim::store
