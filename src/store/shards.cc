#include "store/shards.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "model/enums.h"
#include "model/time.h"
#include "obs/obs.h"

namespace storsubsim::store {

namespace {

// --- allocation-free-ish text rendering -------------------------------------
// The manifest is tiny (a few KB), but src/store is an alloc-hotpath scope:
// numbers are rendered with std::to_chars into stack buffers, never through
// std::to_string or stream objects.

void append_dec(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

/// Fixed-width 16-digit hex of a u64 bit pattern, "0x" prefixed.
void append_hex64(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  out.append("0x");
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(v >> static_cast<unsigned>(shift)) & 0xfu]);
  }
}

void append_hex_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_hex64(out, bits);
}

std::array<std::uint64_t, 15> meta_values(const StoreMeta& meta) {
  return {meta.sim_events_by_type[0], meta.sim_events_by_type[1],
          meta.sim_events_by_type[2], meta.sim_events_by_type[3],
          meta.sim_replacements,      meta.sim_triggered_disk_failures,
          meta.sim_shelf_faults,      meta.sim_path_faults,
          meta.sim_masked_path_faults, meta.log_lines_written,
          meta.log_lines_parsed,      meta.raid_records,
          meta.failures_classified,   meta.duplicates_dropped,
          meta.missing_disk_dropped};
}

void set_meta_values(StoreMeta& meta, const std::array<std::uint64_t, 15>& v) {
  meta.sim_events_by_type = {v[0], v[1], v[2], v[3]};
  meta.sim_replacements = v[4];
  meta.sim_triggered_disk_failures = v[5];
  meta.sim_shelf_faults = v[6];
  meta.sim_path_faults = v[7];
  meta.sim_masked_path_faults = v[8];
  meta.log_lines_written = v[9];
  meta.log_lines_parsed = v[10];
  meta.raid_records = v[11];
  meta.failures_classified = v[12];
  meta.duplicates_dropped = v[13];
  meta.missing_disk_dropped = v[14];
}

// --- line/token parsing ------------------------------------------------------

struct LineCursor {
  std::string_view text;
  std::size_t pos = 0;

  /// Byte offset of the next unread line (error anchoring).
  std::uint64_t offset() const noexcept { return pos; }

  bool next(std::string_view* line) {
    if (pos >= text.size()) return false;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      *line = text.substr(pos);
      pos = text.size();
    } else {
      *line = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return true;
  }
};

/// Pops the next space-separated token off `line`.
bool take_token(std::string_view& line, std::string_view* tok) {
  while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
  if (line.empty()) return false;
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) {
    *tok = line;
    line = {};
  } else {
    *tok = line.substr(0, sp);
    line.remove_prefix(sp + 1);
  }
  return true;
}

bool parse_u64(std::string_view tok, std::uint64_t* v) {
  if (tok.empty()) return false;
  const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), *v, 10);
  return res.ec == std::errc{} && res.ptr == tok.data() + tok.size();
}

bool parse_hex64(std::string_view tok, std::uint64_t* v) {
  if (tok.size() < 3 || tok[0] != '0' || tok[1] != 'x') return false;
  tok.remove_prefix(2);
  const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), *v, 16);
  return res.ec == std::errc{} && res.ptr == tok.data() + tok.size();
}

bool parse_hex_f64(std::string_view tok, double* v) {
  std::uint64_t bits = 0;
  if (!parse_hex64(tok, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

[[nodiscard]] Error manifest_error(std::string_view detail, std::uint64_t offset = 0) {
  std::string msg("MANIFEST: ");
  msg.append(detail);
  return make_error(ErrorCode::kBadHeader, msg, offset);
}

/// Reads one "key value..." line and hands back the value part.
[[nodiscard]] Error expect_line(LineCursor& cursor, std::string_view key, std::string_view* rest) {
  const std::uint64_t at = cursor.offset();
  std::string_view line;
  if (!cursor.next(&line)) {
    std::string msg("truncated before '");
    msg.append(key).append("'");
    return make_error(ErrorCode::kTruncated, std::string("MANIFEST: ").append(msg), at);
  }
  std::string_view tok;
  std::string_view tail = line;
  if (!take_token(tail, &tok) || tok != key) {
    std::string msg("expected '");
    msg.append(key).append("' line");
    return manifest_error(msg, at);
  }
  *rest = tail;
  return Error{};
}

[[nodiscard]] Error expect_u64(LineCursor& cursor, std::string_view key, std::uint64_t* v) {
  std::string_view rest;
  if (Error err = expect_line(cursor, key, &rest); !err.ok()) return err;
  std::string_view tok;
  if (!take_token(rest, &tok) || !parse_u64(tok, v)) {
    std::string msg("bad integer on '");
    msg.append(key).append("' line");
    return manifest_error(msg, cursor.offset());
  }
  return Error{};
}

[[nodiscard]] Error expect_hex_f64(LineCursor& cursor, std::string_view key, double* v) {
  std::string_view rest;
  if (Error err = expect_line(cursor, key, &rest); !err.ok()) return err;
  std::string_view tok;
  if (!take_token(rest, &tok) || !parse_hex_f64(tok, v)) {
    std::string msg("bad hex double on '");
    msg.append(key).append("' line");
    return manifest_error(msg, cursor.offset());
  }
  return Error{};
}

// --- small file helpers ------------------------------------------------------

[[nodiscard]] Error read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return make_error(ErrorCode::kIo, std::string("cannot open ").append(path));
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->clear();
  if (size > 0) {
    out->resize(static_cast<std::size_t>(size));
    const std::size_t got = std::fread(out->data(), 1, out->size(), f);
    if (got != out->size()) {
      std::fclose(f);
      return make_error(ErrorCode::kIo, std::string("short read from ").append(path));
    }
  }
  std::fclose(f);
  return Error{};
}

/// File size + CRC32 of the first kHeaderSize bytes (returned in `head`),
/// without mapping or reading the rest of the file.
[[nodiscard]] Error probe_shard_file(const std::string& path, std::uint64_t* size,
                       std::uint32_t* header_crc,
                       std::array<char, kHeaderSize>* head = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return make_error(ErrorCode::kIo, std::string("missing shard file ").append(path));
  }
  std::array<char, kHeaderSize> buf{};
  const std::size_t got = std::fread(buf.data(), 1, buf.size(), f);
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  std::fclose(f);
  if (got != buf.size() || end < 0) {
    return make_error(ErrorCode::kTruncated,
                      std::string("shard file shorter than a header: ").append(path));
  }
  *size = static_cast<std::uint64_t>(end);
  *header_crc = crc32(buf.data(), buf.size());
  if (head != nullptr) *head = buf;
  return Error{};
}

void sum_meta(StoreMeta& into, const StoreMeta& add) {
  const auto a = meta_values(into);
  const auto b = meta_values(add);
  std::array<std::uint64_t, 15> sum{};
  for (std::size_t i = 0; i < sum.size(); ++i) sum[i] = a[i] + b[i];
  set_meta_values(into, sum);
}

std::string shard_path(const std::string& dir, const std::string& file) {
  std::string path(dir);
  if (!path.empty() && path.back() != '/') path.push_back('/');
  path.append(file);
  return path;
}

}  // namespace

std::string render_manifest(const ShardManifest& manifest) {
  std::string out;
  out.reserve(1024 + manifest.shards.size() * 160);
  out.append(kManifestMagic).append("\n");
  out.append("version ");
  append_dec(out, manifest.version);
  out.append("\nseed ");
  append_dec(out, manifest.seed);
  out.append("\nscale ");
  append_hex_f64(out, manifest.scale);
  out.append("\nhorizon_seconds ");
  append_hex_f64(out, manifest.horizon_seconds);
  out.append("\nsystems ");
  append_dec(out, manifest.systems);
  out.append("\nshelves ");
  append_dec(out, manifest.shelves);
  out.append("\ndisks_initial ");
  append_dec(out, manifest.disks_initial);
  out.append("\ndisks_total ");
  append_dec(out, manifest.disks_total);
  out.append("\nraid_groups ");
  append_dec(out, manifest.raid_groups);
  out.append("\nevents ");
  append_dec(out, manifest.events);
  out.append("\npeak_rss_bytes ");
  append_dec(out, manifest.peak_rss_bytes);
  out.append("\nmeta");
  for (const auto v : meta_values(manifest.meta)) {
    out.push_back(' ');
    append_dec(out, v);
  }
  out.append("\nexposure_total ");
  append_hex_f64(out, manifest.exposure.total_disk_years);
  out.append("\nexposure_class");
  for (const auto v : manifest.exposure.class_disk_years) {
    out.push_back(' ');
    append_hex_f64(out, v);
  }
  out.append("\nexposure_class_systems");
  for (const auto v : manifest.exposure.class_system_count) {
    out.push_back(' ');
    append_dec(out, v);
  }
  out.append("\nexposure_families ");
  append_dec(out, manifest.exposure.family_disk_years.size());
  for (const auto& [family, years] : manifest.exposure.family_disk_years) {
    out.append("\nfamily ");
    append_dec(out, static_cast<std::uint8_t>(family));
    out.push_back(' ');
    append_hex_f64(out, years);
  }
  out.append("\nexposure_class_families ");
  append_dec(out, manifest.exposure.class_family_disk_years.size());
  for (const auto& [key, years] : manifest.exposure.class_family_disk_years) {
    out.append("\nclass_family ");
    append_dec(out, key.first);
    out.push_back(' ');
    append_dec(out, static_cast<std::uint8_t>(key.second));
    out.push_back(' ');
    append_hex_f64(out, years);
  }
  out.append("\nshards ");
  append_dec(out, manifest.shards.size());
  for (const auto& s : manifest.shards) {
    out.append("\nshard ");
    out.append(s.file);
    out.push_back(' ');
    append_dec(out, s.file_size);
    out.push_back(' ');
    append_hex64(out, s.header_crc);
    out.push_back(' ');
    append_dec(out, s.sys_begin);
    out.push_back(' ');
    append_dec(out, s.sys_end);
    out.push_back(' ');
    append_dec(out, s.systems);
    out.push_back(' ');
    append_dec(out, s.shelves);
    out.push_back(' ');
    append_dec(out, s.raid_groups);
    out.push_back(' ');
    append_dec(out, s.disks_initial);
    out.push_back(' ');
    append_dec(out, s.disks_total);
    out.push_back(' ');
    append_dec(out, s.events);
  }
  out.push_back('\n');
  const std::uint32_t crc = crc32(out.data(), out.size());
  out.append("crc ");
  append_hex64(out, crc);
  out.push_back('\n');
  return out;
}

Error parse_manifest(std::string_view text, ShardManifest* out) {
  // The trailing line is "crc 0x<16 hex>\n" over everything before it.
  const std::string_view crc_key("crc 0x");
  const std::size_t crc_at = text.rfind(crc_key);
  if (crc_at == std::string_view::npos || crc_at == 0) {
    return make_error(ErrorCode::kTruncated, "MANIFEST: missing trailing crc line");
  }
  {
    std::string_view crc_line = text.substr(crc_at);
    std::string_view rest = crc_line;
    std::string_view tok;
    if (!take_token(rest, &tok)) {
      return manifest_error("malformed crc line", crc_at);
    }
    if (!take_token(rest, &tok)) {
      return manifest_error("malformed crc line", crc_at);
    }
    while (!tok.empty() && tok.back() == '\n') tok.remove_suffix(1);
    std::uint64_t stored = 0;
    if (!parse_hex64(tok, &stored)) {
      return manifest_error("malformed crc line", crc_at);
    }
    const std::uint32_t actual = crc32(text.data(), crc_at);
    if (static_cast<std::uint32_t>(stored) != actual) {
      return make_error(ErrorCode::kChecksum, "MANIFEST: crc mismatch", crc_at);
    }
  }

  ShardManifest m;
  LineCursor cursor{text.substr(0, crc_at)};
  std::string_view line;
  if (!cursor.next(&line) || line != kManifestMagic) {
    return make_error(ErrorCode::kBadMagic, "MANIFEST: bad magic line");
  }
  std::uint64_t version = 0;
  if (Error err = expect_u64(cursor, "version", &version); !err.ok()) return err;
  if (version != kManifestVersion) {
    return make_error(ErrorCode::kBadVersion, "MANIFEST: unsupported version");
  }
  m.version = static_cast<std::uint32_t>(version);
  if (Error err = expect_u64(cursor, "seed", &m.seed); !err.ok()) return err;
  if (Error err = expect_hex_f64(cursor, "scale", &m.scale); !err.ok()) return err;
  if (Error err = expect_hex_f64(cursor, "horizon_seconds", &m.horizon_seconds); !err.ok()) {
    return err;
  }
  if (Error err = expect_u64(cursor, "systems", &m.systems); !err.ok()) return err;
  if (Error err = expect_u64(cursor, "shelves", &m.shelves); !err.ok()) return err;
  if (Error err = expect_u64(cursor, "disks_initial", &m.disks_initial); !err.ok()) return err;
  if (Error err = expect_u64(cursor, "disks_total", &m.disks_total); !err.ok()) return err;
  if (Error err = expect_u64(cursor, "raid_groups", &m.raid_groups); !err.ok()) return err;
  if (Error err = expect_u64(cursor, "events", &m.events); !err.ok()) return err;
  if (Error err = expect_u64(cursor, "peak_rss_bytes", &m.peak_rss_bytes); !err.ok()) {
    return err;
  }

  {
    std::string_view rest;
    if (Error err = expect_line(cursor, "meta", &rest); !err.ok()) return err;
    std::array<std::uint64_t, 15> values{};
    for (auto& v : values) {
      std::string_view tok;
      if (!take_token(rest, &tok) || !parse_u64(tok, &v)) {
        return manifest_error("meta line needs 15 integers", cursor.offset());
      }
    }
    set_meta_values(m.meta, values);
  }

  if (Error err = expect_hex_f64(cursor, "exposure_total", &m.exposure.total_disk_years);
      !err.ok()) {
    return err;
  }
  {
    std::string_view rest;
    if (Error err = expect_line(cursor, "exposure_class", &rest); !err.ok()) return err;
    for (auto& v : m.exposure.class_disk_years) {
      std::string_view tok;
      if (!take_token(rest, &tok) || !parse_hex_f64(tok, &v)) {
        return manifest_error("exposure_class needs 4 hex doubles", cursor.offset());
      }
    }
  }
  {
    std::string_view rest;
    if (Error err = expect_line(cursor, "exposure_class_systems", &rest); !err.ok()) {
      return err;
    }
    for (auto& v : m.exposure.class_system_count) {
      std::string_view tok;
      if (!take_token(rest, &tok) || !parse_u64(tok, &v)) {
        return manifest_error("exposure_class_systems needs 4 integers", cursor.offset());
      }
    }
  }

  std::uint64_t n_families = 0;
  if (Error err = expect_u64(cursor, "exposure_families", &n_families); !err.ok()) return err;
  for (std::uint64_t i = 0; i < n_families; ++i) {
    std::string_view rest;
    if (Error err = expect_line(cursor, "family", &rest); !err.ok()) return err;
    std::string_view t1;
    std::string_view t2;
    std::uint64_t fam = 0;
    double years = 0.0;
    if (!take_token(rest, &t1) || !take_token(rest, &t2) || !parse_u64(t1, &fam) ||
        fam > 0xff || !parse_hex_f64(t2, &years)) {
      return manifest_error("malformed family line", cursor.offset());
    }
    m.exposure.family_disk_years[static_cast<char>(fam)] = years;
  }
  if (m.exposure.family_disk_years.size() != n_families) {
    return make_error(ErrorCode::kBadValue, "MANIFEST: duplicate family entries");
  }

  std::uint64_t n_class_families = 0;
  if (Error err = expect_u64(cursor, "exposure_class_families", &n_class_families);
      !err.ok()) {
    return err;
  }
  for (std::uint64_t i = 0; i < n_class_families; ++i) {
    std::string_view rest;
    if (Error err = expect_line(cursor, "class_family", &rest); !err.ok()) return err;
    std::string_view t1;
    std::string_view t2;
    std::string_view t3;
    std::uint64_t cls = 0;
    std::uint64_t fam = 0;
    double years = 0.0;
    if (!take_token(rest, &t1) || !take_token(rest, &t2) || !take_token(rest, &t3) ||
        !parse_u64(t1, &cls) || cls >= kClassCount || !parse_u64(t2, &fam) || fam > 0xff ||
        !parse_hex_f64(t3, &years)) {
      return manifest_error("malformed class_family line", cursor.offset());
    }
    m.exposure.class_family_disk_years[{static_cast<std::uint8_t>(cls),
                                        static_cast<char>(fam)}] = years;
  }
  if (m.exposure.class_family_disk_years.size() != n_class_families) {
    return make_error(ErrorCode::kBadValue, "MANIFEST: duplicate class_family entries");
  }

  std::uint64_t n_shards = 0;
  if (Error err = expect_u64(cursor, "shards", &n_shards); !err.ok()) return err;
  if (n_shards == 0) {
    return make_error(ErrorCode::kBadValue, "MANIFEST: zero shards");
  }
  m.shards.reserve(n_shards);
  for (std::uint64_t i = 0; i < n_shards; ++i) {
    std::string_view rest;
    if (Error err = expect_line(cursor, "shard", &rest); !err.ok()) return err;
    ShardInfo s;
    std::string_view tok;
    if (!take_token(rest, &tok) || tok.empty() ||
        tok.find('/') != std::string_view::npos) {
      return manifest_error("malformed shard file name", cursor.offset());
    }
    s.file.assign(tok);
    std::uint64_t crc = 0;
    std::array<std::uint64_t*, 8> fields = {&s.sys_begin,     &s.sys_end, &s.systems,
                                            &s.shelves,       &s.raid_groups,
                                            &s.disks_initial, &s.disks_total, &s.events};
    if (!take_token(rest, &tok) || !parse_u64(tok, &s.file_size)) {
      return manifest_error("malformed shard line", cursor.offset());
    }
    if (!take_token(rest, &tok) || !parse_hex64(tok, &crc) || crc > 0xffffffffu) {
      return manifest_error("malformed shard line", cursor.offset());
    }
    s.header_crc = static_cast<std::uint32_t>(crc);
    for (auto* field : fields) {
      if (!take_token(rest, &tok) || !parse_u64(tok, field)) {
        return manifest_error("malformed shard line", cursor.offset());
      }
    }
    m.shards.push_back(std::move(s));
  }

  // Derive bases and cross-check the totals.
  std::uint64_t systems = 0;
  std::uint64_t shelves = 0;
  std::uint64_t raid_groups = 0;
  std::uint64_t disks_initial = 0;
  std::uint64_t replacements = 0;
  std::uint64_t events = 0;
  for (auto& s : m.shards) {
    s.system_base = systems;
    s.shelf_base = shelves;
    s.raid_group_base = raid_groups;
    s.disk_base = disks_initial;
    s.replacement_base = replacements;
    if (s.disks_total < s.disks_initial || s.sys_end < s.sys_begin ||
        s.sys_end - s.sys_begin != s.systems || s.sys_begin != systems) {
      return make_error(ErrorCode::kBadValue, "MANIFEST: inconsistent shard ranges");
    }
    systems += s.systems;
    shelves += s.shelves;
    raid_groups += s.raid_groups;
    disks_initial += s.disks_initial;
    replacements += s.disks_total - s.disks_initial;
    events += s.events;
  }
  if (systems != m.systems || shelves != m.shelves || disks_initial != m.disks_initial ||
      disks_initial + replacements != m.disks_total || raid_groups != m.raid_groups ||
      events != m.events) {
    return make_error(ErrorCode::kBadValue, "MANIFEST: shard counts do not sum to totals");
  }

  *out = std::move(m);
  return Error{};
}

Error write_manifest_file(const std::string& dir, const ShardManifest& manifest) {
  const std::string image = render_manifest(manifest);
  const std::string path = shard_path(dir, std::string(kManifestFileName));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return make_error(ErrorCode::kIo, std::string("cannot create ").append(path));
  }
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != image.size() || !close_ok) {
    return make_error(ErrorCode::kIo, std::string("short write to ").append(path));
  }
  return Error{};
}

Error merge_shard_tables(const std::string& dir, std::vector<ShardInfo>* shards,
                         double horizon_seconds, ExposureTable* exposure,
                         StoreMeta* meta) {
  obs::Span span("store.merge_tables");

  ExposureTable exp;
  StoreMeta merged{};

  /// Replacement rows deferred to the second pass so the accumulation order
  /// matches the monolithic disk vector (all initial blocks, then all
  /// replacement blocks, each in shard order).
  struct Replacement {
    double install;
    double remove;
    std::uint8_t cls;
    char family;
  };
  std::vector<Replacement> replacements;

  const auto exposure_years = [horizon_seconds](double install, double remove) {
    const double start = install > 0.0 ? install : 0.0;
    const double end = remove < horizon_seconds ? remove : horizon_seconds;
    return end > start ? model::years(end - start) : 0.0;
  };

  for (auto& info : *shards) {
    const std::string path = shard_path(dir, info.file);
    EventStore store;
    if (Error err = store.open(path); !err.ok()) return err;
    if (Error err = probe_shard_file(path, &info.file_size, &info.header_crc); !err.ok()) {
      return err;
    }
    sum_meta(merged, store.meta());

    const auto sys_class = store.topology(ColumnId::kSysClass)->as_u8();
    const auto sys_family = store.topology(ColumnId::kSysDiskFamily)->as_u8();
    const auto disk_system = store.topology(ColumnId::kDiskSystem)->as_u32();
    const auto disk_install = store.topology(ColumnId::kDiskInstall)->as_f64();
    const auto disk_remove = store.topology(ColumnId::kDiskRemove)->as_f64();

    // Cohort keys come from systems, exactly as the monolithic writer's
    // family maps do; += on disks below would miss no key (every system
    // owns at least one disk) but try_emplace keeps the contract explicit.
    for (std::size_t i = 0; i < sys_class.size(); ++i) {
      const auto cls = static_cast<std::size_t>(
          model::index_of(static_cast<model::SystemClass>(sys_class[i])));
      const char family = static_cast<char>(sys_family[i]);
      ++exp.class_system_count[cls];
      exp.family_disk_years.try_emplace(family, 0.0);
      exp.class_family_disk_years.try_emplace(
          {static_cast<std::uint8_t>(cls), family}, 0.0);
    }

    if (info.disks_initial > disk_system.size()) {
      return make_error(ErrorCode::kBadValue,
                        std::string("initial disk count exceeds shard rows in ")
                            .append(info.file));
    }
    for (std::size_t i = 0; i < disk_system.size(); ++i) {
      const std::uint32_t sys = disk_system[i];
      const auto cls = static_cast<std::size_t>(
          model::index_of(static_cast<model::SystemClass>(sys_class[sys])));
      const char family = static_cast<char>(sys_family[sys]);
      if (i >= info.disks_initial) {
        replacements.push_back(Replacement{disk_install[i], disk_remove[i],
                                           static_cast<std::uint8_t>(cls), family});
        continue;
      }
      const double years = exposure_years(disk_install[i], disk_remove[i]);
      exp.total_disk_years += years;
      exp.class_disk_years[cls] += years;
      exp.family_disk_years[family] += years;
      exp.class_family_disk_years[{static_cast<std::uint8_t>(cls), family}] += years;
    }
  }

  for (const auto& r : replacements) {
    const double years = exposure_years(r.install, r.remove);
    exp.total_disk_years += years;
    exp.class_disk_years[r.cls] += years;
    exp.family_disk_years[r.family] += years;
    exp.class_family_disk_years[{r.cls, r.family}] += years;
  }

  *exposure = std::move(exp);
  *meta = merged;
  return Error{};
}

Error ShardStore::open(const std::string& dir) {
  obs::Span span("store.shards.open");
  dir_ = dir;
  std::string text;
  if (Error err = read_file(shard_path(dir, std::string(kManifestFileName)), &text);
      !err.ok()) {
    return err;
  }
  if (Error err = parse_manifest(text, &manifest_); !err.ok()) return err;

  // Cheap cross-check of every shard file: it must exist, have the recorded
  // size, and its header must both CRC-match the manifest entry and agree
  // with the entry's counts. Full column validation is deferred to
  // ensure_open.
  for (const auto& info : manifest_.shards) {
    const std::string path = shard_path(dir, info.file);
    std::uint64_t size = 0;
    std::uint32_t header_crc = 0;
    std::array<char, kHeaderSize> head{};
    if (Error err = probe_shard_file(path, &size, &header_crc, &head); !err.ok()) {
      return err;
    }
    if (size != info.file_size) {
      return make_error(ErrorCode::kTruncated,
                        std::string("shard size differs from MANIFEST: ").append(path));
    }
    if (header_crc != info.header_crc) {
      return make_error(ErrorCode::kChecksum,
                        std::string("shard header crc differs from MANIFEST: ").append(path));
    }
    Header header;
    if (Error err = parse_header(head.data(), head.size(), &header); !err.ok()) {
      return err;
    }
    if (header.system_count != info.systems || header.shelf_count != info.shelves ||
        header.disk_count != info.disks_total ||
        header.raid_group_count != info.raid_groups ||
        header.event_count != info.events || header.seed != manifest_.seed) {
      return make_error(ErrorCode::kBadValue,
                        std::string("shard header disagrees with MANIFEST: ").append(path));
    }
  }

  shards_.clear();
  shards_.resize(manifest_.shards.size());
  return Error{};
}

Error ShardStore::ensure_open(std::size_t i) const {
  if (shards_[i] != nullptr) return Error{};
  auto store = std::make_unique<EventStore>();
  const std::string path = shard_path(dir_, manifest_.shards[i].file);
  if (Error err = store->open(path); !err.ok()) {
    // Lazy validation fails long after open(); name the shard so the error
    // points at the file to inspect, keeping the code and offset intact.
    std::string detail("shard ");
    detail.append(path).append(": ").append(err.detail);
    return make_error(err.code, detail, err.offset);
  }
  shards_[i] = std::move(store);
  return Error{};
}

std::size_t ShardStore::open_count() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    if (shard != nullptr) ++n;
  }
  return n;
}

Error ShardStore::open_all() const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (Error err = ensure_open(i); !err.ok()) return err;
  }
  return Error{};
}

const EventStore& ShardStore::shard_checked(std::size_t i) const {
  // ensure_open already names the failing shard's path in the error detail.
  if (Error err = ensure_open(i); !err.ok()) {
    throw std::runtime_error(err.describe());
  }
  return *shards_[i];
}

}  // namespace storsubsim::store
