// Memory-mapped store reader: validation, zero-copy column views, and the
// cached per-shard event views that the query engine and core overloads
// consume.
//
// EventStore::open performs *all* integrity checking up front — header and
// footer CRCs, column directory bounds/alignment/row arithmetic, per-column
// CRC32, varint decode, and domain validation of every enum and id value.
// After a successful open, every accessor is plain span arithmetic: no
// check can fail later, and a corrupted or truncated file can never reach
// undefined behavior (it is rejected with a typed Error instead).
//
// Lifetime rule: every ColumnView/EventView aliases the mapping owned by
// the EventStore (decoded time values alias an internal cache). Views must
// not outlive the store, and the store is pinned in memory (non-movable)
// so views taken once stay valid for its whole life.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "log/snapshot.h"
#include "model/enums.h"
#include "store/format.h"
#include "store/mmap_file.h"
#include "store/writer.h"

namespace storsubsim::store {

/// One validated column: raw bytes plus decoded typing. Spans alias the
/// mapping; `as_u32`/`as_f64` require the 8-byte alignment the writer
/// guarantees (verified during open).
struct ColumnView {
  ColumnId id = ColumnId::kEventTime;
  Encoding encoding = Encoding::kRaw;
  std::uint64_t rows = 0;
  const char* data = nullptr;
  std::size_t size = 0;

  std::span<const std::uint8_t> as_u8() const noexcept {
    return {reinterpret_cast<const std::uint8_t*>(data), static_cast<std::size_t>(rows)};
  }
  std::span<const std::uint32_t> as_u32() const noexcept {
    return {reinterpret_cast<const std::uint32_t*>(data), static_cast<std::size_t>(rows)};
  }
  std::span<const double> as_f64() const noexcept {
    return {reinterpret_cast<const double*>(data), static_cast<std::size_t>(rows)};
  }
};

/// All seven event columns of one system-class shard as parallel spans —
/// the unit the core analyses' store overloads consume. Row i across the
/// spans is one classified failure, in canonical (time, disk, type) order.
struct EventView {
  std::span<const double> time;
  std::span<const std::uint8_t> type;        ///< model::FailureType
  std::span<const std::uint8_t> family;      ///< owning system's disk family
  std::span<const std::uint32_t> disk;
  std::span<const std::uint32_t> system;
  std::span<const std::uint32_t> shelf;
  std::span<const std::uint32_t> raid_group;

  std::size_t size() const noexcept { return time.size(); }
  bool empty() const noexcept { return time.empty(); }
};

/// Footer block-index entry: `rows` canonical-order rows of `shard` starting
/// at shard-relative `row_begin`, with detection times in
/// [time_min, time_max]. Lets time-window queries skip whole blocks.
struct BlockEntry {
  std::uint8_t shard = 0;
  std::uint64_t row_begin = 0;
  std::uint64_t rows = 0;
  double time_min = 0.0;
  double time_max = 0.0;
};

/// Pre-computed disk-year exposure aggregates (see writer.h for the FP
/// contract that makes these bit-identical to Dataset sweeps).
struct ExposureTable {
  double total_disk_years = 0.0;
  std::array<double, kClassCount> class_disk_years{};
  std::array<std::uint64_t, kClassCount> class_system_count{};
  std::map<char, double> family_disk_years;
  std::map<std::pair<std::uint8_t, char>, double> class_family_disk_years;
};

class EventStore {
 public:
  EventStore() = default;

  // Views alias this object's mapping and caches; pin it in place.
  EventStore(const EventStore&) = delete;
  EventStore& operator=(const EventStore&) = delete;
  EventStore(EventStore&&) = delete;
  EventStore& operator=(EventStore&&) = delete;

  /// Maps and fully validates a store file.
  [[nodiscard]] Error open(const std::string& path);

  /// Validates an in-memory image (tests, fuzzing); takes ownership.
  [[nodiscard]] Error open_image(std::string image);

  const Header& header() const noexcept { return header_; }
  const StoreMeta& meta() const noexcept { return meta_; }
  const ExposureTable& exposure() const noexcept { return exposure_; }

  std::uint64_t event_count() const noexcept { return header_.event_count; }
  /// Events of one system class, canonical (time, disk, type) order.
  const EventView& events(model::SystemClass cls) const noexcept {
    return views_[model::index_of(cls)];
  }
  /// This shard's slice of the time-window block index.
  std::span<const BlockEntry> blocks(model::SystemClass cls) const noexcept {
    const auto& range = shard_blocks_[model::index_of(cls)];
    return std::span<const BlockEntry>(blocks_).subspan(range.first, range.second);
  }

  /// A validated topology column (shard kTopologyShard). Never nullptr for
  /// the columns format.h declares — open() verified their presence.
  const ColumnView* topology(ColumnId id) const noexcept {
    const auto it = columns_.find({kTopologyShard, static_cast<std::uint16_t>(id)});
    return it == columns_.end() ? nullptr : &it->second;
  }

  /// A validated event column of one class shard, raw encoded bytes included
  /// (decode benchmarks and kernel differential tests). Never nullptr for
  /// the event columns format.h declares — open() verified their presence.
  const ColumnView* event_column(model::SystemClass cls, ColumnId id) const noexcept {
    const auto it = columns_.find({static_cast<std::uint8_t>(model::index_of(cls)),
                                   static_cast<std::uint16_t>(id)});
    return it == columns_.end() ? nullptr : &it->second;
  }

  /// Reconstructs the full joined inventory from the topology columns.
  /// Entry i of each vector has dense id i, exactly as parse_snapshot
  /// produces, so a Dataset built from it matches the pipeline's.
  log::Inventory rebuild_inventory() const;

 private:
  [[nodiscard]] Error load();

  MmapFile file_;
  std::string owned_image_;             ///< backing bytes for open_image
  std::vector<std::uint64_t> aligned_;  ///< realigned copy if the heap image needs it
  const char* data_ = nullptr;
  std::size_t size_ = 0;

  Header header_;
  StoreMeta meta_;
  ExposureTable exposure_;
  std::vector<BlockEntry> blocks_;
  std::array<std::pair<std::size_t, std::size_t>, kClassCount> shard_blocks_{};

  std::map<std::pair<std::uint8_t, std::uint16_t>, ColumnView> columns_;
  std::array<std::vector<double>, kClassCount> times_;
  std::array<EventView, kClassCount> views_{};
};

}  // namespace storsubsim::store
