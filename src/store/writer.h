// Serializes one completed pipeline run into a columnar store file.
//
// The writer owns the determinism contract of docs/STORE.md: given the same
// inventory, events, and meta block, the produced byte image is identical
// regardless of thread count or host. Events are canonicalized into the
// classifier's global (time, disk, type) order, partitioned into one shard
// per system class, and each shard's columns are encoded concurrently
// through util::parallel_for — workers write disjoint per-shard buffers that
// are concatenated in class order, so the fan-out never reaches the bytes.
//
// The footer additionally carries a pre-computed exposure table (total,
// per-class, per-family, per-class-and-family disk-years). Each entry is
// accumulated by its own sweep over disks in id order — the exact iteration
// order Dataset::disk_exposure_years uses — so AFR tables computed from a
// store reproduce the in-memory pipeline bit for bit, FP rounding included.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "log/classifier.h"
#include "log/snapshot.h"
#include "store/format.h"

namespace storsubsim::store {

/// Provenance and pipeline counters preserved in the footer's meta block so
/// a store-backed rerun can report the same statistics as the run that
/// produced it. Plain integers only: the store layer must not depend on
/// sim/ or core/, so the bridging from SimCounters/PipelineStats lives in
/// core/store_bridge.
struct StoreMeta {
  std::array<std::uint64_t, kClassCount> sim_events_by_type{};
  std::uint64_t sim_replacements = 0;
  std::uint64_t sim_triggered_disk_failures = 0;
  std::uint64_t sim_shelf_faults = 0;
  std::uint64_t sim_path_faults = 0;
  std::uint64_t sim_masked_path_faults = 0;
  std::uint64_t log_lines_written = 0;
  std::uint64_t log_lines_parsed = 0;
  std::uint64_t raid_records = 0;
  std::uint64_t failures_classified = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t missing_disk_dropped = 0;

  friend bool operator==(const StoreMeta&, const StoreMeta&) = default;
};

/// Everything that goes into one store file. `inventory` and `events` are
/// borrowed for the duration of the call; events may arrive in any order
/// (the writer canonicalizes) but every event must reference a disk and
/// system present in the inventory.
struct StoreContents {
  const log::Inventory* inventory = nullptr;
  std::span<const log::ClassifiedFailure> events;
  StoreMeta meta;
  std::uint64_t seed = 0;
  double scale = 1.0;
};

/// Builds the complete file image in memory. Deterministic: byte-identical
/// across thread counts and rebuilds from the same inputs.
[[nodiscard]] Error build_store_image(const StoreContents& contents, std::string* image);

/// build_store_image + atomic-ish write (whole image in one stream).
[[nodiscard]] Error write_store_file(const std::string& path, const StoreContents& contents);

}  // namespace storsubsim::store
