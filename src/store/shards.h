// Sharded store directories: the bounded-memory form of a store.
//
// A shard directory holds N standalone STORCOL1 files ("shard-0000.store",
// ...) plus a CRC-protected text MANIFEST. Each shard covers a contiguous
// global system range [sys_begin, sys_end) of the fleet and stores
// *chunk-local* dense ids (every shard is a valid store file on its own);
// the MANIFEST records the per-shard counts from which global id bases are
// derived, the merged exposure table (bit-identical to the footer a
// monolithic store of the whole fleet would carry), and the merged pipeline
// counters — so analyses over the directory reproduce the single-file
// answers byte for byte without ever materializing the whole fleet.
//
// Global id rebasing contract (docs/STORE.md): the monolithic fleet's disk
// vector is [every shard's initial disks, in shard order] followed by
// [every shard's replacement disks, in shard order] — replacements are
// appended after all initial disks, and the serial replacement replay walks
// shelves in global order, which groups by shard. A shard-local disk id L
// therefore globalizes as
//
//   L <  disks_initial : disk_base + L
//   L >= disks_initial : total_disks_initial + replacement_base
//                        + (L - disks_initial)
//
// while systems/shelves/raid groups globalize by plain base offsets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"

namespace storsubsim::store {

inline constexpr std::string_view kManifestMagic = "STORSHARD1";
inline constexpr std::string_view kManifestFileName = "MANIFEST";
inline constexpr std::uint32_t kManifestVersion = 1;

/// One shard's MANIFEST entry. The count fields are written to disk; the
/// base fields are derived prefix sums, filled in by parse_manifest.
struct ShardInfo {
  std::string file;  ///< file name relative to the shard directory
  std::uint64_t file_size = 0;
  std::uint32_t header_crc = 0;  ///< crc32 of the shard's kHeaderSize-byte header
  std::uint64_t sys_begin = 0;   ///< global system range this shard covers
  std::uint64_t sys_end = 0;
  std::uint64_t systems = 0;
  std::uint64_t shelves = 0;
  std::uint64_t raid_groups = 0;
  std::uint64_t disks_initial = 0;  ///< initial disks (STORCOL1 stores only the total)
  std::uint64_t disks_total = 0;    ///< initial + replacement disk records
  std::uint64_t events = 0;

  // Derived global bases (prefix sums over preceding shards).
  std::uint64_t system_base = 0;
  std::uint64_t shelf_base = 0;
  std::uint64_t raid_group_base = 0;
  std::uint64_t disk_base = 0;         ///< global id of the first initial disk
  std::uint64_t replacement_base = 0;  ///< replacement records in earlier shards
};

/// The parsed MANIFEST: run provenance, fleet totals, merged pipeline
/// counters, the merged exposure table, and the shard list.
struct ShardManifest {
  std::uint32_t version = kManifestVersion;
  std::uint64_t seed = 0;
  double scale = 1.0;
  double horizon_seconds = 0.0;
  std::uint64_t systems = 0;
  std::uint64_t shelves = 0;
  std::uint64_t disks_initial = 0;
  std::uint64_t disks_total = 0;
  std::uint64_t raid_groups = 0;
  std::uint64_t events = 0;
  std::uint64_t peak_rss_bytes = 0;  ///< of the build that produced the directory
  StoreMeta meta;                    ///< field-wise sum over shards
  ExposureTable exposure;            ///< merged; bit-identical to monolithic
  std::vector<ShardInfo> shards;
};

/// Renders the MANIFEST text, including the trailing CRC line. Doubles are
/// written as their u64 bit patterns in hex so the round trip is bit-exact.
std::string render_manifest(const ShardManifest& manifest);

/// Parses and CRC-checks a MANIFEST image, deriving the per-shard bases.
/// Truncated, reordered or corrupted input yields a typed Error.
[[nodiscard]] Error parse_manifest(std::string_view text, ShardManifest* out);

/// Writes dir/MANIFEST (render_manifest + one-shot write).
[[nodiscard]] Error write_manifest_file(const std::string& dir, const ShardManifest& manifest);

/// Sequentially opens each shard (full STORCOL1 validation, one shard in
/// memory at a time) and accumulates the merged exposure table and summed
/// meta counters. The accumulation order is the monolithic disk order —
/// every shard's initial block in shard order, then every shard's
/// replacement block in shard order — with one accumulator per cohort, so
/// each cohort's FP addition sequence equals the monolithic writer's
/// per-cohort sweep and the merged table is bit-identical to a single-file
/// store of the whole fleet. Fills each shard's file_size/header_crc too.
[[nodiscard]] Error merge_shard_tables(const std::string& dir, std::vector<ShardInfo>* shards,
                         double horizon_seconds, ExposureTable* exposure,
                         StoreMeta* meta);

/// An opened shard directory. open() validates the MANIFEST and cheaply
/// cross-checks every shard file (existence, size, header CRC and header
/// fields against the manifest entry); the expensive full-file validation
/// happens per shard on first access (lazy mmap) or all at once via
/// open_all().
class ShardStore {
 public:
  ShardStore() = default;

  // Shard EventStores pin mapped views; pin the owner too.
  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;
  ShardStore(ShardStore&&) = delete;
  ShardStore& operator=(ShardStore&&) = delete;

  /// Reads dir/MANIFEST and cross-checks the shard files. No shard is fully
  /// opened yet.
  [[nodiscard]] Error open(const std::string& dir);

  /// Opens and fully validates every shard now (analysis paths that will
  /// touch all shards anyway).
  [[nodiscard]] Error open_all() const;

  const std::string& directory() const noexcept { return dir_; }
  const ShardManifest& manifest() const noexcept { return manifest_; }
  std::size_t shard_count() const noexcept { return manifest_.shards.size(); }
  const ShardInfo& info(std::size_t i) const noexcept { return manifest_.shards[i]; }

  /// Fully opens shard i if it is not open yet. Const because lazy opening
  /// is a caching concern: the observable directory contents never change.
  /// A shard failing validation on first touch reports its path in the
  /// typed error, so a mid-analysis failure names the offending file.
  [[nodiscard]] Error ensure_open(std::size_t i) const;
  bool is_open(std::size_t i) const noexcept { return shards_[i] != nullptr; }
  /// Shards currently held open (mmap + validated).
  std::size_t open_count() const noexcept;

  // --- explicit open/close hooks (the storsimd shard LRU drives these) -----
  /// ensure_open under its cache-management name: maps + fully validates
  /// shard i, or returns the typed error naming the shard file.
  [[nodiscard]] Error open_shard(std::size_t i) const { return ensure_open(i); }
  /// Drops shard i's mapping (a later open_shard revalidates and remaps).
  /// The caller must guarantee no live views into the shard — serve::ShardLru
  /// only releases shards whose pin count is zero.
  void release_shard(std::size_t i) const noexcept { shards_[i].reset(); }
  /// Requires a successful ensure_open(i) / open_all().
  const EventStore& shard(std::size_t i) const noexcept { return *shards_[i]; }
  /// Lazily opens and returns shard i, throwing std::runtime_error if the
  /// shard fails validation. For analysis paths whose signatures have no
  /// Error channel; prefer ensure_open + shard where an Error can surface.
  const EventStore& shard_checked(std::size_t i) const;

  // --- global id rebasing (see header comment) -----------------------------
  std::uint64_t global_system(std::size_t i, std::uint32_t local) const noexcept {
    return manifest_.shards[i].system_base + local;
  }
  std::uint64_t global_shelf(std::size_t i, std::uint32_t local) const noexcept {
    return manifest_.shards[i].shelf_base + local;
  }
  std::uint64_t global_raid_group(std::size_t i, std::uint32_t local) const noexcept {
    if (local == kInvalidId) return kInvalidId;
    return manifest_.shards[i].raid_group_base + local;
  }
  std::uint64_t global_disk(std::size_t i, std::uint32_t local) const noexcept {
    const ShardInfo& s = manifest_.shards[i];
    if (local < s.disks_initial) return s.disk_base + local;
    return manifest_.disks_initial + s.replacement_base + (local - s.disks_initial);
  }

  static constexpr std::uint32_t kInvalidId = 0xffffffffu;

 private:
  std::string dir_;
  ShardManifest manifest_;
  // Lazy-open cache (see ensure_open); mutable so const readers can fault
  // shards in. Not synchronized — open shards before sharing across threads.
  mutable std::vector<std::unique_ptr<EventStore>> shards_;
};

}  // namespace storsubsim::store
