// Figure 4 — AFR for storage subsystems in four system classes, broken down
// by failure type; panel (a) includes the problematic disk family H, panel
// (b) excludes it.
//
// Reproduces Findings 1 and 2: disk failures contribute only 20-55% of
// storage subsystem failures (physical interconnects 27-68%, protocol 5-10%,
// performance 4-8%), and near-line systems have worse disks but a *better*
// subsystem AFR than low-end systems.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.h"
#include "core/afr.h"

namespace {

using namespace storsubsim;
using model::FailureType;

// Approximate values read from the paper's Figure 4(b) bars and prose.
struct PaperRef {
  double disk, pi, total;
};
const PaperRef kPaperFig4b[4] = {
    {1.9, 0.93, 3.4},   // near-line
    {0.9, 2.4, 4.6},    // low-end
    {0.85, 1.5, 3.2},   // mid-range (bar-read approximation)
    {0.8, 1.7, 3.0},    // high-end (bar-read approximation)
};

void panel(const core::Dataset& ds, const char* title, bool with_paper,
           const bench::Options& options) {
  std::cout << title << "\n";
  std::vector<std::string> headers = {"class",       "disk",      "phys-interconnect",
                                      "protocol",    "performance", "total AFR",
                                      "disk share",  "PI share"};
  if (with_paper) headers.push_back("paper disk/PI/total");
  core::TextTable table(std::move(headers));
  for (const auto& b : core::afr_by_class(core::Source(ds))) {
    std::vector<std::string> row = {
        b.label,
        bench::afr_cell(b, FailureType::kDisk),
        bench::afr_cell(b, FailureType::kPhysicalInterconnect),
        bench::afr_cell(b, FailureType::kProtocol),
        bench::afr_cell(b, FailureType::kPerformance),
        core::fmt(b.total_afr_pct(), 2),
        core::fmt_pct(b.share(FailureType::kDisk), 0),
        core::fmt_pct(b.share(FailureType::kPhysicalInterconnect), 0),
    };
    if (with_paper) {
      std::size_t idx = 0;
      for (const auto cls : model::kAllSystemClasses) {
        if (b.label == model::to_string(cls)) idx = model::index_of(cls);
      }
      const auto& p = kPaperFig4b[idx];
      row.push_back(core::fmt(p.disk, 2) + "/" + core::fmt(p.pi, 2) + "/" +
                    core::fmt(p.total, 1));
    }
    table.add_row(std::move(row));
  }
  bench::print_table(std::cout, table, options);
}

void report(const bench::Options& options) {
  const auto& sd = bench::standard_dataset(options);
  bench::print_banner(std::cout,
                      "Figure 4: AFR by system class, broken down by failure type", options,
                      sd);
  panel(sd.dataset, "(a) including storage subsystems using Disk H", false, options);
  core::Filter no_h;
  no_h.exclude_family_h = true;
  panel(sd.dataset.filter(no_h), "(b) excluding storage subsystems using Disk H "
                                 "(paper columns: Figure 4(b) reference)",
        true, options);
  std::cout << "Finding 1 check: disk failures are not always dominant; interconnects carry "
               "a comparable or larger share in the primary classes.\n"
            << "Finding 2 check: near-line disk AFR > low-end disk AFR while near-line "
               "subsystem AFR < low-end subsystem AFR.\n";
}

void BM_AfrByClass(benchmark::State& state) {
  const auto sd = core::simulate_and_analyze(
      model::standard_fleet_config(bench::kTimingScale, 1));
  core::Filter no_h;
  no_h.exclude_family_h = true;
  for (auto _ : state) {
    const auto cohort = sd.dataset.filter(no_h);
    const auto rows = core::afr_by_class(core::Source(cohort));
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_AfrByClass)->Unit(benchmark::kMillisecond);

void BM_FilterExcludeH(benchmark::State& state) {
  const auto sd = core::simulate_and_analyze(
      model::standard_fleet_config(bench::kTimingScale, 1));
  core::Filter no_h;
  no_h.exclude_family_h = true;
  for (auto _ : state) {
    const auto filtered = sd.dataset.filter(no_h);
    benchmark::DoNotOptimize(filtered.events().size());
  }
}
BENCHMARK(BM_FilterExcludeH)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  if (options.run_benchmarks) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  report(options);
  bench::finish_run("bench/fig4_afr_by_class", options);
  return 0;
}
