// Figure 9 — Empirical CDFs of time between failures within a shelf (panel
// a) and within a RAID group (panel b), per failure type and overall, plus
// the Exponential/Gamma/Weibull fits to disk-failure interarrivals.
//
// Reproduces Findings 8-10: physical interconnect / protocol / performance
// failures are far burstier than disk failures; ~48% of consecutive
// subsystem failures in a shelf arrive within 10^4 s vs ~30% in a RAID
// group; the Gamma is the best-fitting distribution for disk-failure
// interarrivals while the bursty types fit no common distribution.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.h"
#include "core/burstiness.h"
#include "core/distribution_fit.h"
#include "stats/ecdf.h"

namespace {

using namespace storsubsim;
using model::FailureType;

void cdf_panel(const core::Dataset& ds, core::Scope scope, const char* title,
               const bench::Options& options) {
  const auto result = core::time_between_failures(core::Source(ds), scope);
  std::cout << title << "\n";

  const auto grid = stats::log_grid(1.0, 1e8, 9);
  core::TextTable table({"gap <= (s)", "disk", "phys-interconnect", "protocol", "performance",
                         "overall"});
  std::array<stats::Ecdf, core::kSeriesCount> ecdfs;
  for (std::size_t s = 0; s < core::kSeriesCount; ++s) ecdfs[s] = result.ecdf(s);
  for (const double x : grid) {
    table.add_row({core::fmt(x, 0), core::fmt(ecdfs[0](x), 3), core::fmt(ecdfs[1](x), 3),
                   core::fmt(ecdfs[2](x), 3), core::fmt(ecdfs[3](x), 3),
                   core::fmt(ecdfs[4](x), 3)});
  }
  bench::print_table(std::cout, table, options);

  std::cout << "fraction of gaps within 10,000 s: overall "
            << core::fmt_pct(result.fraction_within(core::kOverallSeries, 1e4), 0);
  for (const auto type : model::kAllFailureTypes) {
    std::cout << ", " << model::to_string(type) << " "
              << core::fmt_pct(result.fraction_within(core::series_of(type), 1e4), 0);
  }
  std::cout << "\n(paper: ~48% overall within a shelf, ~30% within a RAID group; "
               "interconnect burstiest, disk flattest)\n\n";
}

void fits_panel(const core::Dataset& ds, const bench::Options& options) {
  const auto shelf = core::time_between_failures(core::Source(ds), core::Scope::kShelf);
  std::cout << "Distribution fits to per-shelf interarrival gaps "
               "(chi-square GoF on a 150-sample cap; see EXPERIMENTS.md on test power)\n";
  core::TextTable table({"failure type", "family", "param1 (rate/shape)", "param2 (scale)",
                         "log-likelihood", "GoF p-value", "rejected@0.05", "best by ll"});
  for (const auto type : model::kAllFailureTypes) {
    const auto& gaps = shelf.gaps[core::series_of(type)];
    if (gaps.size() < 100) continue;
    const auto report = core::fit_interarrivals(gaps, 15, 150);
    const auto& best = report.best_by_likelihood();
    for (const auto& c : report.candidates) {
      table.add_row({std::string(model::to_string(type)), core::to_string(c.family),
                     core::fmt(c.fit.param1, 4), core::fmt(c.fit.param2, 0),
                     core::fmt(c.fit.log_likelihood, 0), core::fmt(c.gof.p_value, 4),
                     c.rejected_at_005 ? "yes" : "no",
                     (&c == &best) ? "<== best" : ""});
    }
  }
  bench::print_table(std::cout, table, options);
  std::cout << "Paper: the Gamma distribution is the best fit for disk failures (only "
               "candidate not rejected at 0.05); none of the common distributions fit the "
               "bursty failure types.\n";
}

void per_class_panel(const core::Dataset& ds, const bench::Options& options) {
  // Paper: "We repeated this analysis using data broken down by system
  // classes and shelf enclosure models. In all cases, similar patterns and
  // trends were observed."
  std::cout << "Per-class check: fraction of gaps within 10,000 s\n";
  core::TextTable table({"class", "shelf overall", "shelf interconnect", "shelf disk",
                         "group overall"});
  for (const auto cls : model::kAllSystemClasses) {
    core::Filter f;
    f.system_class = cls;
    const auto cohort = ds.filter(f);
    if (cohort.selected_system_count() == 0) continue;
    const core::Source source(cohort);
    const auto shelf = core::time_between_failures(source, core::Scope::kShelf);
    const auto group = core::time_between_failures(source, core::Scope::kRaidGroup);
    table.add_row(
        {std::string(model::to_string(cls)),
         core::fmt_pct(shelf.fraction_within(core::kOverallSeries, 1e4), 0),
         core::fmt_pct(
             shelf.fraction_within(core::series_of(FailureType::kPhysicalInterconnect), 1e4),
             0),
         core::fmt_pct(shelf.fraction_within(core::series_of(FailureType::kDisk), 1e4), 0),
         core::fmt_pct(group.fraction_within(core::kOverallSeries, 1e4), 0)});
  }
  bench::print_table(std::cout, table, options);
}

void report(const bench::Options& options) {
  const auto& sd = bench::standard_dataset(options);
  bench::print_banner(std::cout, "Figure 9: CDFs of time between failures", options, sd);
  cdf_panel(sd.dataset, core::Scope::kShelf, "(a) failure distribution within a shelf",
            options);
  cdf_panel(sd.dataset, core::Scope::kRaidGroup,
            "(b) failure distribution within a RAID group", options);
  fits_panel(sd.dataset, options);
  per_class_panel(sd.dataset, options);
}

void BM_TimeBetweenFailures(benchmark::State& state) {
  const auto sd = core::simulate_and_analyze(
      model::standard_fleet_config(bench::kTimingScale, 1));
  for (auto _ : state) {
    const auto r = core::time_between_failures(
        core::Source(sd.dataset),
        state.range(0) == 0 ? core::Scope::kShelf : core::Scope::kRaidGroup);
    benchmark::DoNotOptimize(r.gap_count(core::kOverallSeries));
  }
}
BENCHMARK(BM_TimeBetweenFailures)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_DistributionFits(benchmark::State& state) {
  const auto sd = core::simulate_and_analyze(
      model::standard_fleet_config(bench::kTimingScale, 1));
  const auto shelf = core::time_between_failures(core::Source(sd.dataset), core::Scope::kShelf);
  const auto& gaps = shelf.gaps[core::kOverallSeries];
  for (auto _ : state) {
    const auto report = core::fit_interarrivals(gaps, 15, 150);
    benchmark::DoNotOptimize(report.candidates.size());
  }
}
BENCHMARK(BM_DistributionFits)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  if (options.run_benchmarks) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  report(options);
  bench::finish_run("bench/fig9_tbf_cdf", options);
  return 0;
}
