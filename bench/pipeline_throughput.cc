// Emit+parse throughput: zero-allocation hot path vs the legacy path.
//
// Measures the text-log round-trip (emit -> parse -> classify) two ways over
// the same simulated failure set, single-threaded:
//
//   * legacy — the pre-optimization implementation, kept verbatim in
//     `namespace legacy` below: `std::ostringstream` line rendering, chained
//     `std::string operator+` message building, and getline-based parsing
//     into owning records (one-plus heap allocation per line on each side);
//   * fast   — the shipped hot path: `log::LineWriter` buffered emission and
//     `log::parse_text` view-based parsing over the retained buffer.
//
// Both paths must produce byte-identical log text and an identical classified
// failure list (the program exits nonzero otherwise), so the speedup is
// apples-to-apples. Results go to BENCH_pipeline.json.
//
//   pipeline_throughput [--scale=<f>] [--seed=<n>] [--repeat=<n>] [--out=<path>]
//                       [--metrics] [--trace=<path>]
//
// --repeat keeps the fastest of n runs per stage (min-of-N). --metrics and
// --trace turn the full observability stack on; tools/run_checks.sh runs the
// harness with and without them and gates the overhead at <2%.
#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "log/classifier.h"
#include "obs/obs.h"
#include "log/emitter.h"
#include "log/line_writer.h"
#include "log/parser.h"
#include "model/fleet.h"
#include "model/fleet_config.h"
#include "sim/log_bridge.h"
#include "sim/simulator.h"
#include "util/parallel.h"

namespace {

using namespace storsubsim;

// --------------------------------------------------------------------------
// The pre-optimization implementation, verbatim. Do not modernize: this IS
// the baseline being measured.
namespace legacy {

using model::FailureType;

log::LogRecord make(double t, std::string code, log::Severity sev,
                    const log::EmittableFailure& f, std::string message) {
  log::LogRecord r;
  r.time = t;
  r.code = std::move(code);
  r.severity = sev;
  r.disk = f.disk;
  r.system = f.system;
  r.message = std::move(message);
  return r;
}

std::vector<log::LogRecord> propagation_chain(const log::EmittableFailure& f) {
  std::vector<log::LogRecord> chain;
  const double t = f.detect_time;
  const std::string& dev = f.device_address;
  const std::string adapter = dev.substr(0, dev.find('.'));

  switch (f.type) {
    case FailureType::kPhysicalInterconnect:
      chain.push_back(make(t - 166.0, "fci.device.timeout", log::Severity::kError, f,
                           "Adapter " + adapter + " encountered a device timeout on device " +
                               dev));
      chain.push_back(make(t - 152.0, "fci.adapter.reset", log::Severity::kInfo, f,
                           "Resetting Fibre Channel adapter " + adapter + "."));
      chain.push_back(make(t - 152.0, "scsi.cmd.abortedByHost", log::Severity::kError, f,
                           "Device " + dev + ": Command aborted by host adapter"));
      chain.push_back(make(t - 130.0, "scsi.cmd.selectionTimeout", log::Severity::kError, f,
                           "Device " + dev +
                               ": Adapter/target error: Targeted device did not respond to "
                               "requested I/O. I/O will be retried."));
      chain.push_back(make(t - 120.0, "scsi.cmd.noMorePaths", log::Severity::kError, f,
                           "Device " + dev + ": No more paths to device. All retries have "
                                             "failed."));
      chain.push_back(make(t, "raid.config.filesystem.disk.missing", log::Severity::kInfo, f,
                           "File system Disk " + dev + " S/N [" + f.serial + "] is missing."));
      break;

    case FailureType::kDisk:
      chain.push_back(make(t - 240.0, "disk.ioMediumError", log::Severity::kError, f,
                           "Device " + dev + ": medium error during read, sector remap "
                                             "attempted."));
      chain.push_back(make(t - 90.0, "scsi.cmd.checkCondition", log::Severity::kError, f,
                           "Device " + dev + ": check condition: hardware error, internal "
                                             "target failure."));
      chain.push_back(make(t, "raid.config.disk.failed", log::Severity::kError, f,
                           "Disk " + dev + " S/N [" + f.serial +
                               "] failed; marked for reconstruction."));
      break;

    case FailureType::kProtocol:
      chain.push_back(make(t - 75.0, "scsi.cmd.protocolViolation", log::Severity::kError, f,
                           "Device " + dev + ": unexpected response for tagged command; "
                                             "protocol violation suspected."));
      chain.push_back(make(t - 30.0, "scsi.cmd.retryExhausted", log::Severity::kError, f,
                           "Device " + dev + ": command retries exhausted; responses remain "
                                             "inconsistent."));
      chain.push_back(make(t, "raid.disk.protocol.error", log::Severity::kError, f,
                           "Disk " + dev + " S/N [" + f.serial +
                               "] visible but I/O requests are not correctly responded."));
      break;

    case FailureType::kPerformance:
      chain.push_back(make(t - 420.0, "scsi.cmd.slowResponse", log::Severity::kWarning, f,
                           "Device " + dev + ": request latency exceeds service threshold."));
      chain.push_back(make(t - 200.0, "scsi.cmd.slowResponse", log::Severity::kWarning, f,
                           "Device " + dev + ": request latency exceeds service threshold."));
      chain.push_back(make(t, "raid.disk.timeout.slow", log::Severity::kWarning, f,
                           "Disk " + dev + " S/N [" + f.serial +
                               "] cannot serve I/O requests in a timely manner."));
      break;
  }
  return chain;
}

std::string render_timestamp(double sim_seconds) {
  const double clamped = std::max(0.0, sim_seconds);
  const long total = std::lround(std::floor(clamped));
  const long days = total / 86400;
  const long hours = (total % 86400) / 3600;
  const long mins = (total % 3600) / 60;
  const long secs = total % 60;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "D%04ld %02ld:%02ld:%02ld", days, hours, mins, secs);
  return buf;
}

std::string render_line(const log::LogRecord& r) {
  std::ostringstream os;
  os << render_timestamp(r.time) << " t=" << std::fixed;
  os.precision(3);
  os << r.time << " [" << r.code << ":" << log::to_string(r.severity) << "]";
  os << " [sys=" << (r.system.valid() ? std::to_string(r.system.value()) : std::string("-"))
     << " disk=" << (r.disk.valid() ? std::to_string(r.disk.value()) : std::string("-"))
     << "]: " << r.message;
  return os.str();
}

std::string device_address(const model::Fleet& fleet, model::DiskId disk) {
  const auto& record = fleet.disk(disk);
  const auto& shelf = fleet.shelf(record.shelf);
  return std::to_string(shelf.index_in_system + 1) + "." + std::to_string(record.slot + 16);
}

std::size_t write_failure_logs(std::ostream& out, const model::Fleet& fleet,
                               std::span<const sim::SimFailure> failures) {
  std::size_t lines = 0;
  for (const auto& f : failures) {
    log::EmittableFailure e;
    e.detect_time = f.detect_time;
    e.type = f.type;
    e.disk = f.disk;
    e.system = f.system;
    e.device_address = device_address(fleet, f.disk);
    e.serial = model::serial_for(f.disk);
    // Qualified: ADL would otherwise also find the shipped overloads.
    for (const auto& record : legacy::propagation_chain(e)) {
      out << legacy::render_line(record) << '\n';
      ++lines;
    }
  }
  return lines;
}

std::optional<std::uint32_t> parse_id_attr(std::string_view text, std::string_view name) {
  const auto pos = text.find(name);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view rest = text.substr(pos + name.size());
  if (rest.starts_with("-")) return model::Id<model::DiskTag>::kInvalid;
  std::uint32_t value = 0;
  const auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), value);
  if (ec != std::errc{} || ptr == rest.data()) return std::nullopt;
  return value;
}

std::optional<log::LogRecord> parse_line(std::string_view line) {
  const auto t_pos = line.find(" t=");
  if (t_pos == std::string_view::npos) return std::nullopt;

  log::LogRecord record;
  {
    std::string_view rest = line.substr(t_pos + 3);
    double t = 0.0;
    const auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), t);
    if (ec != std::errc{}) return std::nullopt;
    record.time = t;
    line = std::string_view(ptr, static_cast<std::size_t>(rest.data() + rest.size() - ptr));
  }

  const auto code_open = line.find('[');
  const auto code_close = line.find(']');
  if (code_open == std::string_view::npos || code_close == std::string_view::npos ||
      code_close <= code_open) {
    return std::nullopt;
  }
  {
    std::string_view code_sev = line.substr(code_open + 1, code_close - code_open - 1);
    const auto colon = code_sev.rfind(':');
    if (colon == std::string_view::npos) return std::nullopt;
    record.code = std::string(code_sev.substr(0, colon));
    const auto sev = log::parse_severity(code_sev.substr(colon + 1));
    if (!sev) return std::nullopt;
    record.severity = *sev;
  }

  std::string_view after = line.substr(code_close + 1);
  const auto attr_open = after.find('[');
  const auto attr_close = after.find(']');
  if (attr_open == std::string_view::npos || attr_close == std::string_view::npos ||
      attr_close <= attr_open) {
    return std::nullopt;
  }
  {
    std::string_view attrs = after.substr(attr_open + 1, attr_close - attr_open - 1);
    const auto sys = parse_id_attr(attrs, "sys=");
    const auto disk = parse_id_attr(attrs, "disk=");
    if (!sys || !disk) return std::nullopt;
    record.system = model::SystemId(*sys);
    record.disk = model::DiskId(*disk);
  }

  std::string_view message = after.substr(attr_close + 1);
  if (message.starts_with(": ")) message.remove_prefix(2);
  record.message = std::string(message);
  return record;
}

log::ParseStats parse_stream(std::istream& in, std::vector<log::LogRecord>& out) {
  log::ParseStats stats;
  std::string line;
  while (std::getline(in, line)) {
    ++stats.lines_total;
    if (line.empty() || line[0] == '#') {
      ++stats.lines_skipped;
      continue;
    }
    if (auto record = parse_line(line)) {
      out.push_back(std::move(*record));
      ++stats.lines_parsed;
    } else if (line.find(" t=") != std::string::npos) {
      ++stats.lines_malformed;
    } else {
      ++stats.lines_skipped;
    }
  }
  return stats;
}

}  // namespace legacy
// --------------------------------------------------------------------------

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PathTiming {
  double emit_seconds = 0.0;
  double parse_seconds = 0.0;
  double classify_seconds = 0.0;
};

void keep_min(PathTiming& best, const PathTiming& run, bool first) {
  if (first || run.emit_seconds < best.emit_seconds) best.emit_seconds = run.emit_seconds;
  if (first || run.parse_seconds < best.parse_seconds) best.parse_seconds = run.parse_seconds;
  if (first || run.classify_seconds < best.classify_seconds) {
    best.classify_seconds = run.classify_seconds;
  }
}

bool same_classification(const std::vector<log::ClassifiedFailure>& a,
                         const std::vector<log::ClassifiedFailure>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].disk != b[i].disk || a[i].system != b[i].system ||
        a[i].type != b[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  std::uint64_t seed = 20080226;
  int repeat = 3;
  std::string out_path = "BENCH_pipeline.json";
  bool metrics = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--scale=")) {
      scale = std::stod(std::string(arg.substr(8)));
    } else if (arg.starts_with("--seed=")) {
      seed = std::stoull(std::string(arg.substr(7)));
    } else if (arg.starts_with("--repeat=")) {
      repeat = static_cast<int>(std::stoul(std::string(arg.substr(9))));
    } else if (arg.starts_with("--out=")) {
      out_path = std::string(arg.substr(6));
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg.starts_with("--trace=")) {
      trace_path = std::string(arg.substr(8));
    }
  }
  if (repeat < 1) repeat = 1;
  if (!trace_path.empty()) obs::set_tracing_enabled(true);

  util::set_thread_count(1);  // apples-to-apples single-threaded comparison
  const auto config = model::standard_fleet_config(scale, seed);
  const auto simulation = sim::simulate_fleet(config);
  const auto& fleet = simulation.fleet;
  const auto& failures = simulation.result.failures;
  std::cout << "scale " << scale << ": " << failures.size() << " failures simulated\n";

  PathTiming legacy_best;
  PathTiming fast_best;
  std::string legacy_text;
  std::string fast_text;
  std::vector<log::ClassifiedFailure> legacy_classified;
  std::vector<log::ClassifiedFailure> fast_classified;
  std::size_t lines = 0;

  for (int r = 0; r < repeat; ++r) {
    PathTiming run;

    // Legacy: emit into a stringstream, getline-parse owning records out of
    // it — exactly how the pipeline consumed logs before the rewrite.
    {
      double t0 = now_seconds();
      std::stringstream stream;
      lines = legacy::write_failure_logs(stream, fleet, failures);
      run.emit_seconds = now_seconds() - t0;

      std::vector<log::LogRecord> records;
      t0 = now_seconds();
      legacy::parse_stream(stream, records);
      run.parse_seconds = now_seconds() - t0;

      t0 = now_seconds();
      auto classified = log::classify(records);
      run.classify_seconds = now_seconds() - t0;
      if (r == 0) {
        legacy_text = stream.str();
        legacy_classified = std::move(classified);
      }
    }
    keep_min(legacy_best, run, r == 0);

    // Fast: buffered emission into a LineWriter, view-based parse over the
    // retained buffer, classification on interned ids.
    {
      double t0 = now_seconds();
      log::LineWriter writer(failures.size() * 768);
      const std::size_t fast_lines = sim::write_failure_logs(writer, fleet, failures);
      run.emit_seconds = now_seconds() - t0;
      if (fast_lines != lines) {
        std::cerr << "FAIL: line count mismatch (legacy " << lines << ", fast " << fast_lines
                  << ")\n";
        return 1;
      }

      std::vector<log::LogView> views;
      t0 = now_seconds();
      log::parse_text(writer.view(), views);
      run.parse_seconds = now_seconds() - t0;

      t0 = now_seconds();
      auto classified =
          log::classify(std::span<const log::LogView>(views), log::ClassifierOptions{});
      run.classify_seconds = now_seconds() - t0;
      if (r == 0) {
        fast_text = writer.take();
        fast_classified = std::move(classified);
      }
    }
    keep_min(fast_best, run, r == 0);
  }
  util::set_thread_count(0);

  const bool bytes_identical = legacy_text == fast_text;
  const bool classification_identical = same_classification(legacy_classified, fast_classified);
  const double legacy_ep = legacy_best.emit_seconds + legacy_best.parse_seconds;
  const double fast_ep = fast_best.emit_seconds + fast_best.parse_seconds;
  const double speedup = legacy_ep / fast_ep;

  std::cout << "log lines: " << lines << " (" << fast_text.size() << " bytes)\n"
            << "legacy: emit " << legacy_best.emit_seconds << " s, parse "
            << legacy_best.parse_seconds << " s, classify " << legacy_best.classify_seconds
            << " s  (" << static_cast<double>(lines) / legacy_ep << " lines/s emit+parse)\n"
            << "fast:   emit " << fast_best.emit_seconds << " s, parse "
            << fast_best.parse_seconds << " s, classify " << fast_best.classify_seconds
            << " s  (" << static_cast<double>(lines) / fast_ep << " lines/s emit+parse)\n"
            << "emit+parse speedup: " << speedup << "x\n"
            << "log text " << (bytes_identical ? "byte-identical" : "MISMATCH")
            << ", classification "
            << (classification_identical ? "identical" : "MISMATCH") << "\n";

  std::ofstream out(out_path);
  out << "{\n  \"benchmark\": \"log_pipeline_throughput\",\n"
      << "  \"scale\": " << scale << ",\n  \"seed\": " << seed
      << ",\n  \"repeat\": " << repeat << ",\n  \"threads\": 1,\n"
      << "  \"failures\": " << failures.size() << ",\n  \"log_lines\": " << lines
      << ",\n  \"log_bytes\": " << fast_text.size() << ",\n"
      << "  \"legacy\": {\"emit_seconds\": " << legacy_best.emit_seconds
      << ", \"parse_seconds\": " << legacy_best.parse_seconds
      << ", \"classify_seconds\": " << legacy_best.classify_seconds
      << ", \"emit_parse_lines_per_second\": " << static_cast<double>(lines) / legacy_ep
      << "},\n"
      << "  \"fast\": {\"emit_seconds\": " << fast_best.emit_seconds
      << ", \"parse_seconds\": " << fast_best.parse_seconds
      << ", \"classify_seconds\": " << fast_best.classify_seconds
      << ", \"emit_parse_lines_per_second\": " << static_cast<double>(lines) / fast_ep
      << "},\n"
      << "  \"emit_parse_speedup\": " << speedup << ",\n"
      << "  \"bytes_identical\": " << (bytes_identical ? "true" : "false") << ",\n"
      << "  \"classification_identical\": " << (classification_identical ? "true" : "false")
      << "\n}\n";
  std::cout << "wrote " << out_path << "\n";

  // Provenance manifest next to the result file (BENCH_pipeline.manifest.json).
  obs::RunManifest manifest;
  manifest.tool = "bench/pipeline_throughput";
  manifest.seed = seed;
  manifest.scale = scale;
  manifest.threads = 1;
  manifest.info.emplace_back("out", out_path);
  manifest.numbers.emplace_back("log_lines", static_cast<double>(lines));
  manifest.numbers.emplace_back("legacy_emit_parse_seconds", legacy_ep);
  manifest.numbers.emplace_back("fast_emit_parse_seconds", fast_ep);
  manifest.numbers.emplace_back("emit_parse_speedup", speedup);
  std::string manifest_path = out_path;
  if (manifest_path.ends_with(".json")) {
    manifest_path.resize(manifest_path.size() - 5);
  }
  manifest_path += ".manifest.json";
  if (!obs::write_manifest(manifest_path, manifest)) {
    std::cerr << "cannot write manifest " << manifest_path << "\n";
    return 1;
  }
  if (!trace_path.empty() && !obs::write_trace_json(trace_path)) {
    std::cerr << "cannot write trace " << trace_path << "\n";
    return 1;
  }
  if (metrics) std::cerr << obs::registry().snapshot().to_text();

  return (bytes_identical && classification_identical) ? 0 : 1;
}
