// Ablation — RAID-group shelf span vs failure burstiness and correlation.
//
// The paper's Finding 9 compares span-as-deployed (~3 shelves) against the
// same-shelf baseline. This ablation sweeps the span from 1 (whole group in
// one enclosure) to 7 and regenerates the group-scope burstiness and
// correlation metrics, quantifying the design guidance in the paper's
// conclusion ("spanning a RAID group across multiple shelves can reduce the
// probability of bursty failures").
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.h"
#include "core/burstiness.h"
#include "core/correlation.h"
#include "sim/scenario.h"

namespace {

using namespace storsubsim;

void report(const bench::Options& options) {
  std::cout << "\n================================================================\n"
            << "Ablation: RAID-group shelf span vs burstiness (mid-range cohort)\n"
            << "================================================================\n";
  core::TextTable table({"span (shelves)", "avg realized span", "groups",
                         "group gaps <= 10^4 s", "group PI corr factor",
                         "group overall corr factor", "shelf gaps <= 10^4 s"});
  for (const std::size_t span : {1u, 2u, 3u, 5u, 7u}) {
    auto fs = sim::run_span_ablation(span, 0.6 * options.scale + 0.05, options.seed);
    const auto ds = core::dataset_in_memory(fs.fleet, fs.result);

    double total_span = 0.0;
    for (const auto& g : fs.fleet.raid_groups()) total_span += g.shelf_span();
    const double avg_span =
        total_span / static_cast<double>(fs.fleet.raid_groups().size());

    const core::Source source(ds);
    const auto group_tbf = core::time_between_failures(source, core::Scope::kRaidGroup);
    const auto shelf_tbf = core::time_between_failures(source, core::Scope::kShelf);
    const auto pi = core::failure_correlation(source, core::Scope::kRaidGroup,
                                              model::FailureType::kPhysicalInterconnect);
    // "Overall" correlation: pool every failure type into one stream by
    // reusing the per-type machinery on the dominant type plus the pooled
    // burstiness metric; report the PI factor (the bursty component RAID
    // actually has to survive).
    const auto disk = core::failure_correlation(source, core::Scope::kRaidGroup,
                                                model::FailureType::kDisk);
    table.add_row({std::to_string(span), core::fmt(avg_span, 2),
                   std::to_string(fs.fleet.raid_groups().size()),
                   core::fmt_pct(group_tbf.fraction_within(core::kOverallSeries, 1e4), 1),
                   core::fmt(pi.correlation_factor(), 1) + "x",
                   core::fmt(disk.correlation_factor(), 1) + "x",
                   core::fmt_pct(shelf_tbf.fraction_within(core::kOverallSeries, 1e4), 1)});
  }
  bench::print_table(std::cout, table, options);
  std::cout << "Expected shape: group burstiness falls as the span grows (shelf burstiness "
               "is the span-independent control); the paper's deployed fleet averages "
               "~3 shelves per group.\n";
}

void BM_SpanAblationRun(benchmark::State& state) {
  for (auto _ : state) {
    auto fs = sim::run_span_ablation(static_cast<std::size_t>(state.range(0)), 0.05, 1);
    benchmark::DoNotOptimize(fs.result.failures.size());
  }
}
BENCHMARK(BM_SpanAblationRun)->Arg(1)->Arg(3)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  if (options.run_benchmarks) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  report(options);
  bench::finish_run("bench/ablation_span", options);
  return 0;
}
