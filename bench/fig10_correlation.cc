// Figure 10 — Empirical P(2) vs the theoretical P(2) = P(1)^2/2 predicted
// under failure independence, per failure type, for shelves (panel a) and
// RAID groups (panel b).
//
// Reproduces Finding 11: every failure type violates independence — the
// paper reports empirical P(2) above theory by ~6x for disk failures and
// 10-25x for the other types, confirmed by t-tests at 99.5% confidence.
#include <benchmark/benchmark.h>

#include <iostream>
#include <utility>

#include "common.h"
#include "core/correlation.h"

namespace {

using namespace storsubsim;

void panel(const core::Dataset& ds, core::Scope scope, const char* title,
           const bench::Options& options) {
  std::cout << title << "\n";
  core::TextTable table({"failure type", "windows", "P(1)", "empirical P(2) (99.5% CI)",
                         "theoretical P(2)", "factor", "z", "significant@99.5%",
                         "paper factor"});
  for (const auto& r : core::failure_correlation_all_types(core::Source(ds), scope)) {
    const auto ci = r.empirical_p2_ci(0.995);
    const char* paper_factor = r.type == model::FailureType::kDisk ? "~6x" : "10-25x";
    table.add_row({std::string(model::to_string(r.type)),
                   std::to_string(r.windows_observed), core::fmt(100.0 * r.empirical_p1(), 3),
                   core::fmt(100.0 * r.empirical_p2(), 3) + "% [" +
                       core::fmt(100.0 * ci.lower, 3) + "," + core::fmt(100.0 * ci.upper, 3) +
                       "]",
                   core::fmt(100.0 * r.theoretical_p2(), 4) + "%",
                   core::fmt(r.correlation_factor(), 1) + "x",
                   core::fmt(r.independence_test().t_statistic, 1),
                   r.independence_test().significant_at(0.995) ? "yes" : "no", paper_factor});
  }
  bench::print_table(std::cout, table, options);
}

void multiplicity_panel(const core::Dataset& ds, const bench::Options& options) {
  std::cout << "Generalized check, P(N) = P(1)^N / N! (paper equation 4), "
               "physical-interconnect failures per shelf-year:\n";
  core::TextTable table({"N", "empirical P(N)", "theoretical P(N)", "ratio"});
  const auto rows = core::failure_multiplicity(
      ds, core::Scope::kShelf, model::FailureType::kPhysicalInterconnect, 4);
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.n), core::fmt(100.0 * row.empirical, 4) + "%",
                   core::fmt(100.0 * row.theoretical, 4) + "%",
                   row.theoretical > 0.0
                       ? core::fmt(row.empirical / row.theoretical, 1) + "x"
                       : "-"});
  }
  bench::print_table(std::cout, table, options);
}

void sensitivity_panel(const core::Dataset& ds, const bench::Options& options) {
  // The paper: "Although in Figure 10 we set T to be one year, the
  // conclusion is general to different values of T. We have set T to 3
  // months, 6 months, and 2 years ... In all cases, similar correlations
  // were observed."
  std::cout << "Sensitivity: correlation factor (shelf scope) vs window length T\n";
  core::TextTable table({"T", "disk", "phys-interconnect", "protocol", "performance"});
  const struct {
    const char* label;
    double seconds;
  } windows[] = {{"3 months", 0.25 * model::kSecondsPerYear},
                 {"6 months", 0.5 * model::kSecondsPerYear},
                 {"1 year", model::kSecondsPerYear},
                 {"2 years", 2.0 * model::kSecondsPerYear}};
  for (const auto& w : windows) {
    std::vector<std::string> row = {w.label};
    for (const auto& r : core::failure_correlation_all_types(core::Source(ds),
                                                             core::Scope::kShelf,
                                                             w.seconds)) {
      row.push_back(core::fmt(r.correlation_factor(), 1) + "x");
    }
    table.add_row(std::move(row));
  }
  bench::print_table(std::cout, table, options);

  // "...and also grouped data based on other factors, such as system
  // classes": per-class factors.
  std::cout << "Sensitivity: correlation factor (shelf scope, T = 1 year) by system class\n";
  core::TextTable by_class({"class", "disk", "phys-interconnect", "protocol", "performance"});
  for (const auto cls : model::kAllSystemClasses) {
    core::Filter f;
    f.system_class = cls;
    const auto cohort = ds.filter(f);
    if (cohort.selected_system_count() == 0) continue;
    std::vector<std::string> row = {std::string(model::to_string(cls))};
    for (const auto& r :
         core::failure_correlation_all_types(core::Source(cohort), core::Scope::kShelf)) {
      row.push_back(core::fmt(r.correlation_factor(), 1) + "x");
    }
    by_class.add_row(std::move(row));
  }
  bench::print_table(std::cout, by_class, options);
}

void dispersion_and_cross_panel(const core::Dataset& ds, const bench::Options& options) {
  // A binning-free second lens: variance-to-mean of per-shelf-year counts
  // (1.0 under Poisson).
  std::cout << "Dispersion index (variance/mean of per-shelf-year counts; Poisson = 1)\n";
  core::TextTable disp({"failure type", "dispersion index"});
  for (const auto type : model::kAllFailureTypes) {
    disp.add_row({std::string(model::to_string(type)),
                  core::fmt(core::dispersion_index(ds, core::Scope::kShelf, type), 1)});
  }
  bench::print_table(std::cout, disp, options);

  // Cross-type triggering within a shelf: does one failure type foreshadow
  // another? Same-type rows show the self-excitation behind Figures 9/10;
  // cross-type rows stay near (or below measurable) lift because the
  // generative mechanisms couple types only through shared *rates* (family
  // H, Finding 3), not through event-level triggering — a falsifiable
  // statement about the model that the real AutoSupport data could test.
  std::cout << "Cross-type triggering within a shelf (response within 24 h of trigger)\n";
  core::TextTable cross({"trigger -> response", "triggers", "P(response | trigger)",
                         "independent baseline", "lift"});
  const std::pair<model::FailureType, model::FailureType> pairs[] = {
      {model::FailureType::kPhysicalInterconnect, model::FailureType::kPhysicalInterconnect},
      {model::FailureType::kPhysicalInterconnect, model::FailureType::kPerformance},
      {model::FailureType::kDisk, model::FailureType::kDisk},
      {model::FailureType::kDisk, model::FailureType::kProtocol},
      {model::FailureType::kProtocol, model::FailureType::kPerformance},
  };
  for (const auto& [trigger, response] : pairs) {
    const auto r =
        core::cross_type_correlation(ds, core::Scope::kShelf, trigger, response, 86400.0);
    cross.add_row({std::string(model::to_string(trigger)) + " -> " +
                       std::string(model::to_string(response)),
                   std::to_string(r.triggers), core::fmt_pct(r.conditional_probability(), 2),
                   core::fmt_pct(r.baseline_probability(), 2),
                   core::fmt(r.lift(), 1) + "x"});
  }
  bench::print_table(std::cout, cross, options);
}

void report(const bench::Options& options) {
  const auto& sd = bench::standard_dataset(options);
  bench::print_banner(std::cout,
                      "Figure 10: empirical vs theoretical P(2) under independence", options,
                      sd);
  panel(sd.dataset, core::Scope::kShelf, "(a) shelf enclosure failures (T = 1 year)",
        options);
  panel(sd.dataset, core::Scope::kRaidGroup, "(b) RAID group failures (T = 1 year)",
        options);
  multiplicity_panel(sd.dataset, options);
  sensitivity_panel(sd.dataset, options);
  dispersion_and_cross_panel(sd.dataset, options);
  std::cout << "Paper: empirical P(2) exceeds the independence prediction for every type "
               "(disk ~6x; interconnect/protocol/performance 10-25x), with t-tests "
               "significant at 99.5% — failures within a shelf or RAID group share "
               "causes.\n";
}

void BM_CorrelationAllTypes(benchmark::State& state) {
  const auto sd = core::simulate_and_analyze(
      model::standard_fleet_config(bench::kTimingScale, 1));
  for (auto _ : state) {
    const auto rows = core::failure_correlation_all_types(
        core::Source(sd.dataset),
        state.range(0) == 0 ? core::Scope::kShelf : core::Scope::kRaidGroup);
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_CorrelationAllTypes)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Multiplicity(benchmark::State& state) {
  const auto sd = core::simulate_and_analyze(
      model::standard_fleet_config(bench::kTimingScale, 1));
  for (auto _ : state) {
    const auto rows = core::failure_multiplicity(
        sd.dataset, core::Scope::kShelf, model::FailureType::kPhysicalInterconnect, 5);
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_Multiplicity)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  if (options.run_benchmarks) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  report(options);
  bench::finish_run("bench/fig10_correlation", options);
  return 0;
}
